//! The STM compiler pipeline (paper §3.2) end to end.
//!
//! ```sh
//! cargo run --release --example compiler_demo
//! ```
//!
//! Compiles a producer/consumer program written in the TL mini-language
//! twice — naively (every access in an atomic block becomes a barrier) and
//! with compiler capture analysis — then runs both on four threads and
//! compares the number of barriers actually executed.

use stm::{StmRuntime, TxConfig};
use txcc::{build, OptLevel, Vm};
use txmem::MemConfig;

const SRC: &str = r#"
// Append a node [value, tag, next] to an intrusive shared list.
// The node is allocated inside the transaction: its initialization is
// captured, only the publication touches shared memory.
fn append(head, value) {
    atomic {
        var node = malloc(24);
        node[0] = value;            // captured: elided by the compiler
        node[1] = value * 2 + 1;    // captured: elided
        node[2] = head[0];          // captured write, shared read
        head[0] = node;             // publication: keeps its barrier
    }
    return 0;
}

fn worker(head, n, seed) {
    var i = 0;
    while (i < n) {
        var z = append(head, seed * 100000 + i);
        i = i + 1;
    }
    return 0;
}

// Sum the list transactionally (all shared reads).
fn sum(head) {
    var total = 0;
    atomic {
        var cur = head[0];
        while (cur != 0) {
            total = total + cur[0];
            cur = cur[2];
        }
    }
    return total;
}
"#;

fn run(opt: OptLevel) -> (u64, u64, txcc::vm::VmStats) {
    let prog = build(SRC, opt).expect("TL program must compile");
    println!(
        "[{opt:?}] static instrumentation: {} barriers emitted, {} accesses elided",
        prog.stats.barriers, prog.stats.elided
    );

    let rt = StmRuntime::new(MemConfig::default(), TxConfig::default());
    let head = rt.alloc_global(8);
    let total_barriers = std::sync::Mutex::new(txcc::vm::VmStats::default());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let rt = &rt;
            let prog = &prog;
            let total = &total_barriers;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut vm = Vm::new(prog);
                vm.run(&mut w, "worker", &[head.raw(), 500, t]);
                let mut g = total.lock().unwrap();
                g.tx_loads += vm.stats.tx_loads;
                g.tx_stores += vm.stats.tx_stores;
                g.direct_loads += vm.stats.direct_loads;
                g.direct_stores += vm.stats.direct_stores;
            });
        }
    });

    let mut w = rt.spawn_worker();
    let mut vm = Vm::new(&prog);
    let total = vm.run(&mut w, "sum", &[head.raw()]);
    // Count list length sequentially for the check.
    let mut len = 0;
    let mut cur = w.load_addr(head);
    while !cur.is_null() {
        len += 1;
        cur = w.load_addr(cur.word(2));
    }
    let barrier_stats = *total_barriers.lock().unwrap();
    (total, len, barrier_stats)
}

fn main() {
    let (sum_naive, len_naive, naive) = run(OptLevel::Naive);
    let (sum_opt, len_opt, opt) = run(OptLevel::CaptureAnalysis);
    let (sum_inter, len_inter, inter) = run(OptLevel::CaptureInterproc);

    assert_eq!(len_naive, 2000);
    assert_eq!(len_opt, 2000);
    assert_eq!(len_inter, 2000);
    assert_eq!(sum_naive, sum_opt, "same program, same answer");
    assert_eq!(sum_naive, sum_inter, "same program, same answer");

    let naive_total = naive.tx_loads + naive.tx_stores;
    let opt_total = opt.tx_loads + opt.tx_stores;
    let inter_total = inter.tx_loads + inter.tx_stores;
    println!();
    println!("barriers executed (naive)             : {naive_total}");
    println!("barriers executed (capture analysis)  : {opt_total}");
    println!("barriers executed (interprocedural)   : {inter_total}");
    println!(
        "removed by the compiler               : {:.1}%",
        100.0 * (naive_total - opt_total) as f64 / naive_total as f64
    );
    assert!(opt_total < naive_total);
    assert!(
        inter_total <= opt_total,
        "the summary pass never executes more barriers"
    );
    println!("ok: all compilations agree, sum = {sum_opt}");
}
