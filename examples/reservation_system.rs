//! A travel-reservation service built on the transactional collections —
//! the workload class the paper's introduction motivates (vacation).
//!
//! ```sh
//! cargo run --release --example reservation_system
//! ```
//!
//! Four agents concurrently book trips against shared red-black-tree
//! inventory tables while an auditor transaction sums exposure. Every
//! booking allocates its room/customer records inside the transaction —
//! captured memory whose barriers the STM elides. Inventory records are
//! `tx_object!` layouts accessed through typed field projections; their
//! pointers travel through the trees' `u64` value words via
//! `TxPtr::raw`/`TxPtr::from_raw`, exactly like the C structs whose
//! pointers STAMP stashes in its collections.

use stamp::collections::{TxList, TxRbTree};
use stm::{tx_object, Site, StmRuntime, TxConfig, TxPtr};
use txmem::MemConfig;

static INV: Site = Site::shared("resv.inventory");
static INV_INIT: Site = Site::captured_local("resv.inventory_init");

tx_object! {
    /// Per-room inventory record (the trees map room id → record).
    struct RoomRec {
        /// Total capacity.
        capacity: u64,
        /// Rooms still free.
        free: u64,
        /// Nightly rate.
        rate: u64,
    }
}

const ROOMS: u64 = 64;
const AGENTS: usize = 4;
const BOOKINGS_PER_AGENT: u64 = 2_000;

fn main() {
    let rt = StmRuntime::new(MemConfig::default(), TxConfig::runtime_tree_full());
    let rooms = TxRbTree::create(&rt); // room id -> RoomRec
    let customers = TxRbTree::create(&rt); // customer id -> reservation list

    {
        let mut w = rt.spawn_worker();
        for id in 0..ROOMS {
            let rate = 80 + (id * 13) % 200;
            w.txn(|tx| {
                let rec = tx.alloc_obj::<RoomRec>()?;
                tx.write_field(&INV_INIT, rec, RoomRec::capacity, 10)?;
                tx.write_field(&INV_INIT, rec, RoomRec::free, 10)?;
                tx.write_field(&INV_INIT, rec, RoomRec::rate, rate)?;
                rooms.insert(tx, id, rec.raw())
            });
        }
    }

    std::thread::scope(|s| {
        for agent in 0..AGENTS as u64 {
            let rt = &rt;
            let rooms = &rooms;
            let customers = &customers;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut x = agent * 7919 + 1;
                for n in 0..BOOKINGS_PER_AGENT {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let room = (x >> 33) % ROOMS;
                    let customer = (x >> 17) % 256;
                    w.txn(|tx| {
                        let Some(rec) = rooms.find(tx, room)? else {
                            return Ok(());
                        };
                        let rec = TxPtr::<RoomRec>::from_raw(rec);
                        let free = tx.read_field(&INV, rec, RoomRec::free)?;
                        if free == 0 {
                            return Ok(()); // sold out
                        }
                        let rate = tx.read_field(&INV, rec, RoomRec::rate)?;
                        // Get or create the customer's reservation list.
                        let list = match customers.find(tx, customer)? {
                            Some(h) => TxList {
                                handle: txmem::Addr::from_raw(h),
                            },
                            None => {
                                let l = TxList::create_tx(tx)?;
                                customers.insert(tx, customer, l.handle.raw())?;
                                l
                            }
                        };
                        // Reservation key unique per booking.
                        if list.insert(tx, room * BOOKINGS_PER_AGENT * 8 + n * 8 + agent, rate)? {
                            tx.write_field(&INV, rec, RoomRec::free, free - 1)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });

    // Audit: capacity conservation per room.
    let w = rt.spawn_worker();
    let mut held = std::collections::HashMap::<u64, u64>::new();
    for (_cid, h) in customers.seq_collect(&w) {
        let list = TxList {
            handle: txmem::Addr::from_raw(h),
        };
        for (key, _rate) in list.seq_collect(&w) {
            *held.entry(key / (BOOKINGS_PER_AGENT * 8)).or_insert(0) += 1;
        }
    }
    let mut total_booked = 0;
    for (room, rec) in rooms.seq_collect(&w) {
        let rec = TxPtr::<RoomRec>::from_raw(rec);
        let cap: u64 = w.load_as(rec.field(RoomRec::capacity));
        let free: u64 = w.load_as(rec.field(RoomRec::free));
        let booked = held.get(&room).copied().unwrap_or(0);
        assert_eq!(cap, free + booked, "room {room} over/under-booked");
        total_booked += booked;
    }
    rooms.seq_check_invariants(&w);
    customers.seq_check_invariants(&w);
    drop(w);

    let stats = rt.collect_stats();
    println!("bookings accepted : {total_booked}");
    println!(
        "write barriers    : {} total, {:.1}% elided as captured",
        stats.writes.total,
        100.0 * stats.writes.elided_fraction()
    );
    println!("aborts/commits    : {:.3}", stats.abort_to_commit_ratio());
    println!("ok: all rooms conserve capacity");
}
