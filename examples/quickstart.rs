//! Quickstart: the captured-memory STM in five minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an STM runtime over simulated memory, runs concurrent transfer
//! transactions that mix genuinely shared accesses with transaction-local
//! scratch allocations, and shows how runtime capture analysis elides the
//! barriers for the latter — all through the **typed object layer**:
//! the audit record is a `tx_object!` layout accessed with field
//! projections, which lower to the same word barriers as raw
//! `addr.word(i)` arithmetic.

use stm::{tx_object, Site, StmRuntime, TxConfig};
use txmem::MemConfig;

// Every transactional access site carries a static descriptor. `shared`
// sites are real shared-memory accesses; `captured_escaped` marks accesses
// the *runtime* capture analysis can elide but a simple compiler analysis
// cannot see (e.g. the pointer crossed a function boundary).
static ACCOUNT: Site = Site::shared("quickstart.account");
static SCRATCH: Site = Site::captured_escaped("quickstart.scratch");

tx_object! {
    /// A transaction-local audit record: declared once, projected with
    /// `tx.write_field(&SITE, p, Audit::from, v)` instead of counting
    /// word offsets by hand.
    struct Audit {
        /// Source account index.
        from: u64,
        /// Destination account index.
        to: u64,
        /// Set once the transfer has executed.
        done: bool,
    }
}

const ACCOUNTS: u64 = 16;
const TRANSFERS_PER_THREAD: u64 = 10_000;
const THREADS: usize = 4;

fn main() {
    // The paper's runtime configuration: tree-based allocation log,
    // capture checks in read and write barriers, stack and heap.
    let rt = StmRuntime::new(MemConfig::default(), TxConfig::runtime_tree_full());

    // Shared state lives in the simulated address space.
    let table = rt.alloc_global(ACCOUNTS * 8);
    {
        let w = rt.spawn_worker();
        for i in 0..ACCOUNTS {
            w.store(table.word(i), 1_000);
        }
    }

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut x = t + 1;
                for _ in 0..TRANSFERS_PER_THREAD {
                    // Cheap deterministic PRNG for account selection.
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (x >> 33) % ACCOUNTS;
                    let to = (from + 1 + (x >> 13) % (ACCOUNTS - 1)) % ACCOUNTS;
                    w.txn(|tx| {
                        // A transaction-local audit record: allocated inside
                        // the transaction, so it is *captured* — the typed
                        // field writes below skip locking, logging,
                        // everything.
                        let audit = tx.alloc_obj::<Audit>()?;
                        tx.write_field(&SCRATCH, audit, Audit::from, from)?;
                        tx.write_field(&SCRATCH, audit, Audit::to, to)?;

                        // The genuinely shared part: the transfer itself.
                        let f = tx.read(&ACCOUNT, table.word(from))?;
                        let g = tx.read(&ACCOUNT, table.word(to))?;
                        tx.write(&ACCOUNT, table.word(from), f - 1)?;
                        tx.write(&ACCOUNT, table.word(to), g + 1)?;

                        tx.write_field(&SCRATCH, audit, Audit::done, true)?;
                        tx.free_obj(audit);
                        Ok(())
                    });
                }
            });
        }
    });

    // Money is conserved...
    let w = rt.spawn_worker();
    let total: u64 = (0..ACCOUNTS).map(|i| w.load(table.word(i))).sum();
    assert_eq!(total, ACCOUNTS * 1_000);
    drop(w);

    // ...and the statistics show what capture analysis bought us.
    let stats = rt.collect_stats();
    println!("committed     : {}", stats.commits);
    println!("aborted       : {} (retried)", stats.aborts);
    println!(
        "write barriers: {} total, {} elided as captured ({:.1}%)",
        stats.writes.total,
        stats.writes.elided(),
        100.0 * stats.writes.elided_fraction()
    );
    println!(
        "read barriers : {} total, {} elided as captured ({:.1}%)",
        stats.reads.total,
        stats.reads.elided(),
        100.0 * stats.reads.elided_fraction()
    );
    assert_eq!(stats.commits, THREADS as u64 * TRANSFERS_PER_THREAD);
    assert!(stats.writes.elided() > 0);
    println!(
        "ok: conservation verified across {} transfers",
        stats.commits
    );
}
