//! The data-annotation API of paper §3.1.3 (Fig. 7):
//! `addPrivateMemoryBlock` / `removePrivateMemoryBlock`.
//!
//! ```sh
//! cargo run --release --example annotations
//! ```
//!
//! A read-only lookup table is shared by all threads; per-thread scratch
//! buffers are thread-local. Neither can be proven safe automatically — the
//! table is *shared* (just never written), and the buffers outlive their
//! allocating transactions — so automatic capture analysis leaves their
//! barriers in place. Programmer annotations remove them, reproducing the
//! paper's §2.2.2/§2.2.3 categories; the example also shows the region
//! dynamically changing back to shared.

use stm::{Site, StmRuntime, TxConfig};
use txmem::MemConfig;

static TABLE: Site = Site::unneeded("annot.table"); // read-only data
static BUF: Site = Site::unneeded("annot.buffer"); // thread-local data
static OUT: Site = Site::shared("annot.out");

const TABLE_WORDS: u64 = 1024;
const ROUNDS: u64 = 5_000;

fn main() {
    let mut cfg = TxConfig::default();
    cfg.annotations = true; // enable the §3.1.3 check in the barriers
    let rt = StmRuntime::new(MemConfig::default(), cfg);

    // A lookup table, initialized once and read-only afterwards.
    let table = rt.alloc_global(TABLE_WORDS * 8);
    let out = rt.alloc_global(8);
    {
        let w = rt.spawn_worker();
        for i in 0..TABLE_WORDS {
            w.store(table.word(i), i * i % 1013);
        }
    }

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                // The programmer knows the table is read-only from here on:
                // annotate it so reads skip the STM entirely.
                w.add_private_memory_block(table, TABLE_WORDS * 8);
                // A thread-local scratch buffer, reused across transactions
                // (paper Fig. 1(b)'s query vector pattern).
                let buf = w.alloc_raw(16 * 8);
                w.add_private_memory_block(buf, 16 * 8);

                for r in 0..ROUNDS {
                    w.txn(|tx| {
                        let mut acc = 0;
                        for k in 0..16u64 {
                            let v =
                                tx.read(&TABLE, table.word((t * 31 + r * 17 + k) % TABLE_WORDS))?;
                            tx.write(&BUF, buf.word(k), v)?; // thread-local
                            acc += v;
                        }
                        // One genuinely shared word keeps the STM honest.
                        let cur = tx.read(&OUT, out)?;
                        tx.write(&OUT, out, cur.wrapping_add(acc))
                    });
                }

                // The buffer becomes shared again (e.g. handed to another
                // thread): remove the annotation — barriers come back.
                w.remove_private_memory_block(buf, 16 * 8);
                w.txn(|tx| {
                    tx.write(&BUF, buf, 0)?; // full barrier now
                    Ok(())
                });
            });
        }
    });

    let stats = rt.collect_stats();
    let all = stats.all_accesses();
    println!("transactions          : {}", stats.commits);
    println!(
        "barriers elided by annotations: {} of {} ({:.1}%)",
        all.elided_annotation,
        all.total,
        100.0 * all.elided_annotation as f64 / all.total as f64
    );
    println!("full barriers executed: {}", all.full);
    assert!(all.elided_annotation > 0);
    assert!(all.full > 0, "the shared accumulator still takes barriers");
    println!("ok");
}
