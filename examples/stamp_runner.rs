//! Run any STAMP benchmark from the command line, like the original
//! suite's binaries:
//!
//! ```sh
//! cargo run --release --example stamp_runner -- vacation-high 4 tree
//! cargo run --release --example stamp_runner -- yada 2 baseline
//! cargo run --release --example stamp_runner -- all 4 compiler
//! ```
//!
//! Arguments: `<benchmark|all> [threads]
//! [baseline|tree|array|filter|nursery|compiler|compiler-interproc]
//! [--merge N]` (`nursery` = runtime-tree with per-transaction nursery
//! allocation; `--merge N` runs merge-aware apps — intruder's packet
//! loop — with up to N logical transactions per physical commit).

use stamp::{Benchmark, Scale};
use stm::{CheckScope, LogKind, Mode, TxConfig};

fn parse_benchmark(s: &str) -> Option<Benchmark> {
    Some(match s {
        "bayes" => Benchmark::Bayes,
        "genome" => Benchmark::Genome,
        "intruder" => Benchmark::Intruder,
        "kmeans-high" => Benchmark::KmeansHigh,
        "kmeans-low" => Benchmark::KmeansLow,
        "labyrinth" => Benchmark::Labyrinth,
        "ssca2" => Benchmark::Ssca2,
        "vacation-high" => Benchmark::VacationHigh,
        "vacation-low" => Benchmark::VacationLow,
        "yada" => Benchmark::Yada,
        _ => return None,
    })
}

fn parse_mode(s: &str) -> Option<TxConfig> {
    // Assemble through the validating builder: the mode/nursery
    // combination is checked once here, at the CLI boundary, instead of
    // being silently ignored deep in the runtime.
    let b = TxConfig::builder();
    let b = match s {
        "baseline" => b.mode(Mode::Baseline),
        "compiler" => b.mode(Mode::Compiler),
        "compiler-interproc" => b.mode(Mode::CompilerInterproc),
        "tree" => b.mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        }),
        "nursery" => b
            .mode(Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL,
            })
            .nursery(true),
        "array" => b.mode(Mode::Runtime {
            log: LogKind::Array,
            scope: CheckScope::FULL,
        }),
        "filter" => b.mode(Mode::Runtime {
            log: LogKind::Filter,
            scope: CheckScope::FULL,
        }),
        _ => return None,
    };
    Some(b.build().unwrap_or_else(|e| {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }))
}

fn run_one(b: Benchmark, threads: usize, cfg: TxConfig) {
    let out = b.run(Scale::Full, cfg, threads);
    let all = out.stats.all_accesses();
    println!(
        "{:<14} {:>8.3}s  {:>9} commits  {:>8} aborts (ratio {:.2})  \
         barriers {:>9} ({:>5.1}% elided)  verified={}",
        out.benchmark,
        out.elapsed.as_secs_f64(),
        out.stats.commits,
        out.stats.aborts,
        out.stats.abort_to_commit_ratio(),
        all.total,
        100.0 * all.elided_fraction(),
        out.verified,
    );
    assert!(out.verified, "{} failed verification!", b.name());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Strip `--merge N` wherever it appears; positional args stay stable.
    let mut merge: u32 = 1;
    if let Some(i) = args.iter().position(|a| a == "--merge") {
        let n = args
            .get(i + 1)
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or_else(|| {
                eprintln!("--merge needs a numeric factor");
                std::process::exit(2);
            });
        if n == 0 || n > stm::MERGE_MAX_LIMIT {
            eprintln!("--merge must be in 1..={} (got {n})", stm::MERGE_MAX_LIMIT);
            std::process::exit(2);
        }
        merge = n;
        args.drain(i..i + 2);
    }

    let which = args.first().map(String::as_str).unwrap_or("all");
    let threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut cfg = args
        .get(2)
        .map(|s| {
            parse_mode(s)
                .expect("mode: baseline|tree|array|filter|nursery|compiler|compiler-interproc")
        })
        .unwrap_or_else(TxConfig::runtime_tree_full);
    cfg.merge_max = merge;

    println!(
        "# scale=full threads={threads} mode={} merge={merge}",
        cfg.label()
    );
    if which == "all" {
        for b in Benchmark::ALL {
            run_one(b, threads, cfg);
        }
    } else {
        let b = parse_benchmark(which).unwrap_or_else(|| {
            eprintln!(
                "unknown benchmark {which}; one of: bayes genome intruder kmeans-high \
                 kmeans-low labyrinth ssca2 vacation-high vacation-low yada all"
            );
            std::process::exit(2);
        });
        run_one(b, threads, cfg);
    }
}
