//! The global commit clock, with TL2-GV4-style "pass on failure" tickets.
//!
//! The naive clock is a per-commit `fetch_add`: every writing commit owns
//! the clock's cache line for a moment, so N concurrent committers
//! serialize on one line and the clock advances N times. GV4 replaces the
//! unconditional increment with a single CAS; a committer whose CAS *loses*
//! does not retry — it **adopts the winner's timestamp** as its own write
//! version. That is safe because
//!
//! * both committers hold encounter-time locks on their (therefore
//!   disjoint) write sets, so publishing two disjoint sets at the same
//!   version is indistinguishable from one bigger commit;
//! * per-orec versions stay strictly monotonic: the clock is sampled
//!   *after* all locks are held, so the adopted value exceeds every
//!   pre-lock version in the write set;
//! * the "clock unchanged since snapshot ⇒ skip read validation" shortcut
//!   survives, but note that adopters *can* publish without moving the
//!   clock — the shortcut is saved by lock ordering, not by clock
//!   movement (see the argument at `need_validate` in
//!   [`CommitClock::writer_ticket`]'s implementation).
//!
//! Under contention, k simultaneous committers perform one clock
//! transition instead of k — fewer invalidations of the hottest line in
//! the runtime, and a slower-moving clock that triggers fewer snapshot
//! extensions in readers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Write-version ticket handed to a committing writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Ticket {
    /// The version to publish the write set at (always even).
    pub wv: u64,
    /// Whether the committer must re-validate its read set. `false` only
    /// when the clock provably did not move since the snapshot was taken.
    pub need_validate: bool,
    /// Telemetry: this ticket reuses a concurrent winner's timestamp.
    pub adopted: bool,
}

/// Global version clock; even values only (bit 0 is the orec lock bit).
#[derive(Debug, Default)]
pub(crate) struct CommitClock {
    value: AtomicU64,
}

impl CommitClock {
    pub fn new() -> CommitClock {
        CommitClock {
            value: AtomicU64::new(0),
        }
    }

    /// Current clock value (transaction begin snapshots, extension).
    #[inline]
    pub fn read(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Acquire a write version for a committer whose snapshot is `rv`.
    ///
    /// Must be called with the committer's whole write set already locked:
    /// the soundness of adoption (and of the skip-validation shortcut for
    /// concurrent transactions) depends on the sample happening after the
    /// last lock acquisition.
    #[inline]
    pub fn writer_ticket(&self, rv: u64) -> Ticket {
        let observed = self.value.load(Ordering::Acquire);
        self.ticket_at(observed, rv)
    }

    /// CAS `observed → observed + 2`; on failure adopt the winner's value.
    /// Split from [`CommitClock::writer_ticket`] so tests can force the
    /// adoption path deterministically with a stale `observed`.
    fn ticket_at(&self, observed: u64, rv: u64) -> Ticket {
        match self.value.compare_exchange(
            observed,
            observed + 2,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ticket {
                wv: observed + 2,
                // Winning with observed == rv means the clock sat at `rv`
                // for this committer T's whole [begin, commit-CAS] window.
                // No CAS winner published inside it (the clock would have
                // moved). An *adopter* can publish inside it at a version
                // <= rv without moving the clock — but only one that
                // locked its entire write set before T began: an adopter
                // that took any lock inside the window would sample the
                // clock (lock-then-sample order) at `rv` and its own CAS
                // would then either win, moving the clock before T's CAS,
                // or lose, which requires a move too — both contradict
                // the stillness T observed. Locks held since before T
                // began mean T never read a pre-publish value of that
                // write set (reads of locked orecs never complete), so
                // such an adopter serializes entirely before T and
                // skipping T's re-validation is sound.
                need_validate: observed != rv,
                adopted: false,
            },
            Err(cur) => Ticket {
                wv: cur,
                need_validate: true,
                adopted: true,
            },
        }
    }

    /// Push the clock forward to at least `v` (used by crash recovery so
    /// that post-recovery commits are versioned strictly after every
    /// replayed record). `v` must be even — odd values would collide with
    /// the orec lock bit.
    pub fn advance_to(&self, v: u64) {
        debug_assert_eq!(v % 2, 0, "clock values are always even");
        self.value.fetch_max(v, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_tickets_increment_by_two() {
        let c = CommitClock::new();
        assert_eq!(c.read(), 0);
        let t = c.writer_ticket(0);
        assert_eq!(
            t,
            Ticket {
                wv: 2,
                need_validate: false,
                adopted: false
            }
        );
        let t = c.writer_ticket(2);
        assert_eq!(t.wv, 4);
        assert!(!t.need_validate && !t.adopted);
        assert_eq!(c.read(), 4);
    }

    #[test]
    fn stale_snapshot_requires_validation() {
        let c = CommitClock::new();
        c.writer_ticket(0); // clock -> 2
        let t = c.writer_ticket(0); // snapshot predates the move
        assert_eq!(t.wv, 4);
        assert!(t.need_validate, "clock moved since snapshot");
        assert!(!t.adopted);
    }

    #[test]
    fn lost_cas_adopts_winner_timestamp_and_validates() {
        let c = CommitClock::new();
        c.writer_ticket(0); // clock -> 2 (the "winner")
                            // A committer that sampled 0 before the winner's CAS: its own CAS
                            // fails and it adopts the winner's timestamp without advancing the
                            // clock.
        let t = c.ticket_at(0, 0);
        assert_eq!(
            t,
            Ticket {
                wv: 2,
                need_validate: true,
                adopted: true
            }
        );
        assert_eq!(c.read(), 2, "adoption must not advance the clock");
    }

    #[test]
    fn adopted_timestamps_stay_even() {
        let c = CommitClock::new();
        for _ in 0..5 {
            c.writer_ticket(c.read());
        }
        let t = c.ticket_at(0, 0);
        assert!(t.adopted);
        assert_eq!(t.wv % 2, 0);
        assert_eq!(t.wv, 10);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = CommitClock::new();
        c.advance_to(10);
        assert_eq!(c.read(), 10);
        c.advance_to(4); // never regresses
        assert_eq!(c.read(), 10);
        let t = c.writer_ticket(10);
        assert_eq!(t.wv, 12, "tickets continue past the advanced value");
    }

    #[test]
    fn hammered_clock_is_monotonic_and_even() {
        let c = std::sync::Arc::new(CommitClock::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let rv = c.read();
                        let t = c.writer_ticket(rv);
                        assert_eq!(t.wv % 2, 0);
                        assert!(t.wv >= last, "per-thread tickets never regress");
                        assert!(t.wv > rv, "ticket must exceed the snapshot");
                        last = t.wv;
                    }
                });
            }
        });
        assert!(c.read() > 0);
    }
}
