use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use txmem::{Addr, CachePadded, MemConfig, SharedMem, ThreadAlloc, TxHeap};

use crate::barrier::DispatchTable;
use crate::clock::CommitClock;
use crate::config::TxConfig;
use crate::contention::ContentionState;
use crate::durable::{DurableState, SimDisk};
use crate::orec::OrecTable;
use crate::stats::TxStats;
use crate::worker::WorkerCtx;

/// The shared state of the STM: simulated memory, heap allocator,
/// transaction-record table, global version clock, configuration, the
/// resolved barrier pipeline, and aggregated statistics.
///
/// The three members every thread touches — the commit clock, the orec
/// table, and the merged statistics — are cache-line-padded so a clock CAS
/// never invalidates the line a reader needs for an orec lookup, and a
/// worker draining its stats never stalls committers.
pub struct StmRuntime {
    pub(crate) mem: Arc<SharedMem>,
    pub(crate) heap: TxHeap,
    pub(crate) orecs: CachePadded<OrecTable>,
    /// Global version clock (GV4 pass-on-failure tickets; see
    /// [`CommitClock`]). Even values only — bit 0 is the orec lock bit.
    pub(crate) clock: CachePadded<CommitClock>,
    pub(crate) config: TxConfig,
    /// The barrier pipeline for `config`, resolved exactly once here: every
    /// worker spawned from this runtime copies this pointer and never
    /// re-dispatches on `Mode`/`LogKind` again.
    pub(crate) table: &'static DispatchTable,
    pub(crate) global_stats: CachePadded<Mutex<TxStats>>,
    /// Contention-manager state shared by every worker: the serialization
    /// token and the per-thread active flags its drain protocol scans (see
    /// `stm::contention`).
    pub(crate) cm: ContentionState,
    /// Durable-mode state (disk, quiesce gate, per-tid log counters);
    /// `Some` exactly when `config.durable`.
    pub(crate) durable: Option<Arc<DurableState>>,
    tids: Mutex<TidPool>,
    setup_alloc: Mutex<ThreadAlloc>,
}

struct TidPool {
    next: usize,
    free: Vec<usize>,
    max: usize,
}

impl StmRuntime {
    /// Build a runtime over fresh simulated memory: resolves the barrier
    /// dispatch table for `config` once, here. A durable configuration
    /// needs a disk — use [`StmRuntime::new_durable`].
    pub fn new(mem_cfg: MemConfig, config: TxConfig) -> StmRuntime {
        assert!(
            !config.durable,
            "durable configurations need a SimDisk; use StmRuntime::new_durable"
        );
        StmRuntime::build(mem_cfg, config, None)
    }

    /// Build a *durable* runtime (`config.durable` must be set) whose
    /// workers append redo records to per-worker logs on `disk`. Pair
    /// with [`crate::recover`] to rebuild from that disk after a crash.
    pub fn new_durable(mem_cfg: MemConfig, config: TxConfig, disk: Arc<SimDisk>) -> StmRuntime {
        assert!(
            config.durable,
            "new_durable requires a configuration with durable mode on"
        );
        let ds = Arc::new(DurableState::new(disk, mem_cfg.max_threads));
        StmRuntime::build(mem_cfg, config, Some(ds))
    }

    fn build(
        mem_cfg: MemConfig,
        config: TxConfig,
        durable: Option<Arc<DurableState>>,
    ) -> StmRuntime {
        let mem = Arc::new(SharedMem::new(mem_cfg));
        let heap = TxHeap::new(mem.clone());
        StmRuntime {
            mem,
            heap,
            orecs: CachePadded::new(OrecTable::new(config.orec_log2)),
            clock: CachePadded::new(CommitClock::new()),
            table: DispatchTable::select(&config),
            config,
            global_stats: CachePadded::new(Mutex::new(TxStats::default())),
            cm: ContentionState::new(mem_cfg.max_threads),
            durable,
            tids: Mutex::new(TidPool {
                next: 0,
                free: Vec::new(),
                max: mem_cfg.max_threads,
            }),
            setup_alloc: Mutex::new(ThreadAlloc::new()),
        }
    }

    /// The simulated shared memory.
    #[inline]
    pub fn mem(&self) -> &SharedMem {
        &self.mem
    }

    /// The shared heap allocator.
    #[inline]
    pub fn heap(&self) -> &TxHeap {
        &self.heap
    }

    /// The configuration this runtime was built with.
    #[inline]
    pub fn config(&self) -> &TxConfig {
        &self.config
    }

    /// Current value of the global version clock (diagnostics).
    pub fn clock_value(&self) -> u64 {
        self.clock.read()
    }

    /// Register a worker thread: assigns a thread id (and with it a stack
    /// region) that is returned to the pool when the worker drops.
    pub fn spawn_worker(&self) -> WorkerCtx<'_> {
        let tid = {
            let mut pool = self.tids.lock().unwrap();
            if let Some(t) = pool.free.pop() {
                Some(t)
            } else if pool.next < pool.max {
                let t = pool.next;
                pool.next += 1;
                Some(t)
            } else {
                None
            }
        };
        let tid = tid.unwrap_or_else(|| {
            panic!(
                "worker limit reached ({} stack regions)",
                self.mem.layout().max_threads
            )
        });
        WorkerCtx::new(self, tid)
    }

    pub(crate) fn release_tid(&self, tid: usize) {
        // Poison-tolerant: a worker may be dropped while unwinding.
        let mut pool = self.tids.lock().unwrap_or_else(|e| e.into_inner());
        pool.free.push(tid);
    }

    /// Non-transactional allocation for setup phases (shared structures
    /// built before the workers start). Never logged in any capture log.
    pub fn alloc_global(&self, size: u64) -> Addr {
        let mut ta = self.setup_alloc.lock().unwrap();
        self.heap
            .alloc(&mut ta, size)
            .expect("simulated heap exhausted during setup")
    }

    /// Free a block allocated with [`StmRuntime::alloc_global`].
    pub fn free_global(&self, addr: Addr) {
        let mut ta = self.setup_alloc.lock().unwrap();
        self.heap.free(&mut ta, addr);
    }

    /// The simulated disk of a durable runtime (`None` otherwise).
    pub fn disk(&self) -> Option<&Arc<SimDisk>> {
        self.durable.as_ref().map(|d| &d.disk)
    }

    /// Run one checkpoint now: quiesce every worker, compact the redo
    /// logs into a fresh heap snapshot, and truncate them. Panics on a
    /// non-durable runtime. Must be called from a thread that is *not*
    /// inside a transaction (the quiesce would deadlock against itself).
    pub fn checkpoint_now(&self) {
        crate::durable::checkpoint(self);
    }

    /// Background-checkpointer loop: checkpoint whenever the combined
    /// redo-log size reaches `threshold_bytes`, until `stop` is set.
    /// Spawn it on its own (scoped) thread next to the workers.
    pub fn checkpoint_loop(&self, threshold_bytes: u64, stop: &AtomicBool) {
        let ds = self
            .durable
            .as_ref()
            .expect("checkpoint_loop requires a durable runtime");
        while !stop.load(Ordering::Acquire) {
            if ds.disk.log_bytes() >= threshold_bytes {
                self.checkpoint_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Merged statistics of all finished workers.
    pub fn collect_stats(&self) -> TxStats {
        *self.global_stats.lock().unwrap()
    }

    /// Zero the runtime-wide aggregated statistics.
    pub fn reset_stats(&self) {
        *self.global_stats.lock().unwrap() = TxStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_pool_recycles() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let t0 = {
            let w = rt.spawn_worker();
            w.tid()
        };
        let w2 = rt.spawn_worker();
        assert_eq!(w2.tid(), t0, "dropped worker's tid should be reused");
    }

    #[test]
    fn worker_limit_enforced() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let workers: Vec<_> = (0..8).map(|_| rt.spawn_worker()).collect();
        assert_eq!(workers.len(), 8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.spawn_worker()));
        assert!(r.is_err(), "9th worker must panic: only 8 stack regions");
    }

    #[test]
    fn global_alloc_is_usable_memory() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let a = rt.alloc_global(64);
        rt.mem().store(a, 9);
        assert_eq!(rt.mem().load(a), 9);
        rt.free_global(a);
    }

    #[test]
    fn clock_starts_at_zero() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        assert_eq!(rt.clock_value(), 0);
    }
}
