//! A software transactional memory runtime with capture-optimized barriers —
//! the core system of "Optimizing Transactions for Captured Memory"
//! (Dragojević, Ni, Adl-Tabatabai; SPAA 2009).
//!
//! The runtime follows the Intel C++ STM design the paper builds on
//! (McRT-STM family):
//!
//! * a global **transaction record** (orec) table at cache-line (64-byte)
//!   granularity, addresses hashed to records;
//! * **eager (encounter-time) locking** of records on write;
//! * **in-place updates** with an **undo log** for rollback;
//! * **optimistic (invisible) readers** with timestamp-based validation and
//!   snapshot extension, so transactions always observe consistent state;
//! * an **exponential backoff** contention manager;
//! * a transactional allocator (allocations are undone on abort, frees are
//!   deferred to commit);
//! * **closed nesting** with partial abort.
//!
//! On top of that substrate sit the paper's contributions, all configurable
//! through [`TxConfig`]:
//!
//! * **Runtime capture analysis** ([`Mode::Runtime`]): every barrier first
//!   checks whether the accessed address is *captured* — allocated on the
//!   transaction-local stack (one range compare) or heap (an allocation-log
//!   lookup using the tree / array / filter structures from the `capture`
//!   crate) — and if so performs a plain load/store.
//! * **Compiler capture analysis** ([`Mode::Compiler`]): access sites that
//!   static analysis proves captured ([`Site::compiler_elides`]) skip the
//!   barrier entirely, with no runtime check cost. (The actual static
//!   analysis lives in the `txcc` crate; Rust-authored workloads carry its
//!   verdict in their [`Site`] descriptors.)
//! * **Data annotations** ([`TxConfig::annotations`]): the paper's
//!   `addPrivateMemoryBlock` / `removePrivateMemoryBlock` API for
//!   thread-local and read-only data.
//!
//! The barrier pipeline itself is **monomorphized** (DESIGN.md §2): all
//! mode/log dispatch is resolved once at [`StmRuntime::new`] into a
//! static table of function pointers specialized per [`Mode`] and per
//! [`CapturePolicy`] implementation, and the hottest captured accesses
//! (current-level stack, most-recent captured block) are handled by exact
//! inline checks before the call. The pre-refactor per-access
//! enum-dispatch pipeline is preserved behind
//! [`TxConfig::reference_dispatch`] as a differential-testing oracle.
//!
//! # Example
//!
//! ```
//! use stm::{Mode, StmRuntime, Site, TxConfig};
//! use txmem::MemConfig;
//!
//! static SITE: Site = Site::shared("example.counter");
//!
//! let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
//! let counter = rt.alloc_global(8); // one shared word
//! let mut w = rt.spawn_worker();
//! let v = w.txn(|tx| {
//!     let v = tx.read(&SITE, counter)?;
//!     tx.write(&SITE, counter, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(v, 1);
//! ```
#![warn(missing_docs)]

mod barrier;
mod batch;
mod clock;
mod commit;
mod config;
mod contention;
mod durable;
mod nursery;
mod orec;
mod runtime;
mod site;
mod stats;
mod txalloc;
mod typed;
mod worker;

pub use batch::{BatchRun, TxBatch};
pub use capture::{Capture, CapturePolicy, LogKind};
pub use config::{
    CheckScope, ConfigError, MergeSplitPolicy, Mode, TxConfig, TxConfigBuilder,
    DURABLE_FLUSH_BATCH_LIMIT, MERGE_MAX_LIMIT,
};
pub use contention::{ChaosPlan, ChaosPoint, ContentionPolicy};
pub use durable::{log_file_name, recover, FaultPhase, FaultPlan, RecoveryReport, SimDisk};
pub use orec::OrecTable;
pub use runtime::StmRuntime;
pub use site::Site;
pub use stats::{BarrierStats, TxStats, BACKOFF_BUCKETS, LATENCY_BUCKETS};
pub use typed::{Field, StackFrame, TxBuf, TxCursor, TxObject, TxPtr, TxSlice, TxWord, TxWriter};
pub use worker::{Abort, Tx, TxResult, WorkerCtx};
