//! Transaction lifecycle: begin, validate/extend, commit, rollback, and
//! closed nesting with partial abort.
//!
//! Writing commits draw their version from the [`crate::clock::CommitClock`]
//! GV4 scheme: one CAS, and a lost race adopts the winner's timestamp
//! instead of retrying, so the clock line changes once per *batch* of
//! concurrent committers. Read-only commits never touch the clock at all.

use std::sync::atomic::Ordering;

use capture::CapturePolicy;
use txmem::{Addr, HEADER_BYTES, WORD_BYTES};

use crate::durable::RecordEncoder;
use crate::nursery::NurseryCp;
use crate::orec::{is_locked, owner_of};
use crate::worker::{AllocHome, Tx, TxResult, WorkerCtx};

/// Snapshot of the log positions at nested-transaction begin; partial abort
/// rolls back to these marks. Also the *watermark* a merged batch
/// (`crate::batch`) records at every logical-transaction boundary: on a
/// split, truncating the logs to the last clean checkpoint salvages the
/// committed-so-far logical transactions.
pub(crate) struct Checkpoint {
    pub(crate) reads: usize,
    locks: usize,
    undo: usize,
    allocs: usize,
    frees: usize,
    sp: u64,
    nur: NurseryCp,
}

/// One logical-transaction boundary of a merged batch: the checkpoint
/// taken when the boundary's nesting level was pushed, plus whether the
/// boundary starts a fresh closure *invocation* (splits may only rewind to
/// invocation starts — a closure body cannot be resumed mid-flight, so
/// internal `boundary()` segments of one invocation roll back together).
pub(crate) struct BatchMark {
    pub(crate) cp: Checkpoint,
    pub(crate) invocation_start: bool,
}

impl<'rt> WorkerCtx<'rt> {
    pub(crate) fn begin_top(&mut self) {
        debug_assert_eq!(self.depth, 0);
        debug_assert!(
            self.reads.is_empty()
                && self.locks.is_empty()
                && self.undo.is_empty()
                && self.allocs.is_empty()
                && self.frees.is_empty(),
            "stale transaction logs at begin"
        );
        // Contention-manager gate first: a serialization-token holder must
        // be able to drain workers parked here, including ones that would
        // otherwise sit in the durable quiesce gate below with their
        // active flag raised.
        self.cm_enter();
        if self.durable_on {
            // Join the checkpointer's quiesce protocol *before* sampling
            // the clock: the snapshot clock must bound every transaction
            // that could have effects outside the snapshot.
            self.rt.durable.as_ref().unwrap().enter_active();
        }
        self.rv = self.rt.clock.read();
        self.depth = 1;
        self.sp_marks.clear();
        let sp = self.stack.sp();
        self.sp_marks.push(sp);
        self.sp_outer = sp;
        self.sp_inner = sp;
        debug_assert_eq!(self.cap_len, 0, "stale capture cache at begin");
        debug_assert_eq!(self.nursery_live, 0, "stale nursery bytes at begin");
        debug_assert!(self.nursery_reclaim.is_empty(), "stale reclaims at begin");
        self.nursery_begin();
    }

    /// Validate the whole read set against the *current* record versions.
    /// A record we have since locked ourselves is consistent iff its
    /// pre-lock version equals the version we observed at read time.
    pub(crate) fn validate(&self) -> bool {
        for r in &self.reads {
            let cur = self.rt.orecs.at(r.idx).load(Ordering::Acquire);
            if cur == r.version {
                continue;
            }
            if is_locked(cur) && owner_of(cur) == self.tid() as u64 {
                let prev = self
                    .locks
                    .iter()
                    .find(|l| l.idx == r.idx)
                    .map(|l| l.prev)
                    .unwrap_or(u64::MAX);
                if prev == r.version {
                    continue;
                }
            }
            return false;
        }
        true
    }

    /// Position of the first read-set entry that no longer validates, or
    /// `None` when the whole read set is consistent. The watermark-aware
    /// batch commit uses the position to find the earliest logical
    /// transaction touched by a conflict: everything before it is a clean
    /// prefix that can be salvaged. Scan order is append order, which is
    /// execution order — so "first invalid entry" and "earliest dirty
    /// logical transaction" coincide.
    pub(crate) fn first_invalid_read(&self) -> Option<usize> {
        for (i, r) in self.reads.iter().enumerate() {
            let cur = self.rt.orecs.at(r.idx).load(Ordering::Acquire);
            if cur == r.version {
                continue;
            }
            if is_locked(cur) && owner_of(cur) == self.tid() as u64 {
                let prev = self
                    .locks
                    .iter()
                    .find(|l| l.idx == r.idx)
                    .map(|l| l.prev)
                    .unwrap_or(u64::MAX);
                if prev == r.version {
                    continue;
                }
            }
            return Some(i);
        }
        None
    }

    /// Timestamp extension: re-read the clock, validate, and adopt the new
    /// snapshot on success (TinySTM-style; keeps optimistic readers
    /// consistent without visible-reader locking).
    pub(crate) fn extend(&mut self) -> bool {
        self.chaos(crate::contention::ChaosPoint::Validation);
        let new_rv = self.rt.clock.read();
        if self.validate() {
            self.rv = new_rv;
            true
        } else {
            false
        }
    }

    /// Attempt to commit the top-level transaction. On validation failure
    /// the transaction is rolled back and `false` returned (caller retries).
    pub(crate) fn try_commit(&mut self) -> bool {
        debug_assert_eq!(self.depth, 1, "commit with open nested transaction");
        if self.locks.is_empty() {
            // Read-only (or fully-elided) transaction: incremental
            // validation already guaranteed a consistent snapshot at `rv`;
            // the commit is clock-silent.
            self.stats.commits_ro += 1;
            self.durable_prepare(None, 1);
            self.finish_commit();
            return true;
        }
        // All locks are held, so the GV4 ticket is safe to draw now (the
        // adoption soundness argument in clock.rs requires lock-then-sample
        // order).
        let ticket = self.rt.clock.writer_ticket(self.rv);
        if ticket.adopted {
            self.stats.clock_adopts += 1;
        }
        self.chaos(crate::contention::ChaosPoint::Validation);
        if ticket.need_validate && !self.validate() {
            self.stats.conflict_validation += 1;
            self.rollback_top();
            return false;
        }
        self.chaos(crate::contention::ChaosPoint::Commit);
        // Durable record *before* publication: with a strict flush batch
        // the record is on disk before any other transaction can observe
        // (and depend on) these writes, so the on-disk record set at any
        // crash instant is dependency-closed.
        self.durable_prepare(Some(ticket.wv), 1);
        // Publish: release every lock at the new version. Undo values are
        // already in place (in-place update STM).
        for l in &self.locks {
            self.rt.orecs.at(l.idx).store(ticket.wv, Ordering::Release);
        }
        self.locks.clear();
        self.finish_commit();
        true
    }

    pub(crate) fn finish_commit(&mut self) {
        // Deferred frees execute now that the transaction is durable.
        let n_frees = self.frees.len();
        for i in 0..n_frees {
            let addr = self.frees[i];
            self.rt.heap.free(&mut self.talloc, addr);
        }
        self.frees.clear();
        self.stats.tx_frees += n_frees as u64;
        // Publish the nursery as ordinary heap memory: trim the unused
        // region tail back to the shards, flush deferred hole reclaims.
        if self.nursery_on {
            self.nursery_commit();
        }
        // Allocations survive; the allocation log empties at transaction
        // end (paper §3.1.3: "allocation log gets emptied on every
        // transaction end").
        self.allocs.clear();
        (self.table.reset)(&mut self.logs);
        self.clear_capture_cache();
        if let Some(t) = self.classify_log.as_mut() {
            t.reset();
        }
        self.reads.clear();
        self.undo.clear();
        self.depth = 0;
        self.sp_marks.clear();
        self.stats.commits += 1;
        let delta = std::mem::take(&mut self.pending);
        self.stats.absorb(&delta);
        if self.durable_on {
            self.durable_flush(false);
            self.rt.durable.as_ref().unwrap().exit_active();
        }
        self.cm_exit();
    }

    /// Version at which an abort releases the locks it holds: a regular
    /// commit-clock ticket, drawn once per rollback that actually holds
    /// locks. Monotonicity gives `wv > prev` for every lock in the set
    /// whether the CAS wins or adopts, which is what kills the
    /// lock/rollback version ABA; semantically the release just republishes
    /// the restored (last-committed) values at a later timestamp, so
    /// concurrent readers conservatively re-read or abort instead of
    /// trusting a sandwich that spanned our dirty window.
    fn abort_release_wv(&self) -> u64 {
        self.rt.clock.writer_ticket(self.rv).wv
    }

    /// Roll back the whole transaction: restore undo values (newest first),
    /// release locks at a fresh version (see [`WorkerCtx::abort_release_wv`]),
    /// undo allocations, cancel deferred frees, reset the stack pointer.
    pub(crate) fn rollback_top(&mut self) {
        debug_assert!(self.depth >= 1);
        while let Some(u) = self.undo.pop() {
            self.mem.store(u.addr, u.old);
        }
        // Release at a *fresh* version, not `prev`: restoring the pre-lock
        // version would let a concurrent versioned-read sandwich (v1 ==
        // v2) span this lock/dirty-write/rollback episode and accept the
        // transient in-place value as if it were the committed one — an
        // ABA the read validation can never detect, because the restored
        // version lies about the word having been (briefly) dirty. A
        // ticket is strictly greater than every pre-lock version in the
        // set (adoption included), so such sandwiches and validations
        // fail instead; the value they then re-read is the restored
        // (committed) one. See `abort_release_wv`.
        if !self.locks.is_empty() {
            let wv = self.abort_release_wv();
            for l in self.locks.drain(..) {
                self.rt.orecs.at(l.idx).store(wv, Ordering::Release);
            }
        }
        self.reads.clear();
        // Undo allocations: blocks this transaction allocated vanish.
        // Classic-path blocks are freed individually; nursery-resident
        // blocks (scalar or demoted) are reclaimed wholesale with their
        // regions below — O(1) per region, not per block.
        let allocs = std::mem::take(&mut self.allocs);
        for rec in &allocs {
            if !rec.freed && rec.home == AllocHome::Heap {
                self.rt.heap.free(&mut self.talloc, rec.addr);
            }
        }
        self.allocs = allocs;
        self.allocs.clear();
        if self.nursery_on {
            self.nursery_abort();
        }
        (self.table.reset)(&mut self.logs);
        self.clear_capture_cache();
        if let Some(t) = self.classify_log.as_mut() {
            t.reset();
        }
        self.frees.clear(); // deferred frees are cancelled
        self.stack.reset_to(self.sp_marks[0]);
        self.sp_marks.clear();
        self.depth = 0;
        self.stats.aborts += 1;
        let delta = std::mem::take(&mut self.pending);
        self.stats.absorb(&delta);
        if self.durable_on {
            // Aborts wrote nothing to the redo buffer (records are encoded
            // only on the commit path), so only the quiesce gate unwinds.
            self.rt.durable.as_ref().unwrap().exit_active();
        }
        self.cm_exit();
    }

    /// Snapshot the current log positions (the state a partial rollback
    /// restores). Taken at nested-transaction begin and at every logical
    /// boundary of a merged batch.
    pub(crate) fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            reads: self.reads.len(),
            locks: self.locks.len(),
            undo: self.undo.len(),
            allocs: self.allocs.len(),
            frees: self.frees.len(),
            sp: self.stack.sp(),
            nur: self.nursery_checkpoint(),
        }
    }

    /// Open a new nesting level at `cp` (depth, sp mark, nursery
    /// watermark, capture cache): the shared entry sequence of
    /// [`WorkerCtx::nested`] and a batch's logical boundary.
    pub(crate) fn push_level(&mut self, cp: &Checkpoint) {
        self.depth += 1;
        self.sp_marks.push(cp.sp);
        self.sp_inner = cp.sp;
        // Snapshot the bump pointer as the level's nursery watermark (the
        // heap analogue of the sp mark pushed above).
        self.nursery_push_level();
        // The cached block (if any) was captured at a shallower level; for
        // the new level it is ancestor-captured and must take the undo
        // path.
        self.clear_capture_cache();
    }

    /// Closed-nested child transaction with partial abort (paper §2.2.1).
    pub(crate) fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Tx<'_, 'rt>) -> TxResult<T>,
    ) -> TxResult<Result<T, u64>> {
        debug_assert!(self.depth >= 1, "nested() outside a transaction");
        let cp = self.checkpoint();
        self.push_level(&cp);
        let result = {
            let mut tx = Tx(self);
            f(&mut tx)
        };
        match result {
            Ok(v) => {
                // Child commits into the parent: its allocations now belong
                // to the parent level. Demote their capture level so a later
                // sibling at the same depth undo-logs writes to them.
                // Scalar-resident nursery blocks demote for free: popping
                // the child's watermark below re-levels everything above it.
                let parent = self.depth - 1;
                for i in cp.allocs..self.allocs.len() {
                    let rec = &mut self.allocs[i];
                    if rec.level > parent && !rec.freed {
                        if rec.home != AllocHome::NurseryScalar {
                            (self.table.on_free)(&mut self.logs, rec.addr.raw(), rec.usable);
                            (self.table.on_alloc)(
                                &mut self.logs,
                                rec.addr.raw(),
                                rec.usable,
                                parent,
                            );
                        }
                        rec.level = parent;
                    }
                }
                // Demotion may have changed the level of the cached block;
                // a stale level would misclassify a later sibling's write
                // as current-level (skipping its undo entry).
                self.clear_capture_cache();
                self.depth -= 1;
                self.sp_marks.pop();
                self.sp_inner = *self.sp_marks.last().expect("outermost mark");
                self.nursery_pop_level();
                Ok(Ok(v))
            }
            Err(crate::worker::Abort::User(code)) => {
                self.partial_rollback(cp);
                self.stats.partial_aborts += 1;
                Ok(Err(code))
            }
            Err(e) => {
                // Conflicts abort the whole transaction; the top-level
                // retry loop handles rollback.
                self.depth -= 1;
                self.sp_marks.pop();
                self.sp_inner = *self.sp_marks.last().expect("outermost mark");
                self.nursery_pop_level();
                Err(e)
            }
        }
    }

    /// Encode this physical commit's redo record into the worker's durable
    /// buffer (no-op on non-durable runtimes). Must run *while the write
    /// locks are still held*, before publication: in an in-place-update STM
    /// current memory *is* the committed value, and the locks keep every
    /// logged word race-free.
    ///
    /// `wv` is the commit version drawn by the caller (`None` for a
    /// lock-free commit, which only needs a ticket if it logs content
    /// ranges); `logical` is how many logical transactions this physical
    /// commit carries (1, or a merged batch's count).
    ///
    /// What gets logged (DESIGN.md §11):
    /// * **puts** — undo-log entries *outside* every in-transaction
    ///   allocation: the genuinely shared writes. Values are read back
    ///   from memory, deduplicated per address.
    /// * **content ranges** — one coalesced range per *surviving*
    ///   allocation, header word included, covering every write the
    ///   capture machinery elided into it.
    /// * **nothing** for stack/nursery-dead/freed memory — that is the
    ///   paper's capture dividend extended to durability, accounted in
    ///   `TxStats::durable_skipped`.
    ///
    /// Transactions with an empty payload (pure reads) write no record;
    /// their logical count is folded into the *next* record's cumulative
    /// `logical_total`, which stays exact because stateless transactions
    /// are unobservable in recovered memory.
    pub(crate) fn durable_prepare(&mut self, wv: Option<u64>, logical: u64) {
        if !self.durable_on {
            return;
        }
        let ds = self.rt.durable.as_ref().unwrap();
        let total = ds.add_logical(self.tid(), logical);
        // Committed write events the capture machinery kept out of the log.
        let w = &self.pending.writes;
        self.stats.durable_skipped += w.elided_stack
            + w.elided_heap
            + w.elided_nursery
            + w.elided_static
            + w.elided_static_interproc
            + w.elided_annotation
            + w.parent_captured;
        // Surviving allocations → coalesced content ranges. The header
        // word rides along so recovery restores allocator metadata too.
        // (`dur_ranges`/`dur_puts` are worker-owned scratch: this runs on
        // every durable commit, so it must not allocate.)
        let mut ranges = std::mem::take(&mut self.dur_ranges);
        ranges.clear();
        for rec in &self.allocs {
            if !rec.freed {
                let start = rec.addr.raw() - HEADER_BYTES;
                // The header word holds the block's total byte count
                // (header included) — exactly the span to log.
                let total_bytes = self.mem.load_private(Addr(start));
                ranges.push((start, total_bytes / WORD_BYTES));
            }
        }
        // Shared puts: undo entries not inside *any* in-transaction
        // allocation (live ones are covered by their range; dead ones are
        // not recoverable state). Sorted + deduplicated so re-written
        // words are logged once.
        let mut puts = std::mem::take(&mut self.dur_puts);
        puts.clear();
        puts.extend(self.undo.iter().map(|u| u.addr.raw()).filter(|&a| {
            !self
                .allocs
                .iter()
                .any(|r| a >= r.addr.raw() && a < r.addr.raw() + r.usable)
        }));
        puts.sort_unstable();
        puts.dedup();
        if puts.is_empty() && ranges.is_empty() {
            self.dur_ranges = ranges;
            self.dur_puts = puts;
            return;
        }
        let wv = match wv {
            Some(v) => v,
            None => {
                // Lock-free commit with surviving allocations: draw a real
                // ticket so the record orders strictly after any earlier
                // writer (or freer) of recycled space. Pure-put records
                // can't reach here — an undo entry outside the allocation
                // set implies a lock.
                debug_assert!(!ranges.is_empty());
                let t = self.rt.clock.writer_ticket(self.rv);
                if t.adopted {
                    self.stats.clock_adopts += 1;
                }
                t.wv
            }
        };
        let seq = ds.next_seq(self.tid());
        let mut enc = RecordEncoder::new(seq, wv, self.rt.heap.frontier(), total);
        let mut words = 0u64;
        for &a in &puts {
            enc.put(a, self.mem.load_private(Addr(a)));
            words += 1;
        }
        for &(start, n) in &ranges {
            enc.begin_range(start, n as u32);
            for i in 0..n {
                enc.word(self.mem.load_private(Addr(start + i * WORD_BYTES)));
            }
            words += n;
        }
        enc.finish(&mut self.dur_buf);
        self.dur_ranges = ranges;
        self.dur_puts = puts;
        self.dur_records += 1;
        self.stats.durable_words += words;
        if self.cfg.durable_flush_batch == 1 {
            // Strict mode: on disk before the caller publishes the locks.
            self.durable_flush(true);
        }
    }

    /// Append the buffered redo records to this worker's log. `force`
    /// flushes unconditionally (strict-ordering commits, worker drop);
    /// otherwise the buffer flushes once it holds a full group-commit
    /// batch (`TxConfig::durable_flush_batch`).
    pub(crate) fn durable_flush(&mut self, force: bool) {
        if !self.durable_on || self.dur_records == 0 {
            return;
        }
        if !force && self.dur_records < self.cfg.durable_flush_batch {
            return;
        }
        let ds = self.rt.durable.as_ref().unwrap();
        ds.disk.append(&self.dur_log_name, &self.dur_buf);
        self.dur_buf.clear();
        self.dur_records = 0;
        self.stats.durable_flushes += 1;
    }

    pub(crate) fn partial_rollback(&mut self, cp: Checkpoint) {
        while self.undo.len() > cp.undo {
            let u = self.undo.pop().unwrap();
            self.mem.store(u.addr, u.old);
        }
        // Fresh release version for the same anti-ABA reason as
        // `rollback_top` (see the comment there); one ticket covers every
        // lock this child acquired. Unlike a full rollback, the *parent*
        // transaction survives — and its read set may hold entries for
        // these very orecs, recorded at the pre-lock version. Those reads
        // are still semantically valid (we held the lock across the whole
        // child episode, so no other writer intervened and the restored
        // value is exactly the one they observed), but version-equality
        // validation would reject them forever once the orec jumps to the
        // fresh ticket — a deterministic self-livelock on retry (the
        // liveness oracle's nested-abort shape found this). Re-stamp the
        // surviving entries whose recorded version matches the released
        // lock's `prev` so they expect the republished version instead.
        self.reads.truncate(cp.reads);
        if self.locks.len() > cp.locks {
            let wv = self.abort_release_wv();
            let released: Vec<(u32, u64)> = self.locks[cp.locks..]
                .iter()
                .map(|l| (l.idx, l.prev))
                .collect();
            self.locks.truncate(cp.locks);
            for (idx, _) in &released {
                self.rt.orecs.at(*idx).store(wv, Ordering::Release);
            }
            for r in &mut self.reads {
                if released.contains(&(r.idx, r.version)) {
                    r.version = wv;
                }
            }
        }
        while self.allocs.len() > cp.allocs {
            let rec = self.allocs.pop().unwrap();
            if let Some(t) = self.classify_log.as_mut() {
                t.on_free(rec.addr.raw(), rec.usable);
            }
            match rec.home {
                AllocHome::Heap => {
                    (self.table.on_free)(&mut self.logs, rec.addr.raw(), rec.usable);
                    if !rec.freed {
                        self.rt.heap.free(&mut self.talloc, rec.addr);
                    }
                }
                AllocHome::NurseryScalar => {
                    // Classified by the scalar range only; its space comes
                    // back with the bump rewind / region recycle below.
                    if !rec.freed {
                        self.rt.heap.forget_live_bytes(rec.usable);
                        self.nursery_live -= rec.usable;
                    }
                }
                AllocHome::NurseryLogged => {
                    (self.table.on_free)(&mut self.logs, rec.addr.raw(), rec.usable);
                    if !rec.freed {
                        self.rt.heap.forget_live_bytes(rec.usable);
                        self.nursery_live -= rec.usable;
                        // Dead memory inside a region that survives this
                        // partial abort: defer to commit like a hole (if
                        // its region is being recycled below, the entry is
                        // filtered out with it).
                        self.nursery_reclaim.push(rec.addr);
                    }
                }
            }
        }
        self.frees.truncate(cp.frees);
        self.nursery_partial_abort(cp.nur);
        self.clear_capture_cache(); // rolled-back blocks left the captured set
        self.stack.reset_to(cp.sp);
        self.sp_marks.pop();
        self.sp_inner = *self.sp_marks.last().expect("outermost mark");
        self.depth -= 1;
    }
}
