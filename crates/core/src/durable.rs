//! Durable redo-log commit mode (`TxConfig::durable`).
//!
//! Every physical commit appends one framed record — the transaction's
//! *shared* write set plus the coalesced final contents of its surviving
//! allocations — to a per-worker append-only log on a simulated disk
//! ([`SimDisk`]). Captured writes (stack, in-transaction heap blocks,
//! nursery) are never logged per word: the paper's capture argument says
//! they are invisible to other transactions until commit, so the only
//! durable fact about them is the block's final contents, which one
//! coalesced range per surviving block records. Stack scratch dies with
//! the transaction and is not logged at all.
//!
//! The module also carries the other three quarters of the durability
//! story: a quiescent checkpointer that compacts logs into a heap
//! snapshot ([`StmRuntime::checkpoint_now`](crate::StmRuntime::checkpoint_now)),
//! a crash-recovery path ([`recover`]) that replays snapshot + logs into
//! a fresh runtime, and the fault-injection seam ([`FaultPlan`]) the
//! kill-and-recover oracle (`tests/crash_oracle.rs`) drives.
//!
//! ## Log format
//!
//! Every on-disk object is a *frame*: `[len: u32 LE][crc32: u32 LE]`
//! followed by `len` payload bytes, with the CRC taken over the payload.
//! A log file is a sequence of frames; a record payload is
//!
//! ```text
//! seq u64 | wv u64 | frontier u64 | logical_total u64
//! n_puts u32 | n_ranges u32
//! (addr u64, val u64) * n_puts
//! (start u64, words u32, content u64 * words) * n_ranges
//! ```
//!
//! `seq` numbers are per-log and contiguous; recovery treats a CRC
//! mismatch, a truncated frame, or a sequence gap as the torn tail of the
//! log and drops everything from that point on — never anything before it.
//!
//! ## Ordering invariant
//!
//! A record's `wv` is its commit timestamp (the GV4 ticket). With the
//! default `durable_flush_batch = 1` the append happens *before* the
//! commit publishes its orec locks, so any transaction that observed the
//! writes flushes strictly after them (the disk serializes appends) —
//! the set of records on disk at a crash is dependency-closed, and replay
//! sorted by `wv` reconstructs exactly the committed prefix. Equal `wv`s
//! come only from GV4 adoption, whose write sets are disjoint by
//! construction, so their mutual order is irrelevant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use txmem::{Addr, MemConfig};

use crate::config::TxConfig;
use crate::runtime::StmRuntime;

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Name of worker `tid`'s redo-log file on the [`SimDisk`] (exposed so the
/// torn-tail tests can mutilate the right file).
pub fn log_file_name(tid: usize) -> String {
    format!("log-{tid}")
}

fn snap_file_name(generation: u64) -> String {
    format!("snap-{generation}")
}

const MANIFEST: &str = "MANIFEST";

/// Where in the durability pipeline a scheduled simulated crash
/// ([`FaultPlan`]) fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPhase {
    /// Die immediately before a log append: the record(s) being flushed
    /// are lost entirely.
    PreFlush,
    /// Die in the middle of a log append: only a prefix of the appended
    /// bytes lands (a torn tail for recovery to detect and drop).
    TornFlush,
    /// Die immediately after a log append: the record is durable but
    /// nothing later is.
    PostFlush,
    /// Die inside a checkpoint, after the new snapshot file is written but
    /// before the manifest points at it. The old snapshot plus the full
    /// logs must still recover.
    MidSnapshot,
    /// Die inside a checkpoint, after the manifest is updated but before
    /// the logs are truncated. The now-stale log records (all `wv ≤`
    /// snapshot clock) must be skipped by recovery, not re-applied.
    PreTruncate,
}

/// A scheduled simulated kill for fault-injection tests: die at the
/// `at`-th occurrence (0-based) of `phase`. Flush phases count log
/// appends; checkpoint phases count checkpoints. After the kill every
/// disk mutation silently becomes a no-op ([`SimDisk::is_killed`] lets
/// the workload harness notice and stop).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// The durability phase the kill targets.
    pub phase: FaultPhase,
    /// Which occurrence of the phase dies (0-based).
    pub at: u64,
    /// For [`FaultPhase::TornFlush`]: how many bytes of the torn append
    /// land before the kill (clamped to the append's length).
    pub torn_keep: u32,
}

/// Append without the per-call key allocation `HashMap::entry` would
/// force — this runs under the disk lock on every flushed commit.
fn append_to(files: &mut HashMap<String, Vec<u8>>, name: &str, bytes: &[u8]) {
    match files.get_mut(name) {
        Some(f) => f.extend_from_slice(bytes),
        None => {
            files.insert(name.to_string(), bytes.to_vec());
        }
    }
}

/// The simulated persistent medium behind a durable runtime: a map of
/// named append-only files, shared by workers, checkpointer, and — after
/// a simulated kill — the recovery path. All mutations are serialized;
/// a kill ([`FaultPlan`]) atomically turns every later mutation into a
/// no-op, which models a machine that stops mid-pipeline without
/// unwinding anything.
pub struct SimDisk {
    files: Mutex<HashMap<String, Vec<u8>>>,
    dead: AtomicBool,
    plan: Mutex<Option<FaultPlan>>,
    appends: AtomicU64,
}

impl SimDisk {
    /// A fresh, empty, live disk.
    pub fn new() -> Arc<SimDisk> {
        Arc::new(SimDisk {
            files: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            plan: Mutex::new(None),
            appends: AtomicU64::new(0),
        })
    }

    /// Arm a one-shot fault plan. Replaces any previously armed plan.
    pub fn arm(&self, plan: FaultPlan) {
        *self.plan.lock().unwrap() = Some(plan);
    }

    /// Has a fault plan fired? The workload harness polls this to stop
    /// issuing transactions after the simulated machine died.
    pub fn is_killed(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Bring the disk back to life (recovery does this): mutations work
    /// again, and any armed plan is cleared.
    pub fn revive(&self) {
        *self.plan.lock().unwrap() = None;
        self.dead.store(false, Ordering::Release);
    }

    fn kill(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Append `bytes` to `name`, honoring an armed flush-phase fault plan.
    /// Returns false if the disk was (or just became) dead and the bytes
    /// did not fully land.
    pub(crate) fn append(&self, name: &str, bytes: &[u8]) -> bool {
        let mut files = self.files.lock().unwrap();
        if self.is_killed() {
            return false;
        }
        let idx = self.appends.fetch_add(1, Ordering::AcqRel);
        let fired = {
            let plan = self.plan.lock().unwrap();
            match *plan {
                Some(p)
                    if p.at == idx
                        && matches!(
                            p.phase,
                            FaultPhase::PreFlush | FaultPhase::TornFlush | FaultPhase::PostFlush
                        ) =>
                {
                    Some(p)
                }
                _ => None,
            }
        };
        match fired {
            Some(p) if p.phase == FaultPhase::PreFlush => {
                self.kill();
                false
            }
            Some(p) if p.phase == FaultPhase::TornFlush => {
                let keep = (p.torn_keep as usize).min(bytes.len());
                append_to(&mut files, name, &bytes[..keep]);
                self.kill();
                false
            }
            fired => {
                append_to(&mut files, name, bytes);
                if fired.is_some() {
                    // PostFlush: the record landed, then the machine died.
                    self.kill();
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Atomically replace `name`'s contents (shadow-paging model: whole
    /// files are written out of place and swapped in one step).
    pub(crate) fn write_file(&self, name: &str, bytes: &[u8]) {
        let mut files = self.files.lock().unwrap();
        if self.is_killed() {
            return;
        }
        files.insert(name.to_string(), bytes.to_vec());
    }

    pub(crate) fn read_file(&self, name: &str) -> Option<Vec<u8>> {
        self.files.lock().unwrap().get(name).cloned()
    }

    pub(crate) fn remove(&self, name: &str) {
        let mut files = self.files.lock().unwrap();
        if self.is_killed() {
            return;
        }
        files.remove(name);
    }

    /// Fire a checkpoint-phase fault if the armed plan targets occurrence
    /// `idx` of `phase`.
    pub(crate) fn checkpoint_fault(&self, phase: FaultPhase, idx: u64) {
        let fired = matches!(*self.plan.lock().unwrap(),
            Some(p) if p.phase == phase && p.at == idx);
        if fired {
            self.kill();
        }
    }

    /// Current length of `name` in bytes (0 if absent). Test seam for the
    /// torn-tail sweep.
    pub fn file_len(&self, name: &str) -> usize {
        self.files.lock().unwrap().get(name).map_or(0, Vec::len)
    }

    /// Truncate `name` to `len` bytes, ignoring the dead flag — this is
    /// the *test harness* mutilating the medium to model a torn write,
    /// not the runtime writing through it. Recovery also uses it to chop
    /// a detected torn tail so later appends stay parseable.
    pub fn truncate_file(&self, name: &str, len: usize) {
        if let Some(f) = self.files.lock().unwrap().get_mut(name) {
            f.truncate(len);
        }
    }

    /// Flip one byte of `name` (test seam: models media corruption of the
    /// final record for the torn-tail sweep).
    pub fn corrupt_byte(&self, name: &str, offset: usize) {
        if let Some(f) = self.files.lock().unwrap().get_mut(name) {
            if let Some(b) = f.get_mut(offset) {
                *b ^= 0xA5;
            }
        }
    }

    /// Total bytes across all redo-log files (the background
    /// checkpointer's compaction trigger).
    pub fn log_bytes(&self) -> u64 {
        let files = self.files.lock().unwrap();
        files
            .iter()
            .filter(|(k, _)| k.starts_with("log-"))
            .map(|(_, v)| v.len() as u64)
            .sum()
    }

    /// Number of appends performed so far (flush-phase fault plans index
    /// into this sequence).
    pub fn append_count(&self) -> u64 {
        self.appends.load(Ordering::Acquire)
    }
}

/// Shared durable-mode state hanging off a runtime: the disk, the
/// checkpoint quiesce gate, and per-tid counters that must survive worker
/// respawns (log sequence numbers, cumulative logical commits).
pub(crate) struct DurableState {
    pub(crate) disk: Arc<SimDisk>,
    /// Checkpointer wants the world stopped.
    ckpt_pending: AtomicBool,
    /// Top-level transactions currently running (between `begin_top` and
    /// the physical commit/rollback).
    active: AtomicU64,
    /// Per-tid next record sequence number.
    seqs: Box<[AtomicU64]>,
    /// Per-tid cumulative logical commits recorded durably.
    logicals: Box<[AtomicU64]>,
    /// Checkpoints performed (checkpoint-phase fault plans index this).
    ckpts: AtomicU64,
}

impl DurableState {
    pub(crate) fn new(disk: Arc<SimDisk>, max_threads: usize) -> DurableState {
        DurableState {
            disk,
            ckpt_pending: AtomicBool::new(false),
            active: AtomicU64::new(0),
            seqs: (0..max_threads).map(|_| AtomicU64::new(0)).collect(),
            logicals: (0..max_threads).map(|_| AtomicU64::new(0)).collect(),
            ckpts: AtomicU64::new(0),
        }
    }

    /// Enter the active set (top-level transaction begin). Blocks while a
    /// checkpoint is quiescing — the checkpointer needs a moment with no
    /// transaction in flight, because an in-place-update STM's heap is
    /// only consistent between transactions.
    pub(crate) fn enter_active(&self) {
        loop {
            while self.ckpt_pending.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            self.active.fetch_add(1, Ordering::AcqRel);
            if !self.ckpt_pending.load(Ordering::Acquire) {
                return;
            }
            // A checkpoint slipped in between the check and the
            // increment; back out and wait it out.
            self.active.fetch_sub(1, Ordering::AcqRel);
        }
    }

    pub(crate) fn exit_active(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn next_seq(&self, tid: usize) -> u64 {
        self.seqs[tid].fetch_add(1, Ordering::AcqRel)
    }

    /// Advance tid's cumulative logical-commit counter by `n`, returning
    /// the new total (stamped into the record being prepared).
    pub(crate) fn add_logical(&self, tid: usize, n: u64) -> u64 {
        self.logicals[tid].fetch_add(n, Ordering::AcqRel) + n
    }
}

// ---------------------------------------------------------------------------
// Frame / record codec
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Wrap a payload in the `[len][crc][payload]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Bounds-checked little-endian reader; any overrun means a torn frame.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, off: 0 }
    }

    fn u32(&mut self) -> Result<u32, ()> {
        let end = self.off.checked_add(4).ok_or(())?;
        let b = self.bytes.get(self.off..end).ok_or(())?;
        self.off = end;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ()> {
        let end = self.off.checked_add(8).ok_or(())?;
        let b = self.bytes.get(self.off..end).ok_or(())?;
        self.off = end;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Fixed offsets of the record-payload header fields.
const REC_NPUTS_OFF: usize = 32;
const REC_NRANGES_OFF: usize = 36;
const REC_BODY_OFF: usize = 40;

/// Incremental builder for one record payload; the commit path fills it
/// while still holding its locks, then [`RecordEncoder::finish`] frames
/// it into the worker's flush buffer.
pub(crate) struct RecordEncoder {
    payload: Vec<u8>,
    n_puts: u32,
    n_ranges: u32,
}

impl RecordEncoder {
    pub(crate) fn new(seq: u64, wv: u64, frontier: u64, logical_total: u64) -> RecordEncoder {
        let mut payload = Vec::with_capacity(REC_BODY_OFF + 64);
        put_u64(&mut payload, seq);
        put_u64(&mut payload, wv);
        put_u64(&mut payload, frontier);
        put_u64(&mut payload, logical_total);
        put_u32(&mut payload, 0); // n_puts, patched in finish()
        put_u32(&mut payload, 0); // n_ranges
        RecordEncoder {
            payload,
            n_puts: 0,
            n_ranges: 0,
        }
    }

    /// One shared-write address and its committed value. Must precede all
    /// ranges (the decoder reads puts first).
    pub(crate) fn put(&mut self, addr: u64, val: u64) {
        debug_assert_eq!(self.n_ranges, 0, "puts must precede ranges");
        put_u64(&mut self.payload, addr);
        put_u64(&mut self.payload, val);
        self.n_puts += 1;
    }

    /// Open a coalesced content range of `words` words starting at
    /// `start`; follow with exactly `words` [`RecordEncoder::word`] calls.
    pub(crate) fn begin_range(&mut self, start: u64, words: u32) {
        put_u64(&mut self.payload, start);
        put_u32(&mut self.payload, words);
        self.n_ranges += 1;
    }

    pub(crate) fn word(&mut self, w: u64) {
        put_u64(&mut self.payload, w);
    }

    /// Patch the counts, frame the payload, and append it to `out`
    /// (framed in place — this sits on the commit path, so it must not
    /// allocate an intermediate buffer per record).
    pub(crate) fn finish(mut self, out: &mut Vec<u8>) {
        self.payload[REC_NPUTS_OFF..REC_NPUTS_OFF + 4].copy_from_slice(&self.n_puts.to_le_bytes());
        self.payload[REC_NRANGES_OFF..REC_NRANGES_OFF + 4]
            .copy_from_slice(&self.n_ranges.to_le_bytes());
        out.reserve(self.payload.len() + 8);
        put_u32(out, self.payload.len() as u32);
        put_u32(out, crc32(&self.payload));
        out.extend_from_slice(&self.payload);
    }
}

/// One decoded redo record.
struct Record {
    seq: u64,
    wv: u64,
    frontier: u64,
    logical_total: u64,
    puts: Vec<(u64, u64)>,
    ranges: Vec<(u64, Vec<u64>)>,
}

fn decode_record(payload: &[u8]) -> Result<Record, ()> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let wv = r.u64()?;
    let frontier = r.u64()?;
    let logical_total = r.u64()?;
    let n_puts = r.u32()?;
    let n_ranges = r.u32()?;
    let mut puts = Vec::with_capacity(n_puts as usize);
    for _ in 0..n_puts {
        puts.push((r.u64()?, r.u64()?));
    }
    let mut ranges = Vec::with_capacity(n_ranges as usize);
    for _ in 0..n_ranges {
        let start = r.u64()?;
        let words = r.u32()?;
        let mut content = Vec::with_capacity(words as usize);
        for _ in 0..words {
            content.push(r.u64()?);
        }
        ranges.push((start, content));
    }
    if r.off != payload.len() {
        return Err(()); // trailing garbage inside a framed payload
    }
    Ok(Record {
        seq,
        wv,
        frontier,
        logical_total,
        puts,
        ranges,
    })
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

struct Manifest {
    generation: u64,
    clock: u64,
    frontier: u64,
    logicals: Vec<u64>,
}

fn read_manifest(disk: &SimDisk) -> Option<Manifest> {
    let bytes = disk.read_file(MANIFEST)?;
    let payload = unframe(&bytes).expect("manifest failed frame validation");
    let mut r = Reader::new(payload);
    let generation = r.u64().unwrap();
    let clock = r.u64().unwrap();
    let frontier = r.u64().unwrap();
    let n = r.u32().unwrap();
    let logicals = (0..n).map(|_| r.u64().unwrap()).collect();
    Some(Manifest {
        generation,
        clock,
        frontier,
        logicals,
    })
}

/// Validate a single whole-file frame and return its payload.
fn unframe(bytes: &[u8]) -> Result<&[u8], ()> {
    let mut r = Reader::new(bytes);
    let len = r.u32()? as usize;
    let crc = r.u32()?;
    let payload = bytes.get(8..8 + len).ok_or(())?;
    if bytes.len() != 8 + len || crc32(payload) != crc {
        return Err(());
    }
    Ok(payload)
}

/// Quiesce the runtime and compact the logs into a fresh heap snapshot.
///
/// Protocol (each step is atomic on the simulated disk, and the two fault
/// points between them are exactly the [`FaultPhase::MidSnapshot`] /
/// [`FaultPhase::PreTruncate`] seams):
///
/// 1. stop new top-level transactions and wait for in-flight ones;
/// 2. write the whole live heap `[heap_start, frontier)` plus the clock
///    to a *new* snapshot file `snap-(g+1)` (shadow paging: the old
///    snapshot is untouched);
/// 3. atomically point the manifest at the new generation;
/// 4. truncate the per-worker logs and delete the old snapshot.
///
/// A crash before step 3 recovers from the old snapshot + full logs; a
/// crash after it recovers from the new snapshot, skipping any not-yet
/// truncated records as stale (`wv ≤` snapshot clock). Workers may hold
/// *buffered* unflushed records during the quiesce (group commit); their
/// effects are in the snapshot, and their eventual flush is skipped by
/// the same staleness rule.
pub(crate) fn checkpoint(rt: &StmRuntime) {
    let ds = rt
        .durable
        .as_ref()
        .expect("checkpoint requires a durable runtime");
    let disk = &ds.disk;
    if disk.is_killed() {
        return;
    }
    ds.ckpt_pending.store(true, Ordering::Release);
    while ds.active.load(Ordering::Acquire) != 0 {
        std::thread::yield_now();
    }
    let idx = ds.ckpts.fetch_add(1, Ordering::AcqRel);
    let layout = *rt.mem.layout();
    let clock = rt.clock.read();
    let frontier = rt.heap.frontier();
    let words = rt
        .mem
        .snapshot_range(Addr(layout.heap_start), frontier - layout.heap_start);
    let mut payload = Vec::with_capacity(24 + words.len() * 8);
    put_u64(&mut payload, clock);
    put_u64(&mut payload, frontier);
    put_u64(&mut payload, words.len() as u64);
    for w in &words {
        put_u64(&mut payload, *w);
    }
    let generation = read_manifest(disk).map_or(0, |m| m.generation + 1);
    disk.write_file(&snap_file_name(generation), &frame(&payload));
    disk.checkpoint_fault(FaultPhase::MidSnapshot, idx);

    let mut mp = Vec::new();
    put_u64(&mut mp, generation);
    put_u64(&mut mp, clock);
    put_u64(&mut mp, frontier);
    put_u32(&mut mp, ds.logicals.len() as u32);
    for l in ds.logicals.iter() {
        put_u64(&mut mp, l.load(Ordering::Acquire));
    }
    disk.write_file(MANIFEST, &frame(&mp));
    disk.checkpoint_fault(FaultPhase::PreTruncate, idx);

    for tid in 0..layout.max_threads {
        disk.write_file(&log_file_name(tid), &[]);
    }
    if generation > 0 {
        disk.remove(&snap_file_name(generation - 1));
    }
    ds.ckpt_pending.store(false, Ordering::Release);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What [`recover`] found on the disk and rebuilt.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Clock value of the snapshot the recovery started from (0 = none).
    pub snapshot_clock: u64,
    /// Total logical transactions whose effects are in the recovered
    /// heap, summed over workers.
    pub logical_committed: u64,
    /// Log records replayed onto the snapshot.
    pub records_applied: u64,
    /// Valid records skipped because the snapshot already contained them
    /// (`wv ≤` snapshot clock; the pre-truncate crash window).
    pub stale_skipped: u64,
    /// Log files that ended in a torn tail (CRC mismatch, truncated
    /// frame, or sequence gap); the tail was dropped and chopped.
    pub torn_tails: u64,
    /// Restored heap bump frontier.
    pub frontier: u64,
}

/// Rebuild a durable runtime from what survived on `disk`: load the
/// manifest's snapshot (if any), replay every valid log record with
/// `wv >` snapshot clock in `wv` order, restore the heap frontier and the
/// commit clock, and resume the per-worker log sequence numbers so the
/// recovered runtime keeps appending to the same logs.
///
/// `mem_cfg` and `config` must match the crashed runtime's — the log
/// records address the simulated memory by absolute word address.
///
/// Recovered free-list state is intentionally *not* reconstructed:
/// blocks that sat on a free list at the crash leak (the frontier is
/// restored past them), which costs space but never correctness.
pub fn recover(
    mem_cfg: MemConfig,
    config: TxConfig,
    disk: Arc<SimDisk>,
) -> (StmRuntime, RecoveryReport) {
    disk.revive();
    let rt = StmRuntime::new_durable(mem_cfg, config, disk.clone());
    let layout = *rt.mem.layout();
    let ds = rt.durable.as_ref().unwrap();
    let mut report = RecoveryReport::default();
    let mut frontier = layout.heap_start;
    let mut logicals = vec![0u64; layout.max_threads];

    if let Some(m) = read_manifest(&disk) {
        let snap = disk
            .read_file(&snap_file_name(m.generation))
            .expect("manifest points at a missing snapshot");
        let payload = unframe(&snap).expect("snapshot failed frame validation");
        let mut r = Reader::new(payload);
        let clock = r.u64().unwrap();
        let snap_frontier = r.u64().unwrap();
        let n = r.u64().unwrap() as usize;
        let mut words = vec![0u64; n];
        for w in words.iter_mut() {
            *w = r.u64().unwrap();
        }
        // Manifest and snapshot are written by the same checkpoint, so
        // their metadata must agree; a mismatch means disk corruption the
        // frames' CRCs somehow missed.
        assert_eq!(
            (m.clock, m.frontier),
            (clock, snap_frontier),
            "manifest/snapshot metadata mismatch"
        );
        rt.mem.restore_range(Addr(layout.heap_start), &words);
        report.snapshot_clock = clock;
        frontier = frontier.max(snap_frontier);
        for (dst, src) in logicals.iter_mut().zip(m.logicals.iter()) {
            *dst = *src;
        }
    }

    // Parse every log up to its torn tail (if any), chopping the tail so
    // post-recovery appends keep the file parseable.
    let mut records: Vec<Record> = Vec::new();
    for (tid, logical) in logicals.iter_mut().enumerate() {
        let name = log_file_name(tid);
        let Some(bytes) = disk.read_file(&name) else {
            continue;
        };
        let mut off = 0usize;
        let mut prev_seq: Option<u64> = None;
        let mut torn = false;
        while off < bytes.len() {
            let parsed = (|| -> Result<(Record, usize), ()> {
                let mut hdr = Reader::new(&bytes[off..]);
                let len = hdr.u32()? as usize;
                let crc = hdr.u32()?;
                let end = off.checked_add(8 + len).ok_or(())?;
                let payload = bytes.get(off + 8..end).ok_or(())?;
                if crc32(payload) != crc {
                    return Err(());
                }
                let rec = decode_record(payload)?;
                Ok((rec, end))
            })();
            match parsed {
                Ok((rec, end)) if prev_seq.is_none_or(|p| rec.seq == p + 1) => {
                    prev_seq = Some(rec.seq);
                    *logical = (*logical).max(rec.logical_total);
                    records.push(rec);
                    off = end;
                }
                _ => {
                    torn = true;
                    break;
                }
            }
        }
        if torn {
            report.torn_tails += 1;
            disk.truncate_file(&name, off);
        }
        ds.seqs[tid].store(prev_seq.map_or(0, |s| s + 1), Ordering::Release);
    }

    // Replay in commit order. Equal wvs (GV4 adoption) have disjoint
    // write sets, so the stable file-order tiebreak is arbitrary but
    // harmless.
    records.sort_by_key(|r| r.wv);
    let mut max_wv = 0u64;
    for rec in &records {
        if rec.wv <= report.snapshot_clock {
            report.stale_skipped += 1;
            continue;
        }
        for &(addr, val) in &rec.puts {
            rt.mem.store_private(Addr(addr), val);
        }
        for (start, content) in &rec.ranges {
            rt.mem.store_range_private(Addr(*start), content);
        }
        frontier = frontier.max(rec.frontier);
        max_wv = max_wv.max(rec.wv);
        report.records_applied += 1;
    }

    rt.heap.restore_frontier(frontier);
    rt.clock.advance_to(report.snapshot_clock.max(max_wv));
    for (tid, l) in logicals.iter().enumerate() {
        ds.logicals[tid].store(*l, Ordering::Release);
        report.logical_committed += *l;
    }
    report.frontier = frontier;
    (rt, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_corruption_detection() {
        let f = frame(b"hello world");
        assert_eq!(unframe(&f).unwrap(), b"hello world");
        for i in 0..f.len() {
            let mut bad = f.clone();
            bad[i] ^= 0x40;
            assert!(unframe(&bad).is_err(), "flip at byte {i} must be caught");
        }
        assert!(unframe(&f[..f.len() - 1]).is_err(), "truncation caught");
    }

    #[test]
    fn record_codec_roundtrip() {
        let mut enc = RecordEncoder::new(7, 42, 0x1000, 13);
        enc.put(0x100, 0xdead);
        enc.put(0x108, 0xbeef);
        enc.begin_range(0x200, 3);
        enc.word(1);
        enc.word(2);
        enc.word(3);
        let mut buf = Vec::new();
        enc.finish(&mut buf);
        let payload = unframe(&buf).unwrap();
        let rec = decode_record(payload).unwrap();
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.wv, 42);
        assert_eq!(rec.frontier, 0x1000);
        assert_eq!(rec.logical_total, 13);
        assert_eq!(rec.puts, vec![(0x100, 0xdead), (0x108, 0xbeef)]);
        assert_eq!(rec.ranges, vec![(0x200, vec![1, 2, 3])]);
    }

    #[test]
    fn disk_append_fault_phases() {
        // PreFlush: nothing lands.
        let d = SimDisk::new();
        d.arm(FaultPlan {
            phase: FaultPhase::PreFlush,
            at: 1,
            torn_keep: 0,
        });
        assert!(d.append("log-0", b"aaaa"));
        assert!(!d.append("log-0", b"bbbb"));
        assert!(d.is_killed());
        assert_eq!(d.read_file("log-0").unwrap(), b"aaaa");
        assert!(!d.append("log-0", b"cccc"), "dead disk stays dead");
        assert_eq!(d.file_len("log-0"), 4);

        // TornFlush: a prefix lands.
        let d = SimDisk::new();
        d.arm(FaultPlan {
            phase: FaultPhase::TornFlush,
            at: 0,
            torn_keep: 2,
        });
        assert!(!d.append("log-0", b"xyzw"));
        assert_eq!(d.read_file("log-0").unwrap(), b"xy");

        // PostFlush: the full append lands, then death.
        let d = SimDisk::new();
        d.arm(FaultPlan {
            phase: FaultPhase::PostFlush,
            at: 0,
            torn_keep: 0,
        });
        assert!(!d.append("log-0", b"pqrs"));
        assert!(d.is_killed());
        assert_eq!(d.read_file("log-0").unwrap(), b"pqrs");

        // Revive clears both the plan and the dead flag.
        d.revive();
        assert!(!d.is_killed());
        assert!(d.append("log-0", b"tu"));
        assert_eq!(d.read_file("log-0").unwrap(), b"pqrstu");
    }

    #[test]
    fn disk_write_file_and_log_bytes() {
        let d = SimDisk::new();
        d.append("log-0", &[0u8; 10]);
        d.append("log-3", &[0u8; 5]);
        d.write_file("MANIFEST", &[0u8; 100]);
        assert_eq!(d.log_bytes(), 15, "manifest is not a log");
        d.write_file("log-0", &[]);
        assert_eq!(d.log_bytes(), 5);
        d.corrupt_byte("log-3", 2);
        assert_eq!(d.read_file("log-3").unwrap()[2], 0xA5);
        d.truncate_file("log-3", 1);
        assert_eq!(d.file_len("log-3"), 1);
        d.remove("log-3");
        assert_eq!(d.file_len("log-3"), 0);
        assert_eq!(d.append_count(), 2);
    }

    #[test]
    fn quiesce_gate_blocks_and_releases() {
        let ds = DurableState::new(SimDisk::new(), 2);
        ds.enter_active();
        ds.exit_active();
        ds.ckpt_pending.store(true, Ordering::Release);
        let entered = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                ds.enter_active();
                entered.store(true, Ordering::Release);
                ds.exit_active();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(
                !entered.load(Ordering::Acquire),
                "begin must wait while a checkpoint is pending"
            );
            ds.ckpt_pending.store(false, Ordering::Release);
        });
        assert!(entered.load(Ordering::Acquire));
    }

    #[test]
    fn durable_commit_kill_recover_roundtrip() {
        static S: crate::Site = crate::Site::shared("durable.smoke");
        fn cfg() -> crate::TxConfig {
            crate::TxConfig::builder()
                .mode(crate::Mode::Runtime {
                    log: capture::LogKind::Tree,
                    scope: crate::CheckScope::FULL,
                })
                .durable(true)
                .build()
                .unwrap()
        }
        let mem_cfg = MemConfig::small();
        let disk = SimDisk::new();
        let rt = StmRuntime::new_durable(mem_cfg, cfg(), disk.clone());
        let cell = rt.alloc_global(8);
        let slot = rt.alloc_global(8);
        let mut w = rt.spawn_worker();
        for i in 1..=10u64 {
            w.txn(|tx| {
                let v = tx.read(&S, cell)?;
                tx.write(&S, cell, v + i)?;
                Ok(())
            });
        }
        // A captured-heavy transaction: the block's writes are elided, yet
        // the published contents must survive the crash via its range
        // record.
        let blk = w.txn(|tx| {
            let b = tx.alloc(64)?;
            for j in 0..8u64 {
                tx.write(&S, b.word(j), 100 + j)?;
            }
            tx.write(&S, slot, b.raw())?;
            Ok(b)
        });
        drop(w);
        let stats = rt.collect_stats();
        assert_eq!(stats.commits, 11);
        assert!(stats.durable_words >= 10 + 9 + 2, "puts + range + header");
        assert!(stats.durable_skipped >= 8, "captured block writes skipped");
        assert_eq!(stats.durable_flushes, 11, "strict mode: one per commit");

        // Power loss with everything already flushed: full recovery.
        disk.arm(FaultPlan {
            phase: FaultPhase::PreFlush,
            at: u64::MAX,
            torn_keep: 0,
        });
        let (rt2, report) = recover(mem_cfg, cfg(), disk);
        assert_eq!(report.logical_committed, 11);
        assert_eq!(report.records_applied, 11);
        assert_eq!(report.torn_tails, 0);
        assert_eq!(rt2.mem().load_private(cell), 55);
        assert_eq!(rt2.mem().load_private(slot), blk.raw());
        for j in 0..8u64 {
            assert_eq!(rt2.mem().load_private(blk.word(j)), 100 + j);
        }
        // The recovered runtime keeps working: new transactions commit and
        // new allocations don't collide with recovered blocks.
        let mut w2 = rt2.spawn_worker();
        let b2 = w2.txn(|tx| {
            let b = tx.alloc(64)?;
            tx.write(&S, b.offset(0), 7)?;
            Ok(b)
        });
        assert!(
            b2.raw() >= blk.raw() + 64 || b2.raw() + 64 <= blk.raw(),
            "fresh allocation {b2:?} collides with recovered {blk:?}"
        );
    }

    #[test]
    fn seq_and_logical_counters_are_per_tid() {
        let ds = DurableState::new(SimDisk::new(), 2);
        assert_eq!(ds.next_seq(0), 0);
        assert_eq!(ds.next_seq(0), 1);
        assert_eq!(ds.next_seq(1), 0);
        assert_eq!(ds.add_logical(0, 3), 3);
        assert_eq!(ds.add_logical(0, 2), 5);
        assert_eq!(ds.add_logical(1, 1), 1);
    }
}
