//! Transactional allocation and free (paper §3.1.2): every transactional
//! allocation is reported to the active capture policy (through the
//! spawn-time-resolved dispatch table) so heap capture analysis can find
//! it; aborts undo allocations; frees of non-captured blocks are deferred
//! to commit so concurrent readers never observe recycled memory.
//!
//! With [`crate::TxConfig::nursery`] active, small allocations are instead
//! bump-allocated in the transaction's nursery (see `crate::nursery`) and
//! classified by the scalar range test — no per-block policy logging at
//! all. Large blocks (and small ones when the heap cannot supply a region)
//! take the classic path below and fall back to the configured log.

use capture::CapturePolicy;
use txmem::{small_block_total, Addr, HEADER_BYTES, NURSERY_MAX_BLOCK_BYTES};

use crate::worker::{AllocHome, AllocRec, TxResult, WorkerCtx};

impl WorkerCtx<'_> {
    pub(crate) fn tx_alloc(&mut self, size: u64) -> TxResult<Addr> {
        debug_assert!(self.depth > 0);
        if self.nursery_on {
            if let Some(total) = small_block_total(size) {
                if total <= NURSERY_MAX_BLOCK_BYTES {
                    if let Some(addr) = self.nursery_alloc(total) {
                        self.allocs.push(AllocRec {
                            addr,
                            usable: total - HEADER_BYTES,
                            level: self.depth,
                            freed: false,
                            home: AllocHome::NurseryScalar,
                        });
                        // No policy logging: the scalar range covers it.
                        if let Some(t) = self.classify_log.as_mut() {
                            t.on_alloc(addr.raw(), total - HEADER_BYTES, self.depth);
                        }
                        self.stats.tx_allocs += 1;
                        return Ok(addr);
                    }
                    // Heap too fragmented for a region: classic path below
                    // (smaller classes may still have blocks).
                }
            }
        }
        let addr = self
            .rt
            .heap
            .alloc(&mut self.talloc, size)
            .expect("simulated heap exhausted inside transaction");
        let usable = self.rt.heap.usable_size(addr);
        self.allocs.push(AllocRec {
            addr,
            usable,
            level: self.depth,
            freed: false,
            home: AllocHome::Heap,
        });
        (self.table.on_alloc)(&mut self.logs, addr.raw(), usable, self.depth);
        if let Some(t) = self.classify_log.as_mut() {
            t.on_alloc(addr.raw(), usable, self.depth);
        }
        self.stats.tx_allocs += 1;
        Ok(addr)
    }

    pub(crate) fn tx_free(&mut self, addr: Addr) {
        debug_assert!(self.depth > 0);
        // A block allocated by the *current* nesting level can be freed
        // immediately: nobody else can hold a reference (it is captured),
        // and a later abort of this level would have discarded it anyway.
        // This is McRT-Malloc's balanced alloc/free optimization. The
        // block returns to the allocating transaction's own bookkeeping —
        // the nursery bump pointer / deferred reclaim list, or the
        // thread's class free lists — never the global large-block lock
        // (small blocks are class-rounded by construction).
        if let Some(i) = self.allocs.iter().rposition(|r| r.addr == addr && !r.freed) {
            if self.allocs[i].level >= self.depth {
                let usable = self.allocs[i].usable;
                match self.allocs[i].home {
                    AllocHome::Heap => {
                        self.allocs[i].freed = true;
                        (self.table.on_free)(&mut self.logs, addr.raw(), usable);
                        self.clear_capture_cache(); // the freed block may be cached
                        self.rt.heap.free(&mut self.talloc, addr);
                    }
                    AllocHome::NurseryScalar => self.nursery_free_current(i),
                    AllocHome::NurseryLogged => self.nursery_free_logged(i),
                }
                if let Some(t) = self.classify_log.as_mut() {
                    t.on_free(addr.raw(), usable);
                }
                self.stats.tx_frees += 1;
                return;
            }
            // Allocated by an ancestor level: a partial abort of the
            // current level must keep it alive, so defer like a shared
            // block. It stays in the allocation log — it is still captured
            // (unreachable by other transactions until we commit).
        }
        self.frees.push(addr);
    }
}
