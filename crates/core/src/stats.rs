/// Hot-path barrier counters for one direction within a *single*
/// transaction attempt.
///
/// The barrier fast path must not touch the worker's full [`TxStats`]
/// (two `BarrierStats` plus commit/abort/alloc counters — several cache
/// lines): the monomorphized barriers bump this one-line struct instead,
/// and the transaction lifecycle absorbs it into the durable stats exactly
/// once per transaction end ([`BarrierStats::absorb`]). Classification
/// counters (`class_*`, `static_violations`) are not here: they only move
/// under `TxConfig::classify`, an instrumentation mode.
/// There is no `total` field: every barrier lands in exactly one of these
/// counters, so the total is derived at absorb time — one counter bump per
/// access instead of two.
#[derive(Default, Clone, Copy, Debug)]
pub(crate) struct BarrierDelta {
    pub elided_stack: u64,
    pub elided_heap: u64,
    /// Elided by the nursery's scalar range test. Folded into the public
    /// `elided_heap` at absorb time (it *is* a captured-heap elision) and
    /// summed into `TxStats::nursery_hits` — a separate counter here so
    /// the hot path bumps exactly one counter per access.
    pub elided_nursery: u64,
    pub elided_static: u64,
    pub elided_static_interproc: u64,
    pub elided_annotation: u64,
    pub parent_captured: u64,
    pub full: u64,
}

/// Hot-path counters for the *ranged* entry points (`read_range` /
/// `write_range` and the helpers built on them) within a single transaction
/// attempt. These are pure telemetry on top of the per-word counters: a
/// ranged barrier still bumps the matching [`BarrierDelta`] counter by the
/// run's word count, so the legacy stats stay bit-identical to a per-word
/// loop and these counters only describe *how* the words were processed.
#[derive(Default, Clone, Copy, Debug)]
pub(crate) struct RangedDelta {
    /// Ranged read operations entered (one per `read_range` call).
    pub reads: u64,
    /// Ranged write operations entered (one per `write_range` call).
    pub writes: u64,
    /// Homogeneous runs of ≥ 2 words handled by a bulk copy or a
    /// stripe-batched slowpath.
    pub spans: u64,
    /// Degenerate work: single-word runs, and whole operations that fell
    /// back to the per-word loop (classify/annotation instrumentation or
    /// the enum-dispatch reference pipeline).
    pub fallbacks: u64,
}

/// Hot-path counters for transaction merging (`WorkerCtx::txn_batch`)
/// within a single *physical* transaction. Kept in the pending
/// [`TxnDelta`] — not bumped straight into [`TxStats`] — so the batch
/// machinery inherits the once-per-physical-transaction absorption
/// contract: logical boundaries never flush stats, only a physical commit
/// or rollback does.
#[derive(Default, Clone, Copy, Debug)]
pub(crate) struct MergeDelta {
    /// Logical transactions committed inside a physical transaction that
    /// carried at least two of them.
    pub merged_txns: u64,
    /// Split events: a conflict (or watermark validation failure) forced
    /// the batch to truncate to a clean boundary.
    pub splits: u64,
    /// Logical transactions salvaged by a split — committed early by
    /// truncating the logs to their watermark instead of being rolled
    /// back with the conflicting remainder.
    pub salvaged: u64,
}

/// Both directions of [`BarrierDelta`] plus the ranged-op telemetry; lives
/// on the worker and is taken (reset to zero) when flushed at commit or
/// rollback.
#[derive(Default, Clone, Copy, Debug)]
pub(crate) struct TxnDelta {
    pub reads: BarrierDelta,
    pub writes: BarrierDelta,
    pub ranged: RangedDelta,
    pub merge: MergeDelta,
}

/// Counters for one barrier direction (reads or writes).
#[derive(Default, Clone, Copy, Debug)]
pub struct BarrierStats {
    /// Barrier invocations (everything a naive compiler instrumented).
    pub total: u64,
    /// Elided: hit the transaction-local *stack* check.
    pub elided_stack: u64,
    /// Elided: hit the transaction-local *heap* allocation log.
    pub elided_heap: u64,
    /// Elided: site statically proven captured (compiler mode,
    /// intraprocedural verdict).
    pub elided_static: u64,
    /// Elided: site proven captured only by the *interprocedural* summary
    /// analysis (compiler-interproc mode; disjoint from `elided_static`,
    /// which counts the sites the intraprocedural pass already got).
    pub elided_static_interproc: u64,
    /// Elided: address annotated via `add_private_memory_block`.
    pub elided_annotation: u64,
    /// Writes to memory captured by an *ancestor* transaction: no orec
    /// lock, but an undo entry (paper §2.2.1, partial abort support).
    pub parent_captured: u64,
    /// Full STM barrier executed.
    pub full: u64,

    // -- Figure 8 classification (filled when `TxConfig::classify`) --
    /// Access to transaction-local heap (precise tree).
    pub class_heap: u64,
    /// Access to transaction-local stack.
    pub class_stack: u64,
    /// Not required for other reasons (not manually instrumented in the
    /// original STAMP, not transaction-local): thread-local/read-only data.
    pub class_other: u64,
    /// Required: manually instrumented in the original STAMP.
    pub class_required: u64,
    /// Accesses at `compiler_elides` sites whose target the precise
    /// classifier did NOT find captured — a mis-tagged site that would be a
    /// miscompilation in a real system. Must stay zero; checked by the
    /// suite's validation tests.
    pub static_violations: u64,
}

impl BarrierStats {
    /// Fold one transaction's hot-path counters into the durable stats.
    pub(crate) fn absorb(&mut self, d: &BarrierDelta) {
        self.total += d.elided_stack
            + d.elided_heap
            + d.elided_nursery
            + d.elided_static
            + d.elided_static_interproc
            + d.elided_annotation
            + d.parent_captured
            + d.full;
        self.elided_stack += d.elided_stack;
        // Nursery elisions are captured-heap elisions; every derived
        // metric (elided fraction, Figure 9 rows) sees them as such.
        self.elided_heap += d.elided_heap + d.elided_nursery;
        self.elided_static += d.elided_static;
        self.elided_static_interproc += d.elided_static_interproc;
        self.elided_annotation += d.elided_annotation;
        self.parent_captured += d.parent_captured;
        self.full += d.full;
    }

    /// Accumulate another worker's counters into this one.
    pub fn merge(&mut self, o: &BarrierStats) {
        self.total += o.total;
        self.elided_stack += o.elided_stack;
        self.elided_heap += o.elided_heap;
        self.elided_static += o.elided_static;
        self.elided_static_interproc += o.elided_static_interproc;
        self.elided_annotation += o.elided_annotation;
        self.parent_captured += o.parent_captured;
        self.full += o.full;
        self.class_heap += o.class_heap;
        self.class_stack += o.class_stack;
        self.class_other += o.class_other;
        self.class_required += o.class_required;
        self.static_violations += o.static_violations;
    }

    /// All barriers elided by any mechanism.
    pub fn elided(&self) -> u64 {
        self.elided_stack
            + self.elided_heap
            + self.elided_static
            + self.elided_static_interproc
            + self.elided_annotation
    }

    /// Fraction of barriers removed (paper Figure 9's metric).
    pub fn elided_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.elided() as f64 / self.total as f64
        }
    }
}

/// Buckets of [`TxStats::backoff_hist`]: bucket `i` counts backoff waits
/// of `[2^(i+4), 2^(i+5))` spin iterations (the decorrelated-jitter
/// schedule starts at 16 spins), with the last bucket absorbing everything
/// longer.
pub const BACKOFF_BUCKETS: usize = 8;

/// Buckets of [`TxStats::latency_hist`]: bucket `i` counts top-level
/// commits whose wall-clock latency fell in `[2^(i+7), 2^(i+8))`
/// nanoseconds (bucket 0 additionally absorbs everything faster), with the
/// last bucket absorbing everything slower (≥ ~4 ms).
pub const LATENCY_BUCKETS: usize = 16;

/// Per-thread (and merged global) transaction statistics.
#[derive(Default, Clone, Copy, Debug)]
pub struct TxStats {
    /// Committed top-level transactions.
    pub commits: u64,
    /// Commits with an empty write set (a subset of `commits`): these are
    /// clock-silent — they neither CAS nor read-modify the global clock.
    pub commits_ro: u64,
    /// Writing commits whose clock CAS lost the race and adopted the
    /// winner's timestamp instead of retrying (GV4 pass-on-failure). Each
    /// adoption is one clock-line invalidation that did *not* happen.
    pub clock_adopts: u64,
    /// Aborts due to conflicts (the retried transactions of Table 1's
    /// abort-to-commit ratio).
    pub aborts: u64,
    /// Explicit user aborts (not retried by the runtime).
    pub user_aborts: u64,
    /// Partial aborts of nested transactions.
    pub partial_aborts: u64,
    /// Transactional allocations / frees.
    pub tx_allocs: u64,
    /// Transactional frees (immediate for captured blocks, deferred to
    /// commit otherwise).
    pub tx_frees: u64,
    /// Barriers *elided* by the nursery's scalar range test (both
    /// directions; a subset of the `elided_heap` counts — ancestor-level
    /// nursery writes land in `parent_captured` instead). Only moves under
    /// `TxConfig::nursery`.
    pub nursery_hits: u64,
    /// Nursery regions carved (or extended in place) for transactions.
    pub nursery_regions: u64,
    /// Bytes returned to the allocator wholesale: entire regions on abort,
    /// unused region tails trimmed at commit.
    pub nursery_bytes_recycled: u64,
    /// Ranged read operations (`Tx::read_range` and everything built on
    /// it). Telemetry only: the words a ranged op covers are still counted
    /// in `reads`/`writes` exactly as a per-word loop would count them.
    pub ranged_reads: u64,
    /// Ranged write operations (`Tx::write_range`, `fill_range`, the write
    /// half of `copy_range`).
    pub ranged_writes: u64,
    /// Homogeneous runs of ≥ 2 words a ranged op handled with one
    /// classification (bulk copy or stripe-batched slowpath).
    pub ranged_spans: u64,
    /// Ranged work that degenerated to per-word processing: one-word runs
    /// (lossy filter log, fragmented capture state, genuinely short spans)
    /// and whole ops routed through the per-word loop (classify /
    /// annotation instrumentation, reference dispatch).
    pub ranged_fallbacks: u64,
    /// Logical transactions committed inside a *merged* physical
    /// transaction (one that carried ≥ 2 logical transactions; see
    /// `WorkerCtx::txn_batch`). A subset of `commits`, which counts every
    /// logical transaction regardless of merging.
    pub merged_txns: u64,
    /// Batch splits: a conflict or commit-time validation failure forced a
    /// merged transaction to truncate to its last clean logical boundary,
    /// committing the prefix and retrying the remainder unmerged.
    pub merge_splits: u64,
    /// Logical transactions salvaged (committed early) by batch splits.
    pub merge_salvaged: u64,
    /// Contention-manager backoff waits: one per abort-triggered
    /// decorrelated-jitter spin/yield episode in the retry loops.
    pub backoff_waits: u64,
    /// Conflict aborts raised by a *read* barrier that exhausted its spin
    /// budget against a foreign-locked (or version-churning) record. Part
    /// of the abort-cause breakdown: `conflict_read_locked +
    /// conflict_write_locked + conflict_validation` covers every
    /// runtime-raised conflict.
    pub conflict_read_locked: u64,
    /// Conflict aborts raised by a *write* barrier that exhausted its spin
    /// budget against a foreign-locked record.
    pub conflict_write_locked: u64,
    /// Conflict aborts raised by snapshot validation: a failed timestamp
    /// extension in a barrier, or commit-time read-set validation finding
    /// an invalidated entry (each batch-commit salvage iteration counts
    /// one).
    pub conflict_validation: u64,
    /// Adaptive contention manager: transactions that escalated into the
    /// karma tier (spin-budget growth past `TxConfig::karma_threshold`
    /// consecutive aborts). Counted once per escalated transaction.
    pub cm_karma_escalations: u64,
    /// Adaptive contention manager: global serialization-token
    /// acquisitions (a chronic aborter draining the runtime to run solo).
    pub cm_serializations: u64,
    /// Highest consecutive-abort count any single transaction reached —
    /// the starvation metric the liveness oracle bounds. Merges with
    /// `max`, not `+`.
    pub attempts_max: u64,
    /// Schedule faults injected by the configured `ChaosPlan` (0 without
    /// one).
    pub chaos_injections: u64,
    /// Log2 histogram of backoff-wait lengths in spin iterations; see
    /// [`BACKOFF_BUCKETS`].
    pub backoff_hist: [u64; BACKOFF_BUCKETS],
    /// Log2 histogram of top-level commit latencies in nanoseconds
    /// (wall-clock from retry-loop entry to commit, aborted attempts
    /// included); see [`LATENCY_BUCKETS`] and [`TxStats::latency_pct_ns`].
    pub latency_hist: [u64; LATENCY_BUCKETS],
    /// Durable mode: words actually appended to the redo log — one per
    /// distinct shared-write address plus the coalesced final contents
    /// (header included) of every surviving in-transaction allocation.
    pub durable_words: u64,
    /// Durable mode: captured write-barrier events (stack, in-transaction
    /// heap, nursery, ancestor-captured, statically elided) that needed
    /// *no* per-word redo logging — the paper's captured-memory saving
    /// extended to durability. The skip ratio is
    /// `durable_skipped / (durable_words + durable_skipped)`.
    pub durable_skipped: u64,
    /// Durable mode: redo-log disk appends. With `durable_flush_batch = 1`
    /// this equals the number of commits that produced a record; group
    /// commit makes it smaller.
    pub durable_flushes: u64,
    /// Read-barrier counters.
    pub reads: BarrierStats,
    /// Write-barrier counters.
    pub writes: BarrierStats,
}

impl TxStats {
    /// Fold one transaction's hot-path counters into the durable stats
    /// (called once per transaction end; see [`TxnDelta`]).
    pub(crate) fn absorb(&mut self, d: &TxnDelta) {
        self.reads.absorb(&d.reads);
        self.writes.absorb(&d.writes);
        self.nursery_hits += d.reads.elided_nursery + d.writes.elided_nursery;
        self.ranged_reads += d.ranged.reads;
        self.ranged_writes += d.ranged.writes;
        self.ranged_spans += d.ranged.spans;
        self.ranged_fallbacks += d.ranged.fallbacks;
        self.merged_txns += d.merge.merged_txns;
        self.merge_splits += d.merge.splits;
        self.merge_salvaged += d.merge.salvaged;
    }

    /// Accumulate another worker's statistics into this one.
    pub fn merge(&mut self, o: &TxStats) {
        self.commits += o.commits;
        self.commits_ro += o.commits_ro;
        self.clock_adopts += o.clock_adopts;
        self.aborts += o.aborts;
        self.user_aborts += o.user_aborts;
        self.partial_aborts += o.partial_aborts;
        self.tx_allocs += o.tx_allocs;
        self.tx_frees += o.tx_frees;
        self.nursery_hits += o.nursery_hits;
        self.nursery_regions += o.nursery_regions;
        self.nursery_bytes_recycled += o.nursery_bytes_recycled;
        self.ranged_reads += o.ranged_reads;
        self.ranged_writes += o.ranged_writes;
        self.ranged_spans += o.ranged_spans;
        self.ranged_fallbacks += o.ranged_fallbacks;
        self.merged_txns += o.merged_txns;
        self.merge_splits += o.merge_splits;
        self.merge_salvaged += o.merge_salvaged;
        self.backoff_waits += o.backoff_waits;
        self.conflict_read_locked += o.conflict_read_locked;
        self.conflict_write_locked += o.conflict_write_locked;
        self.conflict_validation += o.conflict_validation;
        self.cm_karma_escalations += o.cm_karma_escalations;
        self.cm_serializations += o.cm_serializations;
        // The per-transaction maximum, not a sum: the starvation bound is
        // over individual transactions, whichever worker ran them.
        self.attempts_max = self.attempts_max.max(o.attempts_max);
        self.chaos_injections += o.chaos_injections;
        for (a, b) in self.backoff_hist.iter_mut().zip(&o.backoff_hist) {
            *a += b;
        }
        for (a, b) in self.latency_hist.iter_mut().zip(&o.latency_hist) {
            *a += b;
        }
        self.durable_words += o.durable_words;
        self.durable_skipped += o.durable_skipped;
        self.durable_flushes += o.durable_flushes;
        self.reads.merge(&o.reads);
        self.writes.merge(&o.writes);
    }

    /// Bucket a decorrelated-jitter wait of `spins` iterations into
    /// [`TxStats::backoff_hist`].
    pub(crate) fn record_backoff_spins(&mut self, spins: u64) {
        let log2 = (63 - (spins | 1).leading_zeros()) as usize;
        self.backoff_hist[log2.saturating_sub(4).min(BACKOFF_BUCKETS - 1)] += 1;
    }

    /// Bucket one committed top-level transaction's wall-clock latency
    /// into [`TxStats::latency_hist`].
    pub(crate) fn record_latency_ns(&mut self, ns: u64) {
        let log2 = (63 - (ns | 1).leading_zeros()) as usize;
        self.latency_hist[log2.saturating_sub(7).min(LATENCY_BUCKETS - 1)] += 1;
    }

    /// Estimate the `p`-quantile (`0.0..=1.0`) of the commit-latency
    /// histogram, in nanoseconds: the upper edge of the first bucket whose
    /// cumulative count reaches the quantile (so the estimate is an upper
    /// bound at bucket resolution). Returns 0 when no latency was
    /// recorded.
    pub fn latency_pct_ns(&self, p: f64) -> u64 {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.latency_hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 8);
            }
        }
        1u64 << (LATENCY_BUCKETS + 7)
    }

    /// Table 1's metric: aborted-and-retried over committed.
    pub fn abort_to_commit_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Combined read+write barrier stats (paper Fig. 8c "all accesses").
    pub fn all_accesses(&self) -> BarrierStats {
        let mut b = self.reads;
        b.merge(&self.writes);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_everything() {
        let mut a = TxStats::default();
        a.commits = 3;
        a.reads.total = 10;
        a.reads.elided_heap = 4;
        let mut b = TxStats::default();
        b.commits = 2;
        b.aborts = 1;
        b.reads.total = 5;
        b.writes.total = 7;
        b.ranged_reads = 3;
        b.ranged_spans = 2;
        b.ranged_fallbacks = 1;
        b.merged_txns = 8;
        b.merge_splits = 2;
        b.merge_salvaged = 5;
        b.backoff_waits = 4;
        b.conflict_read_locked = 6;
        b.conflict_write_locked = 7;
        b.conflict_validation = 8;
        b.cm_karma_escalations = 2;
        b.cm_serializations = 1;
        b.chaos_injections = 9;
        b.backoff_hist[0] = 3;
        b.backoff_hist[7] = 1;
        b.latency_hist[2] = 5;
        b.durable_words = 11;
        b.durable_skipped = 13;
        b.durable_flushes = 2;
        a.attempts_max = 4;
        b.attempts_max = 9;
        a.latency_hist[2] = 1;
        a.merge(&b);
        assert_eq!(a.commits, 5);
        assert_eq!(a.aborts, 1);
        assert_eq!(a.reads.total, 15);
        assert_eq!(a.writes.total, 7);
        assert_eq!(a.all_accesses().total, 22);
        assert_eq!(a.ranged_reads, 3);
        assert_eq!(a.ranged_writes, 0);
        assert_eq!(a.ranged_spans, 2);
        assert_eq!(a.ranged_fallbacks, 1);
        assert_eq!(a.merged_txns, 8);
        assert_eq!(a.merge_splits, 2);
        assert_eq!(a.merge_salvaged, 5);
        assert_eq!(a.backoff_waits, 4);
        assert_eq!(a.conflict_read_locked, 6);
        assert_eq!(a.conflict_write_locked, 7);
        assert_eq!(a.conflict_validation, 8);
        assert_eq!(a.cm_karma_escalations, 2);
        assert_eq!(a.cm_serializations, 1);
        assert_eq!(a.chaos_injections, 9);
        assert_eq!(a.backoff_hist, [3, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(a.latency_hist[2], 6);
        assert_eq!(
            a.attempts_max, 9,
            "attempts_max is a per-transaction maximum, not a sum"
        );
        assert_eq!(a.durable_words, 11);
        assert_eq!(a.durable_skipped, 13);
        assert_eq!(a.durable_flushes, 2);
    }

    #[test]
    fn histograms_bucket_by_log2() {
        let mut s = TxStats::default();
        // Backoff: 16 spins is the schedule's base → bucket 0; the cap at
        // 2^14 spins and anything past it land in the last bucket.
        s.record_backoff_spins(16);
        s.record_backoff_spins(31);
        s.record_backoff_spins(32);
        s.record_backoff_spins(1 << 14);
        s.record_backoff_spins(u64::MAX);
        assert_eq!(s.backoff_hist[0], 2);
        assert_eq!(s.backoff_hist[1], 1);
        assert_eq!(s.backoff_hist[BACKOFF_BUCKETS - 1], 2);
        // Latency: sub-256ns commits share bucket 0; multi-ms ones pile
        // into the last bucket.
        s.record_latency_ns(0);
        s.record_latency_ns(255);
        s.record_latency_ns(256);
        s.record_latency_ns(u64::MAX);
        assert_eq!(s.latency_hist[0], 2);
        assert_eq!(s.latency_hist[1], 1);
        assert_eq!(s.latency_hist[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn latency_percentiles_walk_the_histogram() {
        let mut s = TxStats::default();
        assert_eq!(s.latency_pct_ns(0.5), 0, "empty histogram reports 0");
        // 9 commits in bucket 0 (< 256ns), 1 in bucket 3 (1..2µs): the
        // median sits in bucket 0, the p99 in bucket 3.
        s.latency_hist[0] = 9;
        s.latency_hist[3] = 1;
        assert_eq!(s.latency_pct_ns(0.5), 256);
        assert_eq!(s.latency_pct_ns(0.99), 1 << 11);
        assert_eq!(s.latency_pct_ns(1.0), 1 << 11);
    }

    #[test]
    fn absorb_folds_ranged_telemetry() {
        let mut s = TxStats::default();
        let mut d = TxnDelta::default();
        d.ranged.reads = 2;
        d.ranged.writes = 1;
        d.ranged.spans = 3;
        d.ranged.fallbacks = 4;
        d.merge.merged_txns = 6;
        d.merge.splits = 1;
        d.merge.salvaged = 2;
        s.absorb(&d);
        assert_eq!(s.ranged_reads, 2);
        assert_eq!(s.ranged_writes, 1);
        assert_eq!(s.ranged_spans, 3);
        assert_eq!(s.ranged_fallbacks, 4);
        assert_eq!(s.merged_txns, 6);
        assert_eq!(s.merge_splits, 1);
        assert_eq!(s.merge_salvaged, 2);
    }

    #[test]
    fn ratios() {
        let mut s = TxStats::default();
        assert_eq!(s.abort_to_commit_ratio(), 0.0);
        s.commits = 4;
        s.aborts = 2;
        assert_eq!(s.abort_to_commit_ratio(), 0.5);

        let mut b = BarrierStats::default();
        assert_eq!(b.elided_fraction(), 0.0);
        b.total = 10;
        b.elided_stack = 1;
        b.elided_heap = 2;
        b.elided_static = 3;
        assert_eq!(b.elided(), 6);
        assert!((b.elided_fraction() - 0.6).abs() < 1e-12);
    }
}
