//! Application-side transaction merging (`stm::batch`): execute up to N
//! *logical* (application) transactions inside one *physical* transaction,
//! amortizing the fixed per-commit costs — GV4 clock CAS, read-set
//! validation, orec publication, stats absorption — N-fold, and extending
//! the capture window so memory allocated by logical transaction *i* is
//! still **captured** (nursery scalar range / allocation log) when logical
//! transaction *i+1* touches it. Cross-transaction producer–consumer
//! traffic that pays the shared slow path unmerged collapses to the
//! two-compare captured hit.
//!
//! # Logical boundaries are nesting levels
//!
//! A logical boundary reuses the closed-nesting machinery wholesale: it
//! takes a [`Checkpoint`](crate::commit::Checkpoint) of the log positions
//! (read/lock/undo/alloc/free lengths, sp mark, nursery watermark) and
//! pushes a nesting level, exactly like `Tx::nested` entry. The
//! consequences fall out of the existing level rules:
//!
//! * **Captured status survives the boundary** — a block allocated by an
//!   earlier logical transaction classifies at an *ancestor* level, so
//!   reads stay fully elided (any captured level elides) and writes take
//!   the ancestor path: an undo entry, no orec lock. The undo entry is
//!   what makes splitting sound: if a later logical transaction aborts,
//!   rolling back to the boundary restores every word of the salvaged
//!   prefix it overwrote.
//! * **Frees of earlier logical transactions' blocks defer** to the
//!   physical commit (the ancestor-level path in `tx_free`), so an address
//!   can never be recycled *and reallocated* within the batch — the
//!   free-then-realloc hazard that would otherwise let two logical
//!   transactions alias one block is structurally excluded. The cost:
//!   allocation placement can differ from unmerged execution, which is why
//!   the oracle compares handle-based observable memory, not raw layout.
//!
//! # Split and salvage
//!
//! On a conflict mid-batch ([`MergeSplitPolicy::Salvage`]) the batch
//! truncates to the last clean *invocation* boundary: the in-flight
//! closure invocation partially rolls back (checkpoint unwind), the
//! committed-so-far logical transactions are salvaged by committing the
//! physical transaction early, and the conflicting remainder retries
//! unmerged (a quota-1 window) before merging resumes. Commit-time
//! validation failures are handled watermark-aware: the first invalid
//! read-set entry locates the earliest dirty logical transaction, and only
//! it and its successors roll back.
//!
//! Publishing a salvaged prefix's locks is sound because the logs are
//! append-ordered by execution time: every lock acquired *after* a
//! boundary belongs to that boundary's successors and is released at its
//! pre-lock version by the unwind, while words written under an
//! already-held earlier lock are restored by the suffix's undo entries
//! (rolled back newest-first) before the prefix publishes.

use crate::commit::BatchMark;
use crate::config::MergeSplitPolicy;
use crate::worker::{Abort, Tx, TxResult, WorkerCtx};

/// Outcome of one [`WorkerCtx::txn_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRun {
    /// Logical transactions durably committed by this call.
    pub committed: u64,
    /// `Some(code)` when a user abort ended the batch early: the aborting
    /// logical transaction was rolled back (it is *not* retried, matching
    /// `WorkerCtx::txn_result`), everything in `committed` is durable.
    pub user_abort: Option<u64>,
}

/// Handle to an active logical transaction inside a merged batch. Derefs
/// to [`Tx`], so every transactional operation (barriers, alloc/free,
/// stack frames, nesting) is available unchanged — including the typed
/// `TxPtr`/`TxSlice` layer built on them.
pub struct TxBatch<'a, 'rt> {
    tx: Tx<'a, 'rt>,
}

impl<'a, 'rt> std::ops::Deref for TxBatch<'a, 'rt> {
    type Target = Tx<'a, 'rt>;
    #[inline]
    fn deref(&self) -> &Tx<'a, 'rt> {
        &self.tx
    }
}

impl std::ops::DerefMut for TxBatch<'_, '_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.tx
    }
}

impl TxBatch<'_, '_> {
    /// Close the current logical transaction and open the next one within
    /// the same closure invocation (an *explicit* boundary; the implicit
    /// one sits between invocations). Counts against the batch's logical
    /// budget. Must be called at the logical transaction's own nesting
    /// level — not inside a `Tx::nested` child.
    ///
    /// Split granularity remains the closure invocation: a conflict rolls
    /// back the whole in-flight invocation (its explicit-boundary segments
    /// included), because a closure body cannot be resumed mid-flight.
    pub fn boundary(&mut self) -> TxResult<()> {
        self.tx.0.batch_boundary()
    }

    /// Zero-based index of the current logical transaction within the
    /// whole `txn_batch` call: durably committed by earlier windows +
    /// completed in this window + the in-flight one. Stable across splits
    /// — after a salvage, the retrying invocation sees the same index it
    /// had before — so a closure can use it to walk an external work list.
    pub fn logical_index(&self) -> u64 {
        self.tx.0.batch_base + self.tx.0.batch_logical
    }
}

/// How a batch window ended (internal control flow).
enum WindowEnd {
    /// Window committed everything it ran and the quota is used up.
    Filled,
    /// The closure asked to stop and its final logical transaction
    /// committed.
    Stopped,
    /// A split salvaged a prefix (or a commit-time validation failure
    /// truncated one); the remainder must retry unmerged.
    Split,
    /// The whole window rolled back; retry unmerged.
    Aborted,
    /// A user abort ended the batch.
    User(u64),
}

impl<'rt> WorkerCtx<'rt> {
    /// Run up to `n` logical transactions inside physical transactions of
    /// up to `n` each (one, when nothing conflicts). The closure is
    /// invoked once per logical transaction; it returns `Ok(true)` to
    /// continue the batch, `Ok(false)` to finish after the current logical
    /// transaction (which still commits — e.g. "work queue drained"), or
    /// an abort. [`TxBatch::boundary`] subdivides a single invocation into
    /// several logical transactions.
    ///
    /// Semantics are those of running each logical transaction with
    /// [`WorkerCtx::txn`] / [`WorkerCtx::txn_result`]: same committed
    /// memory, same logical commit/abort counts (`TxStats::commits` counts
    /// logical transactions; only the physical counters — `commits_ro`,
    /// `clock_adopts` — see the merging). Conflicts split the batch: the
    /// clean prefix is salvaged, the conflicting invocation retries
    /// unmerged, then merging resumes. Closure invocations may therefore
    /// re-execute, exactly like a `txn` closure retries after an abort.
    ///
    /// `n` must be in `1..=TxConfig::merge_max`; `merge_max` is validated
    /// at config build time and merging is rejected under
    /// `reference_dispatch`.
    pub fn txn_batch(
        &mut self,
        n: usize,
        mut f: impl FnMut(&mut TxBatch<'_, 'rt>) -> TxResult<bool>,
    ) -> BatchRun {
        assert_eq!(self.depth, 0, "txn_batch() cannot nest");
        assert!(n >= 1, "txn_batch requires a merge factor of at least 1");
        assert!(
            (n as u64) <= u64::from(self.cfg.merge_max),
            "merge factor {n} exceeds TxConfig::merge_max {}",
            self.cfg.merge_max
        );
        self.cm_reset();
        let n = n as u64;
        let mut total = 0u64;
        // After a split/abort the next window runs a single logical
        // transaction — "the conflicting remainder retries unmerged" —
        // then full-width merging resumes.
        let mut degraded = false;
        let mut t0 = std::time::Instant::now();
        while total < n {
            let quota = if degraded { 1 } else { n - total };
            self.batch_base = total;
            let (committed, end) = self.run_window(quota, &mut f);
            total += committed;
            if committed > 0 {
                // Forward progress: de-escalate the contention ladder and
                // book the committed window's wall-clock latency (retried
                // attempts since the last committed window included).
                self.cm_reset();
                self.stats.record_latency_ns(t0.elapsed().as_nanos() as u64);
                t0 = std::time::Instant::now();
            }
            match end {
                WindowEnd::Stopped => {
                    return BatchRun {
                        committed: total,
                        user_abort: None,
                    }
                }
                WindowEnd::User(code) => {
                    return BatchRun {
                        committed: total,
                        user_abort: Some(code),
                    }
                }
                WindowEnd::Filled => degraded = false,
                WindowEnd::Split | WindowEnd::Aborted => degraded = true,
            }
        }
        BatchRun {
            committed: total,
            user_abort: None,
        }
    }

    /// Execute one physical transaction holding up to `quota` logical
    /// transactions; returns how many committed durably and how the window
    /// ended.
    fn run_window(
        &mut self,
        quota: u64,
        f: &mut dyn FnMut(&mut TxBatch<'_, 'rt>) -> TxResult<bool>,
    ) -> (u64, WindowEnd) {
        debug_assert!(quota >= 1);
        self.begin_top();
        self.batch_marks.clear();
        self.batch_logical = 0;
        self.in_batch = true;
        let mut stop = false;
        let mut user: Option<u64> = None;
        let mut had_split = false;
        loop {
            // Invariants: during a closure invocation `batch_logical ==
            // batch_marks.len()`, and mark `i` was pushed when `i + 1`
            // logical transactions had completed — so unwinding to
            // `marks.len() == t` restores the state "after logical
            // transaction t + 1".
            let inv_mark = self.batch_marks.len();
            let inv_logical = self.batch_logical;
            if inv_logical > 0 {
                // Implicit boundary between closure invocations.
                self.push_batch_mark(true);
            }
            let result = {
                let mut b = TxBatch { tx: Tx(self) };
                f(&mut b)
            };
            match result {
                Ok(cont) => {
                    self.batch_logical += 1;
                    if !cont {
                        stop = true;
                        break;
                    }
                    if self.batch_logical >= quota {
                        break;
                    }
                }
                Err(Abort::Conflict) => match self.cfg.merge_split_policy {
                    MergeSplitPolicy::Restart => {
                        self.in_batch = false;
                        if quota > 1 {
                            self.pending.merge.splits += 1;
                        }
                        // Completed logical transactions roll back and
                        // will re-execute: one abort each, plus the
                        // in-flight invocation counted by rollback_top.
                        self.stats.aborts += self.batch_logical;
                        self.rollback_top();
                        self.cm_after_abort();
                        return (0, WindowEnd::Aborted);
                    }
                    MergeSplitPolicy::Salvage => {
                        if inv_logical == 0 {
                            // Nothing to salvage: the window's first
                            // invocation conflicted.
                            self.in_batch = false;
                            self.rollback_top();
                            self.cm_after_abort();
                            return (0, WindowEnd::Aborted);
                        }
                        self.batch_unwind_to(inv_mark);
                        self.batch_logical = inv_logical;
                        self.stats.aborts += 1; // the conflicting invocation
                        self.pending.merge.splits += 1;
                        had_split = true;
                        break;
                    }
                },
                Err(Abort::User(code)) => {
                    self.stats.user_aborts += 1;
                    user = Some(code);
                    if inv_logical == 0 {
                        // Mirror txn_result's user-abort accounting: the
                        // rollback's abort bump is re-booked as the user
                        // abort counted above.
                        self.in_batch = false;
                        self.rollback_top();
                        self.stats.aborts -= 1;
                        return (0, WindowEnd::User(code));
                    }
                    self.batch_unwind_to(inv_mark);
                    self.batch_logical = inv_logical;
                    break;
                }
            }
        }
        self.in_batch = false;
        let logical = self.batch_logical;
        let committed = self.commit_window(logical, had_split);
        let end = if let Some(code) = user {
            WindowEnd::User(code)
        } else if committed == 0 {
            WindowEnd::Aborted
        } else if committed < logical {
            // A commit-time validation split rolled back a tail; it must
            // re-execute (so a pending `stop` is void — its observation
            // never committed).
            WindowEnd::Split
        } else if stop {
            WindowEnd::Stopped
        } else if had_split {
            WindowEnd::Split
        } else {
            WindowEnd::Filled
        };
        (committed, end)
    }

    /// Commit the window's `logical` completed logical transactions,
    /// splitting watermark-aware on validation failure. Returns how many
    /// logical transactions committed (0 = the whole window rolled back
    /// and the caller retries).
    fn commit_window(&mut self, logical: u64, had_split: bool) -> u64 {
        debug_assert!(logical >= 1, "commit_window on an empty window");
        debug_assert_eq!(self.depth as u64, logical, "levels out of sync");
        let mut logical = logical;
        let mut split = had_split;
        if self.locks.is_empty() {
            // Read-only physical batch: incremental validation holds the
            // snapshot invariant, the commit is clock-silent.
            self.durable_prepare(None, logical);
            return self.finish_window_commit(logical, split, true);
        }
        // One GV4 ticket per physical batch — the amortized clock CAS.
        // Drawn while every lock of the *full* window is held; a salvaged
        // prefix's locks are a subset still held at sample time, so the
        // ticket (and its need_validate shortcut) remains valid across
        // unwinds.
        let ticket = self.rt.clock.writer_ticket(self.rv);
        if ticket.adopted {
            self.stats.clock_adopts += 1;
        }
        self.chaos(crate::contention::ChaosPoint::Validation);
        if ticket.need_validate {
            while let Some(p) = self.first_invalid_read() {
                self.stats.conflict_validation += 1;
                match self.batch_unwind_for_read(p) {
                    Some(new_logical) => {
                        // Logical transactions new_logical+1.. rolled back
                        // and will re-execute: one abort each, as if each
                        // had aborted at its own unmerged commit.
                        self.stats.aborts += logical - new_logical;
                        self.pending.merge.splits += 1;
                        logical = new_logical;
                        split = true;
                        if self.locks.is_empty() {
                            // The surviving prefix is read-only: it
                            // serializes at rv like any read-only commit,
                            // no re-validation needed.
                            self.durable_prepare(None, logical);
                            return self.finish_window_commit(logical, split, true);
                        }
                    }
                    None => {
                        // The conflict reaches into the first invocation:
                        // nothing salvageable.
                        self.stats.aborts += logical - 1; // + rollback_top's 1
                        self.rollback_top();
                        self.cm_after_abort();
                        return 0;
                    }
                }
            }
        }
        self.chaos(crate::contention::ChaosPoint::Commit);
        // One redo record for the whole batch — durability's share of the
        // amortization — encoded while the surviving locks are still held
        // and flushed (strict mode) before they publish.
        self.durable_prepare(Some(ticket.wv), logical);
        // Publish every surviving lock at the batch's single write
        // version.
        let wv = ticket.wv;
        for l in &self.locks {
            self.rt
                .orecs
                .at(l.idx)
                .store(wv, std::sync::atomic::Ordering::Release);
        }
        self.locks.clear();
        self.finish_window_commit(logical, split, false)
    }

    /// Collapse the boundary levels and finish the physical commit,
    /// booking `logical` logical commits (and the merge telemetry) in one
    /// absorption.
    fn finish_window_commit(&mut self, logical: u64, split: bool, ro: bool) -> u64 {
        debug_assert!(logical >= 1);
        if ro {
            self.stats.commits_ro += 1;
        }
        if split {
            self.pending.merge.salvaged += logical;
        }
        if logical >= 2 {
            self.pending.merge.merged_txns += logical;
        }
        self.collapse_batch_levels();
        self.finish_commit(); // commits += 1, absorbs pending once
        self.stats.commits += logical - 1;
        logical
    }

    /// Pop the boundary levels without rolling anything back (the window
    /// is committing): the heap analogue of a nested child committing into
    /// its parent, minus the alloc-level demotion — the allocation log is
    /// cleared by `finish_commit` immediately after, with no barrier in
    /// between.
    fn collapse_batch_levels(&mut self) {
        while self.depth > 1 {
            self.depth -= 1;
            self.sp_marks.pop();
            self.nursery_pop_level();
        }
        self.sp_inner = *self.sp_marks.last().expect("outermost mark");
        self.clear_capture_cache();
        self.batch_marks.clear();
    }

    /// Unwind boundary levels (innermost first) until `batch_marks.len()
    /// == t`: each pop partially rolls back one logical segment via its
    /// checkpoint, restoring undo values, releasing its locks at their
    /// pre-lock versions, truncating reads/allocs/frees, and rewinding the
    /// nursery watermark.
    fn batch_unwind_to(&mut self, t: usize) {
        while self.batch_marks.len() > t {
            let m = self.batch_marks.pop().expect("mark underflow");
            self.partial_rollback(m.cp);
        }
    }

    /// Map an invalid read-set position to a salvage point: find the
    /// logical segment owning read `p`, walk back to the start of the
    /// closure *invocation* containing it (internal `boundary()` segments
    /// cannot be resumed independently), unwind to there, and return the
    /// surviving logical count. `None` when the conflict reaches the first
    /// invocation (nothing salvageable).
    fn batch_unwind_for_read(&mut self, p: usize) -> Option<u64> {
        // Segment s owns reads [marks[s-1].cp.reads, marks[s].cp.reads).
        let s = self
            .batch_marks
            .iter()
            .take_while(|m| m.cp.reads <= p)
            .count();
        if s == 0 {
            return None;
        }
        let mut t = s - 1;
        while !self.batch_marks[t].invocation_start {
            if t == 0 {
                return None;
            }
            t -= 1;
        }
        self.batch_unwind_to(t);
        // Mark t was pushed when t + 1 logical transactions had completed.
        Some(t as u64 + 1)
    }

    /// Record a logical boundary: checkpoint the logs and open a nesting
    /// level (the capture-status carrier; see the module docs).
    fn push_batch_mark(&mut self, invocation_start: bool) {
        let cp = self.checkpoint();
        self.push_level(&cp);
        self.batch_marks.push(BatchMark {
            cp,
            invocation_start,
        });
    }

    /// `TxBatch::boundary` backend: complete the current logical
    /// transaction and open the next within one closure invocation.
    pub(crate) fn batch_boundary(&mut self) -> TxResult<()> {
        assert!(self.in_batch, "boundary() outside txn_batch");
        assert_eq!(
            self.depth as usize,
            self.batch_marks.len() + 1,
            "boundary() inside a nested transaction"
        );
        self.batch_logical += 1;
        self.push_batch_mark(false);
        Ok(())
    }
}
