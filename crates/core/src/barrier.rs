//! The capture-optimized read and write barriers (paper Fig. 2 and §3.1).
//!
//! Barrier structure, in order:
//! 1. statistics/classification bookkeeping;
//! 2. **capture fast paths** according to [`crate::Mode`]:
//!    compiler-elided sites (static), transaction-local stack (one range
//!    compare), transaction-local heap (allocation-log lookup), annotated
//!    private memory;
//! 3. the **full STM barrier**: optimistic versioned read with snapshot
//!    extension, or encounter-time lock acquisition + undo log + in-place
//!    store.

use std::sync::atomic::Ordering;

use capture::AllocLog;
use txmem::Addr;

use crate::config::Mode;
use crate::orec::{is_locked, lock_value, owner_of};
use crate::site::Site;
use crate::worker::{Abort, LockEntry, ReadEntry, TxResult, UndoEntry, WorkerCtx};

/// Where a captured address was allocated, relative to the current nesting.
enum CaptureHit {
    /// Captured by the current (innermost) transaction: plain access.
    Current,
    /// Captured by an ancestor: reads are plain; writes need an undo entry
    /// (paper §2.2.1: live-in for the child, partial abort must restore).
    Ancestor,
}

impl WorkerCtx<'_> {
    /// Innermost nesting level that captured this stack address, if any.
    #[inline]
    fn stack_capture(&self, addr: Addr) -> Option<CaptureHit> {
        let a = addr.raw();
        if a < self.stack.sp() || a >= self.sp_marks[0] {
            return None;
        }
        if a < self.sp_marks[self.depth as usize - 1] {
            Some(CaptureHit::Current)
        } else {
            Some(CaptureHit::Ancestor)
        }
    }

    /// Allocation-log lookup, translated to current/ancestor.
    #[inline]
    fn heap_capture(&self, addr: Addr) -> Option<CaptureHit> {
        self.alloc_log.query(addr.raw()).map(|level| {
            if level >= self.depth {
                CaptureHit::Current
            } else {
                CaptureHit::Ancestor
            }
        })
    }

    /// Figure-8 classification of a barrier (runs under `cfg.classify`,
    /// using the precise shadow tree exactly as the paper counts
    /// opportunities with its tree-based runtime algorithm).
    #[inline]
    fn classify(&mut self, site: &'static Site, addr: Addr, is_write: bool) {
        let a = addr.raw();
        let stack_hit = a >= self.stack.sp() && a < self.sp_marks[0];
        let heap_hit = !stack_hit
            && self
                .classify_log
                .as_ref()
                .is_some_and(|t| t.query(a).is_some());
        let b = if is_write {
            &mut self.stats.writes
        } else {
            &mut self.stats.reads
        };
        if stack_hit {
            b.class_stack += 1;
        } else if heap_hit {
            b.class_heap += 1;
        } else if !site.required {
            b.class_other += 1;
        } else {
            b.class_required += 1;
        }
        // Validate static verdicts against ground truth: a site the
        // "compiler" elides must target captured memory on every dynamic
        // execution, or the tag is a miscompilation.
        if site.compiler_elides && !stack_hit && !heap_hit {
            b.static_violations += 1;
        }
    }

    /// The read barrier (paper Fig. 2).
    pub(crate) fn read_word(&mut self, site: &'static Site, addr: Addr) -> TxResult<u64> {
        debug_assert!(self.depth > 0, "read barrier outside transaction");
        self.stats.reads.total += 1;
        if self.cfg.classify {
            self.classify(site, addr, false);
        }

        match self.cfg.mode {
            Mode::Compiler => {
                if site.compiler_elides {
                    self.stats.reads.elided_static += 1;
                    return Ok(self.rt.mem.load_private(addr));
                }
            }
            Mode::Runtime { scope, .. } if scope.reads => {
                if scope.stack && self.stack_capture(addr).is_some() {
                    self.stats.reads.elided_stack += 1;
                    return Ok(self.rt.mem.load_private(addr));
                }
                if scope.heap && self.heap_capture(addr).is_some() {
                    self.stats.reads.elided_heap += 1;
                    return Ok(self.rt.mem.load_private(addr));
                }
            }
            _ => {}
        }
        if self.cfg.annotations && self.private_log.is_private(addr.raw()) {
            self.stats.reads.elided_annotation += 1;
            return Ok(self.rt.mem.load_private(addr));
        }

        self.stats.reads.full += 1;
        self.read_full(addr)
    }

    /// The write barrier.
    pub(crate) fn write_word(&mut self, site: &'static Site, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert!(self.depth > 0, "write barrier outside transaction");
        self.stats.writes.total += 1;
        if self.cfg.classify {
            self.classify(site, addr, true);
        }

        match self.cfg.mode {
            Mode::Compiler => {
                if site.compiler_elides {
                    self.stats.writes.elided_static += 1;
                    self.rt.mem.store_private(addr, val);
                    return Ok(());
                }
            }
            Mode::Runtime { scope, .. } if scope.writes => {
                if scope.stack {
                    match self.stack_capture(addr) {
                        Some(CaptureHit::Current) => {
                            self.stats.writes.elided_stack += 1;
                            self.rt.mem.store_private(addr, val);
                            return Ok(());
                        }
                        Some(CaptureHit::Ancestor) => {
                            self.stats.writes.parent_captured += 1;
                            self.undo.push(UndoEntry {
                                addr,
                                old: self.rt.mem.load_private(addr),
                            });
                            self.rt.mem.store_private(addr, val);
                            return Ok(());
                        }
                        None => {}
                    }
                }
                if scope.heap {
                    match self.heap_capture(addr) {
                        Some(CaptureHit::Current) => {
                            self.stats.writes.elided_heap += 1;
                            self.rt.mem.store_private(addr, val);
                            return Ok(());
                        }
                        Some(CaptureHit::Ancestor) => {
                            self.stats.writes.parent_captured += 1;
                            self.undo.push(UndoEntry {
                                addr,
                                old: self.rt.mem.load_private(addr),
                            });
                            self.rt.mem.store_private(addr, val);
                            return Ok(());
                        }
                        None => {}
                    }
                }
            }
            _ => {}
        }
        if self.cfg.annotations && self.private_log.is_private(addr.raw()) {
            self.stats.writes.elided_annotation += 1;
            // Paper §3.1.3: annotated memory is accessed directly — the
            // programmer asserts no other transaction can observe it, and
            // (like the paper) we do not undo-log it.
            self.rt.mem.store_private(addr, val);
            return Ok(());
        }

        self.stats.writes.full += 1;
        self.write_full(addr, val)
    }

    /// Full optimistic read: versioned-read loop with snapshot extension
    /// (gives opacity, so transactions never act on inconsistent state).
    fn read_full(&mut self, addr: Addr) -> TxResult<u64> {
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v1 = orec.load(Ordering::Acquire);
            if is_locked(v1) {
                if owner_of(v1) == me {
                    // Read-after-write to the same record: we own it, the
                    // in-place value is ours.
                    return Ok(self.rt.mem.load(addr));
                }
                spins += 1;
                if spins > self.cfg.spin_tries {
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            let val = self.rt.mem.load(addr);
            let v2 = orec.load(Ordering::Acquire);
            if v1 != v2 {
                spins += 1;
                if spins > self.cfg.spin_tries {
                    return Err(Abort::Conflict);
                }
                continue;
            }
            if v1 > self.rv && !self.extend() {
                return Err(Abort::Conflict);
            }
            self.reads.push(ReadEntry { idx, version: v1 });
            return Ok(val);
        }
    }

    /// Full write: encounter-time lock acquisition, undo log, in-place
    /// update (the Intel STM discipline the paper describes in §2.1).
    fn write_full(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v = orec.load(Ordering::Acquire);
            if is_locked(v) {
                if owner_of(v) == me {
                    // Write-after-write to an owned record: the cheap check
                    // the paper notes already catches redundant write
                    // barriers in the baseline (yada discussion, §4.2).
                    self.undo.push(UndoEntry {
                        addr,
                        old: self.rt.mem.load(addr),
                    });
                    self.rt.mem.store(addr, val);
                    return Ok(());
                }
                spins += 1;
                if spins > self.cfg.spin_tries {
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            if v > self.rv && !self.extend() {
                return Err(Abort::Conflict);
            }
            match orec.compare_exchange_weak(
                v,
                lock_value(me),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.locks.push(LockEntry { idx, prev: v });
                    self.undo.push(UndoEntry {
                        addr,
                        old: self.rt.mem.load(addr),
                    });
                    self.rt.mem.store(addr, val);
                    return Ok(());
                }
                Err(_) => {
                    spins += 1;
                    if spins > self.cfg.spin_tries {
                        return Err(Abort::Conflict);
                    }
                }
            }
        }
    }
}
