//! A typed, zero-cost transactional object layer over the word-level
//! barrier core.
//!
//! The runtime's hot paths speak raw word addresses: `tx.read(&SITE,
//! addr)? -> u64`, hand-computed `addr.word(3)` offsets, per-type method
//! triplets, and manually balanced `stack_push`/`stack_pop`. That is the
//! right *lowest* layer — it is what the paper's barriers operate on — but
//! real programs (the STAMP data structures, the examples) want to talk
//! about typed objects with named fields. This module adds that layer
//! without adding a single instruction to the barrier fast path:
//!
//! * [`TxWord`] — a codec between a Rust value and the one simulated
//!   machine word that stores it (`u64`, `i64`, `f64`, `bool`, [`Addr`],
//!   typed pointers, small enums via [`tx_word_enum!`](crate::tx_word_enum)).
//! * [`TxObject`] — a word-counted object layout. Implemented by the
//!   [`tx_object!`](crate::tx_object) macro, which turns a struct-like
//!   declaration into a layout marker type plus one [`Field`] projection
//!   constant per field.
//! * [`TxPtr<O>`] — a typed, copyable handle over an [`Addr`] that points
//!   at an `O`-shaped object; `p.field(O::name)` replaces `addr.word(3)`.
//! * [`TxBuf<V>`] — a typed handle over a contiguous run of `V`-encoded
//!   words (the backing arrays of queue/vector-like structures).
//! * [`StackFrame`] — an RAII guard for a transaction-local stack frame
//!   shaped like an object; the frame pops itself on drop, so the stack
//!   capture window of paper Fig. 3 can never be left unbalanced.
//!
//! # Lowering and the zero-cost contract
//!
//! Every typed entry point on [`Tx`] is a `#[inline]` wrapper that does
//! nothing but (a) compute `base + word_offset * 8` — arithmetic the
//! word-level caller would have written by hand — and (b) convert the
//! value through [`TxWord`], whose implementations are identity functions
//! or single-instruction bit casts. The barrier call underneath is the
//! *same* monomorphized `read_word`/`write_word` inline fast path the raw
//! API uses; the dispatch table, the capture checks, and the statistics
//! are shared, not parallel. The `barrier_dispatch` microbenchmark pins
//! this with a typed-vs-raw captured-heap row (gated in release runs),
//! and `crates/core/tests/typed_oracle.rs` proves the two APIs produce
//! bit-identical memory and statistics on random traces.

use std::marker::PhantomData;

use txmem::{words_to_bytes, Addr};

use crate::site::Site;
use crate::worker::{Tx, TxResult};

// ---------------------------------------------------------------------------
// TxWord: value <-> word codec
// ---------------------------------------------------------------------------

/// A value that fits in (and round-trips through) one simulated machine
/// word.
///
/// This is the codec behind the generic barrier entry points
/// ([`Tx::read_as`], [`Tx::write_as`], the field/element accessors, and
/// the non-transactional [`WorkerCtx::load_as`](crate::WorkerCtx::load_as)
/// family): callers pick the type, the codec picks the bits, and exactly
/// one word-level barrier runs underneath.
///
/// Implementations must be *lossless for the values the program stores*:
/// `from_word(v.to_word())` must reproduce `v` bit-exactly, so that the
/// typed API and the raw word API are observationally identical (the
/// `typed_oracle` differential test relies on this).
pub trait TxWord: Copy {
    /// Encode the value into its one-word memory representation.
    fn to_word(self) -> u64;
    /// Decode a word loaded from memory back into the value.
    fn from_word(w: u64) -> Self;
}

impl TxWord for u64 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_word(w: u64) -> u64 {
        w
    }
}

impl TxWord for i64 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> i64 {
        w as i64
    }
}

impl TxWord for f64 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_word(w: u64) -> f64 {
        f64::from_bits(w)
    }
}

/// `true` ⇔ nonzero. `to_word` stores canonical 0/1, so a bool field
/// written through the typed API always reads back bit-identically.
impl TxWord for bool {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> bool {
        w != 0
    }
}

impl TxWord for Addr {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.raw()
    }
    #[inline(always)]
    fn from_word(w: u64) -> Addr {
        Addr::from_raw(w)
    }
}

// ---------------------------------------------------------------------------
// TxObject + Field
// ---------------------------------------------------------------------------

/// The layout of one transactional object: a fixed number of words, with
/// field meaning carried by [`Field`] projection constants.
///
/// Implementations are marker types — they occupy no memory themselves;
/// the object's words live in the simulated address space behind a
/// [`TxPtr`]. Declare layouts with [`tx_object!`](crate::tx_object)
/// rather than by hand so the word count and the field offsets can never
/// disagree.
pub trait TxObject {
    /// Object size in simulated machine words.
    const WORDS: u64;
    /// Object size in bytes — what [`Tx::alloc_obj`] requests from the
    /// transactional allocator (which then class-rounds it exactly as a
    /// raw `tx.alloc(BYTES)` would be).
    const BYTES: u64 = words_to_bytes(Self::WORDS);
}

/// A typed projection of one field of a `O`-shaped object: the field's
/// word offset plus the two types that make projections checkable — the
/// owning layout `O` (you cannot apply a list-node field to a tree node)
/// and the value type `V` (reading a pointer field yields a pointer, not
/// a bare `u64`).
///
/// `Field`s are zero-sized-plus-offset constants generated by
/// [`tx_object!`](crate::tx_object); [`Field::at`] is public so array-like
/// code can form computed projections (`Field::at(base + i)`), which is
/// exactly as checked as raw `addr.word(i)` — no more, no less.
pub struct Field<O, V> {
    word: u64,
    _types: PhantomData<fn() -> (O, V)>,
}

impl<O, V> Field<O, V> {
    /// Projection of the field occupying word `word` of the object.
    #[inline]
    pub const fn at(word: u64) -> Field<O, V> {
        Field {
            word,
            _types: PhantomData,
        }
    }

    /// The field's word offset within the object.
    #[inline]
    pub const fn word(self) -> u64 {
        self.word
    }

    /// The projection `i` words past this one — the typed spelling of an
    /// array-structured tail. Layouts with a run of same-typed fields
    /// (`fwd0`, `fwd1`, …, declared contiguously) can index the run as
    /// `Node::fwd0.index(level)` instead of spelling a `match` over the
    /// named constants. Exactly as checked as [`Field::at`]: the caller
    /// owns the bound, no more, no less.
    #[inline]
    pub const fn index(self, i: u64) -> Field<O, V> {
        Field::at(self.word + i)
    }
}

impl<O, V> Clone for Field<O, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<O, V> Copy for Field<O, V> {}

impl<O, V> std::fmt::Debug for Field<O, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Field(word {})", self.word)
    }
}

// ---------------------------------------------------------------------------
// TxPtr
// ---------------------------------------------------------------------------

/// A typed, copyable handle over an [`Addr`] pointing at an `O`-shaped
/// object in the simulated address space.
///
/// `TxPtr` is exactly one word wide and implements [`TxWord`], so typed
/// pointers can be stored in object fields (`next: TxPtr<Node>`) and
/// follow the same null convention as raw addresses (word 0 is reserved;
/// see [`txmem::NULL`]). It carries no lifetime and no provenance — like
/// the raw API, validity is the program's obligation; the type parameter
/// only pins the *layout* used to project fields.
pub struct TxPtr<O> {
    addr: Addr,
    _object: PhantomData<fn() -> O>,
}

impl<O> TxPtr<O> {
    /// The null pointer (no object).
    pub const NULL: TxPtr<O> = TxPtr::from_addr(txmem::NULL);

    /// Wrap a raw address as a typed object pointer.
    #[inline]
    pub const fn from_addr(addr: Addr) -> TxPtr<O> {
        TxPtr {
            addr,
            _object: PhantomData,
        }
    }

    /// Wrap a raw word (e.g. a value loaded from untyped memory) as a
    /// typed object pointer.
    #[inline]
    pub const fn from_raw(raw: u64) -> TxPtr<O> {
        TxPtr::from_addr(Addr::from_raw(raw))
    }

    /// The object's base address.
    #[inline]
    pub const fn addr(self) -> Addr {
        self.addr
    }

    /// The raw word representation (what a pointer field stores).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.addr.raw()
    }

    /// True if this is the null pointer.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.addr.is_null()
    }

    /// Address of one field of the object — the typed replacement for
    /// hand-computed `addr.word(3)` offsets. Compiles to the identical
    /// base-plus-offset arithmetic.
    #[inline]
    pub const fn field<V>(self, f: Field<O, V>) -> Addr {
        self.addr.word(f.word())
    }
}

impl<O> Clone for TxPtr<O> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<O> Copy for TxPtr<O> {}
impl<O> PartialEq for TxPtr<O> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<O> Eq for TxPtr<O> {}
impl<O> Default for TxPtr<O> {
    /// The null pointer.
    fn default() -> Self {
        TxPtr::NULL
    }
}
impl<O> std::fmt::Debug for TxPtr<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxPtr({:#x})", self.addr.raw())
    }
}

impl<O> TxWord for TxPtr<O> {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.addr.raw()
    }
    #[inline(always)]
    fn from_word(w: u64) -> TxPtr<O> {
        TxPtr::from_addr(Addr::from_raw(w))
    }
}

// ---------------------------------------------------------------------------
// TxBuf
// ---------------------------------------------------------------------------

/// A typed handle over a contiguous run of `V`-encoded words — the
/// backing arrays of queue/vector-like structures. Element `i` lives at
/// `addr.word(i)`; like [`TxPtr`], the handle itself is one word wide and
/// storable in object fields.
///
/// The buffer's *length* is deliberately not part of the handle: the
/// word-level substrate has no fat pointers, and the structures that use
/// buffers (e.g. the STAMP queue) keep the capacity in an adjacent
/// header field, exactly as their C originals do.
pub struct TxBuf<V> {
    addr: Addr,
    _elem: PhantomData<fn() -> V>,
}

impl<V> TxBuf<V> {
    /// The null buffer.
    pub const NULL: TxBuf<V> = TxBuf::from_addr(txmem::NULL);

    /// Wrap a raw address as a typed buffer handle.
    #[inline]
    pub const fn from_addr(addr: Addr) -> TxBuf<V> {
        TxBuf {
            addr,
            _elem: PhantomData,
        }
    }

    /// The buffer's base address.
    #[inline]
    pub const fn addr(self) -> Addr {
        self.addr
    }

    /// True if this is the null buffer.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.addr.is_null()
    }

    /// Address of element `i`.
    #[inline]
    pub const fn elem(self, i: u64) -> Addr {
        self.addr.word(i)
    }
}

impl<V> Clone for TxBuf<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for TxBuf<V> {}
impl<V> PartialEq for TxBuf<V> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<V> Eq for TxBuf<V> {}
impl<V> Default for TxBuf<V> {
    /// The null buffer.
    fn default() -> Self {
        TxBuf::NULL
    }
}
impl<V> std::fmt::Debug for TxBuf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxBuf({:#x})", self.addr.raw())
    }
}

impl<V> TxWord for TxBuf<V> {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.addr.raw()
    }
    #[inline(always)]
    fn from_word(w: u64) -> TxBuf<V> {
        TxBuf::from_addr(Addr::from_raw(w))
    }
}

// ---------------------------------------------------------------------------
// TxSlice: length-carrying buffer handle
// ---------------------------------------------------------------------------

/// A length-carrying typed buffer handle: a [`TxBuf`] plus the element
/// count, validated once at construction.
///
/// Where [`TxBuf`] deliberately stays one word wide (storable in object
/// fields, length kept in an adjacent header like the C originals), a
/// `TxSlice` is the *local* working handle a bulk operation builds after
/// reading that header: construction runs the checked words-to-bytes
/// conversion once, so per-element access ([`TxSlice::elem`]) and the
/// slice-style bulk entry points ([`Tx::read_elems`] /
/// [`Tx::write_elems`]) are left with a single bounds compare.
pub struct TxSlice<V> {
    addr: Addr,
    len: u64,
    _elem: PhantomData<fn() -> V>,
}

impl<V> TxSlice<V> {
    /// Wrap `len` `V`-encoded words starting at `addr`. The byte length is
    /// checked here (overflow panics), hoisting the validation out of every
    /// subsequent access.
    #[inline]
    pub const fn new(addr: Addr, len: u64) -> TxSlice<V> {
        // Evaluated for the overflow check alone.
        let _bytes = words_to_bytes(len);
        TxSlice {
            addr,
            len,
            _elem: PhantomData,
        }
    }

    /// View of a [`TxBuf`] whose length the caller has just read from the
    /// structure's header field.
    #[inline]
    pub const fn of(buf: TxBuf<V>, len: u64) -> TxSlice<V> {
        TxSlice::new(buf.addr(), len)
    }

    /// The slice's base address.
    #[inline]
    pub const fn addr(self) -> Addr {
        self.addr
    }

    /// Element count.
    #[inline]
    pub const fn len(self) -> u64 {
        self.len
    }

    /// True if the slice holds no elements.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The length-less handle (e.g. to store back into a header field).
    #[inline]
    pub const fn buf(self) -> TxBuf<V> {
        TxBuf::from_addr(self.addr)
    }

    /// Address of element `i` — one bounds compare, then the same
    /// base-plus-offset arithmetic as raw `addr.word(i)`.
    #[inline]
    pub fn elem(self, i: u64) -> Addr {
        assert!(
            i < self.len,
            "TxSlice index {i} out of bounds ({})",
            self.len
        );
        self.addr.word(i)
    }

    /// Sub-slice `[start, start + len)`; bounds-checked once, like the
    /// construction it replaces.
    #[inline]
    pub fn slice(self, start: u64, len: u64) -> TxSlice<V> {
        assert!(
            start <= self.len && len <= self.len - start,
            "TxSlice range {start}+{len} out of bounds ({})",
            self.len
        );
        TxSlice {
            addr: self.addr.word(start),
            len,
            _elem: PhantomData,
        }
    }
}

impl<V> Clone for TxSlice<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for TxSlice<V> {}
impl<V> std::fmt::Debug for TxSlice<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxSlice({:#x}, len {})", self.addr.raw(), self.len)
    }
}

/// Words staged per ranged call by the chunked bulk operations
/// ([`Tx::read_elems`], [`Tx::write_elems`], the cursors): big enough that
/// a ≥64-word span amortizes classification to nothing, small enough to
/// live on the real stack.
const CHUNK_WORDS: usize = 128;

// ---------------------------------------------------------------------------
// Cursors: iterator-analog sequential access
// ---------------------------------------------------------------------------

/// A buffered forward *read* cursor over a [`TxSlice`] — the typed
/// iterator analog for sequential scans.
///
/// Each refill pulls up to a 128-word chunk of elements through one
/// [`Tx::read_range`] call, so a full scan classifies capture once per
/// chunk instead of once per element. The cursor holds no borrow of the
/// transaction; pass `tx` to [`TxCursor::next`], which keeps user loops
/// free to interleave other transactional work.
pub struct TxCursor<V> {
    slice: TxSlice<V>,
    /// Index of the next element to hand out.
    pos: u64,
    buf: [u64; CHUNK_WORDS],
    /// Element index of `buf[0]`.
    buf_base: u64,
    /// Valid prefix of `buf`.
    buf_len: usize,
}

impl<V: TxWord> TxCursor<V> {
    /// A cursor positioned at element 0 of `slice`.
    pub fn new(slice: TxSlice<V>) -> TxCursor<V> {
        TxCursor {
            slice,
            pos: 0,
            buf: [0; CHUNK_WORDS],
            buf_base: 0,
            buf_len: 0,
        }
    }

    /// Index of the next element [`TxCursor::next`] would return.
    #[inline]
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// The next element, or `None` past the end of the slice.
    #[inline]
    pub fn next(&mut self, tx: &mut Tx<'_, '_>, site: &'static Site) -> TxResult<Option<V>> {
        if self.pos >= self.slice.len() {
            return Ok(None);
        }
        let rel = self.pos.wrapping_sub(self.buf_base);
        if rel >= self.buf_len as u64 {
            self.refill(tx, site)?;
        }
        let w = self.buf[(self.pos - self.buf_base) as usize];
        self.pos += 1;
        Ok(Some(V::from_word(w)))
    }

    #[cold]
    fn refill(&mut self, tx: &mut Tx<'_, '_>, site: &'static Site) -> TxResult<()> {
        let n = (self.slice.len() - self.pos).min(CHUNK_WORDS as u64) as usize;
        tx.read_range(site, self.slice.addr().word(self.pos), &mut self.buf[..n])?;
        self.buf_base = self.pos;
        self.buf_len = n;
        Ok(())
    }
}

/// A buffered forward *write* cursor over a [`TxSlice`]: elements pushed
/// with [`TxWriter::push`] are staged and lowered through one
/// [`Tx::write_range`] per 128-word chunk.
///
/// The staging buffer must be drained with an explicit [`TxWriter::flush`]
/// (the cursor cannot flush on drop — it holds no transaction borrow).
/// Dropping a writer with staged elements simply discards them, which is
/// exactly the right behavior on an abort propagating out of the writing
/// loop with `?`.
pub struct TxWriter<V> {
    slice: TxSlice<V>,
    /// Index the staged prefix starts at (i.e. where the next flush
    /// writes).
    pos: u64,
    buf: [u64; CHUNK_WORDS],
    buf_len: usize,
}

impl<V: TxWord> TxWriter<V> {
    /// A writer positioned at element 0 of `slice`.
    pub fn new(slice: TxSlice<V>) -> TxWriter<V> {
        TxWriter {
            slice,
            pos: 0,
            buf: [0; CHUNK_WORDS],
            buf_len: 0,
        }
    }

    /// Index the next pushed element will land at.
    #[inline]
    pub fn pos(&self) -> u64 {
        self.pos + self.buf_len as u64
    }

    /// Stage one element, flushing automatically when the buffer fills.
    /// Panics (via the slice bound) if pushed past the end of the slice.
    #[inline]
    pub fn push(&mut self, tx: &mut Tx<'_, '_>, site: &'static Site, val: V) -> TxResult<()> {
        assert!(
            self.pos() < self.slice.len(),
            "TxWriter pushed past the end of the slice ({})",
            self.slice.len()
        );
        self.buf[self.buf_len] = val.to_word();
        self.buf_len += 1;
        if self.buf_len == CHUNK_WORDS {
            self.flush(tx, site)?;
        }
        Ok(())
    }

    /// Write all staged elements through one ranged barrier call.
    pub fn flush(&mut self, tx: &mut Tx<'_, '_>, site: &'static Site) -> TxResult<()> {
        if self.buf_len > 0 {
            tx.write_range(
                site,
                self.slice.addr().word(self.pos),
                &self.buf[..self.buf_len],
            )?;
            self.pos += self.buf_len as u64;
            self.buf_len = 0;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Declarative layout macros
// ---------------------------------------------------------------------------

/// Declare a transactional object layout once and get typed field
/// projections for free.
///
/// The struct-like body is a *layout declaration*, not a Rust struct: the
/// macro emits a zero-sized marker type implementing [`TxObject`] (word
/// count = field count) plus one [`Field`] constant per field, named
/// after the field, so `p.field(Node::next)` replaces `addr.word(0)`:
///
/// ```
/// use stm::{tx_object, TxPtr};
///
/// tx_object! {
///     /// A sorted-list node.
///     pub struct Node {
///         /// Next node in key order.
///         pub next: TxPtr<Node>,
///         /// The key.
///         pub key: u64,
///     }
/// }
///
/// let p = TxPtr::<Node>::from_raw(0x100);
/// assert_eq!(<Node as stm::TxObject>::WORDS, 2);
/// assert_eq!(p.field(Node::next).raw(), 0x100);
/// assert_eq!(p.field(Node::key).raw(), 0x108);
/// ```
///
/// Field constants intentionally keep the declared (lower-case) names —
/// they *are* the fields, and `p.field(Node::next)` should read like
/// `p->next`.
#[macro_export]
macro_rules! tx_object {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $fty:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        $vis struct $name;

        impl $crate::TxObject for $name {
            const WORDS: u64 = {
                let fields: &[&str] = &[$(stringify!($field)),+];
                fields.len() as u64
            };
        }

        #[allow(non_upper_case_globals)]
        impl $name {
            $crate::tx_object!(@fields $name [] $( ($(#[$fmeta])* $fvis $field : $fty) )+);
        }
    };
    (@fields $name:ident [$($seen:ident)*]) => {};
    (@fields $name:ident [$($seen:ident)*]
        ($(#[$fmeta:meta])* $fvis:vis $field:ident : $fty:ty) $($rest:tt)*
    ) => {
        $(#[$fmeta])*
        #[doc = concat!(
            "Typed projection of the `", stringify!($field), "` field of `",
            stringify!($name), "`."
        )]
        $fvis const $field: $crate::Field<$name, $fty> = $crate::Field::at({
            let prior: &[&str] = &[$(stringify!($seen)),*];
            prior.len() as u64
        });
        $crate::tx_object!(@fields $name [$($seen)* $field] $($rest)*);
    };
}

/// Implement [`TxWord`] for a small fieldless enum with explicit
/// discriminants, so enum-typed fields go through the same generic
/// `read_field`/`write_field` entry points as every other word type:
///
/// ```
/// use stm::{tx_word_enum, TxWord};
///
/// tx_word_enum! {
///     /// Node color of a red-black tree.
///     pub enum Color {
///         /// Black (also the color of the nil sentinel).
///         Black = 0,
///         /// Red.
///         Red = 1,
///     }
/// }
///
/// assert_eq!(Color::Red.to_word(), 1);
/// assert_eq!(Color::from_word(0), Color::Black);
/// // Undeclared bits decode to the first variant — never a panic.
/// assert_eq!(Color::from_word(7), Color::Black);
/// ```
///
/// `from_word` is **total**: a word matching no declared discriminant
/// decodes to the *first* declared variant. It must not panic, because
/// an optimistic reader can transiently observe arbitrary bits that
/// pass validation: a committed transaction's freed block may be
/// reallocated and initialized by another thread's *captured* (barrier-
/// elided) writes, which by design bump no orec version. Such a reader
/// is doomed — its next validation aborts it — and the word-level API
/// has always tolerated the garbage in the meantime (a `u64` compare
/// just mis-branches); the typed codec must degrade identically rather
/// than turn a to-be-aborted transaction into a process crash. Genuine
/// codec bugs are caught where zombies cannot occur: the
/// single-threaded `typed_oracle` differential test compares decoded
/// round-trips bit-for-bit.
#[macro_export]
macro_rules! tx_word_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $(#[$vmeta0:meta])* $variant0:ident = $val0:literal
            $(, $(#[$vmeta:meta])* $variant:ident = $val:literal )* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(u64)]
        $vis enum $name {
            $(#[$vmeta0])* $variant0 = $val0
            $(, $(#[$vmeta])* $variant = $val )*
        }

        impl $crate::TxWord for $name {
            #[inline(always)]
            fn to_word(self) -> u64 {
                self as u64
            }
            #[inline(always)]
            fn from_word(w: u64) -> Self {
                match w {
                    $( $val => $name::$variant, )*
                    // The first variant's own discriminant and any
                    // zombie-observed garbage land here; see the macro
                    // docs for why this must be total.
                    _ => $name::$variant0,
                }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Typed entry points on Tx
// ---------------------------------------------------------------------------

impl<'a, 'rt> Tx<'a, 'rt> {
    /// Transactional read of one word, decoded as `V` — the generic entry
    /// point the `read`/`read_addr`/`read_f64` triplet lowers to.
    #[doc(alias = "read_addr")]
    #[doc(alias = "read_f64")]
    #[inline]
    pub fn read_as<V: TxWord>(&mut self, site: &'static Site, addr: Addr) -> TxResult<V> {
        Ok(V::from_word(self.0.read_word(site, addr)?))
    }

    /// Transactional write of one word, encoded from `V` — the generic
    /// entry point the `write`/`write_addr`/`write_f64` triplet lowers to.
    #[doc(alias = "write_addr")]
    #[doc(alias = "write_f64")]
    #[inline]
    pub fn write_as<V: TxWord>(&mut self, site: &'static Site, addr: Addr, val: V) -> TxResult<()> {
        self.0.write_word(site, addr, val.to_word())
    }

    /// Transactional read of one object field through the typed
    /// projection: `read_field(&SITE, p, Node::key)` ≙ `p->key`.
    #[inline]
    pub fn read_field<O: TxObject, V: TxWord>(
        &mut self,
        site: &'static Site,
        p: TxPtr<O>,
        f: Field<O, V>,
    ) -> TxResult<V> {
        self.read_as(site, p.field(f))
    }

    /// Transactional write of one object field; see [`Tx::read_field`].
    #[inline]
    pub fn write_field<O: TxObject, V: TxWord>(
        &mut self,
        site: &'static Site,
        p: TxPtr<O>,
        f: Field<O, V>,
        val: V,
    ) -> TxResult<()> {
        self.write_as(site, p.field(f), val)
    }

    /// Transactional read of buffer element `i`.
    #[inline]
    pub fn read_elem<V: TxWord>(
        &mut self,
        site: &'static Site,
        buf: TxBuf<V>,
        i: u64,
    ) -> TxResult<V> {
        self.read_as(site, buf.elem(i))
    }

    /// Transactional write of buffer element `i`.
    #[inline]
    pub fn write_elem<V: TxWord>(
        &mut self,
        site: &'static Site,
        buf: TxBuf<V>,
        i: u64,
        val: V,
    ) -> TxResult<()> {
        self.write_as(site, buf.elem(i), val)
    }

    /// Transactionally allocate one `O`-shaped object. Identical to
    /// `tx.alloc(O::BYTES)` — nursery-aware and class-rounded the same
    /// way — but returns a typed handle.
    #[inline]
    pub fn alloc_obj<O: TxObject>(&mut self) -> TxResult<TxPtr<O>> {
        Ok(TxPtr::from_addr(self.0.tx_alloc(O::BYTES)?))
    }

    /// Transactionally free an object allocated with [`Tx::alloc_obj`]
    /// (or any object the program owns; same semantics as [`Tx::free`]).
    #[inline]
    pub fn free_obj<O>(&mut self, p: TxPtr<O>) {
        self.0.tx_free(p.addr())
    }

    /// Transactionally allocate a buffer of `len` `V`-encoded words;
    /// identical to `tx.alloc(len * 8)` plus a typed handle.
    #[inline]
    pub fn alloc_buf<V: TxWord>(&mut self, len: u64) -> TxResult<TxBuf<V>> {
        Ok(TxBuf::from_addr(self.0.tx_alloc(words_to_bytes(len))?))
    }

    /// Transactionally free a buffer allocated with [`Tx::alloc_buf`].
    #[inline]
    pub fn free_buf<V>(&mut self, buf: TxBuf<V>) {
        self.0.tx_free(buf.addr())
    }

    /// Transactionally allocate a length-carrying slice of `len`
    /// `V`-encoded words; [`Tx::alloc_buf`] plus the hoisted length check.
    #[inline]
    pub fn alloc_slice<V: TxWord>(&mut self, len: u64) -> TxResult<TxSlice<V>> {
        Ok(TxSlice::new(self.0.tx_alloc(words_to_bytes(len))?, len))
    }

    /// Bulk read of `out.len()` elements starting at element `start` of
    /// the slice: one bounds compare up front, then chunked
    /// [`Tx::read_range`] calls with the [`TxWord`] decode applied per
    /// element. Observationally identical to a [`Tx::read_elem`] loop.
    pub fn read_elems<V: TxWord>(
        &mut self,
        site: &'static Site,
        s: TxSlice<V>,
        start: u64,
        out: &mut [V],
    ) -> TxResult<()> {
        let n = out.len() as u64;
        assert!(
            start <= s.len() && n <= s.len() - start,
            "read_elems range {start}+{n} out of bounds ({})",
            s.len()
        );
        let mut chunk = [0u64; CHUNK_WORDS];
        let mut done = 0usize;
        while done < out.len() {
            let k = (out.len() - done).min(CHUNK_WORDS);
            self.0
                .read_range(site, s.addr().word(start + done as u64), &mut chunk[..k])?;
            for (v, &w) in out[done..done + k].iter_mut().zip(&chunk[..k]) {
                *v = V::from_word(w);
            }
            done += k;
        }
        Ok(())
    }

    /// Bulk write of `vals` starting at element `start` of the slice; see
    /// [`Tx::read_elems`].
    pub fn write_elems<V: TxWord>(
        &mut self,
        site: &'static Site,
        s: TxSlice<V>,
        start: u64,
        vals: &[V],
    ) -> TxResult<()> {
        let n = vals.len() as u64;
        assert!(
            start <= s.len() && n <= s.len() - start,
            "write_elems range {start}+{n} out of bounds ({})",
            s.len()
        );
        let mut chunk = [0u64; CHUNK_WORDS];
        let mut done = 0usize;
        while done < vals.len() {
            let k = (vals.len() - done).min(CHUNK_WORDS);
            for (w, &v) in chunk[..k].iter_mut().zip(&vals[done..done + k]) {
                *w = v.to_word();
            }
            self.0
                .write_range(site, s.addr().word(start + done as u64), &chunk[..k])?;
            done += k;
        }
        Ok(())
    }

    /// Push an `O`-shaped transaction-local stack frame guarded by RAII:
    /// the returned [`StackFrame`] pops it when dropped, so the stack
    /// capture window (paper Fig. 3) can never be left unbalanced — the
    /// safe replacement for manually paired `stack_push`/`stack_pop`.
    ///
    /// The frame mutably borrows the transaction; keep using it *through*
    /// the guard ([`StackFrame::tx`]) while the frame is live. Nested
    /// frames therefore drop in LIFO order by construction.
    #[inline]
    pub fn stack_frame<O: TxObject>(&mut self) -> StackFrame<'_, 'rt, O> {
        let base = TxPtr::from_addr(self.0.stack.push(O::WORDS as usize));
        StackFrame {
            tx: Tx(self.0),
            base,
        }
    }
}

// ---------------------------------------------------------------------------
// StackFrame
// ---------------------------------------------------------------------------

/// RAII guard for one `O`-shaped transaction-local stack frame; created
/// by [`Tx::stack_frame`], popped automatically on drop.
///
/// Why this is safe where raw `stack_push`/`stack_pop` is error-prone:
/// the guard owns a mutable reborrow of the transaction, so (a) the
/// borrow checker forces frames to die in LIFO order — an inner frame
/// (created through [`StackFrame::tx`]) must end before the outer one is
/// touched again — and (b) the pop cannot be forgotten on any exit path,
/// including `?`-propagated aborts and panics, because it lives in
/// `Drop`. The stack pointer the capture check compares against is thus
/// always exactly the frames still in scope.
pub struct StackFrame<'a, 'rt, O: TxObject> {
    tx: Tx<'a, 'rt>,
    base: TxPtr<O>,
}

impl<'a, 'rt, O: TxObject> StackFrame<'a, 'rt, O> {
    /// Typed pointer to the frame. The pointer is `Copy` and outlives the
    /// guard *as a value* (it is just an address) — exactly like a raw
    /// `stack_push` result; accessing it after the frame is popped is a
    /// stale-stack access, which the capture check then correctly treats
    /// as non-captured.
    #[inline]
    pub fn ptr(&self) -> TxPtr<O> {
        self.base
    }

    /// The transaction, for barriers and nested frames while this frame
    /// is live.
    #[inline]
    pub fn tx(&mut self) -> &mut Tx<'a, 'rt> {
        &mut self.tx
    }

    /// Read one field of the frame (sugar for `tx().read_field` on
    /// [`StackFrame::ptr`]).
    #[inline]
    pub fn read<V: TxWord>(&mut self, site: &'static Site, f: Field<O, V>) -> TxResult<V> {
        let p = self.base;
        self.tx.read_field(site, p, f)
    }

    /// Write one field of the frame; see [`StackFrame::read`].
    #[inline]
    pub fn write<V: TxWord>(
        &mut self,
        site: &'static Site,
        f: Field<O, V>,
        val: V,
    ) -> TxResult<()> {
        let p = self.base;
        self.tx.write_field(site, p, f, val)
    }
}

impl<O: TxObject> Drop for StackFrame<'_, '_, O> {
    fn drop(&mut self) {
        self.tx.0.stack.pop(O::WORDS as usize);
        debug_assert!(
            self.tx.0.depth == 0 || self.tx.0.stack.sp() <= self.tx.0.sp_marks[0],
            "stack frame outlived the transaction frame it was pushed in"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    tx_object! {
        /// Test layout: a 3-field record.
        pub struct Rec {
            /// Link to another record.
            pub link: TxPtr<Rec>,
            /// A float payload.
            pub weight: f64,
            /// A flag.
            pub done: bool,
        }
    }

    tx_word_enum! {
        /// Test enum.
        pub enum Color {
            /// black
            Black = 0,
            /// red
            Red = 1,
        }
    }

    static S: Site = Site::captured_escaped("typed.test");

    #[test]
    fn layout_counts_words_and_offsets_in_declaration_order() {
        assert_eq!(Rec::WORDS, 3);
        assert_eq!(Rec::BYTES, 24);
        let p = TxPtr::<Rec>::from_raw(0x1000);
        assert_eq!(p.field(Rec::link).raw(), 0x1000);
        assert_eq!(p.field(Rec::weight).raw(), 0x1008);
        assert_eq!(p.field(Rec::done).raw(), 0x1010);
    }

    #[test]
    fn computed_projections_walk_field_runs() {
        // `index` is the array-tail spelling: the i-th projection past a
        // base field, equal to naming the i-th constant directly.
        assert_eq!(Rec::link.index(0).word(), Rec::link.word());
        assert_eq!(Rec::link.index(1).word(), Rec::weight.word());
        assert_eq!(
            Field::<Rec, u64>::at(Rec::link.word()).index(2).word(),
            Rec::done.word()
        );
    }

    #[test]
    fn word_codecs_round_trip() {
        assert_eq!(u64::from_word(7u64.to_word()), 7);
        assert_eq!(i64::from_word((-3i64).to_word()), -3);
        assert_eq!(f64::from_word(2.5f64.to_word()), 2.5);
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        assert_eq!(f64::from_word(nan.to_word()).to_bits(), nan.to_bits());
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
        assert_eq!(Addr::from_word(Addr(0x88).to_word()), Addr(0x88));
        let p = TxPtr::<Rec>::from_raw(0x40);
        assert_eq!(TxPtr::<Rec>::from_word(p.to_word()), p);
        assert_eq!(Color::from_word(Color::Red.to_word()), Color::Red);
        assert_eq!(Color::from_word(Color::Black.to_word()), Color::Black);
    }

    #[test]
    fn enum_codec_is_total_over_zombie_bits() {
        // A doomed optimistic reader can observe arbitrary words that
        // pass validation (recycled captured memory); decoding must
        // tolerate them like the raw u64 compares always did — fall to
        // the first variant, never panic.
        assert_eq!(Color::from_word(7), Color::Black);
        assert_eq!(Color::from_word(u64::MAX), Color::Black);
    }

    #[test]
    fn null_handles() {
        assert!(TxPtr::<Rec>::NULL.is_null());
        assert!(TxPtr::<Rec>::default().is_null());
        assert!(TxBuf::<u64>::NULL.is_null());
        assert_eq!(TxBuf::<u64>::from_addr(Addr(0x20)).elem(2), Addr(0x30));
    }

    #[test]
    fn typed_accessors_round_trip_through_the_barriers() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let mut w = rt.spawn_worker();
        w.txn(|tx| {
            let a = tx.alloc_obj::<Rec>()?;
            let b = tx.alloc_obj::<Rec>()?;
            tx.write_field(&S, a, Rec::link, b)?;
            tx.write_field(&S, a, Rec::weight, 1.25)?;
            tx.write_field(&S, a, Rec::done, true)?;
            assert_eq!(tx.read_field(&S, a, Rec::link)?, b);
            assert_eq!(tx.read_field(&S, a, Rec::weight)?, 1.25);
            assert!(tx.read_field(&S, a, Rec::done)?);
            let buf = tx.alloc_buf::<f64>(4)?;
            tx.write_elem(&S, buf, 3, 0.5)?;
            assert_eq!(tx.read_elem(&S, buf, 3)?, 0.5);
            tx.free_buf(buf);
            tx.free_obj(b);
            tx.free_obj(a);
            Ok(())
        });
        // Every typed access above was captured (fresh allocations).
        assert_eq!(w.stats.writes.full, 0);
        assert_eq!(w.stats.reads.full, 0);
        assert!(w.stats.writes.elided_heap >= 4);
    }

    #[test]
    fn slices_bulk_ops_and_cursors_round_trip() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let mut w = rt.spawn_worker();
        w.txn(|tx| {
            let s = tx.alloc_slice::<f64>(300)?;
            let vals: Vec<f64> = (0..300).map(|i| i as f64 * 0.5).collect();
            tx.write_elems(&S, s, 0, &vals)?;
            let mut back = vec![0.0f64; 300];
            tx.read_elems(&S, s, 0, &mut back)?;
            assert_eq!(back, vals);

            // Sub-slice bulk ops hit the same words.
            let mid = s.slice(100, 50);
            let mut part = vec![0.0f64; 50];
            tx.read_elems(&S, mid, 0, &mut part)?;
            assert_eq!(part, &vals[100..150]);

            // Writer then cursor: sequential typed streaming.
            let mut wr = TxWriter::new(s);
            for i in 0..300 {
                wr.push(tx, &S, i as f64)?;
            }
            wr.flush(tx, &S)?;
            let mut cur = TxCursor::new(s);
            let mut i = 0u64;
            while let Some(v) = cur.next(tx, &S)? {
                assert_eq!(v, i as f64);
                i += 1;
            }
            assert_eq!(i, 300);
            tx.free_buf(s.buf());
            Ok(())
        });
        // All spans sat in freshly captured memory: nothing took the full
        // barrier, and the spans were processed as runs.
        assert_eq!(w.stats.reads.full, 0);
        assert_eq!(w.stats.writes.full, 0);
        assert!(w.stats.ranged_reads >= 3);
        assert!(w.stats.ranged_writes >= 3);
        assert!(w.stats.ranged_spans >= 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_elem_is_bounds_checked() {
        let s = TxSlice::<u64>::new(Addr(0x100), 4);
        let _ = s.elem(4);
    }

    #[test]
    fn stack_frame_pops_on_drop_and_on_abort() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let mut w = rt.spawn_worker();
        w.txn(|tx| {
            let sp0 = {
                let mut f = tx.stack_frame::<Rec>();
                f.write(&S, Rec::weight, 9.0)?;
                assert_eq!(f.read(&S, Rec::weight)?, 9.0);
                // A nested frame through the guard: LIFO by construction.
                let mut inner = f.tx().stack_frame::<Rec>();
                inner.write(&S, Rec::done, true)?;
                drop(inner);
                f.read(&S, Rec::weight)?
            };
            assert_eq!(sp0, 9.0);
            Ok(())
        });
        assert!(w.stats.writes.elided_stack >= 2);
        assert!(w.stats.reads.elided_stack >= 2);

        // An abort propagating with `?` must still pop the frame.
        let r: Result<(), u64> = w.txn_result(|tx| {
            let mut f = tx.stack_frame::<Rec>();
            f.write(&S, Rec::weight, 1.0)?;
            Err(crate::Abort::User(3))
        });
        assert_eq!(r, Err(3));
        // And a later transaction can push/pop cleanly again.
        w.txn(|tx| {
            let mut f = tx.stack_frame::<Rec>();
            f.write(&S, Rec::done, false)?;
            Ok(())
        });
    }
}
