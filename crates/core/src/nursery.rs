//! Transaction-local nursery management (the region lifecycle behind
//! [`capture::NurseryLog`]'s scalar classification).
//!
//! With [`crate::TxConfig::nursery`] active, a top-level transaction's
//! first small allocation carves a contiguous region from the heap's
//! existing lock-free frontier / recycled shards, and subsequent small
//! allocations bump inside it (class-rounded, ordinary headers — so a
//! published nursery block is indistinguishable from a free-list block).
//! The payoffs:
//!
//! * **O(1) capture checks** — the barrier classifies captured heap memory
//!   with the same two-compare range test as the stack check (see
//!   `barrier::fastpath` and the inline paths in `WorkerCtx::read_word`).
//! * **O(1) abort reclamation** — rollback returns *whole regions* to the
//!   recycled shards instead of walking per-block free lists.
//! * **Cheap commit publication** — blocks already live in `SharedMem`;
//!   commit is bookkeeping: trim the unused tail back to the shards.
//!
//! Everything the scalar range cannot represent *demotes* to the
//! configured allocation log (the paper's tree / array / filter), which
//! stays exact/conservative as before:
//!
//! * chaining to a non-contiguous region demotes the old region's live
//!   blocks (the nursery first tries a frontier CAS to extend in place);
//! * an in-transaction free that is not the top of the bump (a *hole*)
//!   demotes the live blocks below the hole and shrinks the scalar range
//!   to `[hole_end, bump)`, so future allocations stay scalar;
//! * large blocks never enter the nursery (classic path, logged).

use txmem::{Addr, HEADER_BYTES, NURSERY_REGION_BYTES};

use crate::worker::{AllocHome, WorkerCtx};

/// Nursery positions snapshotted at nested-transaction begin (stored in the
/// lifecycle `Checkpoint`); partial abort restores to these.
#[derive(Clone, Copy)]
pub(crate) struct NurseryCp {
    /// Regions carved when the level began; later ones belong to it.
    pub regions: usize,
}

impl WorkerCtx<'_> {
    /// Re-derive the inline scalar-window mirrors (`nur_lo`/`nur_rlen`/
    /// `nur_inner`/`nur_wlen`) from the authoritative [`NurseryLog`].
    /// Must run after *every* mutation of the nursery's scalar state —
    /// a stale window would elide a barrier for memory that is no longer
    /// captured (or skip an undo entry). Every mutation site lives in
    /// this module or goes through the level wrappers below, each of
    /// which ends with this call. The lengths stay zero unless the
    /// corresponding fast-path gate is on, so the inline checks are
    /// self-disabling in every other configuration.
    #[inline]
    fn refresh_nursery_window(&mut self) {
        self.nur_lo = self.nur.lo();
        self.nur_inner = self.nur.inner();
        self.nur_rlen = if self.fast.read_nursery {
            self.nur.bump() - self.nur.lo()
        } else {
            0
        };
        self.nur_wlen = if self.fast.write_nursery {
            self.nur.bump() - self.nur.inner()
        } else {
            0
        };
    }

    /// Transaction begin: reset the nursery and open level 1.
    pub(crate) fn nursery_begin(&mut self) {
        self.nur.begin();
        self.refresh_nursery_window();
    }

    /// Nested-transaction entry: snapshot the bump as the watermark.
    pub(crate) fn nursery_push_level(&mut self) {
        self.nur.push_level();
        self.refresh_nursery_window();
    }

    /// Nested-transaction exit (commit or conflict propagation).
    pub(crate) fn nursery_pop_level(&mut self) {
        self.nur.pop_level();
        self.refresh_nursery_window();
    }

    /// Bump-allocate a class-rounded `total` (header included) in the
    /// nursery, carving / extending / chaining regions as needed. `None`
    /// when the heap cannot supply a region (caller falls back to the
    /// classic path, which can still serve from smaller classes).
    pub(crate) fn nursery_alloc(&mut self, total: u64) -> Option<Addr> {
        if let Some(block) = self.nur.try_alloc(total) {
            return Some(self.nursery_finish(block, total));
        }
        // Active region full (or none yet). Prefer growing it in place —
        // one frontier CAS — so the scalar range survives intact.
        if self.nur.has_region() && self.rt.heap.try_extend_region(self.nur.hi()) {
            self.nur.extend_active(NURSERY_REGION_BYTES);
            self.stats.nursery_regions += 1;
            let block = self.nur.try_alloc(total).expect("extended region fits");
            return Some(self.nursery_finish(block, total));
        }
        // Chain to a fresh region: recycle the old tail, demote the old
        // region's live blocks to the fallback log, switch the scalar over.
        let (region, len) = self.next_region(total)?;
        self.stats.nursery_regions += 1;
        if self.nur.has_region() {
            let (tail, tail_len) = self.nur.retire_active();
            if tail_len > 0 {
                self.stats.nursery_bytes_recycled +=
                    self.rt
                        .heap
                        .recycle_region_range(&mut self.talloc, tail, tail_len);
            }
            self.demote_scalar_blocks(u64::MAX);
        }
        self.nur.switch_region(region, len);
        let block = self.nur.try_alloc(total).expect("fresh region fits");
        Some(self.nursery_finish(block, total))
    }

    /// Supply the next nursery region: the tail carried over from the last
    /// commit when it fits `total` (no allocator traffic at all), else a
    /// fresh [`NURSERY_REGION_BYTES`] carve. A too-small spare is recycled
    /// so nothing is ever stranded.
    fn next_region(&mut self, total: u64) -> Option<(u64, u64)> {
        let (lo, hi) = self.nursery_spare;
        if hi - lo >= total {
            self.nursery_spare = (0, 0);
            return Some((lo, hi - lo));
        }
        let region = self.rt.heap.carve_region(&mut self.talloc)?;
        if hi > lo {
            self.rt
                .heap
                .recycle_region_range(&mut self.talloc, lo, hi - lo);
            self.nursery_spare = (0, 0);
        }
        Some((region, NURSERY_REGION_BYTES))
    }

    fn nursery_finish(&mut self, block: u64, total: u64) -> Addr {
        let payload = self
            .rt
            .heap
            .init_nursery_block(&mut self.talloc, block, total);
        self.nursery_live += total - HEADER_BYTES;
        self.refresh_nursery_window();
        payload
    }

    /// Move every live scalar-resident block whose block start is below
    /// `below` into the fallback policy log (demotion is verdict-neutral:
    /// the log reports the same level the scalar range did).
    fn demote_scalar_blocks(&mut self, below: u64) {
        for i in 0..self.allocs.len() {
            let rec = self.allocs[i];
            if rec.home == AllocHome::NurseryScalar
                && !rec.freed
                && rec.addr.raw() - HEADER_BYTES < below
            {
                self.allocs[i].home = AllocHome::NurseryLogged;
                (self.table.on_alloc)(&mut self.logs, rec.addr.raw(), rec.usable, rec.level);
            }
        }
    }

    /// Immediate free of the current level's scalar-resident block
    /// `allocs[i]`: a LIFO free hands the space straight back to the bump
    /// pointer; anything else punches a hole — the scalar range shrinks to
    /// above the hole, the blocks below demote to the fallback log, and
    /// the block's space is deferred to commit (at abort its region is
    /// recycled wholesale). Never touches any allocator lock.
    pub(crate) fn nursery_free_current(&mut self, i: usize) {
        let rec = self.allocs[i];
        debug_assert_eq!(rec.home, AllocHome::NurseryScalar);
        let block = rec.addr.raw() - HEADER_BYTES;
        let total = rec.usable + HEADER_BYTES;
        self.allocs[i].freed = true;
        if block + total == self.nur.bump() {
            self.nur.bump_back(block);
        } else {
            self.demote_scalar_blocks(block);
            self.nur.punch_hole(block, block + total);
            self.nursery_reclaim.push(rec.addr);
        }
        self.rt.heap.forget_live_bytes(rec.usable);
        self.talloc.free_count += 1;
        self.nursery_live -= rec.usable;
        self.refresh_nursery_window();
    }

    /// Immediate free of a current-level block that was demoted to the
    /// fallback log: remove it from the log; its space is deferred like a
    /// hole (commit recycles it to the class lists, abort recycles its
    /// region wholesale).
    pub(crate) fn nursery_free_logged(&mut self, i: usize) {
        let rec = self.allocs[i];
        debug_assert_eq!(rec.home, AllocHome::NurseryLogged);
        self.allocs[i].freed = true;
        (self.table.on_free)(&mut self.logs, rec.addr.raw(), rec.usable);
        self.clear_capture_cache(); // the freed block may be cached
        self.nursery_reclaim.push(rec.addr);
        self.rt.heap.forget_live_bytes(rec.usable);
        self.talloc.free_count += 1;
        self.nursery_live -= rec.usable;
    }

    /// Commit-time publication: the used prefixes of all regions simply
    /// *are* ordinary heap memory now (blocks carry standard headers), so
    /// publishing means trimming the active region's unused tail back to
    /// the shards and flushing the deferred hole reclaims to the thread's
    /// class free lists.
    pub(crate) fn nursery_commit(&mut self) {
        if self.nur.has_region() {
            let (tail, tail_len) = self.nur.retire_active();
            if tail_len > 0 {
                // Carry the tail over as the next transaction's region
                // instead of splintering it into class blocks — regions
                // are only consumed as fast as blocks are published.
                debug_assert_eq!(self.nursery_spare, (0, 0), "spare not consumed");
                self.nursery_spare = (tail, tail + tail_len);
            }
        }
        for i in 0..self.nursery_reclaim.len() {
            let addr = self.nursery_reclaim[i];
            self.rt.heap.recycle_block(&mut self.talloc, addr);
        }
        self.nursery_reclaim.clear();
        self.nursery_live = 0;
        self.nur.reset();
        self.refresh_nursery_window();
    }

    /// Top-level abort: un-publish the whole nursery in O(1) per region —
    /// chained-away regions go back to the recycled shards wholesale (no
    /// per-block free-list walk), the *active* region is retained as the
    /// next transaction's spare, and one subtraction settles the live-byte
    /// telemetry for every block at once.
    ///
    /// Retaining the active region (rather than recycling it) matters for
    /// more than speed. A region that started life as a commit-trimmed
    /// spare is no longer region-class-sized, so `recycle_region_range`
    /// would splinter it into mid-size class blocks; if the workload never
    /// allocates those classes, each commit→abort cycle then permanently
    /// converts ~one region of frontier into unreachable free-list blocks
    /// and a retry storm bleeds the heap dry (the liveness oracle's
    /// starvation stress found exactly this under injected chaos). Kept as
    /// the spare, the abort→retry cycle reuses the same bytes with zero
    /// allocator traffic.
    pub(crate) fn nursery_abort(&mut self) {
        if self.nursery_live > 0 {
            self.rt.heap.forget_live_bytes(self.nursery_live);
            self.nursery_live = 0;
        }
        let n = self.nur.region_count();
        for i in 0..n {
            let (start, len) = self.nur.regions()[i];
            if len == 0 {
                continue;
            }
            if i == n - 1 && self.nursery_spare == (0, 0) {
                self.nursery_spare = (start, start + len);
            } else {
                self.stats.nursery_bytes_recycled +=
                    self.rt
                        .heap
                        .recycle_region_range(&mut self.talloc, start, len);
            }
        }
        self.nursery_reclaim.clear();
        self.nur.reset();
        self.refresh_nursery_window();
    }

    /// Snapshot for a nested level's checkpoint.
    pub(crate) fn nursery_checkpoint(&self) -> NurseryCp {
        NurseryCp {
            regions: self.nur.region_count(),
        }
    }

    /// Partial abort of the innermost level (runs *after* the per-record
    /// rollback loop has settled log entries, accounting, and pushed
    /// orphaned demoted blocks onto the reclaim list). Regions the aborted
    /// level carved are recycled wholesale; otherwise the bump pointer
    /// rewinds to the level's watermark, reclaiming its scalar blocks in
    /// one move.
    pub(crate) fn nursery_partial_abort(&mut self, cp: NurseryCp) {
        if self.nur.region_count() > cp.regions {
            for i in cp.regions..self.nur.region_count() {
                let (start, len) = self.nur.regions()[i];
                if len > 0 {
                    self.stats.nursery_bytes_recycled +=
                        self.rt
                            .heap
                            .recycle_region_range(&mut self.talloc, start, len);
                }
            }
            // Reclaim entries inside recycled regions went back with them.
            let regions = self.nur.regions();
            let recycled = &regions[cp.regions..];
            self.nursery_reclaim.retain(|a| {
                let b = a.raw() - HEADER_BYTES;
                !recycled.iter().any(|&(s, l)| b >= s && b < s + l)
            });
            self.nur.abort_level();
            // The scalar range moved to a region that no longer exists;
            // empty it (everything still live was demoted to the log when
            // the level chained away).
            self.nur.clear_active(cp.regions);
        } else {
            self.nur.abort_level();
        }
        self.refresh_nursery_window();
    }
}
