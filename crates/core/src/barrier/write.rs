//! Monomorphized write-barrier variants. Same layering as `read`, plus the
//! ancestor-capture case: a write to memory captured by an *enclosing*
//! transaction is performed in place without locking, but needs an undo
//! entry so a partial abort of the current level restores it (paper
//! §2.2.1).

use txmem::Addr;

use super::{CaptureHit, PolicySlot};
use crate::site::Site;
use crate::worker::{TxResult, UndoEntry, WorkerCtx};

/// Bookkeeping every write barrier starts with.
#[inline(always)]
fn prologue(w: &mut WorkerCtx<'_>, site: &'static Site, addr: Addr) {
    debug_assert!(w.depth > 0, "write barrier outside transaction");
    if w.cfg.classify {
        w.classify_access(site, addr, true);
    }
}

/// Shared epilogue: annotation check, then the full STM write.
#[inline(always)]
fn annotated_or_full(w: &mut WorkerCtx<'_>, addr: Addr, val: u64) -> TxResult<()> {
    if w.annotation_hit(addr) {
        w.pending.writes.elided_annotation += 1;
        // Paper §3.1.3: annotated memory is accessed directly — the
        // programmer asserts no other transaction can observe it, and
        // (like the paper) we do not undo-log it.
        w.mem.store_private(addr, val);
        return Ok(());
    }
    w.pending.writes.full += 1;
    w.write_full(addr, val)
}

/// Captured-hit store: plain for the current level, undo-logged for an
/// ancestor level.
#[inline(always)]
fn store_captured(w: &mut WorkerCtx<'_>, addr: Addr, val: u64, hit: CaptureHit, stack: bool) {
    match hit {
        CaptureHit::Current => {
            if stack {
                w.pending.writes.elided_stack += 1;
            } else {
                w.pending.writes.elided_heap += 1;
            }
        }
        CaptureHit::Ancestor => {
            w.pending.writes.parent_captured += 1;
            w.undo.push(UndoEntry {
                addr,
                old: w.mem.load_private(addr),
            });
        }
    }
    w.mem.store_private(addr, val);
}

pub(super) fn write_baseline(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    annotated_or_full(w, addr, val)
}

pub(super) fn write_compiler(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.writes.elided_static += 1;
        w.mem.store_private(addr, val);
        return Ok(());
    }
    annotated_or_full(w, addr, val)
}

/// Interprocedural compiler capture analysis; see
/// [`super::read::read_compiler_interproc`].
pub(super) fn write_compiler_interproc(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.writes.elided_static += 1;
        w.mem.store_private(addr, val);
        return Ok(());
    }
    if site.compiler_elides_interproc {
        w.pending.writes.elided_static_interproc += 1;
        w.mem.store_private(addr, val);
        return Ok(());
    }
    annotated_or_full(w, addr, val)
}

pub(super) fn write_runtime<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if w.scope.writes {
        if w.scope.stack {
            if let Some(hit) = w.stack_capture(addr) {
                store_captured(w, addr, val, hit, true);
                return Ok(());
            }
        }
        if w.scope.heap {
            if let Some(hit) = w.heap_capture::<P>(addr) {
                store_captured(w, addr, val, hit, false);
                return Ok(());
            }
        }
    }
    annotated_or_full(w, addr, val)
}

/// Runtime capture analysis with the transaction-local nursery; see
/// [`super::read::read_runtime_nursery`]. The watermark compare inside the
/// nursery check preserves the §2.2.1 semantics: current-level hits store
/// in place, ancestor-level hits take the undo-logged path.
pub(super) fn write_runtime_nursery<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if w.scope.writes {
        if w.scope.heap {
            match w.nursery_capture(addr) {
                Some(CaptureHit::Current) => {
                    w.pending.writes.elided_nursery += 1;
                    w.mem.store_private(addr, val);
                    return Ok(());
                }
                Some(CaptureHit::Ancestor) => {
                    w.pending.writes.parent_captured += 1;
                    w.undo.push(UndoEntry {
                        addr,
                        old: w.mem.load_private(addr),
                    });
                    w.mem.store_private(addr, val);
                    return Ok(());
                }
                None => {}
            }
        }
        if w.scope.stack {
            if let Some(hit) = w.stack_capture(addr) {
                store_captured(w, addr, val, hit, true);
                return Ok(());
            }
        }
        if w.scope.heap {
            if let Some(hit) = w.heap_capture::<P>(addr) {
                store_captured(w, addr, val, hit, false);
                return Ok(());
            }
        }
    }
    annotated_or_full(w, addr, val)
}
