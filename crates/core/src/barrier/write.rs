//! Monomorphized write-barrier variants. Same layering as `read`, plus the
//! ancestor-capture case: a write to memory captured by an *enclosing*
//! transaction is performed in place without locking, but needs an undo
//! entry so a partial abort of the current level restores it (paper
//! §2.2.1).

use txmem::Addr;

use super::fastpath::{RunCounter, RunVerdict};
use super::{CaptureHit, PolicySlot};
use crate::site::Site;
use crate::worker::{TxResult, UndoEntry, WorkerCtx};

/// Bookkeeping every write barrier starts with.
#[inline(always)]
fn prologue(w: &mut WorkerCtx<'_>, site: &'static Site, addr: Addr) {
    debug_assert!(w.depth > 0, "write barrier outside transaction");
    if w.cfg.classify {
        w.classify_access(site, addr, true);
    }
}

/// Shared epilogue: annotation check, then the full STM write.
#[inline(always)]
fn annotated_or_full(w: &mut WorkerCtx<'_>, addr: Addr, val: u64) -> TxResult<()> {
    if w.annotation_hit(addr) {
        w.pending.writes.elided_annotation += 1;
        // Paper §3.1.3: annotated memory is accessed directly — the
        // programmer asserts no other transaction can observe it, and
        // (like the paper) we do not undo-log it.
        w.mem.store_private(addr, val);
        return Ok(());
    }
    w.pending.writes.full += 1;
    w.write_full(addr, val)
}

/// Captured-hit store: plain for the current level, undo-logged for an
/// ancestor level.
#[inline(always)]
fn store_captured(w: &mut WorkerCtx<'_>, addr: Addr, val: u64, hit: CaptureHit, stack: bool) {
    match hit {
        CaptureHit::Current => {
            if stack {
                w.pending.writes.elided_stack += 1;
            } else {
                w.pending.writes.elided_heap += 1;
            }
        }
        CaptureHit::Ancestor => {
            w.pending.writes.parent_captured += 1;
            w.undo.push(UndoEntry {
                addr,
                old: w.mem.load_private(addr),
            });
        }
    }
    w.mem.store_private(addr, val);
}

pub(super) fn write_baseline(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    annotated_or_full(w, addr, val)
}

pub(super) fn write_compiler(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.writes.elided_static += 1;
        w.mem.store_private(addr, val);
        return Ok(());
    }
    annotated_or_full(w, addr, val)
}

/// Interprocedural compiler capture analysis; see
/// [`super::read::read_compiler_interproc`].
pub(super) fn write_compiler_interproc(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.writes.elided_static += 1;
        w.mem.store_private(addr, val);
        return Ok(());
    }
    if site.compiler_elides_interproc {
        w.pending.writes.elided_static_interproc += 1;
        w.mem.store_private(addr, val);
        return Ok(());
    }
    annotated_or_full(w, addr, val)
}

pub(super) fn write_runtime<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if w.scope.writes {
        if w.scope.stack {
            if let Some(hit) = w.stack_capture(addr) {
                store_captured(w, addr, val, hit, true);
                return Ok(());
            }
        }
        if w.scope.heap {
            if let Some(hit) = w.heap_capture::<P>(addr) {
                store_captured(w, addr, val, hit, false);
                return Ok(());
            }
        }
    }
    annotated_or_full(w, addr, val)
}

// ---- Ranged write barriers ---------------------------------------------
//
// Same contract as the ranged reads (see `read.rs`): per-word counters and
// the undo/lock log shape stay bit-identical to a per-word loop; captured
// runs lower to bulk private stores, ancestor runs to per-word undo-logged
// stores, shared runs to the stripe-batched slowpath.

/// Whole-op degradation to the per-word barrier (classify / annotations).
pub(super) fn per_word_write(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
    word: fn(&mut WorkerCtx<'_>, &'static Site, Addr, u64) -> TxResult<()>,
) -> TxResult<()> {
    w.pending.ranged.fallbacks += 1;
    for (k, &val) in src.iter().enumerate() {
        word(w, site, addr.word(k as u64), val)?;
    }
    Ok(())
}

/// Ancestor-captured run: per-word undo entries (ascending address order,
/// exactly what a per-word loop logs) plus private stores.
fn store_range_ancestor(w: &mut WorkerCtx<'_>, addr: Addr, src: &[u64]) {
    for (k, &val) in src.iter().enumerate() {
        let a = addr.word(k as u64);
        w.undo.push(UndoEntry {
            addr: a,
            old: w.mem.load_private(a),
        });
        w.mem.store_private(a, val);
    }
}

pub(super) fn write_range_baseline(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_write(w, site, addr, src, write_baseline);
    }
    debug_assert!(w.depth > 0, "write barrier outside transaction");
    w.bump_ranged_run(src.len());
    w.write_full_range(addr, src)?;
    w.pending.writes.full += src.len() as u64;
    Ok(())
}

pub(super) fn write_range_compiler(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_write(w, site, addr, src, write_compiler);
    }
    debug_assert!(w.depth > 0, "write barrier outside transaction");
    w.bump_ranged_run(src.len());
    if site.compiler_elides {
        w.pending.writes.elided_static += src.len() as u64;
        w.mem.store_range_private(addr, src);
        return Ok(());
    }
    w.write_full_range(addr, src)?;
    w.pending.writes.full += src.len() as u64;
    Ok(())
}

pub(super) fn write_range_compiler_interproc(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_write(w, site, addr, src, write_compiler_interproc);
    }
    debug_assert!(w.depth > 0, "write barrier outside transaction");
    w.bump_ranged_run(src.len());
    if site.compiler_elides {
        w.pending.writes.elided_static += src.len() as u64;
        w.mem.store_range_private(addr, src);
        return Ok(());
    }
    if site.compiler_elides_interproc {
        w.pending.writes.elided_static_interproc += src.len() as u64;
        w.mem.store_range_private(addr, src);
        return Ok(());
    }
    w.write_full_range(addr, src)?;
    w.pending.writes.full += src.len() as u64;
    Ok(())
}

/// The runtime ranged write; see [`super::read::read_range_runtime`]'s
/// doc — this is its write-side twin with the current/ancestor split.
#[inline]
fn write_range_runtime_impl<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
    word: fn(&mut WorkerCtx<'_>, &'static Site, Addr, u64) -> TxResult<()>,
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_write(w, site, addr, src, word);
    }
    debug_assert!(w.depth > 0, "write barrier outside transaction");
    let limit = addr.word(src.len() as u64).raw();
    let mut i = 0usize;
    while i < src.len() {
        let a = addr.word(i as u64);
        let verdict = w.classify_write_run::<P>(a, limit);
        let n = verdict.words(a);
        w.bump_ranged_run(n);
        match verdict {
            RunVerdict::Captured { counter, .. } => {
                match counter {
                    RunCounter::Nursery => w.pending.writes.elided_nursery += n as u64,
                    RunCounter::Stack => w.pending.writes.elided_stack += n as u64,
                    RunCounter::Heap => w.pending.writes.elided_heap += n as u64,
                }
                w.mem.store_range_private(a, &src[i..i + n]);
            }
            RunVerdict::Ancestor { .. } => {
                w.pending.writes.parent_captured += n as u64;
                store_range_ancestor(w, a, &src[i..i + n]);
            }
            RunVerdict::Shared { .. } => {
                w.write_full_range(a, &src[i..i + n])?;
                w.pending.writes.full += n as u64;
            }
        }
        i += n;
    }
    Ok(())
}

pub(super) fn write_range_runtime<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
) -> TxResult<()> {
    write_range_runtime_impl::<P>(w, site, addr, src, write_runtime::<P>)
}

pub(super) fn write_range_runtime_nursery<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
) -> TxResult<()> {
    write_range_runtime_impl::<P>(w, site, addr, src, write_runtime_nursery::<P>)
}

/// Runtime capture analysis with the transaction-local nursery; see
/// [`super::read::read_runtime_nursery`]. The watermark compare inside the
/// nursery check preserves the §2.2.1 semantics: current-level hits store
/// in place, ancestor-level hits take the undo-logged path.
pub(super) fn write_runtime_nursery<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    prologue(w, site, addr);
    if w.scope.writes {
        if w.scope.heap {
            match w.nursery_capture(addr) {
                Some(CaptureHit::Current) => {
                    w.pending.writes.elided_nursery += 1;
                    w.mem.store_private(addr, val);
                    return Ok(());
                }
                Some(CaptureHit::Ancestor) => {
                    w.pending.writes.parent_captured += 1;
                    w.undo.push(UndoEntry {
                        addr,
                        old: w.mem.load_private(addr),
                    });
                    w.mem.store_private(addr, val);
                    return Ok(());
                }
                None => {}
            }
        }
        if w.scope.stack {
            if let Some(hit) = w.stack_capture(addr) {
                store_captured(w, addr, val, hit, true);
                return Ok(());
            }
        }
        if w.scope.heap {
            if let Some(hit) = w.heap_capture::<P>(addr) {
                store_captured(w, addr, val, hit, false);
                return Ok(());
            }
        }
    }
    annotated_or_full(w, addr, val)
}
