//! The capture-optimized read and write barriers (paper Fig. 2 and §3.1),
//! monomorphized over the capture policy.
//!
//! Barrier structure, in order:
//! 1. statistics bookkeeping (per-transaction counters, flushed at commit);
//! 2. **capture fast paths** according to [`crate::Mode`]:
//!    compiler-elided sites (static), transaction-local stack (one range
//!    compare), transaction-local heap (a [`CapturePolicy::classify`]
//!    call), annotated private memory;
//! 3. the **full STM barrier** (`slowpath`): optimistic versioned read with
//!    snapshot extension, or encounter-time lock acquisition + undo log +
//!    in-place store.
//!
//! # Dispatch
//!
//! The paper's whole contribution is shaving tens of cycles off every
//! barrier, so the barrier pipeline cannot afford to re-decide *how* to
//! check capture on every access. All mode/log dispatch is resolved once,
//! when the runtime is constructed: [`DispatchTable::select`] maps the
//! configuration to a static table of function pointers whose targets are
//! **monomorphized** per [`Mode`] and per concrete [`CapturePolicy`]
//! ([`RangeTree`], [`RangeArray`], [`AddrFilter`]). Inside those targets
//! there is no `match` on `Mode` or `LogKind` — the policy is reached
//! through [`PolicySlot`], a zero-branch field projection into
//! [`CaptureLogs`].
//!
//! The pre-refactor shape — one barrier body that `match`es on the mode
//! and queries an enum-dispatched [`LogImpl`] per access — survives in
//! [`reference`] behind [`crate::TxConfig::reference_dispatch`], as the
//! differential-testing oracle for this pipeline.

pub(crate) mod fastpath;
mod read;
mod reference;
mod slowpath;
mod write;

use capture::{AddrFilter, CapturePolicy, LogImpl, LogKind, RangeArray, RangeTree};
use txmem::Addr;

use crate::config::{Mode, TxConfig};
use crate::site::Site;
use crate::worker::{TxResult, WorkerCtx};

/// Where a captured address was allocated, relative to the current nesting.
pub(crate) enum CaptureHit {
    /// Captured by the current (innermost) transaction: plain access.
    Current,
    /// Captured by an ancestor: reads are plain; writes need an undo entry
    /// (paper §2.2.1: live-in for the child, partial abort must restore).
    Ancestor,
}

/// Per-worker storage for every capture policy the dispatch table can be
/// monomorphized over.
///
/// Exactly one member is *active* — the one the spawn-time-selected
/// [`DispatchTable`] routes `on_alloc`/`classify`/`reset` to — so the
/// inactive members stay empty and cost only their inline size (the filter
/// is sized down to one slot unless selected). Holding all members as plain
/// fields is what lets [`PolicySlot`] hand the monomorphized barrier its
/// policy with a field projection instead of an enum `match`.
pub(crate) struct CaptureLogs {
    tree: RangeTree,
    array: RangeArray<4>,
    filter: AddrFilter,
    /// Enum-dispatch log for the [`reference`] pipeline; populated only
    /// under [`TxConfig::reference_dispatch`].
    reference: Option<LogImpl>,
}

/// Slot count (log2) for a selected filter policy; matches the fixed-size
/// table of [`capture::LogImpl::new`] (16 KiB of interleaved slots — small
/// enough to stay L1-resident next to the transaction's working set).
const FILTER_LOG2: u32 = capture::DEFAULT_FILTER_LOG2;

impl CaptureLogs {
    pub(crate) fn new(cfg: &TxConfig) -> CaptureLogs {
        let kind = match cfg.mode {
            Mode::Runtime { log, .. } => Some(log),
            // Baseline/Compiler barriers never consult a capture policy;
            // their dispatch tables no-op the allocation hooks too, so the
            // logs stay empty (the paper's baseline pays no logging cost).
            _ => None,
        };
        let filter_log2 = match kind {
            Some(LogKind::Filter) if !cfg.reference_dispatch => FILTER_LOG2,
            _ => 0,
        };
        CaptureLogs {
            tree: RangeTree::new(),
            array: RangeArray::new(),
            filter: AddrFilter::with_log2_entries(filter_log2),
            reference: cfg
                .reference_dispatch
                .then(|| LogImpl::new(kind.unwrap_or(LogKind::Tree))),
        }
    }

    /// The reference pipeline's enum-dispatched log.
    fn reference_log(&self) -> &LogImpl {
        self.reference
            .as_ref()
            .expect("reference dispatch selected without a reference log")
    }

    fn reference_log_mut(&mut self) -> &mut LogImpl {
        self.reference
            .as_mut()
            .expect("reference dispatch selected without a reference log")
    }
}

/// Gives a monomorphized barrier its capture policy as a plain field
/// projection — no discriminant test, no virtual call. The invariant that
/// the projected field is the *active* one is established by
/// [`DispatchTable::select`], which always pairs `read_runtime::<P>` with
/// `on_alloc`/`reset` hooks for the same `P`.
pub(crate) trait PolicySlot: CapturePolicy {
    fn of(logs: &CaptureLogs) -> &Self;
    fn of_mut(logs: &mut CaptureLogs) -> &mut Self;
}

macro_rules! policy_slot {
    ($ty:ty, $field:ident) => {
        impl PolicySlot for $ty {
            #[inline(always)]
            fn of(logs: &CaptureLogs) -> &$ty {
                &logs.$field
            }
            #[inline(always)]
            fn of_mut(logs: &mut CaptureLogs) -> &mut $ty {
                &mut logs.$field
            }
        }
    };
}
policy_slot!(RangeTree, tree);
policy_slot!(RangeArray<4>, array);
policy_slot!(AddrFilter, filter);

/// The once-per-configuration resolved barrier pipeline: read/write entry
/// points plus the allocation-event hooks that keep the active policy in
/// sync. [`WorkerCtx`] carries a `&'static` to one of the tables below and
/// every transactional access goes through these pointers — one predictable
/// indirect call, no data-dependent branching.
pub(crate) struct DispatchTable {
    pub(crate) read: for<'rt> fn(&mut WorkerCtx<'rt>, &'static Site, Addr) -> TxResult<u64>,
    pub(crate) write: for<'rt> fn(&mut WorkerCtx<'rt>, &'static Site, Addr, u64) -> TxResult<()>,
    /// Ranged read: classify once per homogeneous run (see `read.rs`).
    pub(crate) read_range:
        for<'rt> fn(&mut WorkerCtx<'rt>, &'static Site, Addr, &mut [u64]) -> TxResult<()>,
    /// Ranged write; see `write.rs`.
    pub(crate) write_range:
        for<'rt> fn(&mut WorkerCtx<'rt>, &'static Site, Addr, &[u64]) -> TxResult<()>,
    pub(crate) on_alloc: fn(&mut CaptureLogs, u64, u64, u32),
    pub(crate) on_free: fn(&mut CaptureLogs, u64, u64),
    pub(crate) reset: fn(&mut CaptureLogs),
}

fn noop_on_alloc(_: &mut CaptureLogs, _: u64, _: u64, _: u32) {}
fn noop_on_free(_: &mut CaptureLogs, _: u64, _: u64) {}
fn noop_reset(_: &mut CaptureLogs) {}

fn policy_on_alloc<P: PolicySlot>(logs: &mut CaptureLogs, start: u64, len: u64, level: u32) {
    P::of_mut(logs).on_alloc(start, len, level);
}

fn policy_on_free<P: PolicySlot>(logs: &mut CaptureLogs, start: u64, len: u64) {
    P::of_mut(logs).on_free(start, len);
}

fn policy_reset<P: PolicySlot>(logs: &mut CaptureLogs) {
    P::of_mut(logs).reset();
}

fn reference_on_alloc(logs: &mut CaptureLogs, start: u64, len: u64, level: u32) {
    logs.reference_log_mut().on_alloc(start, len, level);
}

fn reference_on_free(logs: &mut CaptureLogs, start: u64, len: u64) {
    logs.reference_log_mut().on_free(start, len);
}

fn reference_reset(logs: &mut CaptureLogs) {
    logs.reference_log_mut().reset();
}

/// Baseline: every access runs the full barrier; allocation hooks no-op.
static BASELINE: DispatchTable = DispatchTable {
    read: read::read_baseline,
    write: write::write_baseline,
    read_range: read::read_range_baseline,
    write_range: write::write_range_baseline,
    on_alloc: noop_on_alloc,
    on_free: noop_on_free,
    reset: noop_reset,
};

/// Compiler capture analysis: statically elided sites skip everything;
/// no runtime capture state is maintained.
static COMPILER: DispatchTable = DispatchTable {
    read: read::read_compiler,
    write: write::write_compiler,
    read_range: read::read_range_compiler,
    write_range: write::write_range_compiler,
    on_alloc: noop_on_alloc,
    on_free: noop_on_free,
    reset: noop_reset,
};

macro_rules! runtime_table {
    ($policy:ty) => {
        DispatchTable {
            read: read::read_runtime::<$policy>,
            write: write::write_runtime::<$policy>,
            read_range: read::read_range_runtime::<$policy>,
            write_range: write::write_range_runtime::<$policy>,
            on_alloc: policy_on_alloc::<$policy>,
            on_free: policy_on_free::<$policy>,
            reset: policy_reset::<$policy>,
        }
    };
}

/// Interprocedural compiler capture analysis: the superset static verdict
/// (`compiler_elides_interproc`) also skips the barrier; still no runtime
/// capture state.
static COMPILER_INTERPROC: DispatchTable = DispatchTable {
    read: read::read_compiler_interproc,
    write: write::write_compiler_interproc,
    read_range: read::read_range_compiler_interproc,
    write_range: write::write_range_compiler_interproc,
    on_alloc: noop_on_alloc,
    on_free: noop_on_free,
    reset: noop_reset,
};

static RUNTIME_TREE: DispatchTable = runtime_table!(RangeTree);
static RUNTIME_ARRAY: DispatchTable = runtime_table!(RangeArray<4>);
static RUNTIME_FILTER: DispatchTable = runtime_table!(AddrFilter);

/// Runtime capture analysis with the per-transaction nursery
/// ([`crate::TxConfig::nursery`]): the barrier's captured-heap check is
/// the nursery scalar-range test, and the monomorphized policy `P` serves
/// only as the *fallback* log for overflow/demoted/large blocks. The
/// allocation hooks are the same policy hooks — the allocation path itself
/// decides which blocks ever reach them.
macro_rules! nursery_table {
    ($policy:ty) => {
        DispatchTable {
            read: read::read_runtime_nursery::<$policy>,
            write: write::write_runtime_nursery::<$policy>,
            read_range: read::read_range_runtime_nursery::<$policy>,
            write_range: write::write_range_runtime_nursery::<$policy>,
            on_alloc: policy_on_alloc::<$policy>,
            on_free: policy_on_free::<$policy>,
            reset: policy_reset::<$policy>,
        }
    };
}

static NURSERY_TREE: DispatchTable = nursery_table!(RangeTree);
static NURSERY_ARRAY: DispatchTable = nursery_table!(RangeArray<4>);
static NURSERY_FILTER: DispatchTable = nursery_table!(AddrFilter);

/// The enum-dispatch oracle: per-access `match` on mode and log kind.
static REFERENCE: DispatchTable = DispatchTable {
    read: reference::read_reference,
    write: reference::write_reference,
    read_range: reference::read_range_reference,
    write_range: reference::write_range_reference,
    on_alloc: reference_on_alloc,
    on_free: reference_on_free,
    reset: reference_reset,
};

impl DispatchTable {
    /// Resolve the barrier pipeline for a configuration. This is the single
    /// place where `Mode` and `LogKind` are matched — it runs once, at
    /// [`crate::StmRuntime::new`], never inside a barrier.
    pub(crate) fn select(cfg: &TxConfig) -> &'static DispatchTable {
        if cfg.reference_dispatch {
            return &REFERENCE;
        }
        match cfg.mode {
            Mode::Baseline => &BASELINE,
            Mode::Compiler => &COMPILER,
            Mode::CompilerInterproc => &COMPILER_INTERPROC,
            Mode::Runtime { log, .. } => match (log, cfg.nursery) {
                (LogKind::Tree, false) => &RUNTIME_TREE,
                (LogKind::Array, false) => &RUNTIME_ARRAY,
                (LogKind::Filter, false) => &RUNTIME_FILTER,
                (LogKind::Tree, true) => &NURSERY_TREE,
                (LogKind::Array, true) => &NURSERY_ARRAY,
                (LogKind::Filter, true) => &NURSERY_FILTER,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckScope;

    fn runtime_cfg(log: LogKind) -> TxConfig {
        TxConfig::with_mode(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        })
    }

    #[test]
    fn select_pairs_tables_with_modes() {
        assert!(std::ptr::eq(
            DispatchTable::select(&TxConfig::default()),
            &BASELINE
        ));
        assert!(std::ptr::eq(
            DispatchTable::select(&TxConfig::with_mode(Mode::Compiler)),
            &COMPILER
        ));
        assert!(std::ptr::eq(
            DispatchTable::select(&TxConfig::with_mode(Mode::CompilerInterproc)),
            &COMPILER_INTERPROC
        ));
        assert!(std::ptr::eq(
            DispatchTable::select(&runtime_cfg(LogKind::Tree)),
            &RUNTIME_TREE
        ));
        assert!(std::ptr::eq(
            DispatchTable::select(&runtime_cfg(LogKind::Array)),
            &RUNTIME_ARRAY
        ));
        assert!(std::ptr::eq(
            DispatchTable::select(&runtime_cfg(LogKind::Filter)),
            &RUNTIME_FILTER
        ));
        for (log, table) in [
            (LogKind::Tree, &NURSERY_TREE),
            (LogKind::Array, &NURSERY_ARRAY),
            (LogKind::Filter, &NURSERY_FILTER),
        ] {
            let mut cfg = runtime_cfg(log);
            cfg.nursery = true;
            assert!(std::ptr::eq(DispatchTable::select(&cfg), table));
        }
        let mut refcfg = runtime_cfg(LogKind::Array);
        refcfg.reference_dispatch = true;
        assert!(std::ptr::eq(DispatchTable::select(&refcfg), &REFERENCE));
        refcfg.nursery = true;
        assert!(
            std::ptr::eq(DispatchTable::select(&refcfg), &REFERENCE),
            "reference dispatch oracles every configuration, nursery included"
        );
    }

    #[test]
    fn capture_logs_allocate_lazily() {
        // Only a selected filter policy pays for a real filter table.
        let filter_cfg = runtime_cfg(LogKind::Filter);
        assert_eq!(
            CaptureLogs::new(&filter_cfg).filter.capacity(),
            1usize << FILTER_LOG2
        );
        assert_eq!(CaptureLogs::new(&TxConfig::default()).filter.capacity(), 1);
        assert!(CaptureLogs::new(&TxConfig::default()).reference.is_none());

        let mut refcfg = runtime_cfg(LogKind::Filter);
        refcfg.reference_dispatch = true;
        let logs = CaptureLogs::new(&refcfg);
        assert_eq!(logs.reference_log().kind(), LogKind::Filter);
        assert_eq!(logs.filter.capacity(), 1, "reference run: slot unused");
    }

    #[test]
    fn policy_slots_project_the_matching_field() {
        let cfg = runtime_cfg(LogKind::Tree);
        let mut logs = CaptureLogs::new(&cfg);
        use capture::CapturePolicy;
        RangeTree::of_mut(&mut logs).on_alloc(64, 8, 1);
        assert!(RangeTree::of(&logs).classify(64).is_captured());
        assert!(!RangeArray::<4>::of(&logs).classify(64).is_captured());
        assert!(!AddrFilter::of(&logs).classify(64).is_captured());
    }
}
