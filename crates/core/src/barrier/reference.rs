//! The enum-dispatch **reference pipeline**: the pre-monomorphization
//! barrier shape, kept verbatim behind [`crate::TxConfig::reference_dispatch`].
//!
//! Every access re-`match`es the configured [`Mode`] and queries the heap
//! log through [`capture::LogImpl`]'s per-call enum dispatch — exactly the
//! per-access overhead the monomorphized pipeline hoists to spawn time.
//! It exists for two reasons:
//!
//! * **differential testing** — `tests/dispatch_equiv.rs` replays random
//!   transaction traces through both pipelines and requires bit-identical
//!   memory and statistics;
//! * **measurement** — the `barrier_dispatch` microbenchmark quantifies
//!   what hoisting the dispatch buys.
//!
//! It must produce *identical observable behavior* to the monomorphized
//! variants, including statistics, so both pipelines count through the
//! same per-transaction delta.

use capture::{Capture, CapturePolicy};
use txmem::Addr;

use super::CaptureHit;
use crate::config::Mode;
use crate::site::Site;
use crate::worker::{TxResult, UndoEntry, WorkerCtx};

impl WorkerCtx<'_> {
    /// Allocation-log lookup through the enum-dispatched reference log.
    #[inline]
    fn heap_capture_reference(&self, addr: Addr) -> Option<CaptureHit> {
        match self.logs.reference_log().classify(addr.raw()) {
            Capture::No => None,
            Capture::Level(level) => Some(if level >= self.depth {
                CaptureHit::Current
            } else {
                CaptureHit::Ancestor
            }),
        }
    }

    /// Nursery classification through [`capture::NurseryLog::classify`] —
    /// the per-access "count the watermarks" form rather than the
    /// monomorphized pipeline's scalar compares. Differential testing of
    /// the two is exactly what proves the scalar shortcut (`addr >= inner`)
    /// equivalent to the level arithmetic.
    #[inline]
    fn nursery_capture_reference(&self, addr: Addr) -> Option<CaptureHit> {
        if !self.nursery_on {
            return None;
        }
        match self.nur.classify(addr.raw()) {
            Capture::No => None,
            Capture::Level(level) => Some(if level >= self.depth {
                CaptureHit::Current
            } else {
                CaptureHit::Ancestor
            }),
        }
    }
}

/// The seed's read barrier, dispatching on `Mode` per access.
pub(super) fn read_reference(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    debug_assert!(w.depth > 0, "read barrier outside transaction");
    if w.cfg.classify {
        w.classify_access(site, addr, false);
    }

    match w.cfg.mode {
        Mode::Compiler if site.compiler_elides => {
            w.pending.reads.elided_static += 1;
            return Ok(w.mem.load_private(addr));
        }
        Mode::CompilerInterproc if site.compiler_elides_interproc => {
            if site.compiler_elides {
                w.pending.reads.elided_static += 1;
            } else {
                w.pending.reads.elided_static_interproc += 1;
            }
            return Ok(w.mem.load_private(addr));
        }
        Mode::Runtime { scope, .. } if scope.reads => {
            if scope.heap && w.nursery_capture_reference(addr).is_some() {
                w.pending.reads.elided_nursery += 1;
                return Ok(w.mem.load_private(addr));
            }
            if scope.stack && w.stack_capture(addr).is_some() {
                w.pending.reads.elided_stack += 1;
                return Ok(w.mem.load_private(addr));
            }
            if scope.heap && w.heap_capture_reference(addr).is_some() {
                w.pending.reads.elided_heap += 1;
                return Ok(w.mem.load_private(addr));
            }
        }
        _ => {}
    }
    if w.annotation_hit(addr) {
        w.pending.reads.elided_annotation += 1;
        return Ok(w.mem.load_private(addr));
    }

    w.pending.reads.full += 1;
    w.read_full(addr)
}

/// The seed's write barrier, dispatching on `Mode` per access.
pub(super) fn write_reference(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    val: u64,
) -> TxResult<()> {
    debug_assert!(w.depth > 0, "write barrier outside transaction");
    if w.cfg.classify {
        w.classify_access(site, addr, true);
    }

    match w.cfg.mode {
        Mode::Compiler if site.compiler_elides => {
            w.pending.writes.elided_static += 1;
            w.mem.store_private(addr, val);
            return Ok(());
        }
        Mode::CompilerInterproc if site.compiler_elides_interproc => {
            if site.compiler_elides {
                w.pending.writes.elided_static += 1;
            } else {
                w.pending.writes.elided_static_interproc += 1;
            }
            w.mem.store_private(addr, val);
            return Ok(());
        }
        Mode::Runtime { scope, .. } if scope.writes => {
            if scope.heap {
                match w.nursery_capture_reference(addr) {
                    Some(CaptureHit::Current) => {
                        w.pending.writes.elided_nursery += 1;
                        w.mem.store_private(addr, val);
                        return Ok(());
                    }
                    Some(CaptureHit::Ancestor) => {
                        w.pending.writes.parent_captured += 1;
                        w.undo.push(UndoEntry {
                            addr,
                            old: w.mem.load_private(addr),
                        });
                        w.mem.store_private(addr, val);
                        return Ok(());
                    }
                    None => {}
                }
            }
            if scope.stack {
                match w.stack_capture(addr) {
                    Some(CaptureHit::Current) => {
                        w.pending.writes.elided_stack += 1;
                        w.mem.store_private(addr, val);
                        return Ok(());
                    }
                    Some(CaptureHit::Ancestor) => {
                        w.pending.writes.parent_captured += 1;
                        w.undo.push(UndoEntry {
                            addr,
                            old: w.mem.load_private(addr),
                        });
                        w.mem.store_private(addr, val);
                        return Ok(());
                    }
                    None => {}
                }
            }
            if scope.heap {
                match w.heap_capture_reference(addr) {
                    Some(CaptureHit::Current) => {
                        w.pending.writes.elided_heap += 1;
                        w.mem.store_private(addr, val);
                        return Ok(());
                    }
                    Some(CaptureHit::Ancestor) => {
                        w.pending.writes.parent_captured += 1;
                        w.undo.push(UndoEntry {
                            addr,
                            old: w.mem.load_private(addr),
                        });
                        w.mem.store_private(addr, val);
                        return Ok(());
                    }
                    None => {}
                }
            }
        }
        _ => {}
    }
    if w.annotation_hit(addr) {
        w.pending.writes.elided_annotation += 1;
        w.mem.store_private(addr, val);
        return Ok(());
    }

    w.pending.writes.full += 1;
    w.write_full(addr, val)
}

/// The reference pipeline's ranged read: a per-word loop over
/// [`read_reference`], counted as one ranged fallback. Keeping the oracle
/// per-word is deliberate — differential runs against the monomorphized
/// ranged barriers then prove the run classification equivalent to per-word
/// classification, exactly as `dispatch_equiv` proves the per-word rows.
pub(super) fn read_range_reference(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
) -> TxResult<()> {
    w.pending.ranged.fallbacks += 1;
    for (k, slot) in dst.iter_mut().enumerate() {
        *slot = read_reference(w, site, addr.word(k as u64))?;
    }
    Ok(())
}

/// Write-side analog of [`read_range_reference`].
pub(super) fn write_range_reference(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    src: &[u64],
) -> TxResult<()> {
    w.pending.ranged.fallbacks += 1;
    for (k, &val) in src.iter().enumerate() {
        write_reference(w, site, addr.word(k as u64), val)?;
    }
    Ok(())
}
