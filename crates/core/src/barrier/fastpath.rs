//! The capture fast paths shared by every barrier variant: the stack range
//! compare (paper Fig. 3/4), the heap policy lookup (paper §3.1.2, generic
//! over the monomorphized [`PolicySlot`]), the §3.1.3 annotation check, and
//! the Figure-8 classification bookkeeping.

use capture::{Capture, CapturePolicy};
use txmem::Addr;

use super::{CaptureHit, PolicySlot};
use crate::site::Site;
use crate::worker::WorkerCtx;

impl WorkerCtx<'_> {
    /// Innermost nesting level that captured this stack address, if any.
    /// One range compare against the transaction's `start_sp` — the paper's
    /// cheapest runtime check.
    #[inline]
    pub(crate) fn stack_capture(&self, addr: Addr) -> Option<CaptureHit> {
        let a = addr.raw();
        // `sp_outer`/`sp_inner` are the scalar caches of the sp-mark vector
        // (maintained by the transaction lifecycle), so the common miss is
        // two compares against registers.
        if a < self.stack.sp() || a >= self.sp_outer {
            return None;
        }
        if a < self.sp_inner {
            Some(CaptureHit::Current)
        } else {
            Some(CaptureHit::Ancestor)
        }
    }

    /// Nursery scalar-range classification (the tentpole fast path): the
    /// same two-compare shape as [`WorkerCtx::stack_capture`], plus one
    /// watermark compare for the `Current`-vs-`Ancestor` split that
    /// partial abort needs (§2.2.1). Exact by construction — the scalar
    /// range `[lo, bump)` only ever covers blocks this transaction
    /// bump-allocated and has neither freed nor demoted, and bump order is
    /// address order, so `addr >= inner` (the innermost level's watermark)
    /// is precisely "allocated by the current level".
    #[inline]
    pub(crate) fn nursery_capture(&self, addr: Addr) -> Option<CaptureHit> {
        let a = addr.raw();
        if a >= self.nur.lo() && a < self.nur.bump() {
            Some(if a >= self.nur.inner() {
                CaptureHit::Current
            } else {
                CaptureHit::Ancestor
            })
        } else {
            None
        }
    }

    /// Allocation-log lookup through the monomorphized policy, translated
    /// to current/ancestor. A current-level hit on a policy that can give
    /// a residency guarantee also primes the worker's one-entry capture
    /// cache, so subsequent accesses to the same block stay inline in
    /// [`WorkerCtx::read_word`]/[`WorkerCtx::write_word`].
    #[inline]
    pub(crate) fn heap_capture<P: PolicySlot>(&mut self, addr: Addr) -> Option<CaptureHit> {
        let (cap, range) = P::of(&self.logs).classify_cacheable(addr.raw());
        match cap {
            Capture::No => None,
            Capture::Level(level) => {
                if level >= self.depth {
                    // The cache only ever holds current-level ranges: the
                    // lifecycle clears it on nested entry / demotion, so
                    // the inline check needs no level compare.
                    if let Some((start, end)) = range {
                        self.cap_start = start;
                        self.cap_len = end - start;
                    }
                    Some(CaptureHit::Current)
                } else {
                    Some(CaptureHit::Ancestor)
                }
            }
        }
    }

    /// Annotated private memory (paper §3.1.3): consulted by every variant
    /// after the mode-specific checks, exactly as the seed pipeline did.
    #[inline]
    pub(crate) fn annotation_hit(&self, addr: Addr) -> bool {
        self.cfg.annotations && self.private_log.is_private(addr.raw())
    }

    /// The classify mode's ground truth for one address: is it on the
    /// transaction-local stack, and if not, does the precise shadow tree
    /// hold it? Shared by the Figure-8 classifier, the static-violation
    /// check, and the external capture oracle so they can never diverge.
    #[inline]
    fn ground_truth(&self, a: u64) -> (bool, bool) {
        let stack_hit = a >= self.stack.sp() && a < self.sp_outer;
        let heap_hit = !stack_hit
            && self
                .classify_log
                .as_ref()
                .is_some_and(|t| t.classify(a).is_captured());
        (stack_hit, heap_hit)
    }

    /// Figure-8 classification of a barrier (runs under `cfg.classify`,
    /// using the precise shadow tree exactly as the paper counts
    /// opportunities with its tree-based runtime algorithm). Classification
    /// is an instrumentation mode, so these counters go straight to the
    /// worker's stats rather than the per-transaction delta.
    #[inline]
    pub(crate) fn classify_access(&mut self, site: &'static Site, addr: Addr, is_write: bool) {
        let (stack_hit, heap_hit) = self.ground_truth(addr.raw());
        let b = if is_write {
            &mut self.stats.writes
        } else {
            &mut self.stats.reads
        };
        if stack_hit {
            b.class_stack += 1;
        } else if heap_hit {
            b.class_heap += 1;
        } else if !site.required {
            b.class_other += 1;
        } else {
            b.class_required += 1;
        }
        // Validate static verdicts against ground truth: a site either
        // static pass elides must target captured memory on every dynamic
        // execution, or the tag is a miscompilation.
        if site.statically_elidable() && !stack_hit && !heap_hit {
            b.static_violations += 1;
        }
    }

    /// Ground-truth capture query for external oracles (the `txcc` VM's
    /// site audit): is `addr` transaction-local right now, per the precise
    /// shadow tree plus the stack range? Only answerable under
    /// `TxConfig::classify` — the shadow tree does not exist otherwise —
    /// so the answer is `None` in every other configuration.
    pub fn observed_captured(&self, addr: Addr) -> Option<bool> {
        if !self.cfg.classify {
            return None;
        }
        let (stack_hit, heap_hit) = self.ground_truth(addr.raw());
        Some(stack_hit || heap_hit)
    }
}
