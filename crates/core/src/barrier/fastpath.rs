//! The capture fast paths shared by every barrier variant: the stack range
//! compare (paper Fig. 3/4), the heap policy lookup (paper §3.1.2, generic
//! over the monomorphized [`PolicySlot`]), the §3.1.3 annotation check, and
//! the Figure-8 classification bookkeeping.

use capture::{Capture, CapturePolicy};
use txmem::{Addr, WORD_BYTES};

use super::{CaptureHit, PolicySlot};
use crate::site::Site;
use crate::worker::WorkerCtx;

/// Which elision counter a captured run charges (one bump of the run's
/// word count, mirroring what the per-word barrier would have charged each
/// word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RunCounter {
    /// `elided_nursery` — the nursery scalar-range hit.
    Nursery,
    /// `elided_stack` — the stack range hit.
    Stack,
    /// `elided_heap` — an allocation-log hit.
    Heap,
}

/// Verdict for the longest homogeneous prefix `[addr, end)` of a ranged
/// access — the ranged barriers' unit of work. `end` is exclusive, word
/// aligned, `> addr`, and clamped to the caller's span end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RunVerdict {
    /// Captured (for writes: at the current level) — lower to a bulk
    /// private copy.
    Captured { end: u64, counter: RunCounter },
    /// Captured by an ancestor level (writes only): per-word undo entries
    /// plus private stores (paper §2.2.1 partial-abort support).
    Ancestor { end: u64 },
    /// Not captured anywhere the active checks look: stripe-batched full
    /// barriers. The end is clamped below every capture boundary ahead, so
    /// no word of the run could have been elided by the per-word pipeline.
    Shared { end: u64 },
}

impl RunVerdict {
    /// Word count of the run starting at `addr`.
    #[inline]
    pub(crate) fn words(self, addr: Addr) -> usize {
        let end = match self {
            RunVerdict::Captured { end, .. } => end,
            RunVerdict::Ancestor { end } => end,
            RunVerdict::Shared { end } => end,
        };
        debug_assert!(end > addr.raw() && (end - addr.raw()).is_multiple_of(WORD_BYTES));
        ((end - addr.raw()) / WORD_BYTES) as usize
    }
}

impl WorkerCtx<'_> {
    /// Innermost nesting level that captured this stack address, if any.
    /// One range compare against the transaction's `start_sp` — the paper's
    /// cheapest runtime check.
    #[inline]
    pub(crate) fn stack_capture(&self, addr: Addr) -> Option<CaptureHit> {
        let a = addr.raw();
        // `sp_outer`/`sp_inner` are the scalar caches of the sp-mark vector
        // (maintained by the transaction lifecycle), so the common miss is
        // two compares against registers.
        if a < self.stack.sp() || a >= self.sp_outer {
            return None;
        }
        if a < self.sp_inner {
            Some(CaptureHit::Current)
        } else {
            Some(CaptureHit::Ancestor)
        }
    }

    /// Nursery scalar-range classification (the tentpole fast path): the
    /// same two-compare shape as [`WorkerCtx::stack_capture`], plus one
    /// watermark compare for the `Current`-vs-`Ancestor` split that
    /// partial abort needs (§2.2.1). Exact by construction — the scalar
    /// range `[lo, bump)` only ever covers blocks this transaction
    /// bump-allocated and has neither freed nor demoted, and bump order is
    /// address order, so `addr >= inner` (the innermost level's watermark)
    /// is precisely "allocated by the current level".
    #[inline]
    pub(crate) fn nursery_capture(&self, addr: Addr) -> Option<CaptureHit> {
        let a = addr.raw();
        if a >= self.nur.lo() && a < self.nur.bump() {
            Some(if a >= self.nur.inner() {
                CaptureHit::Current
            } else {
                CaptureHit::Ancestor
            })
        } else {
            None
        }
    }

    /// Allocation-log lookup through the monomorphized policy, translated
    /// to current/ancestor. A current-level hit on a policy that can give
    /// a residency guarantee also primes the worker's one-entry capture
    /// cache, so subsequent accesses to the same block stay inline in
    /// [`WorkerCtx::read_word`]/[`WorkerCtx::write_word`].
    #[inline]
    pub(crate) fn heap_capture<P: PolicySlot>(&mut self, addr: Addr) -> Option<CaptureHit> {
        let (cap, range) = P::of(&self.logs).classify_cacheable(addr.raw());
        match cap {
            Capture::No => None,
            Capture::Level(level) => {
                if level >= self.depth {
                    // The cache only ever holds current-level ranges: the
                    // lifecycle clears it on nested entry / demotion, so
                    // the inline check needs no level compare.
                    if let Some((start, end)) = range {
                        self.cap_start = start;
                        self.cap_len = end - start;
                    }
                    Some(CaptureHit::Current)
                } else {
                    Some(CaptureHit::Ancestor)
                }
            }
        }
    }

    /// Classify the longest homogeneous *read* run starting at `addr`,
    /// bounded by `limit` (the span's exclusive byte end). Check order
    /// mirrors the per-word runtime barriers — nursery, stack, heap — so a
    /// ranged read charges exactly the counters a per-word loop would. The
    /// nursery range is empty whenever the nursery is inactive, making the
    /// same classifier exact for the plain runtime pipeline too. Reads
    /// elide at any captured level, so this never returns
    /// [`RunVerdict::Ancestor`].
    #[inline]
    pub(crate) fn classify_read_run<P: PolicySlot>(
        &mut self,
        addr: Addr,
        limit: u64,
    ) -> RunVerdict {
        let a = addr.raw();
        if !self.scope.reads {
            return RunVerdict::Shared { end: limit };
        }
        if self.scope.heap && a >= self.nur.lo() && a < self.nur.bump() {
            return RunVerdict::Captured {
                end: self.nur.bump().min(limit),
                counter: RunCounter::Nursery,
            };
        }
        if self.scope.stack && a >= self.stack.sp() && a < self.sp_outer {
            return RunVerdict::Captured {
                end: self.sp_outer.min(limit),
                counter: RunCounter::Stack,
            };
        }
        let end = if self.scope.heap {
            let (cap, end) = P::of(&self.logs).classify_run(a, limit);
            if let Capture::Level(level) = cap {
                if level >= self.depth {
                    // Prime the one-entry capture cache (same contract as
                    // `heap_capture`: current-level ranges only), so the
                    // next span over this block takes the two-compare
                    // whole-span check in `WorkerCtx::read_range`.
                    self.cap_start = a;
                    self.cap_len = end - a;
                }
                return RunVerdict::Captured {
                    end,
                    counter: RunCounter::Heap,
                };
            }
            end
        } else {
            limit
        };
        RunVerdict::Shared {
            end: self.clamp_shared_run(a, end),
        }
    }

    /// Classify the longest homogeneous *write* run starting at `addr`.
    /// Same check order as the read classifier, with the additional
    /// current-vs-ancestor split: nursery and stack runs split at their
    /// innermost-level watermark (`nur.inner()` / `sp_inner`), heap runs
    /// are level-homogeneous because one logged block has one level.
    #[inline]
    pub(crate) fn classify_write_run<P: PolicySlot>(
        &mut self,
        addr: Addr,
        limit: u64,
    ) -> RunVerdict {
        let a = addr.raw();
        if !self.scope.writes {
            return RunVerdict::Shared { end: limit };
        }
        if self.scope.heap && a >= self.nur.lo() && a < self.nur.bump() {
            return if a >= self.nur.inner() {
                RunVerdict::Captured {
                    end: self.nur.bump().min(limit),
                    counter: RunCounter::Nursery,
                }
            } else {
                RunVerdict::Ancestor {
                    end: self.nur.inner().min(limit),
                }
            };
        }
        if self.scope.stack && a >= self.stack.sp() && a < self.sp_outer {
            return if a < self.sp_inner {
                RunVerdict::Captured {
                    end: self.sp_inner.min(limit),
                    counter: RunCounter::Stack,
                }
            } else {
                RunVerdict::Ancestor {
                    end: self.sp_outer.min(limit),
                }
            };
        }
        let end = if self.scope.heap {
            let (cap, end) = P::of(&self.logs).classify_run(a, limit);
            if let Capture::Level(level) = cap {
                return if level >= self.depth {
                    // See `classify_read_run`: prime the capture cache so
                    // follow-up spans over this block stay inline.
                    self.cap_start = a;
                    self.cap_len = end - a;
                    RunVerdict::Captured {
                        end,
                        counter: RunCounter::Heap,
                    }
                } else {
                    RunVerdict::Ancestor { end }
                };
            }
            end
        } else {
            limit
        };
        RunVerdict::Shared {
            end: self.clamp_shared_run(a, end),
        }
    }

    /// Clamp a shared run's end below the capture regions ahead of `addr`,
    /// so a not-captured verdict for the run's head covers every word of
    /// the run. `end` already carries the heap-log bound (from
    /// `classify_run`); this adds the two scalar regions. The gates mirror
    /// the classifiers above: a region whose check is scope-disabled does
    /// not clamp, because the per-word pipeline would not have consulted it
    /// either. Splitting at these boundaries (rather than falling back to
    /// the per-word loop for any mixed span) keeps every homogeneous piece
    /// on its cheap lowering.
    #[inline]
    fn clamp_shared_run(&self, a: u64, mut end: u64) -> u64 {
        if self.scope.heap {
            let lo = self.nur.lo();
            if a < lo && lo < end {
                end = lo;
            }
        }
        if self.scope.stack {
            let sp = self.stack.sp();
            if a < sp && sp < end {
                end = sp;
            }
        }
        end
    }

    /// Annotated private memory (paper §3.1.3): consulted by every variant
    /// after the mode-specific checks, exactly as the seed pipeline did.
    #[inline]
    pub(crate) fn annotation_hit(&self, addr: Addr) -> bool {
        self.cfg.annotations && self.private_log.is_private(addr.raw())
    }

    /// The classify mode's ground truth for one address: is it on the
    /// transaction-local stack, and if not, does the precise shadow tree
    /// hold it? Shared by the Figure-8 classifier, the static-violation
    /// check, and the external capture oracle so they can never diverge.
    #[inline]
    fn ground_truth(&self, a: u64) -> (bool, bool) {
        let stack_hit = a >= self.stack.sp() && a < self.sp_outer;
        let heap_hit = !stack_hit
            && self
                .classify_log
                .as_ref()
                .is_some_and(|t| t.classify(a).is_captured());
        (stack_hit, heap_hit)
    }

    /// Figure-8 classification of a barrier (runs under `cfg.classify`,
    /// using the precise shadow tree exactly as the paper counts
    /// opportunities with its tree-based runtime algorithm). Classification
    /// is an instrumentation mode, so these counters go straight to the
    /// worker's stats rather than the per-transaction delta.
    #[inline]
    pub(crate) fn classify_access(&mut self, site: &'static Site, addr: Addr, is_write: bool) {
        let (stack_hit, heap_hit) = self.ground_truth(addr.raw());
        let b = if is_write {
            &mut self.stats.writes
        } else {
            &mut self.stats.reads
        };
        if stack_hit {
            b.class_stack += 1;
        } else if heap_hit {
            b.class_heap += 1;
        } else if !site.required {
            b.class_other += 1;
        } else {
            b.class_required += 1;
        }
        // Validate static verdicts against ground truth: a site either
        // static pass elides must target captured memory on every dynamic
        // execution, or the tag is a miscompilation.
        if site.statically_elidable() && !stack_hit && !heap_hit {
            b.static_violations += 1;
        }
    }

    /// Ground-truth capture query for external oracles (the `txcc` VM's
    /// site audit): is `addr` transaction-local right now, per the precise
    /// shadow tree plus the stack range? Only answerable under
    /// `TxConfig::classify` — the shadow tree does not exist otherwise —
    /// so the answer is `None` in every other configuration.
    pub fn observed_captured(&self, addr: Addr) -> Option<bool> {
        if !self.cfg.classify {
            return None;
        }
        let (stack_hit, heap_hit) = self.ground_truth(addr.raw());
        Some(stack_hit || heap_hit)
    }
}
