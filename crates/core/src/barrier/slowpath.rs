//! The full STM barriers (the Intel STM discipline the paper describes in
//! §2.1): optimistic versioned reads with snapshot extension, and
//! encounter-time lock acquisition with undo logging and in-place update.
//! Every barrier variant funnels here when no fast path applies.

use std::sync::atomic::Ordering;

use txmem::{Addr, WORD_BYTES};

use crate::orec::{is_locked, lock_value, owner_of, STRIPE_BYTES};
use crate::worker::{Abort, LockEntry, ReadEntry, TxResult, UndoEntry, WorkerCtx};

impl WorkerCtx<'_> {
    /// Full optimistic read: versioned-read loop with snapshot extension
    /// (gives opacity, so transactions never act on inconsistent state).
    pub(crate) fn read_full(&mut self, addr: Addr) -> TxResult<u64> {
        self.chaos(crate::contention::ChaosPoint::Barrier);
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v1 = orec.load(Ordering::Acquire);
            if is_locked(v1) {
                if owner_of(v1) == me {
                    // Read-after-write to the same record: we own it, the
                    // in-place value is ours.
                    return Ok(self.mem.load(addr));
                }
                spins += 1;
                if spins > self.spin_budget {
                    self.stats.conflict_read_locked += 1;
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            let val = self.mem.load(addr);
            let v2 = orec.load(Ordering::Acquire);
            if v1 != v2 {
                spins += 1;
                if spins > self.spin_budget {
                    self.stats.conflict_read_locked += 1;
                    return Err(Abort::Conflict);
                }
                continue;
            }
            if v1 > self.rv {
                if !self.extend() {
                    self.stats.conflict_validation += 1;
                    return Err(Abort::Conflict);
                }
                // Retry the versioned read under the extended snapshot.
                // The sandwich above proved `val` consistent *at `v1`*, but
                // commits may have landed between the `v2` load and the
                // extension's clock read; returning the old sandwich's
                // value would hand the caller data that is stale at the
                // new `rv` — and if the record's version has meanwhile
                // caught up with the extended snapshot, nothing downstream
                // (write-lock acquisition, GV4 skip-validation) can tell.
                continue;
            }
            self.reads.push(ReadEntry { idx, version: v1 });
            return Ok(val);
        }
    }

    /// Full write: encounter-time lock acquisition, undo log, in-place
    /// update.
    pub(crate) fn write_full(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        self.chaos(crate::contention::ChaosPoint::Barrier);
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v = orec.load(Ordering::Acquire);
            if is_locked(v) {
                if owner_of(v) == me {
                    // Write-after-write to an owned record: the cheap check
                    // the paper notes already catches redundant write
                    // barriers in the baseline (yada discussion, §4.2).
                    self.undo.push(UndoEntry {
                        addr,
                        old: self.mem.load(addr),
                    });
                    self.mem.store(addr, val);
                    return Ok(());
                }
                spins += 1;
                if spins > self.spin_budget {
                    self.stats.conflict_write_locked += 1;
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            if v > self.rv && !self.extend() {
                self.stats.conflict_validation += 1;
                return Err(Abort::Conflict);
            }
            match orec.compare_exchange_weak(v, lock_value(me), Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.locks.push(LockEntry { idx, prev: v });
                    self.undo.push(UndoEntry {
                        addr,
                        old: self.mem.load(addr),
                    });
                    self.mem.store(addr, val);
                    return Ok(());
                }
                Err(_) => {
                    spins += 1;
                    if spins > self.spin_budget {
                        self.stats.conflict_write_locked += 1;
                        return Err(Abort::Conflict);
                    }
                }
            }
        }
    }

    /// Stripe-batched full read of `dst.len()` words starting at `addr`.
    ///
    /// All words of a 64-byte stripe share one orec (see `orec.rs`), so the
    /// versioned-read protocol runs once per covered stripe: one `v1`/`v2`
    /// validation sandwiching a bulk load of the stripe's sub-span, and one
    /// [`ReadEntry`] instead of one per word. A per-word loop would push a
    /// duplicate entry per word of the same version — commit-time validation
    /// of the deduplicated set is equivalent.
    ///
    /// Stats contract (the ranged oracle depends on it): the caller bumps
    /// `full` by the span's word count *after* this returns `Ok`; on
    /// `Err` it bumps `full` by the words of the stripes that completed
    /// plus one for the failing stripe, because a per-word loop charges the
    /// failing word before aborting and every word of a stripe fails
    /// together at its first word.
    pub(crate) fn read_full_range(&mut self, addr: Addr, dst: &mut [u64]) -> TxResult<usize> {
        self.chaos(crate::contention::ChaosPoint::Barrier);
        let span_end = addr.word(dst.len() as u64).raw();
        let mut done = 0usize;
        while done < dst.len() {
            let a = addr.word(done as u64);
            let stripe_end = (a.raw() | (STRIPE_BYTES - 1)) + 1;
            let n = ((stripe_end.min(span_end) - a.raw()) / WORD_BYTES) as usize;
            self.read_full_stripe(a, &mut dst[done..done + n])
                .inspect_err(|_| {
                    self.pending.reads.full += done as u64 + 1;
                })?;
            done += n;
        }
        Ok(done)
    }

    fn read_full_stripe(&mut self, addr: Addr, dst: &mut [u64]) -> TxResult<()> {
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v1 = orec.load(Ordering::Acquire);
            if is_locked(v1) {
                if owner_of(v1) == me {
                    for (k, d) in dst.iter_mut().enumerate() {
                        *d = self.mem.load(addr.word(k as u64));
                    }
                    return Ok(());
                }
                spins += 1;
                if spins > self.spin_budget {
                    self.stats.conflict_read_locked += 1;
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            for (k, d) in dst.iter_mut().enumerate() {
                *d = self.mem.load(addr.word(k as u64));
            }
            let v2 = orec.load(Ordering::Acquire);
            if v1 != v2 {
                spins += 1;
                if spins > self.spin_budget {
                    self.stats.conflict_read_locked += 1;
                    return Err(Abort::Conflict);
                }
                continue;
            }
            if v1 > self.rv {
                if !self.extend() {
                    self.stats.conflict_validation += 1;
                    return Err(Abort::Conflict);
                }
                // Same stale-sandwich hazard as `read_full`: re-run the
                // versioned read so the returned stripe reflects the
                // extended snapshot.
                continue;
            }
            self.reads.push(ReadEntry { idx, version: v1 });
            return Ok(());
        }
    }

    /// Stripe-batched full write; the write-side analog of
    /// [`WorkerCtx::read_full_range`]. Each covered stripe is acquired
    /// once — one [`LockEntry`] per *newly* acquired stripe, none when the
    /// stripe's orec is already owned — then every word gets its undo entry
    /// (ascending address order) and in-place store, exactly the log shape
    /// a per-word loop produces (its first word CASes the orec, the rest
    /// take the owned path). Same stats contract as the ranged read.
    pub(crate) fn write_full_range(&mut self, addr: Addr, src: &[u64]) -> TxResult<usize> {
        self.chaos(crate::contention::ChaosPoint::Barrier);
        let span_end = addr.word(src.len() as u64).raw();
        let mut done = 0usize;
        while done < src.len() {
            let a = addr.word(done as u64);
            let stripe_end = (a.raw() | (STRIPE_BYTES - 1)) + 1;
            let n = ((stripe_end.min(span_end) - a.raw()) / WORD_BYTES) as usize;
            self.write_full_stripe(a, &src[done..done + n])
                .inspect_err(|_| {
                    self.pending.writes.full += done as u64 + 1;
                })?;
            done += n;
        }
        Ok(done)
    }

    fn write_full_stripe(&mut self, addr: Addr, src: &[u64]) -> TxResult<()> {
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v = orec.load(Ordering::Acquire);
            if is_locked(v) {
                if owner_of(v) == me {
                    self.store_stripe_owned(addr, src);
                    return Ok(());
                }
                spins += 1;
                if spins > self.spin_budget {
                    self.stats.conflict_write_locked += 1;
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            if v > self.rv && !self.extend() {
                self.stats.conflict_validation += 1;
                return Err(Abort::Conflict);
            }
            match orec.compare_exchange_weak(v, lock_value(me), Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.locks.push(LockEntry { idx, prev: v });
                    self.store_stripe_owned(addr, src);
                    return Ok(());
                }
                Err(_) => {
                    spins += 1;
                    if spins > self.spin_budget {
                        self.stats.conflict_write_locked += 1;
                        return Err(Abort::Conflict);
                    }
                }
            }
        }
    }

    /// Undo-log and store a stripe sub-span whose orec this transaction
    /// already owns.
    fn store_stripe_owned(&mut self, addr: Addr, src: &[u64]) {
        for (k, &val) in src.iter().enumerate() {
            let a = addr.word(k as u64);
            self.undo.push(UndoEntry {
                addr: a,
                old: self.mem.load(a),
            });
            self.mem.store(a, val);
        }
    }
}
