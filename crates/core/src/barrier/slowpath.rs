//! The full STM barriers (the Intel STM discipline the paper describes in
//! §2.1): optimistic versioned reads with snapshot extension, and
//! encounter-time lock acquisition with undo logging and in-place update.
//! Every barrier variant funnels here when no fast path applies.

use std::sync::atomic::Ordering;

use txmem::Addr;

use crate::orec::{is_locked, lock_value, owner_of};
use crate::worker::{Abort, LockEntry, ReadEntry, TxResult, UndoEntry, WorkerCtx};

impl WorkerCtx<'_> {
    /// Full optimistic read: versioned-read loop with snapshot extension
    /// (gives opacity, so transactions never act on inconsistent state).
    pub(crate) fn read_full(&mut self, addr: Addr) -> TxResult<u64> {
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v1 = orec.load(Ordering::Acquire);
            if is_locked(v1) {
                if owner_of(v1) == me {
                    // Read-after-write to the same record: we own it, the
                    // in-place value is ours.
                    return Ok(self.mem.load(addr));
                }
                spins += 1;
                if spins > self.cfg.spin_tries {
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            let val = self.mem.load(addr);
            let v2 = orec.load(Ordering::Acquire);
            if v1 != v2 {
                spins += 1;
                if spins > self.cfg.spin_tries {
                    return Err(Abort::Conflict);
                }
                continue;
            }
            if v1 > self.rv && !self.extend() {
                return Err(Abort::Conflict);
            }
            self.reads.push(ReadEntry { idx, version: v1 });
            return Ok(val);
        }
    }

    /// Full write: encounter-time lock acquisition, undo log, in-place
    /// update.
    pub(crate) fn write_full(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        let (idx, orec) = self.rt.orecs.of(addr);
        let me = self.tid() as u64;
        let mut spins = 0u32;
        loop {
            let v = orec.load(Ordering::Acquire);
            if is_locked(v) {
                if owner_of(v) == me {
                    // Write-after-write to an owned record: the cheap check
                    // the paper notes already catches redundant write
                    // barriers in the baseline (yada discussion, §4.2).
                    self.undo.push(UndoEntry {
                        addr,
                        old: self.mem.load(addr),
                    });
                    self.mem.store(addr, val);
                    return Ok(());
                }
                spins += 1;
                if spins > self.cfg.spin_tries {
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
                continue;
            }
            if v > self.rv && !self.extend() {
                return Err(Abort::Conflict);
            }
            match orec.compare_exchange_weak(v, lock_value(me), Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.locks.push(LockEntry { idx, prev: v });
                    self.undo.push(UndoEntry {
                        addr,
                        old: self.mem.load(addr),
                    });
                    self.mem.store(addr, val);
                    return Ok(());
                }
                Err(_) => {
                    spins += 1;
                    if spins > self.cfg.spin_tries {
                        return Err(Abort::Conflict);
                    }
                }
            }
        }
    }
}
