//! Monomorphized read-barrier variants (paper Fig. 2). One function per
//! [`crate::Mode`]; the runtime variant is additionally generic over the
//! capture policy, so `read_runtime::<RangeTree>` etc. compile to straight
//! fast-path code with no dispatch inside.

use txmem::Addr;

use super::PolicySlot;
use crate::site::Site;
use crate::worker::{TxResult, WorkerCtx};

/// Bookkeeping every read barrier starts with.
#[inline(always)]
fn prologue(w: &mut WorkerCtx<'_>, site: &'static Site, addr: Addr) {
    debug_assert!(w.depth > 0, "read barrier outside transaction");
    if w.cfg.classify {
        w.classify_access(site, addr, false);
    }
}

/// Shared epilogue: annotation check, then the full STM read.
#[inline(always)]
fn annotated_or_full(w: &mut WorkerCtx<'_>, addr: Addr) -> TxResult<u64> {
    if w.annotation_hit(addr) {
        w.pending.reads.elided_annotation += 1;
        return Ok(w.mem.load_private(addr));
    }
    w.pending.reads.full += 1;
    w.read_full(addr)
}

/// Baseline: no capture analysis; every read is a full barrier (modulo
/// annotations).
pub(super) fn read_baseline(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    annotated_or_full(w, addr)
}

/// Compiler capture analysis (paper §3.2): statically proven sites skip
/// the barrier entirely; everything else runs the full barrier with no
/// runtime checks.
pub(super) fn read_compiler(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.reads.elided_static += 1;
        return Ok(w.mem.load_private(addr));
    }
    annotated_or_full(w, addr)
}

/// Interprocedural compiler capture analysis: like [`read_compiler`], but
/// the verdict is the whole-program summary pass, so interproc-only sites
/// (`compiler_elides_interproc` without `compiler_elides`) are elided too.
/// Separate monomorphized entry point — the plain compiler barrier stays
/// branch-identical to the seed.
pub(super) fn read_compiler_interproc(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.reads.elided_static += 1;
        return Ok(w.mem.load_private(addr));
    }
    if site.compiler_elides_interproc {
        w.pending.reads.elided_static_interproc += 1;
        return Ok(w.mem.load_private(addr));
    }
    annotated_or_full(w, addr)
}

/// Runtime capture analysis (paper §3.1), monomorphized over the policy.
/// The scope booleans are per-configuration constants cached on the worker
/// at spawn; the branch predictor treats them as always-taken/never-taken.
pub(super) fn read_runtime<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if w.scope.reads {
        if w.scope.stack && w.stack_capture(addr).is_some() {
            w.pending.reads.elided_stack += 1;
            return Ok(w.mem.load_private(addr));
        }
        if w.scope.heap && w.heap_capture::<P>(addr).is_some() {
            w.pending.reads.elided_heap += 1;
            return Ok(w.mem.load_private(addr));
        }
    }
    annotated_or_full(w, addr)
}

/// Runtime capture analysis with the transaction-local nursery: the scalar
/// range test runs first (two compares, like the stack check), and the
/// monomorphized fallback log only sees overflow/demoted/large blocks.
/// Reads elide at any captured level, so the `Current`/`Ancestor` split is
/// irrelevant here.
pub(super) fn read_runtime_nursery<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if w.scope.reads {
        if w.scope.heap && w.nursery_capture(addr).is_some() {
            w.pending.reads.elided_nursery += 1;
            return Ok(w.mem.load_private(addr));
        }
        if w.scope.stack && w.stack_capture(addr).is_some() {
            w.pending.reads.elided_stack += 1;
            return Ok(w.mem.load_private(addr));
        }
        if w.scope.heap && w.heap_capture::<P>(addr).is_some() {
            w.pending.reads.elided_heap += 1;
            return Ok(w.mem.load_private(addr));
        }
    }
    annotated_or_full(w, addr)
}
