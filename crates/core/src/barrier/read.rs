//! Monomorphized read-barrier variants (paper Fig. 2). One function per
//! [`crate::Mode`]; the runtime variant is additionally generic over the
//! capture policy, so `read_runtime::<RangeTree>` etc. compile to straight
//! fast-path code with no dispatch inside.

use txmem::Addr;

use super::fastpath::{RunCounter, RunVerdict};
use super::PolicySlot;
use crate::site::Site;
use crate::worker::{TxResult, WorkerCtx};

/// Bookkeeping every read barrier starts with.
#[inline(always)]
fn prologue(w: &mut WorkerCtx<'_>, site: &'static Site, addr: Addr) {
    debug_assert!(w.depth > 0, "read barrier outside transaction");
    if w.cfg.classify {
        w.classify_access(site, addr, false);
    }
}

/// Shared epilogue: annotation check, then the full STM read.
#[inline(always)]
fn annotated_or_full(w: &mut WorkerCtx<'_>, addr: Addr) -> TxResult<u64> {
    if w.annotation_hit(addr) {
        w.pending.reads.elided_annotation += 1;
        return Ok(w.mem.load_private(addr));
    }
    w.pending.reads.full += 1;
    w.read_full(addr)
}

/// Baseline: no capture analysis; every read is a full barrier (modulo
/// annotations).
pub(super) fn read_baseline(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    annotated_or_full(w, addr)
}

/// Compiler capture analysis (paper §3.2): statically proven sites skip
/// the barrier entirely; everything else runs the full barrier with no
/// runtime checks.
pub(super) fn read_compiler(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.reads.elided_static += 1;
        return Ok(w.mem.load_private(addr));
    }
    annotated_or_full(w, addr)
}

/// Interprocedural compiler capture analysis: like [`read_compiler`], but
/// the verdict is the whole-program summary pass, so interproc-only sites
/// (`compiler_elides_interproc` without `compiler_elides`) are elided too.
/// Separate monomorphized entry point — the plain compiler barrier stays
/// branch-identical to the seed.
pub(super) fn read_compiler_interproc(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if site.compiler_elides {
        w.pending.reads.elided_static += 1;
        return Ok(w.mem.load_private(addr));
    }
    if site.compiler_elides_interproc {
        w.pending.reads.elided_static_interproc += 1;
        return Ok(w.mem.load_private(addr));
    }
    annotated_or_full(w, addr)
}

/// Runtime capture analysis (paper §3.1), monomorphized over the policy.
/// The scope booleans are per-configuration constants cached on the worker
/// at spawn; the branch predictor treats them as always-taken/never-taken.
pub(super) fn read_runtime<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if w.scope.reads {
        if w.scope.stack && w.stack_capture(addr).is_some() {
            w.pending.reads.elided_stack += 1;
            return Ok(w.mem.load_private(addr));
        }
        if w.scope.heap && w.heap_capture::<P>(addr).is_some() {
            w.pending.reads.elided_heap += 1;
            return Ok(w.mem.load_private(addr));
        }
    }
    annotated_or_full(w, addr)
}

/// Runtime capture analysis with the transaction-local nursery: the scalar
/// range test runs first (two compares, like the stack check), and the
/// monomorphized fallback log only sees overflow/demoted/large blocks.
/// Reads elide at any captured level, so the `Current`/`Ancestor` split is
/// irrelevant here.
pub(super) fn read_runtime_nursery<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
) -> TxResult<u64> {
    prologue(w, site, addr);
    if w.scope.reads {
        if w.scope.heap && w.nursery_capture(addr).is_some() {
            w.pending.reads.elided_nursery += 1;
            return Ok(w.mem.load_private(addr));
        }
        if w.scope.stack && w.stack_capture(addr).is_some() {
            w.pending.reads.elided_stack += 1;
            return Ok(w.mem.load_private(addr));
        }
        if w.scope.heap && w.heap_capture::<P>(addr).is_some() {
            w.pending.reads.elided_heap += 1;
            return Ok(w.mem.load_private(addr));
        }
    }
    annotated_or_full(w, addr)
}

// ---- Ranged read barriers ----------------------------------------------
//
// One table row per mode, mirroring the per-word rows above. The contract
// every variant obeys: the per-word `BarrierDelta` counters move exactly as
// a loop over the matching per-word barrier would move them (the ranged
// oracle enforces this bit-for-bit), and only the `ranged` telemetry
// records that the words were processed as runs.

/// Whole-op degradation to the per-word barrier: classify instrumentation
/// and annotations are defined per word, so equivalence is by construction.
pub(super) fn per_word_read(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
    word: fn(&mut WorkerCtx<'_>, &'static Site, Addr) -> TxResult<u64>,
) -> TxResult<()> {
    w.pending.ranged.fallbacks += 1;
    for (k, slot) in dst.iter_mut().enumerate() {
        *slot = word(w, site, addr.word(k as u64))?;
    }
    Ok(())
}

pub(super) fn read_range_baseline(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_read(w, site, addr, dst, read_baseline);
    }
    debug_assert!(w.depth > 0, "read barrier outside transaction");
    w.bump_ranged_run(dst.len());
    w.read_full_range(addr, dst)?;
    w.pending.reads.full += dst.len() as u64;
    Ok(())
}

pub(super) fn read_range_compiler(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_read(w, site, addr, dst, read_compiler);
    }
    debug_assert!(w.depth > 0, "read barrier outside transaction");
    w.bump_ranged_run(dst.len());
    if site.compiler_elides {
        w.pending.reads.elided_static += dst.len() as u64;
        w.mem.load_range_private(addr, dst);
        return Ok(());
    }
    w.read_full_range(addr, dst)?;
    w.pending.reads.full += dst.len() as u64;
    Ok(())
}

pub(super) fn read_range_compiler_interproc(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_read(w, site, addr, dst, read_compiler_interproc);
    }
    debug_assert!(w.depth > 0, "read barrier outside transaction");
    w.bump_ranged_run(dst.len());
    if site.compiler_elides {
        w.pending.reads.elided_static += dst.len() as u64;
        w.mem.load_range_private(addr, dst);
        return Ok(());
    }
    if site.compiler_elides_interproc {
        w.pending.reads.elided_static_interproc += dst.len() as u64;
        w.mem.load_range_private(addr, dst);
        return Ok(());
    }
    w.read_full_range(addr, dst)?;
    w.pending.reads.full += dst.len() as u64;
    Ok(())
}

/// The runtime ranged read: classify once per homogeneous run, bulk-copy
/// captured runs, stripe-batch shared runs. Shared body of the plain and
/// nursery table rows (the nursery range is empty when inactive), with the
/// matching per-word barrier threaded through for the degraded cases.
#[inline]
fn read_range_runtime_impl<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
    word: fn(&mut WorkerCtx<'_>, &'static Site, Addr) -> TxResult<u64>,
) -> TxResult<()> {
    if w.cfg.classify || w.cfg.annotations {
        return per_word_read(w, site, addr, dst, word);
    }
    debug_assert!(w.depth > 0, "read barrier outside transaction");
    let limit = addr.word(dst.len() as u64).raw();
    let mut i = 0usize;
    while i < dst.len() {
        let a = addr.word(i as u64);
        let verdict = w.classify_read_run::<P>(a, limit);
        let n = verdict.words(a);
        w.bump_ranged_run(n);
        match verdict {
            RunVerdict::Captured { counter, .. } => {
                match counter {
                    RunCounter::Nursery => w.pending.reads.elided_nursery += n as u64,
                    RunCounter::Stack => w.pending.reads.elided_stack += n as u64,
                    RunCounter::Heap => w.pending.reads.elided_heap += n as u64,
                }
                w.mem.load_range_private(a, &mut dst[i..i + n]);
            }
            RunVerdict::Ancestor { .. } => unreachable!("reads elide at any level"),
            RunVerdict::Shared { .. } => {
                w.read_full_range(a, &mut dst[i..i + n])?;
                w.pending.reads.full += n as u64;
            }
        }
        i += n;
    }
    Ok(())
}

pub(super) fn read_range_runtime<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
) -> TxResult<()> {
    read_range_runtime_impl::<P>(w, site, addr, dst, read_runtime::<P>)
}

pub(super) fn read_range_runtime_nursery<P: PolicySlot>(
    w: &mut WorkerCtx<'_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
) -> TxResult<()> {
    read_range_runtime_impl::<P>(w, site, addr, dst, read_runtime_nursery::<P>)
}
