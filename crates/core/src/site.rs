/// Static description of one transactional access site.
///
/// In the paper, the "access site" is a load/store instruction inside an
/// atomic block that the STM compiler turned into a barrier call. Two static
/// facts about each site drive the evaluation:
///
/// * [`Site::required`] — whether the access was *manually* instrumented
///   (`TM_SHARED_READ`/`TM_SHARED_WRITE`) in the original STAMP sources.
///   The paper uses this to estimate the "required" category of Figure 8:
///   everything else a naive compiler instruments is over-instrumentation.
/// * [`Site::compiler_elides`] — whether the paper's compiler capture
///   analysis (intraprocedural flow-sensitive pointer analysis after
///   bounded inlining, implemented for real in the `txcc` crate) would
///   statically prove the target captured and remove the barrier.
///
/// Our Rust-authored STAMP ports cannot be instrumented by `txcc`, so each
/// site carries these verdicts as constants; the `txcc` test-suite
/// cross-checks representative sites against the real analysis on
/// equivalent mini-language programs (see DESIGN.md §4.2).
#[derive(Debug)]
pub struct Site {
    pub name: &'static str,
    /// Original STAMP manually instrumented this access.
    pub required: bool,
    /// The static capture analysis proves the target transaction-local.
    pub compiler_elides: bool,
}

impl Site {
    /// A genuinely shared access: manually instrumented in STAMP, never
    /// elidable.
    pub const fn shared(name: &'static str) -> Site {
        Site {
            name,
            required: true,
            compiler_elides: false,
        }
    }

    /// An access to memory allocated earlier *in the same function* (or in
    /// a callee inlined into it) within the same transaction: the static
    /// analysis sees the allocation and elides the barrier.
    pub const fn captured_local(name: &'static str) -> Site {
        Site {
            name,
            required: false,
            compiler_elides: true,
        }
    }

    /// An access to captured memory whose allocation is *not* visible to
    /// the intraprocedural analysis (e.g. the pointer flowed through a
    /// non-inlined call or a heap load): runtime capture analysis finds it,
    /// the compiler cannot.
    pub const fn captured_escaped(name: &'static str) -> Site {
        Site {
            name,
            required: false,
            compiler_elides: false,
        }
    }

    /// An access the original STAMP left uninstrumented for *other* reasons
    /// (thread-local or read-only data, paper §2.2.2/§2.2.3): a naive
    /// compiler adds a barrier, automatic capture analysis cannot remove it
    /// (only annotations can).
    pub const fn unneeded(name: &'static str) -> Site {
        Site {
            name,
            required: false,
            compiler_elides: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_encode_the_four_categories() {
        let s = Site::shared("s");
        assert!(s.required && !s.compiler_elides);
        let c = Site::captured_local("c");
        assert!(!c.required && c.compiler_elides);
        let e = Site::captured_escaped("e");
        assert!(!e.required && !e.compiler_elides);
        let u = Site::unneeded("u");
        assert!(!u.required && !u.compiler_elides);
    }
}
