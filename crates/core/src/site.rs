/// Static description of one transactional access site.
///
/// In the paper, the "access site" is a load/store instruction inside an
/// atomic block that the STM compiler turned into a barrier call. Three
/// static facts about each site drive the evaluation:
///
/// * [`Site::required`] — whether the access was *manually* instrumented
///   (`TM_SHARED_READ`/`TM_SHARED_WRITE`) in the original STAMP sources.
///   The paper uses this to estimate the "required" category of Figure 8:
///   everything else a naive compiler instruments is over-instrumentation.
/// * [`Site::compiler_elides`] — whether the paper's compiler capture
///   analysis (intraprocedural flow-sensitive pointer analysis after
///   bounded inlining, implemented for real in the `txcc` crate) would
///   statically prove the target captured and remove the barrier.
/// * [`Site::compiler_elides_interproc`] — whether the *interprocedural*
///   summary-based capture analysis (`txcc::interproc`) proves the target
///   captured. A strict superset of `compiler_elides`: everything the
///   intraprocedural pass elides, the interprocedural pass elides too,
///   plus sites whose allocation flows through a non-inlined call (helper
///   constructors too big for bounded inlining) or through a field of a
///   captured block.
///
/// Our Rust-authored STAMP ports cannot be instrumented by `txcc`, so each
/// site carries these verdicts as constants; the `txcc` test-suite
/// cross-checks representative sites against the real analysis on
/// equivalent mini-language programs (see DESIGN.md §4.2).
#[derive(Debug)]
pub struct Site {
    /// Human-readable site name (diagnostics only).
    pub name: &'static str,
    /// Original STAMP manually instrumented this access.
    pub required: bool,
    /// The intraprocedural static capture analysis (after bounded inlining)
    /// proves the target transaction-local.
    pub compiler_elides: bool,
    /// The interprocedural summary-based analysis proves the target
    /// transaction-local. Invariant: `compiler_elides` implies
    /// `compiler_elides_interproc` (the stronger pass never loses a
    /// verdict); asserted by the suite and by `txcc`'s superset check.
    pub compiler_elides_interproc: bool,
}

impl Site {
    /// A genuinely shared access: manually instrumented in STAMP, never
    /// elidable.
    pub const fn shared(name: &'static str) -> Site {
        Site {
            name,
            required: true,
            compiler_elides: false,
            compiler_elides_interproc: false,
        }
    }

    /// An access to memory allocated earlier *in the same function* (or in
    /// a callee inlined into it) within the same transaction: the static
    /// analysis sees the allocation and elides the barrier.
    pub const fn captured_local(name: &'static str) -> Site {
        Site {
            name,
            required: false,
            compiler_elides: true,
            compiler_elides_interproc: true,
        }
    }

    /// An access to captured memory whose allocation is visible only
    /// *across a call boundary* — the captured pointer flowed into a
    /// helper too big (or structurally unfit) for bounded inlining, or out
    /// of a helper as its return value. The intraprocedural analysis keeps
    /// the barrier; the interprocedural summary analysis elides it.
    pub const fn captured_interproc(name: &'static str) -> Site {
        Site {
            name,
            required: false,
            compiler_elides: false,
            compiler_elides_interproc: true,
        }
    }

    /// An access to captured memory whose allocation is *not* visible to
    /// either static analysis (e.g. the pointer was laundered through
    /// shared memory): runtime capture analysis finds it, the compiler
    /// cannot.
    pub const fn captured_escaped(name: &'static str) -> Site {
        Site {
            name,
            required: false,
            compiler_elides: false,
            compiler_elides_interproc: false,
        }
    }

    /// An access the original STAMP left uninstrumented for *other* reasons
    /// (thread-local or read-only data, paper §2.2.2/§2.2.3): a naive
    /// compiler adds a barrier, automatic capture analysis cannot remove it
    /// (only annotations can).
    pub const fn unneeded(name: &'static str) -> Site {
        Site {
            name,
            required: false,
            compiler_elides: false,
            compiler_elides_interproc: false,
        }
    }

    /// Any static analysis (intra- or interprocedural) elides this site.
    /// `compiler_elides` implies this by the constructor invariant.
    #[inline(always)]
    pub const fn statically_elidable(&self) -> bool {
        self.compiler_elides_interproc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_encode_the_five_categories() {
        let s = Site::shared("s");
        assert!(s.required && !s.compiler_elides && !s.compiler_elides_interproc);
        let c = Site::captured_local("c");
        assert!(!c.required && c.compiler_elides && c.compiler_elides_interproc);
        let i = Site::captured_interproc("i");
        assert!(!i.required && !i.compiler_elides && i.compiler_elides_interproc);
        let e = Site::captured_escaped("e");
        assert!(!e.required && !e.compiler_elides && !e.compiler_elides_interproc);
        let u = Site::unneeded("u");
        assert!(!u.required && !u.compiler_elides && !u.compiler_elides_interproc);
    }

    #[test]
    fn intraproc_verdicts_are_a_subset_of_interproc() {
        // The constructor set must maintain the superset invariant the
        // barrier relies on: no constructor may set `compiler_elides`
        // without `compiler_elides_interproc`.
        for s in [
            Site::shared("a"),
            Site::captured_local("b"),
            Site::captured_interproc("c"),
            Site::captured_escaped("d"),
            Site::unneeded("e"),
        ] {
            assert!(
                !s.compiler_elides || s.compiler_elides_interproc,
                "{}",
                s.name
            );
            assert_eq!(s.statically_elidable(), s.compiler_elides_interproc);
        }
    }
}
