//! Adaptive contention management and schedule fault injection.
//!
//! The paper's evaluation assumes a "simple exponential backoff contention
//! manager" and benign STAMP contention; this module is what stands between
//! that assumption and adversarial traffic. It owns the whole abort/retry
//! path behind an escalation ladder:
//!
//! 1. **Decorrelated-jitter backoff** — the single audited implementation
//!    of the wait both plain retry (`WorkerCtx::txn`) and merge retry
//!    (`WorkerCtx::txn_batch`) use ([`WorkerCtx::backoff_wait`]).
//! 2. **Karma-style patience** — past [`TxConfig::karma_threshold`]
//!    consecutive aborts, the transaction's lock-spin budget grows with its
//!    attempt count. In a mutual-wait cycle the *fresher* transaction
//!    exhausts its (smaller) budget first and aborts, releasing its locks —
//!    so the chronic aborter wins the conflict without any shared karma
//!    table.
//! 3. **Serialization token** — past [`TxConfig::serialize_threshold`]
//!    attempts (or the [`TxConfig::cm_time_budget_ms`] wall-clock budget),
//!    the transaction takes a global token, drains every in-flight
//!    transaction, and runs *solo*. A solo transaction encounters no
//!    foreign locks and no read invalidations, so it cannot conflict-abort:
//!    its next attempt commits. That is the forward-progress guarantee that
//!    replaces the `max_attempts` panic under
//!    [`ContentionPolicy::Adaptive`].
//!
//! The soundness argument for the token (why "solo ⇒ commits") and the
//! liveness bound it yields are laid out in DESIGN.md §12; the
//! `liveness_oracle` integration test exercises both under injected
//! adversarial schedules.
//!
//! [`ChaosPlan`] is the schedule-fault-injection seam (the scheduling
//! analogue of the durable layer's `FaultPlan`): a deterministic, seedable
//! source of delay / yield / preemption events at barrier, validation, and
//! commit points, used by the tests to force pathological interleavings
//! that free-running threads rarely produce.
//!
//! [`TxConfig::karma_threshold`]: crate::TxConfig::karma_threshold
//! [`TxConfig::serialize_threshold`]: crate::TxConfig::serialize_threshold
//! [`TxConfig::cm_time_budget_ms`]: crate::TxConfig::cm_time_budget_ms

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use txmem::CachePadded;

use crate::worker::WorkerCtx;

/// Which contention manager runs the abort/retry path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ContentionPolicy {
    /// The paper's fixed policy: decorrelated-jitter exponential backoff
    /// only, with the `TxConfig::max_attempts` panic as the sole livelock
    /// answer. Kept as the measurement baseline (`expt contention`
    /// compares against it) and for workloads that want the panic as a
    /// bug detector.
    Backoff,
    /// The escalation ladder (module docs): backoff, then karma-style
    /// spin-budget growth, then the global serialization token. Guarantees
    /// forward progress — chronic aborters serialize instead of
    /// livelocking, and `max_attempts` is never consulted.
    #[default]
    Adaptive,
}

impl ContentionPolicy {
    /// Display label used by experiment tables (`"backoff"` /
    /// `"adaptive"`).
    pub fn label(&self) -> &'static str {
        match self {
            ContentionPolicy::Backoff => "backoff",
            ContentionPolicy::Adaptive => "adaptive",
        }
    }
}

/// Where a [`ChaosPlan`] may inject a scheduling fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosPoint {
    /// Entry of a full (shared-access) read/write barrier — the window
    /// between observing an orec and acting on it.
    Barrier,
    /// Before read-set validation (commit-time validation and timestamp
    /// extension) — widens the window in which a concurrent writer can
    /// invalidate the read set.
    Validation,
    /// After locks are held, before they publish — stretches the
    /// lock-held window other transactions spin against.
    Commit,
}

/// Deterministic, seedable schedule-fault injection: the scheduling
/// analogue of the durable layer's `FaultPlan`. Each worker derives its own
/// stream from `seed` and its thread id, so a plan reproduces the same
/// injection schedule run after run; at every enabled [`ChaosPoint`] the
/// stream fires with probability `1/period`, choosing a spin delay, a
/// `yield_now`, or a sleep-preemption by `yield_share`/`preempt_share`.
///
/// Injection only ever *delays* execution — it never changes what a
/// transaction reads or writes — so any schedule it produces is one the OS
/// scheduler could have produced; tests that pass under chaos therefore
/// certify behavior, not luck.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Base seed; each worker mixes in its thread id.
    pub seed: u64,
    /// Fire on average once per `period` enabled injection points
    /// (`>= 1`; 1 fires at every enabled point).
    pub period: u64,
    /// Inject at [`ChaosPoint::Barrier`].
    pub barrier: bool,
    /// Inject at [`ChaosPoint::Validation`].
    pub validation: bool,
    /// Inject at [`ChaosPoint::Commit`].
    pub commit: bool,
    /// Upper bound for an injected spin delay (`spin_loop` iterations).
    pub max_spins: u32,
    /// Percentage of firings that become a `yield_now` (0..=100).
    pub yield_share: u32,
    /// Percentage of firings that become a sleep-preemption (0..=100;
    /// `yield_share + preempt_share <= 100`, the remainder are spin
    /// delays).
    pub preempt_share: u32,
    /// Sleep length of a preemption firing, in microseconds.
    pub preempt_us: u32,
}

impl ChaosPlan {
    /// A plan covering every injection point with a mixed delay profile:
    /// mostly spin delays, some yields, a few sleep-preemptions — the
    /// profile the liveness oracle runs its adversarial workloads under.
    pub fn all(seed: u64, period: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            period,
            barrier: true,
            validation: true,
            commit: true,
            max_spins: 256,
            yield_share: 25,
            preempt_share: 5,
            preempt_us: 50,
        }
    }

    /// A plan that only stretches the lock-held commit window (the
    /// highest-leverage point for manufacturing convoys).
    pub fn commit_only(seed: u64, period: u64) -> ChaosPlan {
        ChaosPlan {
            barrier: false,
            validation: false,
            ..ChaosPlan::all(seed, period)
        }
    }

    /// Derive the per-worker rng state for thread `tid` (splitmix64 of the
    /// seed/tid mix; never zero, so the xorshift stream cannot lock up).
    pub(crate) fn rng_for(&self, tid: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((tid as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) | 1
    }
}

/// Shared contention-manager state on the runtime: the serialization token
/// and the per-thread active flags its drain protocol scans.
///
/// `token` holds `0` when free and `tid + 1` while thread `tid` serializes.
/// `active[t]` is set while thread `t` is inside a (non-token) physical
/// transaction. Both sides of the entry/acquire race use `SeqCst` so the
/// classic Dekker argument applies: an enterer stores its flag *then* loads
/// the token, an acquirer CASes the token *then* scans the flags — in the
/// single total order one of them must see the other.
///
/// Per-thread cache-padded flags (not a shared counter) keep transaction
/// begin/end from bouncing one global cache line across every worker.
pub(crate) struct ContentionState {
    token: CachePadded<AtomicU64>,
    active: Box<[CachePadded<AtomicBool>]>,
}

impl ContentionState {
    pub(crate) fn new(max_threads: usize) -> ContentionState {
        ContentionState {
            token: CachePadded::new(AtomicU64::new(0)),
            active: (0..max_threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }
}

impl WorkerCtx<'_> {
    /// Contention-manager gate at top-level transaction begin: announce
    /// this worker as active, and stand down while a serialization-token
    /// holder runs solo. Called before the durable quiesce gate — a token
    /// holder must be able to drain workers parked *at* transaction entry.
    pub(crate) fn cm_enter(&mut self) {
        if !self.cm_adaptive || self.holds_token {
            // Backoff policy keeps the legacy free-for-all; a token holder
            // needs no active flag — the token itself excludes everyone.
            return;
        }
        let cm = &self.rt.cm;
        let me = self.tid();
        cm.active[me].store(true, Ordering::SeqCst);
        while cm.token.load(Ordering::SeqCst) != 0 {
            // A chronic aborter is serializing: retract the flag so it can
            // finish draining, wait for its (guaranteed) commit, re-gate.
            cm.active[me].store(false, Ordering::SeqCst);
            while cm.token.load(Ordering::Acquire) != 0 {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            cm.active[me].store(true, Ordering::SeqCst);
        }
    }

    /// Contention-manager exit at the end of every physical transaction
    /// (commit *and* rollback): release the serialization token if held,
    /// clear the active flag.
    pub(crate) fn cm_exit(&mut self) {
        if !self.cm_adaptive {
            return;
        }
        if self.holds_token {
            self.holds_token = false;
            self.rt.cm.token.store(0, Ordering::SeqCst);
        }
        self.rt.cm.active[self.tid()].store(false, Ordering::SeqCst);
    }

    /// Reset the per-transaction escalation state (new logical transaction
    /// or forward progress in a batch).
    pub(crate) fn cm_reset(&mut self) {
        self.attempts = 0;
        self.backoff_prev = 0;
        self.spin_budget = self.cfg.spin_tries;
        self.cm_deadline = None;
    }

    /// The escalation ladder, run after every conflict abort of a
    /// top-level (physical) transaction. The caller has already rolled
    /// back, so no locks are held and the active flag is clear.
    pub(crate) fn cm_after_abort(&mut self) {
        self.attempts += 1;
        if self.attempts > self.stats.attempts_max {
            self.stats.attempts_max = self.attempts;
        }
        if !self.cm_adaptive {
            // The paper's fixed policy: backoff only, with the livelock
            // safety valve as the sole escape.
            assert!(
                self.attempts <= self.cfg.max_attempts,
                "transaction livelocked: {} consecutive aborts",
                self.attempts
            );
            self.backoff_wait();
            return;
        }
        if self.holds_token {
            // Defensive only: a solo transaction cannot conflict-abort
            // (DESIGN.md §12). Retry immediately, keeping the token.
            return;
        }
        if self.attempts == 1 {
            self.cm_deadline =
                Some(Instant::now() + Duration::from_millis(self.cfg.cm_time_budget_ms));
        }
        let over_time = self.cm_deadline.is_some_and(|d| Instant::now() >= d);
        if (self.attempts >= self.cfg.serialize_threshold || over_time) && self.cm_acquire_token() {
            // Token held and every other transaction drained: retry
            // immediately — it cannot fail.
            return;
        }
        if self.attempts >= self.cfg.karma_threshold {
            // Karma tier: patience grows with the attempt count, so in a
            // mutual-wait cycle the fresher (lower-budget) transaction
            // aborts first and releases its locks to the chronic one.
            if self.attempts == self.cfg.karma_threshold {
                self.stats.cm_karma_escalations += 1;
            }
            let over = (self.attempts - self.cfg.karma_threshold).min(63) as u32;
            self.spin_budget = self.cfg.spin_tries.saturating_mul(2 + over);
        }
        self.backoff_wait();
    }

    /// Try to take the global serialization token; on success, drain every
    /// other in-flight transaction so the next attempt runs solo. Fails
    /// (without waiting) when another thread is already serializing — the
    /// caller backs off and stands down at its next `cm_enter`.
    fn cm_acquire_token(&mut self) -> bool {
        let cm = &self.rt.cm;
        let me = self.tid();
        if cm
            .token
            .compare_exchange(0, me as u64 + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.holds_token = true;
        self.stats.cm_serializations += 1;
        // Drain: every active transaction either commits or aborts in
        // bounded time (lock holders progress, spinners exhaust their
        // budget), and the token keeps new ones from entering.
        for (t, flag) in cm.active.iter().enumerate() {
            if t == me {
                continue;
            }
            while flag.load(Ordering::SeqCst) {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        true
    }

    /// One decorrelated-jitter backoff wait — the single shared
    /// implementation behind plain retry and merge retry (one
    /// `backoff_waits` bump per episode).
    ///
    /// Exponential backoff with *decorrelated* jitter: each wait is a
    /// uniform draw from `[BASE, 3 * previous wait]`, capped at
    /// `2^backoff_shift_max` spins. Unlike a truncated-exponential
    /// schedule, chronic aborters do not cluster at the cap and re-collide
    /// on the same orec stripes — the next wait is seeded by the *drawn*
    /// wait, not the attempt count, so repeat losers decorrelate from each
    /// other while still ramping up exponentially in expectation.
    pub(crate) fn backoff_wait(&mut self) {
        const BASE: u64 = 16;
        let cap = (1u64 << self.cfg.backoff_shift_max).max(BASE + 1);
        let hi = (self.backoff_prev * 3).clamp(BASE + 1, cap);
        let spins = BASE + self.next_rand() % (hi - BASE);
        self.backoff_prev = spins;
        self.stats.backoff_waits += 1;
        self.stats.record_backoff_spins(spins);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        if self.attempts > 4 {
            std::thread::yield_now();
        }
    }

    /// Schedule-fault injection hook; a no-op branch unless the runtime
    /// was configured with a [`ChaosPlan`].
    #[inline]
    pub(crate) fn chaos(&mut self, point: ChaosPoint) {
        if self.chaos_on {
            self.chaos_fire(point);
        }
    }

    #[cold]
    fn chaos_fire(&mut self, point: ChaosPoint) {
        let plan = self.cfg.chaos.expect("chaos_on without a plan");
        let enabled = match point {
            ChaosPoint::Barrier => plan.barrier,
            ChaosPoint::Validation => plan.validation,
            ChaosPoint::Commit => plan.commit,
        };
        if !enabled {
            return;
        }
        // xorshift64: deterministic per-worker stream (seeded by
        // ChaosPlan::rng_for), advanced once per enabled point.
        let mut x = self.chaos_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.chaos_rng = x;
        if !x.is_multiple_of(plan.period) {
            return;
        }
        self.stats.chaos_injections += 1;
        let sel = (x / plan.period.max(1)) % 100;
        if sel < u64::from(plan.preempt_share) {
            std::thread::sleep(Duration::from_micros(u64::from(plan.preempt_us)));
        } else if sel < u64::from(plan.preempt_share + plan.yield_share) {
            std::thread::yield_now();
        } else {
            let spins = (x >> 24) % u64::from(plan.max_spins.max(1));
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    #[test]
    fn policy_labels() {
        assert_eq!(ContentionPolicy::Backoff.label(), "backoff");
        assert_eq!(ContentionPolicy::Adaptive.label(), "adaptive");
        assert_eq!(ContentionPolicy::default(), ContentionPolicy::Adaptive);
    }

    #[test]
    fn chaos_rng_streams_are_distinct_and_stable() {
        let p = ChaosPlan::all(42, 3);
        assert_ne!(p.rng_for(0), p.rng_for(1));
        assert_eq!(p.rng_for(0), p.rng_for(0), "seeding must be deterministic");
        assert_ne!(ChaosPlan::all(43, 3).rng_for(0), p.rng_for(0));
        // The commit-only profile keeps the mixed delay shares.
        let c = ChaosPlan::commit_only(1, 2);
        assert!(c.commit && !c.barrier && !c.validation);
    }

    #[test]
    fn chaos_injection_is_deterministic() {
        // Same plan + same single-threaded workload twice: identical
        // injection counts (the whole point of a seedable schedule).
        let run = || {
            let mut cfg = TxConfig::default();
            cfg.chaos = Some(ChaosPlan::all(7, 2));
            let rt = StmRuntime::new(MemConfig::small(), cfg);
            let a = rt.alloc_global(64);
            let mut w = rt.spawn_worker();
            static S: crate::Site = crate::Site::shared("chaos-det");
            for _ in 0..50 {
                w.txn(|tx| {
                    let v = tx.read(&S, a)?;
                    tx.write(&S, a, v + 1)
                });
            }
            (w.stats.chaos_injections, w.load(a))
        };
        let (i1, v1) = run();
        let (i2, v2) = run();
        assert!(i1 > 0, "period-2 chaos over 100 barriers must fire");
        assert_eq!(i1, i2);
        assert_eq!(v1, v2);
        assert_eq!(v1, 50);
    }

    #[test]
    fn token_serializes_and_releases() {
        // Directly exercise the token protocol single-threaded: acquire,
        // verify the commit path releases it.
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let a = rt.alloc_global(64);
        let mut w = rt.spawn_worker();
        // Force the ladder to the serialization tier.
        w.attempts = rt.config().serialize_threshold;
        assert!(w.cm_acquire_token());
        assert!(w.holds_token);
        assert_eq!(w.stats.cm_serializations, 1);
        static S: crate::Site = crate::Site::shared("token-commit");
        w.txn(|tx| tx.write(&S, a, 9));
        assert!(!w.holds_token, "commit must release the token");
        assert_eq!(rt.cm.token.load(Ordering::SeqCst), 0);
        // A second acquisition works (the token round-trips).
        assert!(w.cm_acquire_token());
        w.cm_exit();
        assert_eq!(rt.cm.token.load(Ordering::SeqCst), 0);
    }
}
