use capture::LogKind;

use crate::contention::{ChaosPlan, ContentionPolicy};

/// Which barriers perform runtime capture checks, and for which kinds of
/// captured memory. These correspond to the configurations measured in the
/// paper's Figure 10/11: checking both stack and heap in both barrier kinds,
/// write barriers only, or write barriers + heap only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckScope {
    /// Run capture checks in read barriers.
    pub reads: bool,
    /// Run capture checks in write barriers.
    pub writes: bool,
    /// Check the transaction-local stack (paper Fig. 4).
    pub stack: bool,
    /// Check the transaction-local heap (allocation log).
    pub heap: bool,
}

impl CheckScope {
    /// Configuration (1) of Figure 10: stack+heap in reads and writes.
    pub const FULL: CheckScope = CheckScope {
        reads: true,
        writes: true,
        stack: true,
        heap: true,
    };
    /// Configuration (2): stack+heap, write barriers only.
    pub const WRITES_STACK_HEAP: CheckScope = CheckScope {
        reads: false,
        writes: true,
        stack: true,
        heap: true,
    };
    /// Configuration (3): heap only, write barriers only (also the
    /// configuration of Figure 11(b)).
    pub const WRITES_HEAP: CheckScope = CheckScope {
        reads: false,
        writes: true,
        stack: false,
        heap: true,
    };

    /// Display label, e.g. `r+w/stack+heap` (used by experiment tables).
    pub fn label(&self) -> String {
        let barriers = match (self.reads, self.writes) {
            (true, true) => "r+w",
            (false, true) => "w",
            (true, false) => "r",
            (false, false) => "none",
        };
        let kinds = match (self.stack, self.heap) {
            (true, true) => "stack+heap",
            (false, true) => "heap",
            (true, false) => "stack",
            (false, false) => "none",
        };
        format!("{barriers}/{kinds}")
    }
}

/// Barrier optimization mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No capture analysis: every transactional access executes the full
    /// barrier (the paper's baseline; over-instrumentation included).
    Baseline,
    /// Runtime capture analysis (paper §3.1) with the chosen allocation-log
    /// data structure and check scope.
    Runtime {
        /// Allocation-log data structure for the captured-heap check.
        log: LogKind,
        /// Which barriers check which kinds of captured memory.
        scope: CheckScope,
    },
    /// Compiler capture analysis (paper §3.2): sites statically proven
    /// captured skip the barrier entirely; everything else runs the full
    /// barrier with *no* runtime checks.
    Compiler,
    /// Interprocedural compiler capture analysis (`txcc::interproc`):
    /// like [`Mode::Compiler`], but the static verdict is the
    /// summary-based whole-program pass, so sites whose allocation flows
    /// through a non-inlined call ([`crate::Site::compiler_elides_interproc`])
    /// are elided as well. Still zero runtime checks.
    CompilerInterproc,
}

impl Mode {
    /// Display label, e.g. `runtime-tree (r+w/stack+heap)`.
    pub fn label(&self) -> String {
        match self {
            Mode::Baseline => "baseline".into(),
            Mode::Runtime { log, scope } => format!("runtime-{} ({})", log.name(), scope.label()),
            Mode::Compiler => "compiler".into(),
            Mode::CompilerInterproc => "compiler-interproc".into(),
        }
    }
}

/// How `WorkerCtx::txn_batch` reacts when a merged physical transaction
/// hits a conflict partway through its logical transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergeSplitPolicy {
    /// Truncate the logs to the last clean logical boundary, commit the
    /// salvaged prefix, and retry only the conflicting remainder unmerged
    /// (the default; keeps committed work under contention).
    #[default]
    Salvage,
    /// Discard the whole merged window (full rollback) and retry its first
    /// logical transaction unmerged before resuming merging. Simpler
    /// recovery, more wasted work under contention.
    Restart,
}

/// Full runtime configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxConfig {
    /// Barrier optimization mode (the paper's configurations).
    pub mode: Mode,
    /// Consult the thread's private-memory annotation log in barriers
    /// (paper §3.1.3). Off by default, matching the paper's evaluation
    /// ("we did not elide those barriers in the following experiments").
    pub annotations: bool,
    /// Maintain a precise shadow tree and classify every barrier into the
    /// paper's Figure-8 categories (tx-local heap / tx-local stack /
    /// not-required-other / required). Adds overhead; used by the harness.
    pub classify: bool,
    /// Serve small transactional allocations from a per-transaction
    /// *nursery* — a contiguous bump region carved from the heap's
    /// frontier/shards — so the captured-heap check in [`Mode::Runtime`]
    /// barriers becomes a two-compare range test (the same shape as the
    /// stack check) and an abort reclaims the whole nursery in O(1) by
    /// recycling regions instead of walking per-block free lists. Blocks
    /// the scalar range cannot represent (overflow past a chained region,
    /// holes punched by in-transaction frees, large blocks) fall back to
    /// the configured allocation log. Only meaningful in `Mode::Runtime`;
    /// ignored elsewhere (the other modes keep no runtime capture state).
    pub nursery: bool,
    /// log2 of the transaction-record table size.
    pub orec_log2: u32,
    /// How many times a barrier re-examines a locked record before the
    /// contention manager aborts the transaction.
    pub spin_tries: u32,
    /// Cap for the exponential backoff shift (paper: simple exponential
    /// backoff contention manager).
    pub backoff_shift_max: u32,
    /// Panic after this many consecutive aborts of one transaction (safety
    /// valve against livelock bugs; not a paper mechanism).
    pub max_attempts: u64,
    /// Route every barrier through the **enum-dispatch reference
    /// pipeline** — a per-access `match` on [`Mode`] and an enum-dispatched
    /// allocation log — instead of the monomorphized dispatch table
    /// selected at runtime construction. Semantics (including statistics)
    /// are identical by contract; the differential tests and the
    /// `barrier_dispatch` microbenchmark rely on that. Not a paper
    /// mechanism; testing/measurement aid only.
    pub reference_dispatch: bool,
    /// Maximum merge factor `WorkerCtx::txn_batch` accepts: how many
    /// logical (application) transactions may execute inside one physical
    /// transaction. `1` (the default) disables merging — `txn_batch(1, ..)`
    /// still works but every logical transaction is its own physical
    /// transaction. Must be in `1..=MERGE_MAX_LIMIT`.
    pub merge_max: u32,
    /// Conflict recovery for merged transactions; see [`MergeSplitPolicy`].
    pub merge_split_policy: MergeSplitPolicy,
    /// Durable commit mode: every physical commit appends its write set to
    /// a per-worker append-only redo log on the runtime's simulated disk
    /// (see `stm::SimDisk`), from which [`crate::recover`] can rebuild the
    /// heap after a crash. Captured writes — stack, in-transaction heap
    /// blocks, nursery — are *not* logged per word: a surviving block is
    /// logged once as a coalesced final-content range at commit, and stack
    /// scratch is not logged at all. Requires
    /// [`StmRuntime::new_durable`](crate::StmRuntime::new_durable).
    pub durable: bool,
    /// Group-commit factor for the durable redo log: how many physical
    /// commits a worker buffers before appending them to its log in one
    /// disk operation. `1` (the default) is strict durability — the record
    /// is on disk *before* the commit publishes its locks, so no
    /// transaction can observe unlogged state. Values above 1 trade the
    /// last `durable_flush_batch - 1` commits on a crash for fewer disk
    /// operations (relaxed durability; recovery still yields a consistent
    /// committed prefix). Must be in `1..=DURABLE_FLUSH_BATCH_LIMIT`.
    pub durable_flush_batch: u32,
    /// Which contention manager runs the abort/retry path (see
    /// [`ContentionPolicy`] and `stm::contention`). The default,
    /// [`ContentionPolicy::Adaptive`], escalates backoff → karma patience →
    /// a global serialization token and guarantees forward progress;
    /// [`ContentionPolicy::Backoff`] is the paper's fixed policy with the
    /// `max_attempts` panic as the only livelock answer.
    pub contention_policy: ContentionPolicy,
    /// Consecutive aborts after which the adaptive ladder enters its karma
    /// tier: the transaction's lock-spin budget starts growing with its
    /// attempt count, so chronic aborters out-wait fresh transactions in
    /// mutual-wait cycles. Must be `1..serialize_threshold`.
    pub karma_threshold: u64,
    /// Consecutive aborts after which the adaptive ladder serializes: the
    /// transaction takes the global token, drains in-flight transactions,
    /// and runs solo (it then cannot conflict, so it commits). Must be
    /// `> karma_threshold`.
    pub serialize_threshold: u64,
    /// Wall-clock budget (milliseconds) a transaction may spend retrying
    /// before the adaptive ladder serializes it regardless of its attempt
    /// count — the starvation bound for long transactions that lose to
    /// short ones without racking up attempts quickly. Must be `>= 1`.
    pub cm_time_budget_ms: u64,
    /// Deterministic schedule-fault injection plan (`None` disables; see
    /// [`ChaosPlan`]). Test/measurement aid: injects seeded delays, yields
    /// and sleep-preemptions at barrier/validation/commit points to force
    /// pathological interleavings.
    pub chaos: Option<ChaosPlan>,
}

/// Upper bound for [`TxConfig::merge_max`]: each logical boundary holds a
/// nesting level open until the physical commit, so the factor bounds the
/// checkpoint / watermark stack depth.
pub const MERGE_MAX_LIMIT: u32 = 4096;

/// Upper bound for [`TxConfig::durable_flush_batch`]: the group-commit
/// buffer holds every unflushed record in worker memory, and a crash loses
/// up to `durable_flush_batch - 1` commits, so the factor bounds both.
pub const DURABLE_FLUSH_BATCH_LIMIT: u32 = 1024;

impl Default for TxConfig {
    fn default() -> Self {
        TxConfig {
            mode: Mode::Baseline,
            annotations: false,
            classify: false,
            nursery: false,
            orec_log2: 20,
            spin_tries: 64,
            backoff_shift_max: 14,
            max_attempts: 50_000_000,
            reference_dispatch: false,
            merge_max: 1,
            merge_split_policy: MergeSplitPolicy::Salvage,
            durable: false,
            durable_flush_batch: 1,
            contention_policy: ContentionPolicy::Adaptive,
            karma_threshold: 8,
            serialize_threshold: 64,
            cm_time_budget_ms: 100,
            chaos: None,
        }
    }
}

/// Why a [`TxConfigBuilder`] refused to produce a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `nursery(true)` without runtime capture analysis: the nursery's
    /// scalar range cannot represent every block (overflow, holes, large
    /// blocks), so it *requires* a backing allocation log to demote to —
    /// and only [`Mode::Runtime`] carries one.
    NurseryWithoutBackingLog,
    /// `orec_log2` outside the supported 4..=26 range (the table is
    /// `2^orec_log2` words; below 16 entries every address collides,
    /// above 2^26 the table dwarfs the simulated memory it guards).
    OrecLog2OutOfRange(u32),
    /// `spin_tries` of zero: a barrier must re-examine a locked record at
    /// least once before the contention manager gives up.
    ZeroSpinTries,
    /// `max_attempts` of zero: the livelock safety valve would fire on
    /// the very first attempt.
    ZeroMaxAttempts,
    /// `backoff_shift_max` above 32: `1 << shift` spins would overflow
    /// any sane backoff budget.
    BackoffShiftTooLarge(u32),
    /// `merge_max` of zero: a batch must hold at least one logical
    /// transaction (`merge_max = 1` is how merging is *disabled*).
    ZeroMergeMax,
    /// `merge_max` above [`MERGE_MAX_LIMIT`]: every logical boundary keeps
    /// a nesting level (checkpoint + watermark) open until the physical
    /// commit, so the factor bounds live bookkeeping.
    MergeMaxTooLarge(u32),
    /// `merge_max > 1` together with `reference_dispatch`: the
    /// enum-dispatch pipeline is the differential oracle for *unmerged*
    /// per-access barrier behavior; merged transactions change the
    /// physical commit structure it is compared against.
    MergeWithReferenceDispatch,
    /// `durable` together with `reference_dispatch`: the enum-dispatch
    /// pipeline is the differential oracle for the per-access barriers
    /// alone; the durable commit hook changes the physical commit path
    /// (ticket draws for allocating read-only commits, pre-publish log
    /// appends) that the oracle's stats are compared against.
    DurableWithReferenceDispatch,
    /// `durable_flush_batch` of zero: a flush must cover at least one
    /// commit (`1` is strict per-commit durability).
    ZeroDurableFlushBatch,
    /// `durable_flush_batch` above [`DURABLE_FLUSH_BATCH_LIMIT`]: the
    /// group-commit buffer and the crash-loss window both grow with the
    /// factor, so it is bounded.
    DurableFlushBatchTooLarge(u32),
    /// `karma_threshold` of zero: the karma tier would escalate before the
    /// first abort, skipping plain backoff entirely.
    ZeroKarmaThreshold,
    /// `serialize_threshold` of zero: every first abort would grab the
    /// global serialization token, serializing the whole runtime.
    ZeroSerializeThreshold,
    /// Escalation thresholds out of order (`karma_threshold >=
    /// serialize_threshold`): the ladder must pass through the karma tier
    /// before serializing, or the spin-budget escalation is dead code.
    UnorderedEscalationThresholds(u64, u64),
    /// `cm_time_budget_ms` of zero: the wall-clock starvation bound would
    /// expire immediately, serializing every retried transaction.
    ZeroContentionTimeBudget,
    /// A [`crate::ChaosPlan`] with `period` of zero: the injection draw is
    /// taken modulo the period (1 fires at every enabled point).
    ZeroChaosPeriod,
    /// A [`crate::ChaosPlan`] whose `yield_share + preempt_share` exceeds
    /// 100: the shares are percentages of firings, the remainder are spin
    /// delays.
    ChaosSharesTooLarge(u32),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NurseryWithoutBackingLog => write!(
                f,
                "nursery allocation requires runtime capture analysis \
                 (Mode::Runtime) for its backing allocation log"
            ),
            ConfigError::OrecLog2OutOfRange(v) => {
                write!(f, "orec_log2 {v} outside supported range 4..=26")
            }
            ConfigError::ZeroSpinTries => write!(f, "spin_tries must be at least 1"),
            ConfigError::ZeroMaxAttempts => write!(f, "max_attempts must be at least 1"),
            ConfigError::BackoffShiftTooLarge(v) => {
                write!(
                    f,
                    "backoff_shift_max {v} exceeds the supported maximum of 32"
                )
            }
            ConfigError::ZeroMergeMax => write!(
                f,
                "merge_max must be at least 1 (1 disables transaction merging)"
            ),
            ConfigError::MergeMaxTooLarge(v) => write!(
                f,
                "merge_max {v} exceeds the supported maximum of {MERGE_MAX_LIMIT}"
            ),
            ConfigError::MergeWithReferenceDispatch => write!(
                f,
                "transaction merging (merge_max > 1) is incompatible with the \
                 reference_dispatch differential oracle"
            ),
            ConfigError::DurableWithReferenceDispatch => write!(
                f,
                "durable commit mode is incompatible with the \
                 reference_dispatch differential oracle"
            ),
            ConfigError::ZeroDurableFlushBatch => write!(
                f,
                "durable_flush_batch must be at least 1 (1 is strict \
                 per-commit durability)"
            ),
            ConfigError::DurableFlushBatchTooLarge(v) => write!(
                f,
                "durable_flush_batch {v} exceeds the supported maximum of \
                 {DURABLE_FLUSH_BATCH_LIMIT}"
            ),
            ConfigError::ZeroKarmaThreshold => {
                write!(f, "karma_threshold must be at least 1")
            }
            ConfigError::ZeroSerializeThreshold => {
                write!(f, "serialize_threshold must be at least 1")
            }
            ConfigError::UnorderedEscalationThresholds(k, s) => write!(
                f,
                "escalation thresholds out of order: karma_threshold {k} must \
                 be below serialize_threshold {s}"
            ),
            ConfigError::ZeroContentionTimeBudget => {
                write!(f, "cm_time_budget_ms must be at least 1")
            }
            ConfigError::ZeroChaosPeriod => {
                write!(f, "chaos plan period must be at least 1")
            }
            ConfigError::ChaosSharesTooLarge(v) => {
                write!(f, "chaos plan yield_share + preempt_share {v} exceeds 100")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validating builder for [`TxConfig`] — the front door for
/// harnesses that assemble configurations from user input (`expt`,
/// `stamp_runner`). Starts from [`TxConfig::default`] (baseline mode) and
/// rejects inconsistent combinations at [`TxConfigBuilder::build`] time
/// instead of silently ignoring flags at runtime.
///
/// ```
/// use stm::{CheckScope, LogKind, Mode, TxConfig};
///
/// let cfg = TxConfig::builder()
///     .mode(Mode::Runtime { log: LogKind::Tree, scope: CheckScope::FULL })
///     .nursery(true)
///     .build()
///     .unwrap();
/// assert!(cfg.nursery_active());
///
/// // The nursery needs a backing log; baseline mode has none.
/// assert!(TxConfig::builder().nursery(true).build().is_err());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TxConfigBuilder {
    cfg: TxConfig,
}

impl TxConfigBuilder {
    /// Barrier optimization mode (default: [`Mode::Baseline`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Consult private-memory annotations in barriers (paper §3.1.3).
    pub fn annotations(mut self, on: bool) -> Self {
        self.cfg.annotations = on;
        self
    }

    /// Maintain the precise Figure-8 classification shadow tree.
    pub fn classify(mut self, on: bool) -> Self {
        self.cfg.classify = on;
        self
    }

    /// Per-transaction nursery allocation; requires a runtime mode (the
    /// nursery demotes to its backing allocation log).
    pub fn nursery(mut self, on: bool) -> Self {
        self.cfg.nursery = on;
        self
    }

    /// log2 of the transaction-record table size (default 20).
    pub fn orec_log2(mut self, log2: u32) -> Self {
        self.cfg.orec_log2 = log2;
        self
    }

    /// Lock re-examination budget before the contention manager aborts.
    pub fn spin_tries(mut self, tries: u32) -> Self {
        self.cfg.spin_tries = tries;
        self
    }

    /// Cap for the exponential-backoff shift.
    pub fn backoff_shift_max(mut self, shift: u32) -> Self {
        self.cfg.backoff_shift_max = shift;
        self
    }

    /// Livelock safety valve: panic after this many consecutive aborts.
    pub fn max_attempts(mut self, attempts: u64) -> Self {
        self.cfg.max_attempts = attempts;
        self
    }

    /// Route barriers through the enum-dispatch reference pipeline
    /// (differential-testing oracle).
    pub fn reference_dispatch(mut self, on: bool) -> Self {
        self.cfg.reference_dispatch = on;
        self
    }

    /// Maximum merge factor for `WorkerCtx::txn_batch` (default 1 —
    /// merging disabled).
    pub fn merge_max(mut self, n: u32) -> Self {
        self.cfg.merge_max = n;
        self
    }

    /// Conflict recovery for merged transactions (default
    /// [`MergeSplitPolicy::Salvage`]).
    pub fn merge_split_policy(mut self, policy: MergeSplitPolicy) -> Self {
        self.cfg.merge_split_policy = policy;
        self
    }

    /// Durable redo-log commit mode (default off); see
    /// [`TxConfig::durable`].
    pub fn durable(mut self, on: bool) -> Self {
        self.cfg.durable = on;
        self
    }

    /// Group-commit factor for the durable redo log (default 1 — strict
    /// per-commit durability); see [`TxConfig::durable_flush_batch`].
    pub fn durable_flush_batch(mut self, n: u32) -> Self {
        self.cfg.durable_flush_batch = n;
        self
    }

    /// Contention-management policy for the abort/retry path (default
    /// [`ContentionPolicy::Adaptive`]).
    pub fn contention_policy(mut self, policy: ContentionPolicy) -> Self {
        self.cfg.contention_policy = policy;
        self
    }

    /// Consecutive aborts before the adaptive ladder's karma tier (default
    /// 8); see [`TxConfig::karma_threshold`].
    pub fn karma_threshold(mut self, attempts: u64) -> Self {
        self.cfg.karma_threshold = attempts;
        self
    }

    /// Consecutive aborts before the adaptive ladder serializes (default
    /// 64); see [`TxConfig::serialize_threshold`].
    pub fn serialize_threshold(mut self, attempts: u64) -> Self {
        self.cfg.serialize_threshold = attempts;
        self
    }

    /// Wall-clock retry budget in milliseconds before serialization
    /// (default 100); see [`TxConfig::cm_time_budget_ms`].
    pub fn cm_time_budget_ms(mut self, ms: u64) -> Self {
        self.cfg.cm_time_budget_ms = ms;
        self
    }

    /// Enable deterministic schedule-fault injection (default off); see
    /// [`crate::ChaosPlan`].
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.cfg.chaos = Some(plan);
        self
    }

    /// Validate the combination and produce the configuration.
    pub fn build(self) -> Result<TxConfig, ConfigError> {
        let c = &self.cfg;
        if c.nursery && !matches!(c.mode, Mode::Runtime { .. }) {
            return Err(ConfigError::NurseryWithoutBackingLog);
        }
        if !(4..=26).contains(&c.orec_log2) {
            return Err(ConfigError::OrecLog2OutOfRange(c.orec_log2));
        }
        if c.spin_tries == 0 {
            return Err(ConfigError::ZeroSpinTries);
        }
        if c.max_attempts == 0 {
            return Err(ConfigError::ZeroMaxAttempts);
        }
        if c.backoff_shift_max > 32 {
            return Err(ConfigError::BackoffShiftTooLarge(c.backoff_shift_max));
        }
        if c.merge_max == 0 {
            return Err(ConfigError::ZeroMergeMax);
        }
        if c.merge_max > MERGE_MAX_LIMIT {
            return Err(ConfigError::MergeMaxTooLarge(c.merge_max));
        }
        if c.merge_max > 1 && c.reference_dispatch {
            return Err(ConfigError::MergeWithReferenceDispatch);
        }
        if c.durable && c.reference_dispatch {
            return Err(ConfigError::DurableWithReferenceDispatch);
        }
        if c.durable_flush_batch == 0 {
            return Err(ConfigError::ZeroDurableFlushBatch);
        }
        if c.durable_flush_batch > DURABLE_FLUSH_BATCH_LIMIT {
            return Err(ConfigError::DurableFlushBatchTooLarge(
                c.durable_flush_batch,
            ));
        }
        if c.karma_threshold == 0 {
            return Err(ConfigError::ZeroKarmaThreshold);
        }
        if c.serialize_threshold == 0 {
            return Err(ConfigError::ZeroSerializeThreshold);
        }
        if c.karma_threshold >= c.serialize_threshold {
            return Err(ConfigError::UnorderedEscalationThresholds(
                c.karma_threshold,
                c.serialize_threshold,
            ));
        }
        if c.cm_time_budget_ms == 0 {
            return Err(ConfigError::ZeroContentionTimeBudget);
        }
        if let Some(plan) = &c.chaos {
            if plan.period == 0 {
                return Err(ConfigError::ZeroChaosPeriod);
            }
            let shares = plan.yield_share + plan.preempt_share;
            if shares > 100 {
                return Err(ConfigError::ChaosSharesTooLarge(shares));
            }
        }
        Ok(self.cfg)
    }
}

impl TxConfig {
    /// Fluent, validating builder; see [`TxConfigBuilder`].
    pub fn builder() -> TxConfigBuilder {
        TxConfigBuilder {
            cfg: TxConfig::default(),
        }
    }

    /// Default configuration with the given barrier mode.
    pub fn with_mode(mode: Mode) -> TxConfig {
        TxConfig {
            mode,
            ..TxConfig::default()
        }
    }

    /// The runtime configuration used in most of the paper's figures:
    /// tree-based log, full scope.
    pub fn runtime_tree_full() -> TxConfig {
        TxConfig::with_mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
    }

    /// The canonical nursery configuration (ISSUE 4): the same tree-based
    /// runtime analysis with per-transaction nursery allocation — the
    /// tree serves as the fallback log for overflow/demoted/large blocks.
    /// The single source of truth for every benchmark/test/example that
    /// compares "nursery on" against [`TxConfig::runtime_tree_full`].
    pub fn runtime_tree_nursery() -> TxConfig {
        let mut cfg = TxConfig::runtime_tree_full();
        cfg.nursery = true;
        cfg
    }

    /// Is the nursery actually active for this configuration? (The flag
    /// only matters with runtime capture analysis.)
    pub fn nursery_active(&self) -> bool {
        self.nursery && matches!(self.mode, Mode::Runtime { .. })
    }

    /// Display label: the mode label, plus `+nursery` / `+durable`
    /// suffixes when those features are active (used by experiment tables
    /// and reports).
    pub fn label(&self) -> String {
        let mut l = self.mode.label();
        let mut suffix = String::new();
        if self.nursery_active() {
            suffix.push_str("+nursery");
        }
        if self.durable {
            suffix.push_str("+durable");
        }
        if !suffix.is_empty() {
            match l.find(" (") {
                Some(i) => l.insert_str(i, &suffix),
                None => l.push_str(&suffix),
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Mode::Baseline.label(), "baseline");
        assert_eq!(
            Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL
            }
            .label(),
            "runtime-tree (r+w/stack+heap)"
        );
        assert_eq!(CheckScope::WRITES_HEAP.label(), "w/heap");
        assert_eq!(Mode::Compiler.label(), "compiler");
        assert_eq!(Mode::CompilerInterproc.label(), "compiler-interproc");
    }

    #[test]
    fn default_is_baseline() {
        let c = TxConfig::default();
        assert_eq!(c.mode, Mode::Baseline);
        assert!(!c.annotations);
        assert!(!c.classify);
        assert!(!c.nursery);
    }

    #[test]
    fn builder_validates_combinations() {
        // The happy path reproduces the canonical presets.
        let built = TxConfig::builder()
            .mode(Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL,
            })
            .nursery(true)
            .build()
            .unwrap();
        let preset = TxConfig::runtime_tree_nursery();
        assert_eq!(built.mode, preset.mode);
        assert_eq!(built.nursery, preset.nursery);
        assert_eq!(built.orec_log2, preset.orec_log2);

        // Nursery without a backing log is rejected for every non-runtime
        // mode.
        for mode in [Mode::Baseline, Mode::Compiler, Mode::CompilerInterproc] {
            assert_eq!(
                TxConfig::builder().mode(mode).nursery(true).build(),
                Err(ConfigError::NurseryWithoutBackingLog)
            );
        }

        // Range checks.
        assert_eq!(
            TxConfig::builder().orec_log2(2).build(),
            Err(ConfigError::OrecLog2OutOfRange(2))
        );
        assert_eq!(
            TxConfig::builder().orec_log2(30).build(),
            Err(ConfigError::OrecLog2OutOfRange(30))
        );
        assert_eq!(
            TxConfig::builder().spin_tries(0).build(),
            Err(ConfigError::ZeroSpinTries)
        );
        assert_eq!(
            TxConfig::builder().max_attempts(0).build(),
            Err(ConfigError::ZeroMaxAttempts)
        );
        assert_eq!(
            TxConfig::builder().backoff_shift_max(40).build(),
            Err(ConfigError::BackoffShiftTooLarge(40))
        );

        // Merge knobs: zero and over-limit factors are rejected, and the
        // reference-dispatch oracle cannot be combined with real merging.
        assert_eq!(
            TxConfig::builder().merge_max(0).build(),
            Err(ConfigError::ZeroMergeMax)
        );
        assert_eq!(
            TxConfig::builder().merge_max(MERGE_MAX_LIMIT + 1).build(),
            Err(ConfigError::MergeMaxTooLarge(MERGE_MAX_LIMIT + 1))
        );
        assert_eq!(
            TxConfig::builder()
                .merge_max(8)
                .reference_dispatch(true)
                .build(),
            Err(ConfigError::MergeWithReferenceDispatch)
        );
        // merge_max = 1 (merging disabled) stays compatible with the
        // reference pipeline; existing oracle configs keep building.
        let ref_cfg = TxConfig::builder()
            .reference_dispatch(true)
            .build()
            .unwrap();
        assert_eq!(ref_cfg.merge_max, 1);
        let merged = TxConfig::builder()
            .merge_max(32)
            .merge_split_policy(MergeSplitPolicy::Restart)
            .build()
            .unwrap();
        assert_eq!(merged.merge_max, 32);
        assert_eq!(merged.merge_split_policy, MergeSplitPolicy::Restart);
        assert_eq!(
            TxConfig::default().merge_split_policy,
            MergeSplitPolicy::Salvage
        );

        // Durable knobs: the reference-dispatch oracle cannot run with the
        // durable commit hook, and the flush-batch factor is bounded on
        // both sides.
        assert_eq!(
            TxConfig::builder()
                .durable(true)
                .reference_dispatch(true)
                .build(),
            Err(ConfigError::DurableWithReferenceDispatch)
        );
        assert_eq!(
            TxConfig::builder().durable_flush_batch(0).build(),
            Err(ConfigError::ZeroDurableFlushBatch)
        );
        assert_eq!(
            TxConfig::builder()
                .durable_flush_batch(DURABLE_FLUSH_BATCH_LIMIT + 1)
                .build(),
            Err(ConfigError::DurableFlushBatchTooLarge(
                DURABLE_FLUSH_BATCH_LIMIT + 1
            ))
        );
        // Happy path: durable composes with nursery and merging, and the
        // flush batch flows through at its limit.
        let durable = TxConfig::builder()
            .mode(Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL,
            })
            .nursery(true)
            .merge_max(8)
            .durable(true)
            .durable_flush_batch(DURABLE_FLUSH_BATCH_LIMIT)
            .build()
            .unwrap();
        assert!(durable.durable);
        assert_eq!(durable.durable_flush_batch, DURABLE_FLUSH_BATCH_LIMIT);
        // A flush batch without durable mode is accepted (inert knob), and
        // the default is strict per-commit flushing.
        assert_eq!(TxConfig::default().durable_flush_batch, 1);
        assert!(!TxConfig::default().durable);
        assert!(TxConfig::builder().durable_flush_batch(4).build().is_ok());

        // Contention-manager knobs: zero budgets are rejected, and the
        // escalation thresholds must be ordered (karma strictly below
        // serialize — the ladder passes through the karma tier first).
        assert_eq!(
            TxConfig::builder().karma_threshold(0).build(),
            Err(ConfigError::ZeroKarmaThreshold)
        );
        assert_eq!(
            TxConfig::builder()
                .karma_threshold(1)
                .serialize_threshold(0)
                .build(),
            Err(ConfigError::ZeroSerializeThreshold)
        );
        assert_eq!(
            TxConfig::builder()
                .karma_threshold(64)
                .serialize_threshold(64)
                .build(),
            Err(ConfigError::UnorderedEscalationThresholds(64, 64))
        );
        assert_eq!(
            TxConfig::builder()
                .karma_threshold(100)
                .serialize_threshold(10)
                .build(),
            Err(ConfigError::UnorderedEscalationThresholds(100, 10))
        );
        assert_eq!(
            TxConfig::builder().cm_time_budget_ms(0).build(),
            Err(ConfigError::ZeroContentionTimeBudget)
        );
        let cm = TxConfig::builder()
            .contention_policy(ContentionPolicy::Backoff)
            .karma_threshold(4)
            .serialize_threshold(32)
            .cm_time_budget_ms(250)
            .build()
            .unwrap();
        assert_eq!(cm.contention_policy, ContentionPolicy::Backoff);
        assert_eq!((cm.karma_threshold, cm.serialize_threshold), (4, 32));
        assert_eq!(cm.cm_time_budget_ms, 250);
        assert_eq!(
            TxConfig::default().contention_policy,
            ContentionPolicy::Adaptive
        );

        // Chaos plans: the injection period must be at least 1 and the
        // delay-kind shares are percentages.
        let mut plan = ChaosPlan::all(7, 0);
        assert_eq!(
            TxConfig::builder().chaos(plan).build(),
            Err(ConfigError::ZeroChaosPeriod)
        );
        plan.period = 4;
        plan.yield_share = 70;
        plan.preempt_share = 40;
        assert_eq!(
            TxConfig::builder().chaos(plan).build(),
            Err(ConfigError::ChaosSharesTooLarge(110))
        );
        let chaotic = TxConfig::builder()
            .chaos(ChaosPlan::all(7, 4))
            .build()
            .unwrap();
        assert_eq!(chaotic.chaos, Some(ChaosPlan::all(7, 4)));
        assert_eq!(TxConfig::default().chaos, None);

        // Errors render human-readable messages (the expt CLI prints them).
        let msg = format!("{}", ConfigError::NurseryWithoutBackingLog);
        assert!(msg.contains("backing allocation log"), "{msg}");
        let msg = format!("{}", ConfigError::MergeWithReferenceDispatch);
        assert!(msg.contains("reference_dispatch"), "{msg}");
        let msg = format!("{}", ConfigError::DurableWithReferenceDispatch);
        assert!(msg.contains("reference_dispatch"), "{msg}");
        let msg = format!("{}", ConfigError::ZeroDurableFlushBatch);
        assert!(msg.contains("at least 1"), "{msg}");
        let msg = format!("{}", ConfigError::DurableFlushBatchTooLarge(9999));
        assert!(msg.contains("9999"), "{msg}");
        let msg = format!("{}", ConfigError::UnorderedEscalationThresholds(9, 3));
        assert!(
            msg.contains("karma_threshold 9") && msg.contains("serialize_threshold 3"),
            "{msg}"
        );
        let msg = format!("{}", ConfigError::ChaosSharesTooLarge(120));
        assert!(msg.contains("120"), "{msg}");

        // Every remaining knob flows through.
        let full = TxConfig::builder()
            .annotations(true)
            .classify(true)
            .spin_tries(7)
            .backoff_shift_max(9)
            .max_attempts(123)
            .reference_dispatch(true)
            .build()
            .unwrap();
        assert!(full.annotations && full.classify && full.reference_dispatch);
        assert_eq!(
            (full.spin_tries, full.backoff_shift_max, full.max_attempts),
            (7, 9, 123)
        );
    }

    #[test]
    fn nursery_labels_and_activation() {
        let mut c = TxConfig::runtime_tree_full();
        assert!(!c.nursery_active());
        c.nursery = true;
        assert!(c.nursery_active());
        assert_eq!(c.label(), "runtime-tree+nursery (r+w/stack+heap)");
        let mut b = TxConfig::default();
        b.nursery = true;
        assert!(
            !b.nursery_active(),
            "nursery needs runtime capture analysis"
        );
        assert_eq!(b.label(), "baseline");
    }

    #[test]
    fn durable_labels() {
        let mut c = TxConfig::runtime_tree_nursery();
        c.durable = true;
        assert_eq!(c.label(), "runtime-tree+nursery+durable (r+w/stack+heap)");
        let mut b = TxConfig::default();
        b.durable = true;
        assert_eq!(b.label(), "baseline+durable");
    }
}
