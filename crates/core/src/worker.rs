use capture::{NurseryLog, PrivateLog, RangeTree};
use txmem::{words_to_bytes, Addr, ThreadAlloc, ThreadStack};

use crate::barrier::{CaptureLogs, DispatchTable};
use crate::commit::BatchMark;
use crate::config::{CheckScope, Mode, TxConfig};
use crate::runtime::StmRuntime;
use crate::site::Site;
use crate::stats::{TxStats, TxnDelta};

/// Why a transaction's closure stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// The runtime detected a conflict; the transaction will be rolled back
    /// and retried (after contention-manager backoff).
    Conflict,
    /// Explicit user abort with a code (paper: "user abort in our system");
    /// rolled back and *not* retried.
    User(u64),
}

/// Result type every transactional operation returns; `?` propagates an
/// abort out of the closure to the retry loop.
pub type TxResult<T> = Result<T, Abort>;

#[derive(Clone, Copy)]
pub(crate) struct ReadEntry {
    pub idx: u32,
    pub version: u64,
}

#[derive(Clone, Copy)]
pub(crate) struct LockEntry {
    pub idx: u32,
    pub prev: u64,
}

#[derive(Clone, Copy)]
pub(crate) struct UndoEntry {
    pub addr: Addr,
    pub old: u64,
}

/// Where a transactional allocation's memory and classification live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AllocHome {
    /// Classic allocator block (size-class free list or large list),
    /// recorded in the active capture policy log; rollback frees it
    /// individually.
    Heap,
    /// Nursery bump block covered by the scalar range test; in no log.
    /// Rollback reclaims it wholesale with its region.
    NurseryScalar,
    /// Nursery bump block demoted to the fallback log: its region was
    /// chained away from, or it sits below a hole punched by an
    /// in-transaction free. Classified by the log, but its memory still
    /// lives in a nursery region, so rollback must *not* free it
    /// individually.
    NurseryLogged,
}

#[derive(Clone, Copy)]
pub(crate) struct AllocRec {
    pub addr: Addr,
    pub usable: u64,
    pub level: u32,
    pub freed: bool,
    pub home: AllocHome,
}

/// Spawn-time-computed gates for the inline fast paths in
/// [`WorkerCtx::read_word`]/[`WorkerCtx::write_word`]. A flag is set only
/// when the corresponding check is (a) enabled by the runtime-mode scope
/// and (b) exact — i.e. an inline hit is guaranteed to take the very same
/// branch the monomorphized barrier would take, with the same counters.
/// All false under `classify` (every access must reach the classification
/// bookkeeping) and under `reference_dispatch` (the oracle pipeline models
/// per-access dispatch, nothing may shortcut it).
#[derive(Clone, Copy, Default)]
pub(crate) struct FastFlags {
    pub read_stack: bool,
    pub read_heap: bool,
    pub write_stack: bool,
    pub write_heap: bool,
    /// Nursery scalar-range checks (two compares, like the stack check).
    /// Exact by construction: the scalar range only ever holds blocks the
    /// current transaction bump-allocated and has not freed or demoted.
    pub read_nursery: bool,
    pub write_nursery: bool,
}

impl FastFlags {
    fn compute(cfg: &TxConfig) -> FastFlags {
        let scope = match cfg.mode {
            Mode::Runtime { scope, .. } => scope,
            _ => return FastFlags::default(),
        };
        if cfg.classify || cfg.reference_dispatch {
            return FastFlags::default();
        }
        let nursery = cfg.nursery_active();
        FastFlags {
            read_stack: scope.reads && scope.stack,
            read_heap: scope.reads && scope.heap,
            write_stack: scope.writes && scope.stack,
            write_heap: scope.writes && scope.heap,
            read_nursery: nursery && scope.reads && scope.heap,
            write_nursery: nursery && scope.writes && scope.heap,
        }
    }
}

/// A registered worker thread: owns a simulated stack region, allocator
/// caches, the capture logs, and the (reusable) transaction logs. This is
/// the paper's *transaction descriptor* plus per-thread runtime state.
pub struct WorkerCtx<'rt> {
    pub(crate) rt: &'rt StmRuntime,
    /// Direct reference to the simulated memory (skips the `rt` → `Arc`
    /// pointer chain on every barrier's load/store).
    pub(crate) mem: &'rt txmem::SharedMem,
    pub(crate) cfg: TxConfig,
    /// The barrier pipeline, resolved once at runtime construction
    /// ([`DispatchTable::select`]): all mode/log dispatch happens through
    /// these monomorphized function pointers, never per access.
    pub(crate) table: &'static DispatchTable,
    /// Capture-check scope, hoisted out of [`Mode::Runtime`] so the
    /// monomorphized barriers read it without touching the mode enum.
    /// Unused (and set to `FULL`) in the other modes.
    pub(crate) scope: CheckScope,
    tid: usize,
    pub(crate) stack: ThreadStack,
    pub(crate) talloc: ThreadAlloc,
    /// Storage for the capture policies the dispatch table projects into
    /// (only the spawn-time-selected one is ever populated).
    pub(crate) logs: CaptureLogs,
    /// Precise shadow log for Figure-8 classification (`cfg.classify`).
    pub(crate) classify_log: Option<RangeTree>,
    /// Annotated private memory (paper §3.1.3); persists across txns.
    pub(crate) private_log: PrivateLog,
    /// This worker's transaction statistics (merged into the runtime's
    /// aggregate by [`WorkerCtx::flush_stats`] / on drop).
    pub stats: TxStats,
    /// Hot-path barrier counters of the current transaction, absorbed into
    /// `stats` once per transaction end.
    pub(crate) pending: TxnDelta,

    // --- live transaction state (buffers reused across transactions) ---
    pub(crate) reads: Vec<ReadEntry>,
    pub(crate) locks: Vec<LockEntry>,
    pub(crate) undo: Vec<UndoEntry>,
    pub(crate) allocs: Vec<AllocRec>,
    pub(crate) frees: Vec<Addr>,
    /// Read-snapshot version.
    pub(crate) rv: u64,
    /// Nesting depth; 0 = no transaction active.
    pub(crate) depth: u32,
    /// `start_sp` per nesting level (`sp_marks[d-1]` = sp when depth-d
    /// transaction began). `sp_marks[0]` bounds the whole transaction-local
    /// stack of the paper's Figure 3.
    pub(crate) sp_marks: Vec<u64>,
    /// Cache of `sp_marks[0]` (scalar, so the barrier's stack range check
    /// never indexes the vector). Only meaningful while `depth > 0`.
    pub(crate) sp_outer: u64,
    /// Cache of `sp_marks[depth - 1]`; see `sp_outer`.
    pub(crate) sp_inner: u64,
    /// Inline fast-path gates (see [`FastFlags`]).
    pub(crate) fast: FastFlags,
    /// One-entry capture cache: `[cap_start, cap_start + cap_len)` is a
    /// heap range the active policy proved captured at the *current or a
    /// deeper* nesting level, valid until the next free / level change /
    /// nested-transaction entry / transaction end (those all call
    /// [`WorkerCtx::clear_capture_cache`], which is what upholds the
    /// level invariant without a per-access level compare). `cap_len == 0`
    /// means empty. Populated only from policies whose
    /// `classify_cacheable` gives a residency guarantee (tree, array —
    /// never the lossy filter), so an inline hit is always a hit the
    /// policy itself would report.
    pub(crate) cap_start: u64,
    pub(crate) cap_len: u64,
    /// Inline mirror of the nursery's scalar window, in the exact shape of
    /// the capture cache above: reads elide when `addr - nur_lo <
    /// nur_rlen` (any captured level), writes when `addr - nur_inner <
    /// nur_wlen` (current level only — ancestor hits need the undo-logged
    /// barrier path). The lengths stay 0 whenever the corresponding
    /// [`FastFlags`] gate is off (wrong mode, classify, reference
    /// dispatch, scope), so the checks need no separate flag test.
    /// Refreshed by [`WorkerCtx::refresh_nursery_window`] after every
    /// nursery mutation.
    pub(crate) nur_lo: u64,
    pub(crate) nur_rlen: u64,
    pub(crate) nur_inner: u64,
    pub(crate) nur_wlen: u64,
    /// The transaction-local nursery (see `crate::nursery`): bump-region
    /// state whose `[lo, bump)` scalar range plus per-level watermark give
    /// the two-compare captured-heap check. Only populated when
    /// [`TxConfig::nursery`] is active; empty (and never consulted by the
    /// fast flags) otherwise.
    pub(crate) nur: NurseryLog,
    /// `cfg.nursery_active()`, hoisted for the allocation path.
    pub(crate) nursery_on: bool,
    /// Usable bytes of live (not yet freed) blocks in nursery regions; an
    /// abort settles the heap's live-byte telemetry with one subtraction
    /// instead of walking the blocks.
    pub(crate) nursery_live: u64,
    /// Nursery blocks freed in-transaction whose space could not be
    /// reclaimed by a bump-back (holes): recycled to the thread's class
    /// free lists at commit, dropped at abort (their regions are recycled
    /// wholesale).
    pub(crate) nursery_reclaim: Vec<Addr>,
    /// Unused region tail carried over from the last commit, `[start,
    /// end)`: the next transaction's nursery starts here instead of
    /// carving, so steady-state region consumption is the published bytes
    /// — not a region per transaction. Recycled on worker drop.
    pub(crate) nursery_spare: (u64, u64),
    /// Consecutive aborts of the currently-retried transaction.
    pub(crate) attempts: u64,
    /// Previous decorrelated-jitter backoff spin count (the `prev` of
    /// `sleep = rand(base, prev * 3)`); reset with `attempts`.
    pub(crate) backoff_prev: u64,
    /// `cfg.contention_policy == Adaptive`, hoisted for the begin/end
    /// gates (see `stm::contention`).
    pub(crate) cm_adaptive: bool,
    /// This worker holds the global serialization token and is running (or
    /// about to run) solo.
    pub(crate) holds_token: bool,
    /// Live lock-spin budget for the slow-path barriers: `cfg.spin_tries`
    /// normally, escalated by the adaptive ladder's karma tier while a
    /// transaction keeps aborting (reset with `attempts`).
    pub(crate) spin_budget: u32,
    /// Wall-clock deadline of the retried transaction's contention-manager
    /// time budget (`cfg.cm_time_budget_ms`, armed at its first abort):
    /// past it, the adaptive ladder serializes regardless of the attempt
    /// count.
    pub(crate) cm_deadline: Option<std::time::Instant>,
    /// `cfg.chaos.is_some()`, hoisted so the injection hook is one branch
    /// when disabled.
    pub(crate) chaos_on: bool,
    /// Per-worker deterministic rng stream of the chaos plan.
    pub(crate) chaos_rng: u64,
    /// Logical-boundary checkpoints of the active merged batch
    /// (`WorkerCtx::txn_batch`), innermost last. Empty outside a batch and
    /// within a batch window's first logical transaction. Buffer reused
    /// across windows.
    pub(crate) batch_marks: Vec<BatchMark>,
    /// Logical transactions completed so far in the active batch window.
    pub(crate) batch_logical: u64,
    /// Logical transactions durably committed by earlier windows of the
    /// active `txn_batch` call (makes `TxBatch::logical_index`
    /// batch-relative across splits).
    pub(crate) batch_base: u64,
    /// Whether a `txn_batch` window is executing (gates `TxBatch::boundary`).
    pub(crate) in_batch: bool,
    /// `rt.durable.is_some()`, hoisted for the commit path (the barrier
    /// hot paths never consult it).
    pub(crate) durable_on: bool,
    /// Framed redo records awaiting a flush to this worker's log file
    /// (group commit buffers `cfg.durable_flush_batch` of them).
    pub(crate) dur_buf: Vec<u8>,
    /// Records currently buffered in `dur_buf`.
    pub(crate) dur_records: u32,
    /// This worker's redo-log file name, cached so the per-commit flush
    /// path never allocates it.
    pub(crate) dur_log_name: String,
    /// Scratch for `durable_prepare`'s shared-write address list, reused
    /// across commits.
    pub(crate) dur_puts: Vec<u64>,
    /// Scratch for `durable_prepare`'s surviving-allocation ranges
    /// (`(start, words)`), reused across commits.
    pub(crate) dur_ranges: Vec<(u64, u64)>,
    rng: u64,
}

impl<'rt> WorkerCtx<'rt> {
    pub(crate) fn new(rt: &'rt StmRuntime, tid: usize) -> WorkerCtx<'rt> {
        let cfg = rt.config;
        let scope = match cfg.mode {
            Mode::Runtime { scope, .. } => scope,
            _ => CheckScope::FULL, // never consulted outside Runtime mode
        };
        WorkerCtx {
            rt,
            mem: rt.mem(),
            cfg,
            table: rt.table,
            scope,
            tid,
            stack: ThreadStack::new(&rt.mem, tid),
            // Stripe the allocator by thread id: concurrent workers refill
            // and spill against different heap shards (deterministic per
            // tid, which the differential dispatch tests rely on).
            talloc: ThreadAlloc::with_stripe(tid),
            logs: CaptureLogs::new(&cfg),
            classify_log: cfg.classify.then(RangeTree::new),
            private_log: PrivateLog::new(),
            stats: TxStats::default(),
            pending: TxnDelta::default(),
            reads: Vec::with_capacity(256),
            locks: Vec::with_capacity(64),
            undo: Vec::with_capacity(64),
            allocs: Vec::with_capacity(32),
            frees: Vec::with_capacity(32),
            rv: 0,
            depth: 0,
            sp_marks: Vec::with_capacity(4),
            sp_outer: 0,
            sp_inner: 0,
            fast: FastFlags::compute(&cfg),
            cap_start: 0,
            cap_len: 0,
            nur_lo: 0,
            nur_rlen: 0,
            nur_inner: 0,
            nur_wlen: 0,
            nur: NurseryLog::new(),
            nursery_on: cfg.nursery_active(),
            nursery_live: 0,
            nursery_reclaim: Vec::with_capacity(8),
            nursery_spare: (0, 0),
            attempts: 0,
            backoff_prev: 0,
            cm_adaptive: cfg.contention_policy == crate::contention::ContentionPolicy::Adaptive,
            holds_token: false,
            spin_budget: cfg.spin_tries,
            cm_deadline: None,
            chaos_on: cfg.chaos.is_some(),
            chaos_rng: cfg.chaos.map_or(1, |p| p.rng_for(tid)),
            batch_marks: Vec::new(),
            batch_logical: 0,
            batch_base: 0,
            in_batch: false,
            durable_on: rt.durable.is_some(),
            dur_buf: Vec::new(),
            dur_records: 0,
            dur_log_name: crate::durable::log_file_name(tid),
            dur_puts: Vec::new(),
            dur_ranges: Vec::new(),
            rng: 0x9E3779B97F4A7C15 ^ (tid as u64 + 1).wrapping_mul(0xA24BAED4963EE407),
        }
    }

    /// The worker's thread id (also selects its stack region and heap
    /// stripe).
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The runtime this worker was spawned from.
    #[inline]
    pub fn runtime(&self) -> &'rt StmRuntime {
        self.rt
    }

    /// Transactional read of one word.
    ///
    /// Three *inline* exact fast paths run first — the nursery scalar
    /// range, the one-entry capture cache, and the current-level stack
    /// range compare — so the hottest captured accesses never leave the
    /// caller's loop. Everything else is a single indirect call into the
    /// monomorphized barrier the dispatch table selected at spawn.
    /// `inline(always)`: with three early-outs the body exceeds the
    /// inliner's default threshold, and falling back to a call costs more
    /// than every fast path combined (measured ~+45% on the captured-hit
    /// microbenchmark).
    #[inline(always)]
    pub(crate) fn read_word(&mut self, site: &'static Site, addr: Addr) -> TxResult<u64> {
        debug_assert!(self.depth > 0, "read barrier outside transaction");
        let a = addr.raw();
        // Nursery, cache, stack: the three regions are disjoint (fallback
        // blocks live outside the nursery's scalar range) and every check
        // is exact, so the order cannot change which counter a hit lands
        // in — only which workload pays one extra compare.
        if a.wrapping_sub(self.nur_lo) < self.nur_rlen {
            self.pending.reads.elided_nursery += 1;
            return Ok(self.mem.load_private(addr));
        }
        if self.fast.read_heap && a.wrapping_sub(self.cap_start) < self.cap_len {
            self.pending.reads.elided_heap += 1;
            return Ok(self.mem.load_private(addr));
        }
        if self.fast.read_stack && a >= self.stack.sp() && a < self.sp_inner {
            self.pending.reads.elided_stack += 1;
            return Ok(self.mem.load_private(addr));
        }
        let read = self.table.read;
        read(self, site, addr)
    }

    /// Transactional write of one word; see [`WorkerCtx::read_word`]. The
    /// inline paths cover only *current-level* captures (plain store);
    /// ancestor-captured writes need an undo entry and take the call.
    #[inline(always)]
    pub(crate) fn write_word(&mut self, site: &'static Site, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert!(self.depth > 0, "write barrier outside transaction");
        let a = addr.raw();
        // Current-level nursery blocks only: `[inner, bump)` (ancestor
        // blocks in `[lo, inner)` need an undo entry and take the call).
        if a.wrapping_sub(self.nur_inner) < self.nur_wlen {
            self.pending.writes.elided_nursery += 1;
            self.mem.store_private(addr, val);
            return Ok(());
        }
        if self.fast.write_heap && a.wrapping_sub(self.cap_start) < self.cap_len {
            self.pending.writes.elided_heap += 1;
            self.mem.store_private(addr, val);
            return Ok(());
        }
        if self.fast.write_stack && a >= self.stack.sp() && a < self.sp_inner {
            self.pending.writes.elided_stack += 1;
            self.mem.store_private(addr, val);
            return Ok(());
        }
        let write = self.table.write;
        write(self, site, addr, val)
    }

    /// Ranged-telemetry bump for one classified run: multi-word runs count
    /// as spans, degenerate one-word runs as fallbacks. Telemetry only —
    /// the per-word `BarrierDelta` counters carry the equivalence contract,
    /// these just record how the words were batched.
    #[inline]
    pub(crate) fn bump_ranged_run(&mut self, words: usize) {
        if words > 1 {
            self.pending.ranged.spans += 1;
        } else {
            self.pending.ranged.fallbacks += 1;
        }
    }

    /// Ranged transactional read of `dst.len()` contiguous words starting
    /// at `addr`.
    ///
    /// Same layering as [`WorkerCtx::read_word`]: inline whole-span checks
    /// against the nursery window, the capture cache, and the current-level
    /// stack range run first (one classification covering the entire span),
    /// and only spans they cannot prove captured take the indirect call
    /// into the mode's ranged barrier, which classifies once per
    /// homogeneous run. Counter contract: every variant moves the per-word
    /// counters exactly as a loop over [`WorkerCtx::read_word`] would.
    #[inline]
    pub(crate) fn read_range(
        &mut self,
        site: &'static Site,
        addr: Addr,
        dst: &mut [u64],
    ) -> TxResult<()> {
        debug_assert!(self.depth > 0, "read barrier outside transaction");
        if dst.is_empty() {
            return Ok(());
        }
        self.pending.ranged.reads += 1;
        let a = addr.raw();
        let len_b = words_to_bytes(dst.len() as u64);
        // Whole-span window tests prove `len_b` fits the window *before*
        // subtracting it, so they cannot underflow.
        if len_b <= self.nur_rlen && a.wrapping_sub(self.nur_lo) <= self.nur_rlen - len_b {
            self.bump_ranged_run(dst.len());
            self.pending.reads.elided_nursery += dst.len() as u64;
            self.mem.load_range_private(addr, dst);
            return Ok(());
        }
        if self.fast.read_heap
            && len_b <= self.cap_len
            && a.wrapping_sub(self.cap_start) <= self.cap_len - len_b
        {
            self.bump_ranged_run(dst.len());
            self.pending.reads.elided_heap += dst.len() as u64;
            self.mem.load_range_private(addr, dst);
            return Ok(());
        }
        if self.fast.read_stack && a >= self.stack.sp() && len_b <= self.sp_inner.saturating_sub(a)
        {
            self.bump_ranged_run(dst.len());
            self.pending.reads.elided_stack += dst.len() as u64;
            self.mem.load_range_private(addr, dst);
            return Ok(());
        }
        let read_range = self.table.read_range;
        read_range(self, site, addr, dst)
    }

    /// Ranged transactional write; see [`WorkerCtx::read_range`]. The
    /// inline paths cover only *current-level* captures (plain bulk store)
    /// — spans touching ancestor-captured memory take the call so every
    /// such word gets its undo entry.
    #[inline]
    pub(crate) fn write_range(
        &mut self,
        site: &'static Site,
        addr: Addr,
        src: &[u64],
    ) -> TxResult<()> {
        debug_assert!(self.depth > 0, "write barrier outside transaction");
        if src.is_empty() {
            return Ok(());
        }
        self.pending.ranged.writes += 1;
        let a = addr.raw();
        let len_b = words_to_bytes(src.len() as u64);
        if len_b <= self.nur_wlen && a.wrapping_sub(self.nur_inner) <= self.nur_wlen - len_b {
            self.bump_ranged_run(src.len());
            self.pending.writes.elided_nursery += src.len() as u64;
            self.mem.store_range_private(addr, src);
            return Ok(());
        }
        if self.fast.write_heap
            && len_b <= self.cap_len
            && a.wrapping_sub(self.cap_start) <= self.cap_len - len_b
        {
            self.bump_ranged_run(src.len());
            self.pending.writes.elided_heap += src.len() as u64;
            self.mem.store_range_private(addr, src);
            return Ok(());
        }
        if self.fast.write_stack && a >= self.stack.sp() && len_b <= self.sp_inner.saturating_sub(a)
        {
            self.bump_ranged_run(src.len());
            self.pending.writes.elided_stack += src.len() as u64;
            self.mem.store_range_private(addr, src);
            return Ok(());
        }
        let write_range = self.table.write_range;
        write_range(self, site, addr, src)
    }

    /// Forget the inline capture cache; called whenever a block leaves the
    /// captured set or its level relation to the current nesting could
    /// change (free, demote, rollback, nested entry, txn end).
    #[inline]
    pub(crate) fn clear_capture_cache(&mut self) {
        self.cap_start = 0;
        self.cap_len = 0;
    }

    /// Run a transaction to commit, retrying on conflicts under the
    /// configured contention manager (`TxConfig::contention_policy`; see
    /// `stm::contention` for the adaptive escalation ladder). A user abort
    /// escaping to this level is a logic error; use
    /// [`WorkerCtx::txn_result`] for transactions that abort on purpose.
    pub fn txn<T>(&mut self, mut f: impl FnMut(&mut Tx<'_, 'rt>) -> TxResult<T>) -> T {
        match self.txn_inner(&mut f) {
            Ok(v) => v,
            Err(code) => panic!("user abort (code {code}) escaped WorkerCtx::txn"),
        }
    }

    /// Like [`WorkerCtx::txn`] but surfaces user aborts as `Err(code)`.
    pub fn txn_result<T>(
        &mut self,
        mut f: impl FnMut(&mut Tx<'_, 'rt>) -> TxResult<T>,
    ) -> Result<T, u64> {
        self.txn_inner(&mut f)
    }

    fn txn_inner<T>(
        &mut self,
        f: &mut dyn FnMut(&mut Tx<'_, 'rt>) -> TxResult<T>,
    ) -> Result<T, u64> {
        debug_assert_eq!(self.depth, 0, "txn() cannot nest; use Tx::nested");
        self.cm_reset();
        let t0 = std::time::Instant::now();
        loop {
            self.begin_top();
            let result = {
                let mut tx = Tx(self);
                f(&mut tx)
            };
            match result {
                Ok(v) => {
                    if self.try_commit() {
                        self.stats.record_latency_ns(t0.elapsed().as_nanos() as u64);
                        return Ok(v);
                    }
                    self.cm_after_abort();
                }
                Err(Abort::Conflict) => {
                    self.rollback_top();
                    self.cm_after_abort();
                }
                Err(Abort::User(code)) => {
                    self.rollback_top();
                    self.stats.aborts -= 1; // counted as user abort instead
                    self.stats.user_aborts += 1;
                    return Err(code);
                }
            }
        }
    }

    #[inline]
    pub(crate) fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    // ------------------------------------------------------------------
    // Non-transactional helpers (setup / verification phases).
    // ------------------------------------------------------------------

    /// Direct load, outside any transaction.
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        debug_assert_eq!(self.depth, 0, "use tx barriers inside a transaction");
        self.mem.load(addr)
    }

    /// Direct store, outside any transaction.
    #[inline]
    pub fn store(&self, addr: Addr, val: u64) {
        debug_assert_eq!(self.depth, 0, "use tx barriers inside a transaction");
        self.mem.store(addr, val);
    }

    /// Direct load decoded as any word-codec type (the generic entry
    /// point the `load_addr`/`load_f64` variants lower to).
    #[doc(alias = "load_addr")]
    #[doc(alias = "load_f64")]
    #[inline]
    pub fn load_as<V: crate::TxWord>(&self, addr: Addr) -> V {
        V::from_word(self.load(addr))
    }

    /// Direct store encoded from any word-codec type; see
    /// [`WorkerCtx::load_as`].
    #[doc(alias = "store_f64")]
    #[inline]
    pub fn store_as<V: crate::TxWord>(&self, addr: Addr, val: V) {
        self.store(addr, val.to_word())
    }

    /// Direct pointer-typed load; wrapper over [`WorkerCtx::load_as`].
    #[doc(alias = "load_as")]
    #[inline]
    pub fn load_addr(&self, addr: Addr) -> Addr {
        self.load_as(addr)
    }

    /// Direct float-typed load; wrapper over [`WorkerCtx::load_as`].
    #[doc(alias = "load_as")]
    #[inline]
    pub fn load_f64(&self, addr: Addr) -> f64 {
        self.load_as(addr)
    }

    /// Direct float-typed store; wrapper over [`WorkerCtx::store_as`].
    #[doc(alias = "store_as")]
    #[inline]
    pub fn store_f64(&self, addr: Addr, val: f64) {
        self.store_as(addr, val)
    }

    /// Non-transactional allocation (never enters any capture log).
    pub fn alloc_raw(&mut self, size: u64) -> Addr {
        self.rt
            .heap
            .alloc(&mut self.talloc, size)
            .expect("simulated heap exhausted")
    }

    /// Non-transactional free.
    pub fn free_raw(&mut self, addr: Addr) {
        self.rt.heap.free(&mut self.talloc, addr);
    }

    /// Push a stack frame outside a transaction (live-in data).
    pub fn stack_push(&mut self, words: usize) -> Addr {
        self.stack.push(words)
    }

    /// Pop a frame pushed with [`WorkerCtx::stack_push`].
    pub fn stack_pop(&mut self, words: usize) {
        self.stack.pop(words)
    }

    /// Paper Fig. 7: annotate a block as private (thread-local/read-only).
    pub fn add_private_memory_block(&mut self, addr: Addr, size: u64) {
        self.private_log.add_private_memory_block(addr.raw(), size);
    }

    /// Paper Fig. 7: remove a private-block annotation.
    pub fn remove_private_memory_block(&mut self, addr: Addr, size: u64) {
        self.private_log
            .remove_private_memory_block(addr.raw(), size);
    }

    /// Flush this worker's statistics into the runtime-wide aggregate
    /// (also done automatically on drop).
    pub fn flush_stats(&mut self) {
        let mut g = self.rt.global_stats.lock().unwrap();
        g.merge(&self.stats);
        self.stats = TxStats::default();
    }
}

impl Drop for WorkerCtx<'_> {
    fn drop(&mut self) {
        debug_assert!(
            self.depth == 0 || std::thread::panicking(),
            "worker dropped inside a transaction"
        );
        // Flush any group-commit-buffered redo records before the tid
        // (and with it the log file) can be reused by another worker.
        self.durable_flush(true);
        // A panicking worker may still hold the serialization token or its
        // active flag; leaking either would wedge every other worker.
        self.cm_exit();
        // Return the carried-over nursery tail to the shared pool.
        let (lo, hi) = self.nursery_spare;
        if hi > lo {
            self.rt
                .heap
                .recycle_region_range(&mut self.talloc, lo, hi - lo);
            self.nursery_spare = (0, 0);
        }
        // And the thread cache itself: blocks left in the private free
        // lists would be stranded once this worker is gone.
        self.rt.heap.release(&mut self.talloc);
        self.flush_stats();
        self.rt.release_tid(self.tid);
    }
}

/// Handle to an *active* transaction. All transactional operations — the
/// read/write barriers, transactional allocation, stack frames, nesting —
/// live on this type; it is handed to the closure of [`WorkerCtx::txn`].
pub struct Tx<'a, 'rt>(pub(crate) &'a mut WorkerCtx<'rt>);

impl<'a, 'rt> Tx<'a, 'rt> {
    /// Transactional read of one word through the capture-optimized barrier.
    #[inline]
    pub fn read(&mut self, site: &'static Site, addr: Addr) -> TxResult<u64> {
        self.0.read_word(site, addr)
    }

    /// Transactional write of one word through the capture-optimized
    /// barrier.
    #[inline]
    pub fn write(&mut self, site: &'static Site, addr: Addr, val: u64) -> TxResult<()> {
        self.0.write_word(site, addr, val)
    }

    /// Ranged transactional read: fill `dst` from `dst.len()` contiguous
    /// words starting at `addr`, classifying capture once per contiguous
    /// run instead of once per word. Observationally identical to a loop
    /// of [`Tx::read`] over the span (same memory, same counters), just
    /// cheaper: captured runs lower to a bulk copy, shared runs acquire
    /// one orec per covered 64-byte stripe.
    #[inline]
    pub fn read_range(&mut self, site: &'static Site, addr: Addr, dst: &mut [u64]) -> TxResult<()> {
        self.0.read_range(site, addr, dst)
    }

    /// Ranged transactional write of `src.len()` contiguous words; see
    /// [`Tx::read_range`].
    #[inline]
    pub fn write_range(&mut self, site: &'static Site, addr: Addr, src: &[u64]) -> TxResult<()> {
        self.0.write_range(site, addr, src)
    }

    /// Fill `words` contiguous words starting at `addr` with `val` through
    /// the ranged write barrier. Chunked through a fixed stack buffer, so
    /// arbitrarily large fills allocate nothing.
    pub fn fill_range(
        &mut self,
        site: &'static Site,
        addr: Addr,
        val: u64,
        words: u64,
    ) -> TxResult<()> {
        let buf = [val; 128];
        let mut done = 0u64;
        while done < words {
            let n = (words - done).min(128) as usize;
            self.0.write_range(site, addr.word(done), &buf[..n])?;
            done += n as u64;
        }
        Ok(())
    }

    /// Transactional copy of `words` words from `src` to `dst` through the
    /// ranged barriers, staged through a fixed buffer. The spans must not
    /// overlap (debug-asserted): with an overlap, the chunked
    /// read-then-write order would differ from a word-by-word memmove.
    pub fn copy_range(
        &mut self,
        read_site: &'static Site,
        write_site: &'static Site,
        dst: Addr,
        src: Addr,
        words: u64,
    ) -> TxResult<()> {
        debug_assert!(
            dst.raw() + txmem::words_to_bytes(words) <= src.raw()
                || src.raw() + txmem::words_to_bytes(words) <= dst.raw(),
            "copy_range spans overlap"
        );
        let mut buf = [0u64; 128];
        let mut done = 0u64;
        while done < words {
            let n = (words - done).min(128) as usize;
            self.0
                .read_range(read_site, src.word(done), &mut buf[..n])?;
            self.0.write_range(write_site, dst.word(done), &buf[..n])?;
            done += n as u64;
        }
        Ok(())
    }

    /// Read a pointer-typed word. Thin wrapper over the generic
    /// [`Tx::read_as`] (kept so no call site breaks).
    #[doc(alias = "read_as")]
    #[inline]
    pub fn read_addr(&mut self, site: &'static Site, addr: Addr) -> TxResult<Addr> {
        self.read_as(site, addr)
    }

    /// Write a pointer-typed word; wrapper over [`Tx::write_as`].
    #[doc(alias = "write_as")]
    #[inline]
    pub fn write_addr(&mut self, site: &'static Site, addr: Addr, val: Addr) -> TxResult<()> {
        self.write_as(site, addr, val)
    }

    /// Read a float-typed word; wrapper over [`Tx::read_as`].
    #[doc(alias = "read_as")]
    #[inline]
    pub fn read_f64(&mut self, site: &'static Site, addr: Addr) -> TxResult<f64> {
        self.read_as(site, addr)
    }

    /// Write a float-typed word; wrapper over [`Tx::write_as`].
    #[doc(alias = "write_as")]
    #[inline]
    pub fn write_f64(&mut self, site: &'static Site, addr: Addr, val: f64) -> TxResult<()> {
        self.write_as(site, addr, val)
    }

    /// Transactional allocation (paper §3.1.2): the block is recorded in
    /// the allocation log; an abort undoes the allocation.
    pub fn alloc(&mut self, size: u64) -> TxResult<Addr> {
        self.0.tx_alloc(size)
    }

    /// Transactional free: deferred to commit for non-captured blocks,
    /// immediate for blocks this transaction allocated.
    pub fn free(&mut self, addr: Addr) {
        self.0.tx_free(addr)
    }

    /// Push a transaction-local stack frame (paper Fig. 3: grows the
    /// captured stack range).
    pub fn stack_push(&mut self, words: usize) -> Addr {
        self.0.stack.push(words)
    }

    /// Pop a frame pushed inside this transaction.
    pub fn stack_pop(&mut self, words: usize) {
        self.0.stack.pop(words);
        debug_assert!(
            self.0.stack.sp() <= self.0.sp_marks[0],
            "popped a frame pushed before the transaction began"
        );
    }

    /// Abort this transaction with a user code; it is rolled back and *not*
    /// retried (surface with [`WorkerCtx::txn_result`] or catch with
    /// [`Tx::nested`] for partial abort).
    pub fn abort(&mut self, code: u64) -> Abort {
        Abort::User(code)
    }

    /// Run `f` as a closed-nested child transaction. A user abort inside
    /// `f` is a *partial abort*: only the child's effects are rolled back
    /// and `Err(code)` is returned; conflicts propagate and abort the whole
    /// transaction.
    pub fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Tx<'_, 'rt>) -> TxResult<T>,
    ) -> TxResult<Result<T, u64>> {
        self.0.nested(f)
    }

    /// Current nesting depth (1 = top-level).
    pub fn depth(&self) -> u32 {
        self.0.depth
    }

    /// The worker's id (for workloads that partition by thread).
    pub fn tid(&self) -> usize {
        self.0.tid()
    }

    /// Uninstrumented load inside a transaction. This is what a *statically
    /// elided* access compiles to (the `txcc` VM uses it for accesses its
    /// capture analysis proved transaction-local, and for register-modeled
    /// locals). Using it on genuinely shared data breaks isolation — that
    /// responsibility sits with the compiler, exactly as in the paper.
    #[inline]
    pub fn load_direct(&self, addr: Addr) -> u64 {
        self.0.mem.load_private(addr)
    }

    /// Uninstrumented store inside a transaction; see [`Tx::load_direct`].
    /// No undo logging: only correct for memory that dies with an abort
    /// (captured memory) or is never observed by other transactions.
    #[inline]
    pub fn store_direct(&mut self, addr: Addr, val: u64) {
        self.0.mem.store_private(addr, val);
    }

    /// Ground-truth capture query (precise shadow tree + stack range) for
    /// external oracles; `None` unless the runtime was configured with
    /// `TxConfig::classify`. See `WorkerCtx::observed_captured`.
    pub fn observed_captured(&self, addr: Addr) -> Option<bool> {
        self.0.observed_captured(addr)
    }

    /// Annotations may also be toggled mid-transaction; the change is not
    /// transactional (paper: annotations are a programmer promise).
    pub fn add_private_memory_block(&mut self, addr: Addr, size: u64) {
        self.0
            .private_log
            .add_private_memory_block(addr.raw(), size);
    }

    /// Remove a private-block annotation; see
    /// [`Tx::add_private_memory_block`].
    pub fn remove_private_memory_block(&mut self, addr: Addr, size: u64) {
        self.0
            .private_log
            .remove_private_memory_block(addr.raw(), size);
    }
}
