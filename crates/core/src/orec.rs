use std::sync::atomic::AtomicU64;

use txmem::Addr;

/// A transaction-record value is either
/// * even: the version (commit timestamp) of the last transaction that
///   wrote any location mapping to this record, or
/// * odd: locked, with the owner's thread id in the upper bits.
#[inline]
pub fn is_locked(v: u64) -> bool {
    v & 1 == 1
}

#[inline]
pub fn lock_value(owner: u64) -> u64 {
    (owner << 1) | 1
}

#[inline]
pub fn owner_of(v: u64) -> u64 {
    debug_assert!(is_locked(v));
    v >> 1
}

/// Bytes covered by one orec stripe (the `addr >> 6` line mapping in
/// [`OrecTable::index_of`]). Ranged barriers batch shared spans at this
/// granularity: all words of a stripe share one record, so one acquire /
/// one validation entry covers the whole stripe sub-span.
pub const STRIPE_BYTES: u64 = 64;

/// The system-wide transaction-record table (paper §2.1): each entry tracks
/// ownership of the memory locations hashing to it. Our mapping is
/// cache-line-based like the Intel C++ STM: all eight words of a 64-byte
/// line share one record, and distinct lines may collide in the table —
/// both effects produce the *false conflicts* the paper discusses, which
/// barrier elision reduces (Table 1).
pub struct OrecTable {
    orecs: Box<[AtomicU64]>,
    mask: u64,
}

impl OrecTable {
    /// Build a table of `2^log2` transaction records, all unlocked at
    /// version 0.
    pub fn new(log2: u32) -> OrecTable {
        let n = 1usize << log2;
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        OrecTable {
            orecs: v.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    /// Map an address to its record index (cache-line granularity, then a
    /// Fibonacci hash to spread lines over the table).
    #[inline]
    pub fn index_of(&self, addr: Addr) -> u32 {
        let line = addr.raw() >> 6;
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as u32
    }

    #[inline]
    /// The record at `idx` (for re-examining a lock already hashed).
    pub fn at(&self, idx: u32) -> &AtomicU64 {
        &self.orecs[idx as usize]
    }

    /// The record guarding `addr` and its index (addresses hash to
    /// records at cache-line granularity).
    #[inline]
    pub fn of(&self, addr: Addr) -> (u32, &AtomicU64) {
        let idx = self.index_of(addr);
        (idx, &self.orecs[idx as usize])
    }

    /// Number of records in the table.
    pub fn len(&self) -> usize {
        self.orecs.len()
    }

    /// True if the table has no records (never the case for a table
    /// built by [`OrecTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.orecs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn lock_encoding_roundtrips() {
        for owner in [0u64, 1, 7, 1000] {
            let v = lock_value(owner);
            assert!(is_locked(v));
            assert_eq!(owner_of(v), owner);
        }
        assert!(!is_locked(0));
        assert!(!is_locked(2));
        assert!(!is_locked(40));
    }

    #[test]
    fn same_cache_line_shares_record() {
        let t = OrecTable::new(16);
        let base = Addr(0x4000);
        for w in 1..8 {
            assert_eq!(t.index_of(base), t.index_of(base.word(w)));
        }
        // The next line (usually) maps elsewhere.
        assert_ne!(t.index_of(base), t.index_of(base.offset(64)));
    }

    #[test]
    fn table_collisions_exist_with_small_table() {
        // With a 4-entry table, >4 distinct lines must collide somewhere —
        // the false-conflict mechanism from the paper.
        let t = OrecTable::new(2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(t.index_of(Addr(i * 64)));
        }
        assert!(seen.len() <= 4);
    }

    #[test]
    fn len_and_is_empty_agree() {
        let t = OrecTable::new(4);
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
    }

    #[test]
    fn records_start_unlocked_at_version_zero() {
        let t = OrecTable::new(4);
        for i in 0..t.len() as u32 {
            assert_eq!(t.at(i).load(Ordering::Relaxed), 0);
        }
    }
}
