//! Exactness oracle for the nursery classification (ISSUE 4, satellite):
//! the nursery's scalar range compares + per-level watermarks, composed
//! with the tree fallback for overflow/demoted blocks, must agree with the
//! precise [`capture::RangeTree`] *exactly* — not just conservatively — on
//! every access.
//!
//! The proof is differential: random transaction scripts run under
//! `runtime-tree` with the nursery ON and OFF. If any access ever
//! classified differently (captured vs not, current- vs ancestor-level),
//! the runs would diverge in the barrier counters (`elided_heap`,
//! `parent_captured`, `full`) or — because ancestor misclassification
//! skips undo entries — in committed memory. The scripts drive every
//! nursery transition: bump allocation, region chaining via
//! region-filling allocations (overflow spills demote to the tree), LIFO
//! frees, hole-punching frees, large blocks on the classic path, nesting
//! with partial abort, and whole-transaction aborts.

mod common;

use proptest::prelude::*;
use stm::{Abort, CheckScope, LogKind, Mode, Site, StmRuntime, TxConfig};
use txmem::{Addr, MemConfig};

static S_SHARED: Site = Site::shared("nursery.shared");
static S_CAP: Site = Site::captured_escaped("nursery.captured");
static S_LOCAL: Site = Site::captured_local("nursery.local");

const CELLS: u64 = 12;

#[derive(Clone, Debug)]
enum Op {
    /// Small bump allocation.
    Alloc { words: u8 },
    /// Region-filling allocation (rounds to the largest nursery class, so
    /// three of these force a chain and the demotion path).
    AllocBig { words: u16 },
    /// Past-nursery-limit allocation: classic path, fallback-logged.
    AllocHuge,
    /// Write through a live scratch block (scalar / fallback / ancestor
    /// undo paths, depending on where the block lives).
    WriteScratch { idx: u8, word: u8, val: u64 },
    /// Read a scratch word and publish it to a shared cell.
    PublishScratch { idx: u8, word: u8, cell: u8 },
    /// Free a live scratch block in-transaction: LIFO bump-back or hole
    /// punch (with demotion of the blocks below) for nursery blocks.
    Free { idx: u8 },
    /// Full-barrier traffic on shared cells.
    WriteShared { cell: u8, val: u64 },
    /// Stack fast-path round (disjointness check).
    StackRound { words: u8, val: u64, cell: u8 },
}

#[derive(Clone, Debug)]
struct Txn {
    ops: Vec<Op>,
    nested: Vec<Op>,
    abort_nested: bool,
    commit: bool,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1..6u8).prop_map(|words| Op::Alloc { words }),
        2 => (260..500u16).prop_map(|words| Op::AllocBig { words }),
        1 => Just(Op::AllocHuge),
        3 => (any::<u8>(), any::<u8>(), any::<u64>())
            .prop_map(|(idx, word, val)| Op::WriteScratch { idx, word, val }),
        2 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(idx, word, cell)| Op::PublishScratch { idx, word, cell }),
        2 => any::<u8>().prop_map(|idx| Op::Free { idx }),
        1 => (any::<u8>(), any::<u64>()).prop_map(|(cell, val)| Op::WriteShared { cell, val }),
        1 => (1..5u8, any::<u64>(), any::<u8>())
            .prop_map(|(words, val, cell)| Op::StackRound { words, val, cell }),
    ]
}

fn script() -> impl Strategy<Value = Vec<Txn>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(op(), 1..10),
            proptest::collection::vec(op(), 0..6),
            any::<bool>(),
            prop_oneof![3 => Just(true), 1 => Just(false)],
        )
            .prop_map(|(ops, nested, abort_nested, commit)| Txn {
                ops,
                nested,
                abort_nested,
                commit,
            }),
        1..6,
    )
}

type Scratch = Vec<(Addr, u16)>;

fn run_ops(
    tx: &mut stm::Tx<'_, '_>,
    base: Addr,
    ops: &[Op],
    scratch: &mut Scratch,
) -> stm::TxResult<()> {
    for op in ops {
        match *op {
            Op::Alloc { words } => {
                let p = tx.alloc(u64::from(words) * 8)?;
                tx.write(&S_LOCAL, p, 0x5EED)?;
                scratch.push((p, u16::from(words)));
            }
            Op::AllocBig { words } => {
                let p = tx.alloc(u64::from(words) * 8)?;
                tx.write(&S_LOCAL, p, 0xB16)?;
                scratch.push((p, words));
            }
            Op::AllocHuge => {
                // 600 words -> 4800 B payload -> 8192 class: past the
                // nursery block limit, classic path + fallback log.
                let p = tx.alloc(600 * 8)?;
                tx.write(&S_LOCAL, p, 0x4065)?;
                scratch.push((p, 600));
            }
            Op::WriteScratch { idx, word, val } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    tx.write(&S_CAP, p.word(u64::from(word) % u64::from(words)), val)?;
                }
            }
            Op::PublishScratch { idx, word, cell } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    let v = tx.read(&S_CAP, p.word(u64::from(word) % u64::from(words)))?;
                    tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), v)?;
                }
            }
            Op::Free { idx } => {
                if !scratch.is_empty() {
                    let (p, _) = scratch.remove(idx as usize % scratch.len());
                    tx.free(p);
                }
            }
            Op::WriteShared { cell, val } => {
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), val)?;
            }
            Op::StackRound { words, val, cell } => {
                let f = tx.stack_push(words as usize);
                tx.write(&S_CAP, f, val)?;
                let v = tx.read(&S_CAP, f)?;
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), v ^ 0xF00D)?;
                tx.stack_pop(words as usize);
            }
        }
    }
    Ok(())
}

/// Classification-relevant observables: committed memory values plus every
/// counter the capture verdicts steer. The nursery-only telemetry
/// (`nursery_hits`/`nursery_regions`/`nursery_bytes_recycled`) is excluded
/// by construction — everything else must be bit-identical.
fn run(script: &[Txn], nursery: bool) -> (Vec<u64>, String) {
    let mut cfg = TxConfig::with_mode(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    cfg.orec_log2 = 12;
    cfg.nursery = nursery;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let base = rt.alloc_global(CELLS * 8);
    let mut w = rt.spawn_worker();
    let mut persisted: Scratch = Vec::new();

    for t in script {
        let mut committed_scratch: Scratch = Vec::new();
        let r: Result<(), u64> = w.txn_result(|tx| {
            let mut scratch: Scratch = Vec::new();
            run_ops(tx, base, &t.ops, &mut scratch)?;
            if !t.nested.is_empty() || t.abort_nested {
                // Snapshot the whole list, not just its length: a partial
                // abort cancels deferred frees of *parent* blocks issued
                // inside the child (they come back to life) while the
                // child's own allocations vanish.
                let snapshot = scratch.clone();
                let abort_nested = t.abort_nested;
                let nested_ops = &t.nested;
                let res = tx.nested(|ntx| {
                    run_ops(ntx, base, nested_ops, &mut scratch)?;
                    if abort_nested {
                        Err(Abort::User(9))
                    } else {
                        Ok(())
                    }
                })?;
                if res.is_err() {
                    scratch = snapshot;
                }
            }
            committed_scratch.clear();
            committed_scratch.extend_from_slice(&scratch);
            if t.commit {
                Ok(())
            } else {
                Err(Abort::User(1))
            }
        });
        if r.is_ok() {
            persisted.extend_from_slice(&committed_scratch);
        }
    }

    let mut mem: Vec<u64> = (0..CELLS).map(|i| w.load(base.word(i))).collect();
    for &(p, words) in &persisted {
        for i in 0..u64::from(words) {
            mem.push(w.load(p.word(i)));
        }
    }
    let verdict_stats = common::logical_line_with_barriers(&w.stats);
    (mem, verdict_stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The satellite's oracle: nursery classification (range compares +
    // watermarks + fallback composition) agrees exactly with the precise
    // tree across random alloc/free/nest/abort interleavings, including
    // overflow-region spills.
    #[test]
    fn nursery_classification_matches_the_tree_oracle(script in script()) {
        let (mem_off, stats_off) = run(&script, false);
        let (mem_on, stats_on) = run(&script, true);
        prop_assert_eq!(&mem_on, &mem_off, "memory diverged with the nursery");
        prop_assert_eq!(&stats_on, &stats_off, "capture verdicts diverged");
    }
}

/// Deterministic companion: force every nursery transition once and check
/// the nursery was actually in play (guards the property above against
/// passing vacuously with the nursery idle).
#[test]
fn nursery_transitions_all_fire() {
    let script = vec![
        Txn {
            ops: vec![
                Op::AllocBig { words: 400 }, // 4096-class
                Op::AllocBig { words: 400 }, // fills the region
                Op::AllocBig { words: 400 }, // chains (demotes the first two)
                Op::Alloc { words: 4 },
                Op::Alloc { words: 4 },
                Op::Free { idx: 3 }, // hole punch below the top block
                Op::AllocHuge,       // classic path
                Op::WriteScratch {
                    idx: 0,
                    word: 0,
                    val: 1,
                },
                Op::PublishScratch {
                    idx: 2,
                    word: 1,
                    cell: 0,
                },
            ],
            nested: vec![
                Op::Alloc { words: 3 },
                Op::WriteScratch {
                    idx: 0,
                    word: 0,
                    val: 2,
                }, // ancestor undo
            ],
            abort_nested: true, // partial abort reclaims the child block
            commit: true,
        },
        Txn {
            // Two 4096-class blocks fill a region; the huge classic-path
            // carve then breaks frontier contiguity so the third block
            // *chains* (extension CAS fails) instead of extending. The
            // abort recycles the chained-away region in O(1) and retains
            // the active one as the next transaction's spare.
            ops: vec![
                Op::AllocBig { words: 400 },
                Op::AllocBig { words: 400 },
                Op::AllocHuge,
                Op::AllocBig { words: 400 },
            ],
            nested: vec![],
            abort_nested: false,
            commit: false,
        },
    ];
    let (mem_off, stats_off) = run(&script, false);
    let (mem_on, stats_on) = run(&script, true);
    assert_eq!(mem_on, mem_off);
    assert_eq!(stats_on, stats_off);

    // Re-run nursery-on to inspect the nursery telemetry.
    let mut cfg = TxConfig::with_mode(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    cfg.nursery = true;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let base = rt.alloc_global(CELLS * 8);
    let mut w = rt.spawn_worker();
    for t in &script {
        let _: Result<(), u64> = w.txn_result(|tx| {
            let mut scratch: Scratch = Vec::new();
            run_ops(tx, base, &t.ops, &mut scratch)?;
            let nested_ops = &t.nested;
            if !nested_ops.is_empty() {
                let _ = tx.nested(|ntx| {
                    run_ops(ntx, base, nested_ops, &mut scratch)?;
                    Err::<(), _>(Abort::User(9))
                })?;
            }
            if t.commit {
                Ok(())
            } else {
                Err(Abort::User(1))
            }
        });
    }
    let s = w.stats;
    assert!(s.nursery_hits > 0, "no scalar-range hits: {s:?}");
    assert!(s.nursery_regions >= 3, "chaining never happened: {s:?}");
    assert!(
        s.nursery_bytes_recycled > 0,
        "no tail trim or abort recycle: {s:?}"
    );
}

#[test]
#[ignore]
fn debug_find_failing_case() {
    for case in 0..64 {
        let mut rng = proptest::TestRng::for_case(
            "nursery_oracle::nursery_classification_matches_the_tree_oracle",
            case,
        );
        let s = proptest::Strategy::generate(&script(), &mut rng);
        let (mem_off, stats_off) = run(&s, false);
        let (mem_on, stats_on) = run(&s, true);
        if mem_on != mem_off || stats_on != stats_off {
            println!("case {case} FAILS:\n{s:#?}");
            return;
        }
    }
    println!("no failing case");
}
