//! Deterministic functional tests for transaction merging (`txn_batch`):
//! logical/physical counter split, explicit boundaries, stop and
//! user-abort endings, cross-boundary capture, split/salvage under an
//! injected conflict (both split policies), nesting inside a logical
//! transaction, and the typed layer riding unchanged inside a batch.

use std::cell::Cell;

use stm::{
    tx_object, Abort, CheckScope, LogKind, MergeSplitPolicy, Mode, Site, StmRuntime, TxConfig,
    TxPtr,
};
use txmem::MemConfig;

static S: Site = Site::shared("batch.shared");
static S_CAP: Site = Site::captured_escaped("batch.captured");

fn cfg(merge_max: u32) -> TxConfig {
    TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .merge_max(merge_max)
        .build()
        .unwrap()
}

fn cfg_policy(merge_max: u32, policy: MergeSplitPolicy) -> TxConfig {
    TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .merge_max(merge_max)
        .merge_split_policy(policy)
        .build()
        .unwrap()
}

#[test]
fn batch_commits_logical_txns_in_one_physical_commit() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let run = w.txn_batch(4, |b| {
        let v = b.read(&S, a)?;
        b.write(&S, a, v + 1)?;
        Ok(true)
    });
    assert_eq!(run.committed, 4);
    assert_eq!(run.user_abort, None);
    assert_eq!(w.load(a), 4);
    // `commits` counts logical transactions...
    assert_eq!(w.stats.commits, 4);
    assert_eq!(w.stats.aborts, 0);
    // ...while the merge telemetry shows one physical window carried all 4.
    assert_eq!(w.stats.merged_txns, 4);
    assert_eq!(w.stats.merge_splits, 0);
    assert_eq!(w.stats.merge_salvaged, 0);
}

#[test]
fn read_only_batch_is_clock_silent_per_window() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let run = w.txn_batch(6, |b| {
        b.read(&S, a)?;
        Ok(true)
    });
    assert_eq!(run.committed, 6);
    assert_eq!(w.stats.commits, 6);
    // One read-only *physical* commit for the whole window.
    assert_eq!(w.stats.commits_ro, 1);
    assert_eq!(w.stats.merged_txns, 6);
}

#[test]
fn merge_factor_one_behaves_like_plain_txns() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let run = w.txn_batch(1, |b| {
        let v = b.read(&S, a)?;
        b.write(&S, a, v + 1)?;
        Ok(true)
    });
    assert_eq!(run.committed, 1);
    assert_eq!(w.load(a), 1);
    assert_eq!(w.stats.commits, 1);
    // A window of one logical transaction is not "merged".
    assert_eq!(w.stats.merged_txns, 0);
}

#[test]
fn explicit_boundary_subdivides_an_invocation() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let invocations = Cell::new(0u64);
    // Each invocation carries two logical transactions (one explicit
    // boundary), so a budget of 6 takes 3 invocations.
    let run = w.txn_batch(6, |b| {
        invocations.set(invocations.get() + 1);
        let v = b.read(&S, a)?;
        b.write(&S, a, v + 1)?;
        b.boundary()?;
        let v = b.read(&S, a)?;
        b.write(&S, a, v + 1)?;
        Ok(true)
    });
    assert_eq!(run.committed, 6);
    assert_eq!(invocations.get(), 3);
    assert_eq!(w.load(a), 6);
    assert_eq!(w.stats.commits, 6);
    assert_eq!(w.stats.merged_txns, 6);
}

#[test]
fn stop_commits_the_stopping_invocation() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let run = w.txn_batch(8, |b| {
        let v = b.read(&S, a)?;
        b.write(&S, a, v + 1)?;
        Ok(v + 1 < 3) // stop after the third increment
    });
    assert_eq!(run.committed, 3);
    assert_eq!(run.user_abort, None);
    assert_eq!(w.load(a), 3);
    assert_eq!(w.stats.commits, 3);
    assert_eq!(w.stats.merged_txns, 3);
}

#[test]
fn user_abort_salvages_the_prefix() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let run = w.txn_batch(8, |b| {
        let v = b.read(&S, a)?;
        if v == 2 {
            return Err(Abort::User(7));
        }
        b.write(&S, a, v + 1)?;
        Ok(true)
    });
    assert_eq!(run.committed, 2);
    assert_eq!(run.user_abort, Some(7));
    // The aborting logical transaction rolled back, the prefix committed.
    assert_eq!(w.load(a), 2);
    assert_eq!(w.stats.commits, 2);
    assert_eq!(w.stats.user_aborts, 1);
    assert_eq!(w.stats.aborts, 0);
}

#[test]
fn user_abort_on_first_invocation_commits_nothing() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let run = w.txn_batch(8, |b| {
        let v = b.read(&S, a)?;
        b.write(&S, a, v + 1)?;
        Err(Abort::User(9))
    });
    assert_eq!(run.committed, 0);
    assert_eq!(run.user_abort, Some(9));
    assert_eq!(w.load(a), 0);
    assert_eq!(w.stats.commits, 0);
    assert_eq!(w.stats.user_aborts, 1);
    assert_eq!(w.stats.aborts, 0);
}

#[test]
fn capture_survives_logical_boundaries() {
    // A block allocated by logical transaction i is still captured when
    // logical transaction i+1 reads and writes it — the whole point of
    // merging — and a later logical transaction can free it safely (the
    // free defers to the physical commit).
    for nursery in [false, true] {
        let tx_cfg = TxConfig::builder()
            .mode(Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL,
            })
            .nursery(nursery)
            .merge_max(8)
            .build()
            .unwrap();
        let rt = StmRuntime::new(MemConfig::small(), tx_cfg);
        let sum = rt.alloc_global(8);
        let mut w = rt.spawn_worker();
        let slot: Cell<Option<txmem::Addr>> = Cell::new(None);
        let run = w.txn_batch(3, |b| {
            match b.logical_index() {
                0 => {
                    let blk = b.alloc(16)?;
                    b.write(&S_CAP, blk, 10)?;
                    slot.set(Some(blk));
                }
                1 => {
                    let blk = slot.get().unwrap();
                    let v = b.read(&S_CAP, blk)?;
                    b.write(&S_CAP, blk, v + 5)?;
                }
                _ => {
                    let blk = slot.get().unwrap();
                    let v = b.read(&S_CAP, blk)?;
                    b.write(&S, sum, v)?;
                    b.free(blk);
                }
            }
            Ok(true)
        });
        assert_eq!(run.committed, 3, "nursery={nursery}");
        assert_eq!(w.load(sum), 15, "nursery={nursery}");
        let st = &w.stats;
        assert_eq!(st.commits, 3);
        assert_eq!(st.tx_allocs, 1);
        assert_eq!(st.tx_frees, 1);
        // The cross-boundary accesses stayed elided: no shared read
        // barrier fired at all (the captured block is the only thing
        // read), and the only full write barrier is the `sum` store.
        assert_eq!(st.reads.full, 0, "captured reads crossed boundaries elided");
        assert_eq!(st.writes.full, 1, "only the `sum` store is shared");
    }
}

#[test]
fn conflict_mid_batch_salvages_prefix_and_retries_unmerged() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(8));
    let a = rt.alloc_global(8); // prefix reads this
    let b1 = rt.alloc_global(64 * 8); // victim words in two distinct orecs
    let b2 = b1.word(63);
    let mut w = rt.spawn_worker();
    let mut intruder = rt.spawn_worker();
    let injected = Cell::new(false);
    let run = w.txn_batch(4, |b| {
        match b.logical_index() {
            0 => {
                let v = b.read(&S, a)?;
                b.write(&S, a, v + 1)?;
            }
            _ => {
                // Read b1, then (once) let another worker commit to both
                // victims: the subsequent read of b2 sees a newer orec,
                // snapshot extension re-validates, the b1 entry fails →
                // Conflict. The prefix (which never read b1/b2) stays
                // valid and is salvaged.
                let x = b.read(&S, b1)?;
                if !injected.replace(true) {
                    intruder.txn(|t| {
                        t.write(&S, b1, 100)?;
                        t.write(&S, b2, 200)?;
                        Ok(())
                    });
                }
                let y = b.read(&S, b2)?;
                b.write(&S, a, x + y)?;
            }
        }
        Ok(true)
    });
    assert_eq!(run.committed, 4);
    assert_eq!(w.load(a), 300);
    let st = &w.stats;
    assert_eq!(st.commits, 4, "all logical txns eventually committed");
    assert_eq!(st.aborts, 1, "the conflicting invocation aborted once");
    assert_eq!(st.merge_splits, 1);
    assert_eq!(st.merge_salvaged, 1, "the 1-txn prefix was salvaged early");
    // Salvaged prefix + degraded retry + resumed merged window for the
    // remaining two: windows of sizes 1/1/2 ⇒ only the last is merged.
    assert_eq!(st.merged_txns, 2);
}

#[test]
fn restart_policy_discards_the_whole_window() {
    let rt = StmRuntime::new(MemConfig::small(), cfg_policy(8, MergeSplitPolicy::Restart));
    let a = rt.alloc_global(8);
    let b1 = rt.alloc_global(64 * 8);
    let b2 = b1.word(63);
    let mut w = rt.spawn_worker();
    let mut intruder = rt.spawn_worker();
    let injected = Cell::new(false);
    let run = w.txn_batch(4, |b| {
        match b.logical_index() {
            0 => {
                let v = b.read(&S, a)?;
                b.write(&S, a, v + 1)?;
            }
            _ => {
                let x = b.read(&S, b1)?;
                if !injected.replace(true) {
                    intruder.txn(|t| {
                        t.write(&S, b1, 100)?;
                        t.write(&S, b2, 200)?;
                        Ok(())
                    });
                }
                let y = b.read(&S, b2)?;
                b.write(&S, a, x + y)?;
            }
        }
        Ok(true)
    });
    assert_eq!(run.committed, 4);
    assert_eq!(w.load(a), 300);
    let st = &w.stats;
    assert_eq!(st.commits, 4);
    // The completed prefix (1) and the in-flight invocation (1) both
    // aborted when the window restarted.
    assert_eq!(st.aborts, 2);
    assert_eq!(st.merge_splits, 1);
    assert_eq!(st.merge_salvaged, 0, "restart never salvages");
}

#[test]
fn nested_transactions_work_inside_a_logical_txn() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(4));
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let run = w.txn_batch(3, |b| {
        let v = b.read(&S, a)?;
        // A nested child that user-aborts rolls back alone.
        let _ = b.nested(|t| {
            t.write(&S, a, 999)?;
            Err::<(), _>(Abort::User(1))
        });
        b.nested(|t| t.write(&S, a, v + 1))?.unwrap();
        Ok(true)
    });
    assert_eq!(run.committed, 3);
    assert_eq!(w.load(a), 3);
    assert_eq!(w.stats.commits, 3);
    assert_eq!(w.stats.partial_aborts, 3);
    assert_eq!(w.stats.merged_txns, 3);
}

tx_object! {
    /// Minimal typed record for the batch interop test.
    pub struct Node {
        /// Payload word.
        pub val: u64,
        /// Link to the next node.
        pub next: TxPtr<Node>,
    }
}

#[test]
fn typed_layer_works_inside_a_batch() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(4));
    let out = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    let head: Cell<Option<TxPtr<Node>>> = Cell::new(None);
    let run = w.txn_batch(3, |b| {
        match b.logical_index() {
            0 => {
                let n = b.alloc_obj::<Node>()?;
                b.write_field(&S_CAP, n, Node::val, 21u64)?;
                head.set(Some(n));
            }
            1 => {
                let n = head.get().unwrap();
                let v: u64 = b.read_field(&S_CAP, n, Node::val)?;
                b.write_field(&S_CAP, n, Node::val, v * 2)?;
            }
            _ => {
                let n = head.get().unwrap();
                let v: u64 = b.read_field(&S_CAP, n, Node::val)?;
                b.write(&S, out, v)?;
                b.free_obj(n);
            }
        }
        Ok(true)
    });
    assert_eq!(run.committed, 3);
    assert_eq!(w.load(out), 42);
    assert_eq!(w.stats.commits, 3);
    assert_eq!(w.stats.tx_allocs, 1);
    assert_eq!(w.stats.tx_frees, 1);
}

#[test]
#[should_panic(expected = "exceeds TxConfig::merge_max")]
fn batch_wider_than_merge_max_panics() {
    let rt = StmRuntime::new(MemConfig::small(), cfg(2));
    let mut w = rt.spawn_worker();
    let _ = w.txn_batch(3, |_| Ok(true));
}
