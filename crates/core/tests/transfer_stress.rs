//! Cross-thread conflict stress: concurrent transactional transfers over a
//! shared set of accounts must preserve the global sum — under every
//! allocation-log kind, under the baseline and compiler modes, and with
//! closed-nested children that partially abort mid-transfer.
//!
//! This is the regression net for the scalability refactor: 8 workers
//! hammer the GV4 commit clock (winners, adopters, clock-silent read-only
//! audits) and the sharded allocator (every transfer allocates and frees a
//! scratch block) at once, while the invariant check catches any lost or
//! double-applied update.

use stm::{Abort, CheckScope, LogKind, Mode, Site, StmRuntime, TxConfig};
use txmem::{Addr, MemConfig};

static S_ACCT: Site = Site::shared("stress.account");
static S_SCRATCH: Site = Site::captured_local("stress.scratch");

const THREADS: usize = 8;
const ACCOUNTS: u64 = 24;
const TRANSFERS: usize = 250;
const SEED_BALANCE: u64 = 1_000;

/// xorshift64* with a per-thread seed; deterministic account choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn total(rt: &StmRuntime, base: Addr) -> u64 {
    (0..ACCOUNTS).map(|i| rt.mem().load(base.word(i))).sum()
}

/// Run the stress under `cfg`; `nested` routes every credit through a
/// closed-nested child that user-aborts half the time (the partial-abort
/// path), retrying the credit at the outer level when it does.
fn run_stress(cfg: TxConfig, nested: bool) {
    let rt = StmRuntime::new(
        MemConfig {
            max_threads: THREADS,
            stack_words: 1 << 10,
            heap_words: 1 << 18,
        },
        cfg,
    );
    let base = rt.alloc_global(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.mem().store(base.word(i), SEED_BALANCE);
    }

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                for _ in 0..TRANSFERS {
                    let from = rng.next() % ACCOUNTS;
                    let to = rng.next() % ACCOUNTS;
                    let amount = 1 + rng.next() % 9;
                    let abort_child = rng.next().is_multiple_of(2);
                    w.txn(|tx| {
                        // Captured scratch block: exercises the sharded
                        // allocator and the capture fast paths from every
                        // thread at once.
                        let scratch = tx.alloc(4 * 8)?;
                        tx.write(&S_SCRATCH, scratch, amount)?;
                        let amt = tx.read(&S_SCRATCH, scratch)?;

                        let f = tx.read(&S_ACCT, base.word(from))?;
                        tx.write(&S_ACCT, base.word(from), f.wrapping_sub(amt))?;
                        if nested {
                            let credited = tx.nested(|ntx| {
                                let v = ntx.read(&S_ACCT, base.word(to))?;
                                ntx.write(&S_ACCT, base.word(to), v + amt)?;
                                if abort_child {
                                    Err(Abort::User(7))
                                } else {
                                    Ok(())
                                }
                            })?;
                            if credited.is_err() {
                                // The child rolled back its credit; apply
                                // it at the outer level instead.
                                let v = tx.read(&S_ACCT, base.word(to))?;
                                tx.write(&S_ACCT, base.word(to), v + amt)?;
                            }
                        } else {
                            let v = tx.read(&S_ACCT, base.word(to))?;
                            tx.write(&S_ACCT, base.word(to), v + amt)?;
                        }
                        tx.free(scratch);
                        Ok(())
                    });
                    // Interleave read-only audits: they must stay
                    // clock-silent and still see a consistent sum.
                    if from.is_multiple_of(5) {
                        let sum = w.txn(|tx| {
                            let mut acc = 0u64;
                            for i in 0..ACCOUNTS {
                                acc = acc.wrapping_add(tx.read(&S_ACCT, base.word(i))?);
                            }
                            Ok(acc)
                        });
                        assert_eq!(
                            sum,
                            ACCOUNTS * SEED_BALANCE,
                            "read-only audit saw a torn total"
                        );
                    }
                }
            });
        }
    });

    assert_eq!(
        total(&rt, base),
        ACCOUNTS * SEED_BALANCE,
        "transfers lost or duplicated money"
    );
    let stats = rt.collect_stats();
    assert!(
        stats.commits >= (THREADS * TRANSFERS) as u64,
        "every transfer (and audit) must commit: {stats:?}"
    );
    assert!(
        stats.commits_ro > 0,
        "audits are read-only commits: {stats:?}"
    );
    if nested {
        assert!(
            stats.partial_aborts > 0,
            "nested variant must exercise partial aborts: {stats:?}"
        );
    }
}

fn runtime_cfg(log: LogKind) -> TxConfig {
    TxConfig::with_mode(Mode::Runtime {
        log,
        scope: CheckScope::FULL,
    })
}

#[test]
fn transfers_preserve_sum_baseline() {
    run_stress(TxConfig::default(), false);
}

#[test]
fn transfers_preserve_sum_compiler() {
    run_stress(TxConfig::with_mode(Mode::Compiler), false);
}

#[test]
fn transfers_preserve_sum_tree() {
    run_stress(runtime_cfg(LogKind::Tree), false);
}

#[test]
fn transfers_preserve_sum_array() {
    run_stress(runtime_cfg(LogKind::Array), false);
}

#[test]
fn transfers_preserve_sum_filter() {
    run_stress(runtime_cfg(LogKind::Filter), false);
}

#[test]
fn nested_partial_abort_transfers_preserve_sum_baseline() {
    run_stress(TxConfig::default(), true);
}

#[test]
fn nested_partial_abort_transfers_preserve_sum_tree() {
    run_stress(runtime_cfg(LogKind::Tree), true);
}

#[test]
fn nested_partial_abort_transfers_preserve_sum_array() {
    run_stress(runtime_cfg(LogKind::Array), true);
}

#[test]
fn nested_partial_abort_transfers_preserve_sum_filter() {
    run_stress(runtime_cfg(LogKind::Filter), true);
}

/// Contention-manager regression: many threads hammering one word must
/// still make progress and preserve the count, and the decorrelated-jitter
/// backoff must actually engage (`backoff_waits` telemetry). A mild chaos
/// plan keeps the `aborts > 0` assertion deterministic on single-core
/// hosts, where free-running threads often serialize without conflicting.
#[test]
fn hot_word_contention_backs_off_and_stays_correct() {
    const INCRS: usize = 4_000;
    let cfg = TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .chaos(stm::ChaosPlan {
            yield_share: 40,
            preempt_share: 10,
            ..stm::ChaosPlan::all(0xB0B, 4)
        })
        .build()
        .unwrap();
    let rt = StmRuntime::new(
        MemConfig {
            max_threads: THREADS,
            stack_words: 1 << 10,
            heap_words: 1 << 16,
        },
        cfg,
    );
    let hot = rt.alloc_global(8);
    let start = std::sync::Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let rt = &rt;
            let start = &start;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                start.wait();
                for _ in 0..INCRS {
                    w.txn(|tx| {
                        let v = tx.read(&S_ACCT, hot)?;
                        tx.write(&S_ACCT, hot, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(rt.mem().load(hot), (THREADS * INCRS) as u64);
    let stats = rt.collect_stats();
    assert_eq!(stats.commits, (THREADS * INCRS) as u64);
    assert!(
        stats.aborts > 0,
        "a single hot word across {THREADS} threads must conflict: {stats:?}"
    );
    assert!(
        stats.backoff_waits > 0,
        "conflicts must engage the backoff contention manager: {stats:?}"
    );
    // Every conflict rollback runs the contention ladder exactly once:
    // it either backs off or (chronic aborters, adaptive policy) grabs
    // the serialization token instead of waiting.
    assert_eq!(
        stats.aborts,
        stats.backoff_waits + stats.cm_serializations,
        "every conflict rollback backs off or escalates exactly once: {stats:?}"
    );
}

/// Merged batches under real cross-thread contention: each thread runs its
/// transfers through `txn_batch`, so windows split and salvage under fire.
/// The money invariant plus the logical-commit count prove that salvage
/// never loses or double-applies an update.
#[test]
fn merged_transfers_preserve_sum_under_contention() {
    const BATCH: usize = 8;
    const BATCHES: usize = 40;
    let cfg = TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .merge_max(BATCH as u32)
        .build()
        .unwrap();
    let rt = StmRuntime::new(
        MemConfig {
            max_threads: THREADS,
            stack_words: 1 << 10,
            heap_words: 1 << 18,
        },
        cfg,
    );
    let base = rt.alloc_global(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.mem().store(base.word(i), SEED_BALANCE);
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0xDEADBEEFCAFE ^ (t as u64 + 1));
                for _ in 0..BATCHES {
                    // Pre-draw the batch's transfers: a salvage retry
                    // re-invokes the closure for the same logical index,
                    // which must redo the *same* transfer.
                    let moves: Vec<(u64, u64, u64)> = (0..BATCH)
                        .map(|_| {
                            (
                                rng.next() % ACCOUNTS,
                                rng.next() % ACCOUNTS,
                                1 + rng.next() % 9,
                            )
                        })
                        .collect();
                    let run = w.txn_batch(BATCH, |b| {
                        let (from, to, amt) = moves[b.logical_index() as usize];
                        let f = b.read(&S_ACCT, base.word(from))?;
                        b.write(&S_ACCT, base.word(from), f.wrapping_sub(amt))?;
                        let v = b.read(&S_ACCT, base.word(to))?;
                        b.write(&S_ACCT, base.word(to), v + amt)?;
                        Ok(true)
                    });
                    assert_eq!(run.committed, BATCH as u64);
                }
            });
        }
    });
    assert_eq!(
        total(&rt, base),
        ACCOUNTS * SEED_BALANCE,
        "merged transfers lost or duplicated money"
    );
    let stats = rt.collect_stats();
    assert_eq!(
        stats.commits,
        (THREADS * BATCHES * BATCH) as u64,
        "commits counts every logical transfer: {stats:?}"
    );
    assert!(
        stats.merged_txns > 0,
        "batches must actually merge: {stats:?}"
    );
}
