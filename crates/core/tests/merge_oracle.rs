//! Differential oracle for transaction merging (ISSUE 7, satellite): a
//! random script of logical transactions executed **merged**
//! (`WorkerCtx::txn_batch`) and **unmerged** (one `txn_result` each) must
//! produce bit-identical observable memory and identical *logical*
//! statistics — commits, aborts, user/partial aborts, alloc/free counts,
//! and total barrier traffic — across barrier log kinds × nursery on/off.
//!
//! The scripts stress exactly the hazards the split/salvage machinery must
//! get right:
//!
//! * **allocs and frees crossing boundaries** — a logical transaction
//!   operates on blocks allocated by its predecessors in the same batch
//!   (ancestor-captured in the merged run, committed-shared in the
//!   unmerged run) and frees them (deferred to the physical commit when
//!   merged);
//! * **nested transactions inside a logical transaction**, including
//!   partially-aborting ones;
//! * **forced conflicts**: an intruder worker invalidates a logical
//!   transaction's snapshot mid-flight (once per marked index), forcing
//!   the merged run to split, salvage the prefix, and retry the remainder
//!   unmerged — the deterministic companion forces this at *every*
//!   boundary index of a batch;
//! * **user aborts** ending a batch early.
//!
//! Memory is compared through block handles, not raw addresses: merging
//! defers cross-boundary frees to the physical commit, so allocation
//! placement may legitimately differ between the two runs. Statistics are
//! compared redacted to the logical counters — the physical-commit
//! telemetry (`commits_ro`, `clock_adopts`, backoff, nursery region
//! counts, and the `merge_*` counters themselves) differs by design. The
//! `commits` equality is the satellite-6 assertion: merged `commits`
//! counts logical transactions, not physical windows.

use std::cell::{Cell, RefCell};

mod common;

use proptest::prelude::*;
use stm::{
    Abort, CheckScope, LogKind, MergeSplitPolicy, Mode, Site, StmRuntime, Tx, TxConfig, TxResult,
};
use txmem::{Addr, MemConfig};

static S_SHARED: Site = Site::shared("merge.shared");
static S_CAP: Site = Site::captured_escaped("merge.captured");
static S_LOCAL: Site = Site::captured_local("merge.local");

const CELLS: u64 = 12;
/// Words between the two victim cells of one logical index (different
/// 64-byte orec granules).
const VICTIM_STRIDE: u64 = 16;

#[derive(Clone, Debug)]
enum Op {
    /// Small bump allocation (nursery scalar path when on).
    Alloc { words: u8 },
    /// Region-filling allocation (forces nursery chaining/demotion).
    AllocBig { words: u16 },
    /// Write through a live scratch block — possibly one allocated by an
    /// *earlier logical transaction* of the same batch (ancestor path).
    WriteScratch { idx: u8, word: u8, val: u64 },
    /// Read a scratch word, publish to a shared cell.
    PublishScratch { idx: u8, word: u8, cell: u8 },
    /// Free a live scratch block — cross-boundary frees defer when merged.
    Free { idx: u8 },
    /// Full-barrier shared traffic.
    WriteShared { cell: u8, val: u64 },
    /// Stack fast-path round.
    StackRound { words: u8, val: u64, cell: u8 },
}

#[derive(Clone, Debug)]
struct LogicalTxn {
    ops: Vec<Op>,
    nested: Vec<Op>,
    abort_nested: bool,
    /// End this logical transaction with `Err(Abort::User(..))`.
    user_abort: bool,
    /// Invalidate this logical transaction's snapshot mid-flight (once).
    inject_conflict: bool,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1..6u8).prop_map(|words| Op::Alloc { words }),
        1 => (260..500u16).prop_map(|words| Op::AllocBig { words }),
        3 => (any::<u8>(), any::<u8>(), any::<u64>())
            .prop_map(|(idx, word, val)| Op::WriteScratch { idx, word, val }),
        2 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(idx, word, cell)| Op::PublishScratch { idx, word, cell }),
        2 => any::<u8>().prop_map(|idx| Op::Free { idx }),
        2 => (any::<u8>(), any::<u64>()).prop_map(|(cell, val)| Op::WriteShared { cell, val }),
        1 => (1..5u8, any::<u64>(), any::<u8>())
            .prop_map(|(words, val, cell)| Op::StackRound { words, val, cell }),
    ]
}

fn logical_txn() -> impl Strategy<Value = LogicalTxn> {
    (
        proptest::collection::vec(op(), 1..8),
        proptest::collection::vec(op(), 0..4),
        any::<bool>(),
        prop_oneof![5 => Just(false), 1 => Just(true)],
        prop_oneof![3 => Just(false), 2 => Just(true)],
    )
        .prop_map(
            |(ops, nested, abort_nested, user_abort, inject_conflict)| LogicalTxn {
                ops,
                nested,
                abort_nested,
                user_abort,
                inject_conflict,
            },
        )
}

fn script() -> impl Strategy<Value = Vec<LogicalTxn>> {
    proptest::collection::vec(logical_txn(), 2..9)
}

type Scratch = Vec<(Addr, u16)>;

fn run_ops(tx: &mut Tx<'_, '_>, base: Addr, ops: &[Op], scratch: &mut Scratch) -> TxResult<()> {
    for op in ops {
        match *op {
            Op::Alloc { words } => {
                let p = tx.alloc(u64::from(words) * 8)?;
                tx.write(&S_LOCAL, p, 0x5EED)?;
                scratch.push((p, u16::from(words)));
            }
            Op::AllocBig { words } => {
                let p = tx.alloc(u64::from(words) * 8)?;
                tx.write(&S_LOCAL, p, 0xB16)?;
                scratch.push((p, words));
            }
            Op::WriteScratch { idx, word, val } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    tx.write(&S_CAP, p.word(u64::from(word) % u64::from(words)), val)?;
                }
            }
            Op::PublishScratch { idx, word, cell } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    let v = tx.read(&S_CAP, p.word(u64::from(word) % u64::from(words)))?;
                    tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), v)?;
                }
            }
            Op::Free { idx } => {
                if !scratch.is_empty() {
                    let (p, _) = scratch.remove(idx as usize % scratch.len());
                    tx.free(p);
                }
            }
            Op::WriteShared { cell, val } => {
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), val)?;
            }
            Op::StackRound { words, val, cell } => {
                let f = tx.stack_push(words as usize);
                tx.write(&S_CAP, f, val)?;
                let v = tx.read(&S_CAP, f)?;
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), v ^ 0xF00D)?;
                tx.stack_pop(words as usize);
            }
        }
    }
    Ok(())
}

/// One logical transaction's body, shared verbatim by both executors. The
/// scratch ledger is kept transactionally consistent from the outside:
/// `snapshots[i]` is the ledger after `i` committed logical transactions,
/// and every (re-)execution of logical transaction `gi` restores
/// `snapshots[gi]` first — so splits, retries, and aborts can never leak
/// bookkeeping from a rolled-back attempt.
#[allow(clippy::too_many_arguments)]
fn logical_body(
    tx: &mut Tx<'_, '_>,
    t: &LogicalTxn,
    gi: usize,
    base: Addr,
    victims: Addr,
    injected: &[Cell<bool>],
    intruder: &mut stm::WorkerCtx<'_>,
    snapshots: &RefCell<Vec<Scratch>>,
) -> TxResult<()> {
    let mut scratch = {
        let mut snaps = snapshots.borrow_mut();
        snaps.truncate(gi + 1);
        snaps[gi].clone()
    };
    if t.inject_conflict {
        let v1 = victims.word(gi as u64 * VICTIM_STRIDE);
        let v2 = victims.word(gi as u64 * VICTIM_STRIDE + 8);
        let x = tx.read(&S_SHARED, v1)?;
        if !injected[gi].replace(true) {
            intruder.txn(|it| {
                it.write(&S_SHARED, v1, x + 100)?;
                it.write(&S_SHARED, v2, x + 200)
            });
        }
        // Sees the intruder's newer orec on the first attempt; snapshot
        // extension re-validates, the v1 entry fails -> Conflict.
        let y = tx.read(&S_SHARED, v2)?;
        tx.write(&S_SHARED, base.word(gi as u64 % CELLS), x ^ y)?;
    }
    run_ops(tx, base, &t.ops, &mut scratch)?;
    if !t.nested.is_empty() || t.abort_nested {
        let snapshot = scratch.clone();
        let abort_nested = t.abort_nested;
        let nested_ops = &t.nested;
        let res = tx.nested(|ntx| {
            run_ops(ntx, base, nested_ops, &mut scratch)?;
            if abort_nested {
                Err(Abort::User(9))
            } else {
                Ok(())
            }
        })?;
        if res.is_err() {
            scratch = snapshot;
        }
    }
    if t.user_abort {
        return Err(Abort::User(gi as u64 + 1));
    }
    snapshots.borrow_mut().push(scratch);
    Ok(())
}

struct RunCfg {
    log: LogKind,
    nursery: bool,
    /// `None` = unmerged (one `txn_result` per logical transaction).
    merge: Option<usize>,
    policy: MergeSplitPolicy,
}

/// Execute the script and return (observable memory via handles, redacted
/// logical stats).
fn run(script: &[LogicalTxn], rc: &RunCfg) -> (Vec<u64>, String) {
    let mut cfg = TxConfig::builder()
        .mode(Mode::Runtime {
            log: rc.log,
            scope: CheckScope::FULL,
        })
        .nursery(rc.nursery)
        .merge_max(rc.merge.unwrap_or(1).max(1) as u32)
        .merge_split_policy(rc.policy)
        .build()
        .unwrap();
    cfg.orec_log2 = 12;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let base = rt.alloc_global(CELLS * 8);
    let victims = rt.alloc_global(script.len() as u64 * VICTIM_STRIDE * 8);
    let mut w = rt.spawn_worker();
    let mut intruder = rt.spawn_worker();
    let injected: Vec<Cell<bool>> = (0..script.len()).map(|_| Cell::new(false)).collect();
    let snapshots: RefCell<Vec<Scratch>> = RefCell::new(vec![Vec::new()]);

    let mut done = 0usize;
    while done < script.len() {
        match rc.merge {
            None => {
                let t = &script[done];
                let gi = done;
                let r: Result<(), u64> = w.txn_result(|tx| {
                    logical_body(
                        tx,
                        t,
                        gi,
                        base,
                        victims,
                        &injected,
                        &mut intruder,
                        &snapshots,
                    )
                });
                done += 1;
                if r.is_err() {
                    // The aborted logical transaction left no effects.
                    let mut snaps = snapshots.borrow_mut();
                    snaps.truncate(done);
                    let unchanged = snaps[done - 1].clone();
                    snaps.push(unchanged);
                }
            }
            Some(width) => {
                let offset = done;
                let quota = width.min(script.len() - done);
                let run = w.txn_batch(quota, |b| {
                    let gi = offset + b.logical_index() as usize;
                    let t = &script[gi];
                    logical_body(
                        &mut *b,
                        t,
                        gi,
                        base,
                        victims,
                        &injected,
                        &mut intruder,
                        &snapshots,
                    )?;
                    Ok(true)
                });
                done += run.committed as usize;
                if run.user_abort.is_some() {
                    let mut snaps = snapshots.borrow_mut();
                    snaps.truncate(done + 1);
                    let unchanged = snaps[done].clone();
                    snaps.push(unchanged);
                    done += 1;
                }
            }
        }
    }

    let mut mem: Vec<u64> = (0..CELLS).map(|i| w.load(base.word(i))).collect();
    for gi in 0..script.len() as u64 {
        mem.push(w.load(victims.word(gi * VICTIM_STRIDE)));
        mem.push(w.load(victims.word(gi * VICTIM_STRIDE + 8)));
    }
    let snaps = snapshots.borrow();
    for &(p, words) in snaps.last().unwrap() {
        for i in 0..u64::from(words) {
            mem.push(w.load(p.word(i)));
        }
    }
    let logical_stats = common::logical_line(&w.stats);
    (mem, logical_stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The satellite's oracle: merged execution is observably identical to
    // unmerged execution — same committed memory (via handles), same
    // logical statistics — under split/salvage, for every log kind and
    // nursery setting the case picks.
    #[test]
    fn merged_matches_unmerged(
        script in script(),
        log_idx in 0..LogKind::ALL.len(),
        nursery in any::<bool>(),
        width in 2..6usize,
    ) {
        let log = LogKind::ALL[log_idx];
        let unmerged = run(&script, &RunCfg {
            log, nursery, merge: None, policy: MergeSplitPolicy::Salvage,
        });
        let merged = run(&script, &RunCfg {
            log, nursery, merge: Some(width), policy: MergeSplitPolicy::Salvage,
        });
        prop_assert_eq!(&merged.0, &unmerged.0, "memory diverged when merged");
        prop_assert_eq!(&merged.1, &unmerged.1, "logical stats diverged when merged");

        // Restart policy re-executes salvageable prefixes, so its abort
        // and barrier totals legitimately differ: memory must still match.
        let restart = run(&script, &RunCfg {
            log, nursery, merge: Some(width), policy: MergeSplitPolicy::Restart,
        });
        prop_assert_eq!(&restart.0, &unmerged.0, "memory diverged under Restart");
    }
}

/// Deterministic companion: force a conflict at *every* boundary index of
/// a width-4 batch in turn, and check the merge telemetry actually fired
/// (guards the property above against passing vacuously).
#[test]
fn conflict_at_every_boundary_index_salvages() {
    for conflict_at in 0..4usize {
        let script: Vec<LogicalTxn> = (0..4)
            .map(|i| LogicalTxn {
                ops: vec![
                    Op::Alloc { words: 4 },
                    Op::WriteScratch {
                        idx: 0,
                        word: 1,
                        val: 0xC0 + i as u64,
                    },
                    Op::PublishScratch {
                        idx: i as u8,
                        word: 1,
                        cell: i as u8,
                    },
                ],
                nested: vec![],
                abort_nested: false,
                user_abort: false,
                inject_conflict: i == conflict_at,
            })
            .collect();
        let rc_un = RunCfg {
            log: LogKind::Tree,
            nursery: true,
            merge: None,
            policy: MergeSplitPolicy::Salvage,
        };
        let rc_m = RunCfg {
            log: LogKind::Tree,
            nursery: true,
            merge: Some(4),
            policy: MergeSplitPolicy::Salvage,
        };
        let unmerged = run(&script, &rc_un);
        let merged = run(&script, &rc_m);
        assert_eq!(merged.0, unmerged.0, "conflict_at={conflict_at}");
        assert_eq!(merged.1, unmerged.1, "conflict_at={conflict_at}");
    }

    // Re-run one merged case and inspect the merge telemetry: conflict at
    // index 2 must split the window and salvage the 2-transaction prefix.
    let script: Vec<LogicalTxn> = (0..4)
        .map(|i| LogicalTxn {
            ops: vec![Op::WriteShared {
                cell: i as u8,
                val: i as u64 + 1,
            }],
            nested: vec![],
            abort_nested: false,
            user_abort: false,
            inject_conflict: i == 2,
        })
        .collect();
    let cfg = TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .merge_max(4)
        .build()
        .unwrap();
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let base = rt.alloc_global(CELLS * 8);
    let victims = rt.alloc_global(4 * VICTIM_STRIDE * 8);
    let mut w = rt.spawn_worker();
    let mut intruder = rt.spawn_worker();
    let injected: Vec<Cell<bool>> = (0..4).map(|_| Cell::new(false)).collect();
    let snapshots: RefCell<Vec<Scratch>> = RefCell::new(vec![Vec::new()]);
    let run = w.txn_batch(4, |b| {
        let gi = b.logical_index() as usize;
        logical_body(
            &mut *b,
            &script[gi],
            gi,
            base,
            victims,
            &injected,
            &mut intruder,
            &snapshots,
        )?;
        Ok(true)
    });
    assert_eq!(run.committed, 4);
    let s = &w.stats;
    assert_eq!(s.commits, 4, "commits counts logical transactions");
    assert_eq!(s.aborts, 1, "one abort for the conflicting invocation");
    assert_eq!(s.merge_splits, 1);
    assert_eq!(s.merge_salvaged, 2, "the clean 2-txn prefix was salvaged");
    // Salvaged window (2) + degraded retry (1) + resumed window (1): only
    // the first carried >= 2 logical transactions.
    assert_eq!(s.merged_txns, 2);
}

#[test]
#[ignore]
fn debug_find_failing_case() {
    for case in 0..48 {
        let mut rng = proptest::TestRng::for_case("merge_oracle::merged_matches_unmerged", case);
        let s = proptest::Strategy::generate(&script(), &mut rng);
        let log_idx = proptest::Strategy::generate(&(0..LogKind::ALL.len()), &mut rng);
        let nursery = proptest::Strategy::generate(&any::<bool>(), &mut rng);
        let width = proptest::Strategy::generate(&(2..6usize), &mut rng);
        let log = LogKind::ALL[log_idx];
        let unmerged = run(
            &s,
            &RunCfg {
                log,
                nursery,
                merge: None,
                policy: MergeSplitPolicy::Salvage,
            },
        );
        let merged = run(
            &s,
            &RunCfg {
                log,
                nursery,
                merge: Some(width),
                policy: MergeSplitPolicy::Salvage,
            },
        );
        if merged.0 != unmerged.0 || merged.1 != unmerged.1 {
            println!("case {case} FAILS (log={log:?} nursery={nursery} width={width}):\n{s:#?}");
            return;
        }
    }
    println!("no failing case");
}
