//! Differential property test for the barrier dispatch refactor: the
//! monomorphized pipeline (dispatch table resolved at runtime
//! construction) and the old-style enum-dispatch reference pipeline
//! (`TxConfig::reference_dispatch`) must produce **bit-identical memory
//! states and `BarrierStats`** on randomized transaction traces, for every
//! `LogKind` × every `CheckScope` combination (all 16 scope masks), plus
//! the Baseline and Compiler modes.
//!
//! The traces exercise every fast path the barriers have: shared
//! reads/writes (full barrier), transaction-local heap blocks (allocation
//! log), in-transaction frees, transaction-local stack frames, and
//! closed-nested transactions whose partial aborts hit the
//! ancestor-captured undo path.

use proptest::prelude::*;
use stm::{Abort, CheckScope, LogKind, Mode, Site, StmRuntime, TxConfig};
use txmem::{Addr, MemConfig};

mod common;

static S_SHARED: Site = Site::shared("equiv.shared");
static S_CAP: Site = Site::captured_escaped("equiv.captured");
static S_LOCAL: Site = Site::captured_local("equiv.local");

const CELLS: u64 = 12;

#[derive(Clone, Debug)]
enum Op {
    /// Full-barrier write to a shared cell.
    WriteShared { cell: u8, val: u64 },
    /// Full-barrier read of one shared cell into another.
    CopyShared { from: u8, to: u8 },
    /// Allocate a captured scratch block (joins the live-scratch list).
    Alloc { words: u8 },
    /// Write through a live scratch block (captured-heap fast path; from a
    /// nested transaction into an outer block this is the
    /// ancestor-captured undo path).
    WriteScratch { idx: u8, word: u8, val: u64 },
    /// Read a scratch word and publish it to a shared cell.
    PublishScratch { idx: u8, word: u8, cell: u8 },
    /// Free a live scratch block in-transaction.
    Free { idx: u8 },
    /// Push a stack frame, write/read it (captured-stack fast path),
    /// publish to a shared cell, pop.
    StackRound { words: u8, val: u64, cell: u8 },
}

#[derive(Clone, Debug)]
struct Txn {
    ops: Vec<Op>,
    nested: Vec<Op>,
    abort_nested: bool,
    commit: bool,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(cell, val)| Op::WriteShared { cell, val }),
        (any::<u8>(), any::<u8>()).prop_map(|(from, to)| Op::CopyShared { from, to }),
        (1..6u8).prop_map(|words| Op::Alloc { words }),
        (any::<u8>(), any::<u8>(), any::<u64>()).prop_map(|(idx, word, val)| Op::WriteScratch {
            idx,
            word,
            val
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(idx, word, cell)| Op::PublishScratch {
            idx,
            word,
            cell
        }),
        any::<u8>().prop_map(|idx| Op::Free { idx }),
        (1..5u8, any::<u64>(), any::<u8>()).prop_map(|(words, val, cell)| Op::StackRound {
            words,
            val,
            cell
        }),
    ]
}

fn script() -> impl Strategy<Value = Vec<Txn>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(op(), 1..7),
            proptest::collection::vec(op(), 0..5),
            any::<bool>(),
            prop_oneof![3 => Just(true), 1 => Just(false)],
        )
            .prop_map(|(ops, nested, abort_nested, commit)| Txn {
                ops,
                nested,
                abort_nested,
                commit,
            }),
        1..6,
    )
}

/// Live scratch blocks of the current transaction: (addr, words).
type Scratch = Vec<(Addr, u8)>;

fn run_ops(
    tx: &mut stm::Tx<'_, '_>,
    base: Addr,
    ops: &[Op],
    scratch: &mut Scratch,
) -> stm::TxResult<()> {
    for op in ops {
        match *op {
            Op::WriteShared { cell, val } => {
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), val)?;
            }
            Op::CopyShared { from, to } => {
                let v = tx.read(&S_SHARED, base.word(u64::from(from) % CELLS))?;
                tx.write(&S_SHARED, base.word(u64::from(to) % CELLS), v)?;
            }
            Op::Alloc { words } => {
                let p = tx.alloc(u64::from(words) * 8)?;
                tx.write(&S_LOCAL, p, 0x5EED)?;
                scratch.push((p, words));
            }
            Op::WriteScratch { idx, word, val } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    tx.write(&S_CAP, p.word(u64::from(word % words)), val)?;
                }
            }
            Op::PublishScratch { idx, word, cell } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    let v = tx.read(&S_CAP, p.word(u64::from(word % words)))?;
                    tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), v)?;
                }
            }
            Op::Free { idx } => {
                if !scratch.is_empty() {
                    let (p, _) = scratch.remove(idx as usize % scratch.len());
                    tx.free(p);
                }
            }
            Op::StackRound { words, val, cell } => {
                let f = tx.stack_push(words as usize);
                tx.write(&S_CAP, f, val)?;
                let v = tx.read(&S_CAP, f)?;
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), v ^ 0xF00D)?;
                tx.stack_pop(words as usize);
            }
        }
    }
    Ok(())
}

/// Execute the whole script under one configuration; return the observable
/// memory (shared cells + every committed scratch block) and the formatted
/// statistics (every counter, both directions).
fn run(script: &[Txn], mode: Mode, nursery: bool, reference: bool) -> (Vec<u64>, String) {
    let mut cfg = TxConfig::with_mode(mode);
    cfg.orec_log2 = 12; // small orec table; single-threaded test
    cfg.nursery = nursery;
    cfg.reference_dispatch = reference;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let base = rt.alloc_global(CELLS * 8);
    let mut w = rt.spawn_worker();
    let mut persisted: Scratch = Vec::new();

    for t in script {
        let mut committed_scratch: Scratch = Vec::new();
        let r: Result<(), u64> = w.txn_result(|tx| {
            let mut scratch: Scratch = Vec::new();
            run_ops(tx, base, &t.ops, &mut scratch)?;
            if !t.nested.is_empty() || t.abort_nested {
                let checkpoint = scratch.len();
                let abort_nested = t.abort_nested;
                let nested_ops = &t.nested;
                let res = tx.nested(|ntx| {
                    run_ops(ntx, base, nested_ops, &mut scratch)?;
                    if abort_nested {
                        Err(Abort::User(9))
                    } else {
                        Ok(())
                    }
                })?;
                if res.is_err() {
                    // Partial abort deallocated the nested blocks.
                    scratch.truncate(checkpoint);
                }
            }
            committed_scratch.clear();
            committed_scratch.extend_from_slice(&scratch);
            if t.commit {
                Ok(())
            } else {
                Err(Abort::User(1))
            }
        });
        if r.is_ok() {
            persisted.extend_from_slice(&committed_scratch);
        }
    }

    let mut mem: Vec<u64> = (0..CELLS).map(|i| w.load(base.word(i))).collect();
    for &(p, words) in &persisted {
        for i in 0..u64::from(words) {
            mem.push(w.load(p.word(i)));
        }
    }
    // Contention/latency telemetry is wall-clock-dependent and legitimately
    // differs between the two pipelines; everything else must be identical.
    let stats = common::redacted_debug(&w.stats, &[common::Redact::Contention]);
    (mem, stats)
}

/// Every (mode, nursery) configuration pair to differentially test. The
/// nursery only composes with runtime capture analysis, and there it must
/// hold for every fallback log and every scope mask.
fn all_configs() -> Vec<(Mode, bool)> {
    let mut v = vec![
        (Mode::Baseline, false),
        (Mode::Compiler, false),
        (Mode::CompilerInterproc, false),
    ];
    for log in LogKind::ALL {
        for mask in 0..16u8 {
            let mode = Mode::Runtime {
                log,
                scope: CheckScope {
                    reads: mask & 1 != 0,
                    writes: mask & 2 != 0,
                    stack: mask & 4 != 0,
                    heap: mask & 8 != 0,
                },
            };
            v.push((mode, false));
            v.push((mode, true));
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn monomorphized_and_reference_dispatch_agree(script in script()) {
        for (mode, nursery) in all_configs() {
            let (mem_mono, stats_mono) = run(&script, mode, nursery, false);
            let (mem_ref, stats_ref) = run(&script, mode, nursery, true);
            prop_assert_eq!(
                &mem_mono, &mem_ref,
                "memory diverged under {:?} nursery={}", mode, nursery
            );
            prop_assert_eq!(
                &stats_mono, &stats_ref,
                "stats diverged under {:?} nursery={}", mode, nursery
            );
        }
    }
}

/// Deterministic spot-check that the scope masks actually vary elision
/// behavior (guards against the property above passing vacuously because
/// some scope bit is ignored by both pipelines).
#[test]
fn scope_masks_change_elision_counts() {
    let script = vec![Txn {
        ops: vec![
            Op::Alloc { words: 4 },
            Op::WriteScratch {
                idx: 0,
                word: 1,
                val: 7,
            },
            Op::PublishScratch {
                idx: 0,
                word: 1,
                cell: 2,
            },
            Op::StackRound {
                words: 2,
                val: 3,
                cell: 4,
            },
        ],
        nested: vec![],
        abort_nested: false,
        commit: true,
    }];
    let full = Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    };
    let off = Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope {
            reads: false,
            writes: false,
            stack: false,
            heap: false,
        },
    };
    let (_, stats_full) = run(&script, full, false, false);
    let (_, stats_off) = run(&script, off, false, false);
    assert_ne!(stats_full, stats_off, "scope must affect elision counters");
    assert!(
        stats_full.contains("elided_heap: 2"),
        "captured write+read must hit the heap fast path: {stats_full}"
    );
    // With the nursery, the same hits are additionally counted as nursery
    // scalar-range verdicts.
    let (_, stats_nur) = run(&script, full, true, false);
    assert!(
        stats_nur.contains("nursery_hits: 3"),
        "alloc-write, scratch write and scratch read must all hit the \
         nursery range test: {stats_nur}"
    );
}
