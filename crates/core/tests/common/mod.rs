//! Helpers shared by the differential oracles (`merge_oracle`,
//! `ranged_oracle`, `typed_oracle`, `nursery_oracle`, `crash_oracle`).
//!
//! Each oracle compares two executions that must be *observably
//! identical*; these helpers build the comparable statistics signatures,
//! zeroing exactly the telemetry families the configurations under test
//! legitimately differ in.
//!
//! Not every oracle uses every helper, hence:
#![allow(dead_code)]

use stm::TxStats;

/// A telemetry family that two otherwise-equivalent executions are
/// allowed to differ in, and which [`redacted_debug`] therefore zeroes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Redact {
    /// `ranged_*`: batching shape of the ranged entry points (per-word
    /// vs. span processing is an implementation detail).
    Ranged,
    /// `durable_*`: redo-log volume, skip counts, and flush counts (a
    /// durable run logs, a transient run doesn't; nothing else may
    /// change).
    Durable,
    /// Contention-manager telemetry: conflict-cause breakdowns, escalation
    /// counters, chaos injections, and the backoff/latency histograms.
    /// These depend on physical timing (who wins a lock race, how long a
    /// retry chain takes on the wall clock), so two logically identical
    /// executions may differ. `backoff_waits` is deliberately *not* here:
    /// single-threaded oracles expect zero backoffs on both sides.
    Contention,
}

/// Debug-format the full statistics with the given telemetry families
/// zeroed. With no redactions this is the strictest signature: every
/// counter must match bit-for-bit.
pub fn redacted_debug(stats: &TxStats, redact: &[Redact]) -> String {
    let mut s = *stats;
    for r in redact {
        match r {
            Redact::Ranged => {
                s.ranged_reads = 0;
                s.ranged_writes = 0;
                s.ranged_spans = 0;
                s.ranged_fallbacks = 0;
            }
            Redact::Durable => {
                s.durable_words = 0;
                s.durable_skipped = 0;
                s.durable_flushes = 0;
            }
            Redact::Contention => {
                s.conflict_read_locked = 0;
                s.conflict_write_locked = 0;
                s.conflict_validation = 0;
                s.cm_karma_escalations = 0;
                s.cm_serializations = 0;
                s.attempts_max = 0;
                s.chaos_injections = 0;
                s.backoff_hist = [0; stm::BACKOFF_BUCKETS];
                s.latency_hist = [0; stm::LATENCY_BUCKETS];
            }
        }
    }
    format!("{s:?}")
}

/// The logical-outcome signature: the counters that describe *what the
/// program did* (commit/abort/alloc/free totals and barrier volumes),
/// independent of how the runtime processed it. Two executions of the
/// same logical program must agree on this line even when their physical
/// shapes (merging, splits, clock traffic) differ.
pub fn logical_line(s: &TxStats) -> String {
    format!(
        "commits={} aborts={} user={} partial={} allocs={} frees={} \
         reads={} writes={}",
        s.commits,
        s.aborts,
        s.user_aborts,
        s.partial_aborts,
        s.tx_allocs,
        s.tx_frees,
        s.reads.total,
        s.writes.total,
    )
}

/// [`logical_line`] with the full per-direction barrier breakdowns
/// appended: the signature for oracles whose two runs must also produce
/// identical *capture verdicts* per access, not just identical volumes.
pub fn logical_line_with_barriers(s: &TxStats) -> String {
    format!(
        "commits={} aborts={} user={} partial={} allocs={} frees={} \
         reads={:?} writes={:?}",
        s.commits,
        s.aborts,
        s.user_aborts,
        s.partial_aborts,
        s.tx_allocs,
        s.tx_frees,
        s.reads,
        s.writes,
    )
}
