//! Functional tests of the STM runtime: atomicity, isolation, rollback,
//! capture-based elision, nesting with partial abort, annotations, and the
//! compiler mode.

use stm::{Abort, CheckScope, LogKind, Mode, Site, StmRuntime, TxConfig};
use txmem::MemConfig;

static S: Site = Site::shared("test.shared");
static S_CAP: Site = Site::captured_local("test.captured_local");
static S_ESC: Site = Site::captured_escaped("test.captured_escaped");

fn rt_with(mode: Mode) -> StmRuntime {
    StmRuntime::new(MemConfig::small(), TxConfig::with_mode(mode))
}

fn all_modes() -> Vec<Mode> {
    let mut v = vec![Mode::Baseline, Mode::Compiler];
    for log in LogKind::ALL {
        v.push(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        });
        v.push(Mode::Runtime {
            log,
            scope: CheckScope::WRITES_HEAP,
        });
    }
    v
}

#[test]
fn simple_commit_publishes_values() {
    for mode in all_modes() {
        let rt = rt_with(mode);
        let a = rt.alloc_global(16);
        let mut w = rt.spawn_worker();
        w.txn(|tx| {
            tx.write(&S, a, 7)?;
            tx.write(&S, a.word(1), 8)?;
            Ok(())
        });
        assert_eq!(w.load(a), 7, "{mode:?}");
        assert_eq!(w.load(a.word(1)), 8);
        assert_eq!(w.stats.commits, 1);
    }
}

#[test]
fn read_after_write_sees_own_update() {
    for mode in all_modes() {
        let rt = rt_with(mode);
        let a = rt.alloc_global(8);
        let mut w = rt.spawn_worker();
        let v = w.txn(|tx| {
            tx.write(&S, a, 41)?;
            let v = tx.read(&S, a)?;
            tx.write(&S, a, v + 1)?;
            tx.read(&S, a)
        });
        assert_eq!(v, 42, "{mode:?}");
        assert_eq!(w.load(a), 42);
    }
}

#[test]
fn user_abort_rolls_back_everything() {
    for mode in all_modes() {
        let rt = rt_with(mode);
        let a = rt.alloc_global(8);
        let mut w = rt.spawn_worker();
        w.store(a, 100);
        let heap_before = rt.heap().bytes_allocated();
        let res: Result<(), u64> = w.txn_result(|tx| {
            tx.write(&S, a, 999)?;
            let block = tx.alloc(64)?;
            tx.write(&S_ESC, block, 1)?;
            Err(Abort::User(13))
        });
        assert_eq!(res, Err(13), "{mode:?}");
        assert_eq!(w.load(a), 100, "undo must restore ({mode:?})");
        assert_eq!(
            rt.heap().bytes_allocated(),
            heap_before,
            "tx allocation must be undone ({mode:?})"
        );
        assert_eq!(w.stats.user_aborts, 1);
        assert_eq!(w.stats.commits, 0);
    }
}

#[test]
fn aborted_free_is_cancelled() {
    for mode in all_modes() {
        let rt = rt_with(mode);
        let shared_block = rt.alloc_global(64);
        let mut w = rt.spawn_worker();
        w.store(shared_block, 77);
        let res: Result<(), u64> = w.txn_result(|tx| {
            tx.free(shared_block);
            Err(Abort::User(1))
        });
        assert!(res.is_err());
        // The block must still be alive and intact.
        assert_eq!(w.load(shared_block), 77, "{mode:?}");
        // And allocating more must not hand out its memory.
        let other = w.alloc_raw(56);
        assert_ne!(other, shared_block);
    }
}

#[test]
fn committed_free_recycles() {
    let rt = rt_with(Mode::Baseline);
    let block = rt.alloc_global(64);
    let mut w = rt.spawn_worker();
    let before = rt.heap().bytes_allocated();
    w.txn(|tx| {
        tx.free(block);
        Ok(())
    });
    assert!(rt.heap().bytes_allocated() < before);
}

#[test]
fn capture_elides_tx_local_heap_writes() {
    for log in LogKind::ALL {
        let rt = rt_with(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        });
        let mut w = rt.spawn_worker();
        w.txn(|tx| {
            let a = tx.alloc(32)?;
            tx.write(&S_ESC, a, 1)?;
            tx.write(&S_ESC, a.word(1), 2)?;
            assert_eq!(tx.read(&S_ESC, a)?, 1);
            Ok(())
        });
        assert_eq!(w.stats.writes.elided_heap, 2, "{log:?}");
        assert_eq!(w.stats.reads.elided_heap, 1, "{log:?}");
        assert_eq!(w.stats.writes.full, 0);
        assert_eq!(w.stats.reads.full, 0);
    }
}

#[test]
fn capture_elides_tx_local_stack() {
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        let frame = tx.stack_push(4);
        tx.write(&S_ESC, frame, 10)?;
        tx.write(&S_ESC, frame.word(3), 13)?;
        assert_eq!(tx.read(&S_ESC, frame)?, 10);
        tx.stack_pop(4);
        Ok(())
    });
    assert_eq!(w.stats.writes.elided_stack, 2);
    assert_eq!(w.stats.reads.elided_stack, 1);
    assert_eq!(w.stats.writes.full, 0);
}

#[test]
fn live_in_stack_gets_full_barrier_and_undo() {
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    let mut w = rt.spawn_worker();
    // Frame pushed before the transaction: live-in, holds a live value.
    let frame = w.stack_push(2);
    w.store(frame, 55);
    let res: Result<(), u64> = w.txn_result(|tx| {
        tx.write(&S, frame, 99)?; // must NOT be elided
        Err(Abort::User(0))
    });
    assert!(res.is_err());
    assert_eq!(w.load(frame), 55, "live-in stack write must be undone");
    assert_eq!(w.stats.writes.elided_stack, 0);
    assert_eq!(w.stats.writes.full, 1);
    w.stack_pop(2);
}

#[test]
fn scope_restricts_checks() {
    // Heap-only, write-only scope: stack accesses and reads take the full
    // barrier even though they are captured.
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::WRITES_HEAP,
    });
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        let a = tx.alloc(16)?;
        let f = tx.stack_push(1);
        tx.write(&S_ESC, a, 1)?; // heap write: elided
        tx.read(&S_ESC, a)?; // read: full (scope.reads = false)
        tx.write(&S_ESC, f, 2)?; // stack write: full (scope.stack = false)
        tx.stack_pop(1);
        Ok(())
    });
    assert_eq!(w.stats.writes.elided_heap, 1);
    assert_eq!(w.stats.reads.elided_heap, 0);
    assert_eq!(w.stats.reads.full, 1);
    assert_eq!(w.stats.writes.elided_stack, 0);
    assert_eq!(w.stats.writes.full, 1);
}

#[test]
fn compiler_mode_elides_static_sites_only() {
    let rt = rt_with(Mode::Compiler);
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        let local = tx.alloc(16)?;
        tx.write(&S_CAP, local, 5)?; // statically proven: elided
        tx.write(&S_ESC, local.word(1), 6)?; // analysis missed it: full barrier
        tx.write(&S, a, 7)?; // shared: full barrier
        Ok(())
    });
    assert_eq!(w.stats.writes.elided_static, 1);
    assert_eq!(w.stats.writes.full, 2);
    assert_eq!(w.load(a), 7);
}

#[test]
fn baseline_elides_nothing() {
    let rt = rt_with(Mode::Baseline);
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        let a = tx.alloc(16)?;
        let f = tx.stack_push(1);
        tx.write(&S_CAP, a, 1)?;
        tx.write(&S_ESC, f, 2)?;
        tx.read(&S_CAP, a)?;
        tx.stack_pop(1);
        Ok(())
    });
    let s = &w.stats;
    assert_eq!(s.writes.elided(), 0);
    assert_eq!(s.reads.elided(), 0);
    assert_eq!(s.writes.full, 2);
    assert_eq!(s.reads.full, 1);
}

#[test]
fn annotations_elide_private_blocks() {
    let mut cfg = TxConfig::default();
    cfg.annotations = true;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let buf = rt.alloc_global(128);
    let mut w = rt.spawn_worker();
    w.add_private_memory_block(buf, 128);
    w.txn(|tx| {
        tx.write(&S, buf, 1)?; // annotated: elided even in Baseline mode
        tx.read(&S, buf)?;
        Ok(())
    });
    assert_eq!(w.stats.writes.elided_annotation, 1);
    assert_eq!(w.stats.reads.elided_annotation, 1);
    // Remove the annotation: barriers come back.
    w.remove_private_memory_block(buf, 128);
    w.txn(|tx| {
        tx.write(&S, buf, 2)?;
        Ok(())
    });
    assert_eq!(w.stats.writes.elided_annotation, 1);
    assert_eq!(w.stats.writes.full, 1);
}

#[test]
fn nested_commit_keeps_effects() {
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    let a = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        tx.write(&S, a, 1)?;
        let inner = tx.nested(|tx| {
            tx.write(&S, a, 2)?;
            Ok(77u64)
        })?;
        assert_eq!(inner, Ok(77));
        assert_eq!(tx.read(&S, a)?, 2);
        Ok(())
    });
    assert_eq!(w.load(a), 2);
}

#[test]
fn nested_partial_abort_rolls_back_child_only() {
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    let a = rt.alloc_global(16);
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        tx.write(&S, a, 1)?;
        let r: Result<(), u64> = tx.nested(|tx| {
            tx.write(&S, a, 99)?;
            tx.write(&S, a.word(1), 98)?;
            let _scratch = tx.alloc(32)?;
            Err(Abort::User(5))
        })?;
        assert_eq!(r, Err(5));
        // Child effects gone, parent effects intact.
        assert_eq!(tx.read(&S, a)?, 1);
        assert_eq!(tx.read(&S, a.word(1))?, 0);
        Ok(())
    });
    assert_eq!(w.load(a), 1);
    assert_eq!(w.stats.partial_aborts, 1);
    assert_eq!(w.stats.commits, 1);
}

#[test]
fn child_write_to_parent_captured_memory_is_undone_on_partial_abort() {
    // Paper §2.2.1: memory captured by the parent is live-in for the child;
    // the child's write needs undo logging even though no lock is needed.
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        let parent_block = tx.alloc(16)?;
        tx.write(&S_ESC, parent_block, 10)?; // captured by parent: elided
        let r: Result<(), u64> = tx.nested(|tx| {
            tx.write(&S_ESC, parent_block, 20)?; // ancestor-captured: undo-logged
            Err(Abort::User(1))
        })?;
        assert_eq!(r, Err(1));
        assert_eq!(
            tx.read(&S_ESC, parent_block)?,
            10,
            "partial abort must restore parent-captured value"
        );
        Ok(())
    });
    assert!(w.stats.writes.parent_captured >= 1);
}

#[test]
fn sibling_after_committed_child_undo_logs_its_blocks() {
    // A block allocated by a committed child belongs to the parent; a second
    // child writing it must undo-log (level demotion on nested commit).
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        let block = tx
            .nested(|tx| {
                let b = tx.alloc(16)?;
                tx.write(&S_ESC, b, 1)?;
                Ok(b)
            })?
            .unwrap();
        let r: Result<(), u64> = tx.nested(|tx| {
            tx.write(&S_ESC, block, 42)?;
            Err(Abort::User(9))
        })?;
        assert_eq!(r, Err(9));
        assert_eq!(
            tx.read(&S_ESC, block)?,
            1,
            "sibling's write must have been undone"
        );
        Ok(())
    });
}

#[test]
fn stack_frames_reset_on_abort() {
    let rt = rt_with(Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    });
    let mut w = rt.spawn_worker();
    let res: Result<(), u64> = w.txn_result(|tx| {
        let _f1 = tx.stack_push(8);
        let _f2 = tx.stack_push(8);
        Err(Abort::User(0)) // abort with frames still pushed
    });
    assert!(res.is_err());
    // After rollback the worker can push the full stack again: sp was reset.
    let f = w.stack_push(16);
    assert!(!f.is_null());
    w.stack_pop(16);
}

#[test]
fn concurrent_counter_is_exact() {
    for mode in all_modes() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::with_mode(mode));
        let counter = rt.alloc_global(8);
        const THREADS: usize = 4;
        const INCRS: usize = 500;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    for _ in 0..INCRS {
                        w.txn(|tx| {
                            let v = tx.read(&S, counter)?;
                            tx.write(&S, counter, v + 1)
                        });
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        assert_eq!(
            w.load(counter),
            (THREADS * INCRS) as u64,
            "lost updates under {mode:?}"
        );
    }
}

#[test]
fn concurrent_transfers_preserve_total() {
    // Bank-transfer atomicity test with captured scratch allocations mixed
    // in, across all modes.
    for mode in all_modes() {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::with_mode(mode));
        const ACCOUNTS: u64 = 32;
        let table = rt.alloc_global(ACCOUNTS * 8);
        {
            let w = rt.spawn_worker();
            for i in 0..ACCOUNTS {
                w.store(table.word(i), 1000);
            }
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rt = &rt;
                s.spawn(move || {
                    let mut w = rt.spawn_worker();
                    let mut x = t + 1;
                    for _ in 0..300 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let from = (x >> 33) % ACCOUNTS;
                        // Distinct target: a from==to "transfer" with both
                        // reads up front would mint money in the *test*.
                        let to = (from + 1 + (x >> 13) % (ACCOUNTS - 1)) % ACCOUNTS;
                        w.txn(|tx| {
                            // Captured scratch block exercises elision under
                            // contention.
                            let scratch = tx.alloc(24)?;
                            tx.write(&S_ESC, scratch, from)?;
                            let f = tx.read(&S, table.word(from))?;
                            let g = tx.read(&S, table.word(to))?;
                            tx.write(&S, table.word(from), f.wrapping_sub(1))?;
                            tx.write(&S, table.word(to), g.wrapping_add(1))?;
                            tx.free(scratch);
                            Ok(())
                        });
                    }
                });
            }
        });
        let w = rt.spawn_worker();
        let total: u64 = (0..ACCOUNTS).map(|i| w.load(table.word(i))).sum();
        assert_eq!(total, ACCOUNTS * 1000, "money lost/created under {mode:?}");
    }
}

#[test]
fn opacity_no_torn_pairs() {
    // Writers keep the invariant a + b == 0 (two's complement) across two
    // distinct cache lines; readers must never observe a violation inside
    // a transaction.
    let rt = rt_with(Mode::Baseline);
    let a = rt.alloc_global(8);
    let b = rt.alloc_global(256); // far enough for a different line
    std::thread::scope(|s| {
        let rt_ref = &rt;
        s.spawn(move || {
            let mut w = rt_ref.spawn_worker();
            for i in 1..2000u64 {
                w.txn(|tx| {
                    tx.write(&S, a, i)?;
                    tx.write(&S, b, i.wrapping_neg())?;
                    Ok(())
                });
            }
        });
        s.spawn(move || {
            let mut w = rt_ref.spawn_worker();
            for _ in 0..2000 {
                let (x, y) = w.txn(|tx| Ok((tx.read(&S, a)?, tx.read(&S, b)?)));
                assert_eq!(x.wrapping_add(y), 0, "torn read: {x} {y}");
            }
        });
    });
}

#[test]
fn abort_to_commit_ratio_counts_conflicts() {
    let rt = rt_with(Mode::Baseline);
    let hot = rt.alloc_global(8);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                for _ in 0..500 {
                    w.txn(|tx| {
                        let v = tx.read(&S, hot)?;
                        // Lengthen the window to force conflicts.
                        for _ in 0..50 {
                            std::hint::spin_loop();
                        }
                        tx.write(&S, hot, v + 1)
                    });
                }
            });
        }
    });
    let stats = rt.collect_stats();
    assert_eq!(stats.commits, 2000);
    let w = rt.spawn_worker();
    assert_eq!(w.load(hot), 2000);
}

#[test]
fn stats_flush_on_drop_merges_into_runtime() {
    let rt = rt_with(Mode::Baseline);
    let a = rt.alloc_global(8);
    {
        let mut w = rt.spawn_worker();
        w.txn(|tx| tx.write(&S, a, 1));
    }
    let s = rt.collect_stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.writes.total, 1);
}

#[test]
fn classify_mode_buckets_fig8_categories() {
    let mut cfg = TxConfig::default(); // classification works on baseline
    cfg.classify = true;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let shared = rt.alloc_global(8);
    let mut w = rt.spawn_worker();
    w.txn(|tx| {
        let heap_block = tx.alloc(16)?;
        let frame = tx.stack_push(1);
        tx.write(&S_ESC, heap_block, 1)?; // -> class_heap
        tx.write(&S_ESC, frame, 2)?; // -> class_stack
        tx.write(&S, shared, 3)?; // -> class_required
        tx.read(Site::unneeded_static(), shared)?; // -> class_other
        tx.stack_pop(1);
        Ok(())
    });
    assert_eq!(w.stats.writes.class_heap, 1);
    assert_eq!(w.stats.writes.class_stack, 1);
    assert_eq!(w.stats.writes.class_required, 1);
    assert_eq!(w.stats.reads.class_other, 1);
}

// Helper: a static unneeded site usable from the test above.
trait UnneededStatic {
    fn unneeded_static() -> &'static Site;
}
impl UnneededStatic for Site {
    fn unneeded_static() -> &'static Site {
        static U: Site = Site::unneeded("test.unneeded");
        &U
    }
}

// ---------------------------------------------------------------------------
// Nursery allocation (TxConfig::nursery).
// ---------------------------------------------------------------------------

fn nursery_rt(log: LogKind) -> StmRuntime {
    let mut cfg = TxConfig::with_mode(Mode::Runtime {
        log,
        scope: CheckScope::FULL,
    });
    cfg.nursery = true;
    StmRuntime::new(MemConfig::small(), cfg)
}

/// In-transaction alloc/free churn across nesting levels: every small
/// block freed within its allocating transaction must return to the
/// transaction's own bookkeeping (the nursery bump pointer / deferred
/// reclaim, or the thread class lists) — the global large-block lock must
/// never be touched, and no byte may leak across commits or aborts.
#[test]
fn nursery_churn_frees_within_txn_across_levels() {
    for log in LogKind::ALL {
        let rt = nursery_rt(log);
        let baseline = rt.heap().bytes_allocated();
        let large_baseline = rt.heap().large_free_blocks();
        let mut w = rt.spawn_worker();
        for round in 0..20u64 {
            let commit = round % 3 != 2;
            let r: Result<(), u64> = w.txn_result(|tx| {
                let mut live = Vec::new();
                for i in 0..12u64 {
                    let p = tx.alloc(16 + (i % 5) * 48)?;
                    tx.write(&S_ESC, p, i)?;
                    live.push(p);
                }
                // LIFO frees (bump-back) and mid-list frees (hole punch +
                // demotion) at the top level.
                let top = live.pop().unwrap();
                tx.free(top);
                let mid = live.remove(3);
                tx.free(mid);
                // Nested level: alloc, free-own (LIFO + hole), free parent
                // blocks (deferred), then either commit or partial-abort.
                let parent_victim = live.remove(0);
                let abort_child = round % 2 == 0;
                let survivors = tx.nested(|ntx| {
                    let mut child = Vec::new();
                    for j in 0..6u64 {
                        let q = ntx.alloc(24 + (j % 3) * 80)?;
                        ntx.write(&S_ESC, q, 100 + j)?;
                        child.push(q);
                    }
                    ntx.free(child.pop().unwrap()); // LIFO
                    ntx.free(child.remove(1)); // hole
                    ntx.free(parent_victim); // ancestor: deferred
                    for (j, &q) in child.iter().enumerate() {
                        let v = ntx.read(&S_ESC, q)?;
                        assert!(v >= 100, "child block clobbered: {v} at {j}");
                    }
                    if abort_child {
                        Err(Abort::User(1))
                    } else {
                        Ok(child)
                    }
                })?;
                // Blocks a committed child hands to the parent are now
                // parent-level captures; free them at the parent level.
                if let Ok(child_blocks) = survivors {
                    for q in child_blocks {
                        tx.free(q);
                    }
                }
                if abort_child {
                    // Partial abort cancelled the deferred free.
                    let v = tx.read(&S_ESC, parent_victim)?;
                    assert_eq!(v, 0, "resurrected block must keep its value");
                    tx.free(parent_victim);
                }
                // Remaining parent blocks are intact.
                for &p in &live {
                    let _ = tx.read(&S_ESC, p)?;
                }
                for p in live {
                    tx.free(p);
                }
                if commit {
                    Ok(())
                } else {
                    Err(Abort::User(7))
                }
            });
            assert_eq!(r.is_ok(), commit);
            assert_eq!(
                rt.heap().large_free_blocks(),
                large_baseline,
                "small-block churn must never touch the large-block lock ({log:?})"
            );
            assert_eq!(
                rt.heap().bytes_allocated(),
                baseline,
                "all churned bytes must be reclaimed after round {round} ({log:?})"
            );
        }
        let stats = w.stats;
        assert!(stats.nursery_hits > 0, "churn must exercise the nursery");
        // Single-region churn never splinters: commits carry the tail over
        // as the next transaction's spare and aborts retain the active
        // region the same way (see `nursery_abort`), so the recycler is
        // never involved — each round reuses the same bytes wholesale.
        assert_eq!(
            stats.nursery_bytes_recycled, 0,
            "single-region churn must retain the spare, not splinter it"
        );
    }
}

/// Commit publishes nursery blocks as ordinary heap memory: they survive
/// the transaction, `free` recycles them through the class shards, and the
/// next transaction's nursery reuses the space.
#[test]
fn nursery_blocks_survive_commit_and_free_normally() {
    let rt = nursery_rt(LogKind::Tree);
    let mut w = rt.spawn_worker();
    let p = w.txn(|tx| {
        let p = tx.alloc(64)?;
        for i in 0..8 {
            tx.write(&S_ESC, p.word(i), 0xC0 + i)?;
        }
        Ok(p)
    });
    for i in 0..8 {
        assert_eq!(w.load(p.word(i)), 0xC0 + i, "published value survives");
    }
    let live = rt.heap().bytes_allocated();
    w.free_raw(p);
    assert!(rt.heap().bytes_allocated() < live);
    // A later transaction must classify fresh nursery blocks again.
    let q = w.txn(|tx| {
        let q = tx.alloc(64)?;
        tx.write(&S_ESC, q, 1)?;
        Ok(q)
    });
    assert_eq!(w.load(q), 1);
    assert!(
        w.stats.nursery_hits >= 9,
        "both transactions used the nursery"
    );
}

/// Aborted transactions leave no trace: the whole nursery (several chained
/// regions' worth) is un-published wholesale.
#[test]
fn nursery_abort_reclaims_chained_regions() {
    let rt = nursery_rt(LogKind::Tree);
    let baseline = rt.heap().bytes_allocated();
    let mut w = rt.spawn_worker();
    let r: Result<(), u64> = w.txn_result(|tx| {
        // 8 region-filling blocks, with a large (non-nursery) allocation
        // interleaved so the frontier moves between carves: in-place
        // region extension fails and the nursery must chain *distinct*
        // regions rather than grow one contiguous extent.
        for _ in 0..8 {
            let p = tx.alloc(4000)?;
            tx.write(&S_ESC, p, 9)?;
            let big = tx.alloc(9000)?;
            tx.write(&S_ESC, big, 7)?;
        }
        Err(Abort::User(3))
    });
    assert!(r.is_err());
    assert_eq!(
        rt.heap().bytes_allocated(),
        baseline,
        "abort must leak nothing"
    );
    let stats = w.stats;
    assert!(stats.nursery_regions >= 4, "chaining expected: {stats:?}");
    // The abort recycles every chained-away region wholesale; the active
    // region is retained as the next transaction's spare instead (see
    // `nursery_abort`), so exactly one region's worth stays out of the
    // recycler.
    assert!(
        stats.nursery_bytes_recycled >= (stats.nursery_regions - 1) * 4096,
        "all but the retained spare must come back: {stats:?}"
    );
}
