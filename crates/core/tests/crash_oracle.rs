//! Kill-and-recover oracle for the durable redo-log commit mode
//! (`TxConfig::durable`, ISSUE 8 tentpole).
//!
//! A deterministic script of logical transactions runs on a durable
//! runtime whose [`SimDisk`] is armed with a crash-point fault plan:
//! the disk dies before, in the middle of (torn tail), or right after a
//! log append, or inside a checkpoint (after the snapshot, or after the
//! manifest but before log truncation). The workload stops when it
//! notices the kill, [`recover`] rebuilds a runtime from whatever
//! survived, and the oracle diffs the recovered memory **word for word**
//! against a pure shadow simulation of the committed prefix the recovery
//! reports:
//!
//! * every shared cell holds exactly the value after `L` logical commits
//!   (`L` = `RecoveryReport::logical_committed`) — never a torn mixture;
//! * every publication slot points at the block the `L`-prefix published
//!   (the *actual* pointer the crashed run allocated), and the block's
//!   contents — written through the **captured** elided path and logged
//!   as one coalesced range — are bit-exact, header-restored;
//! * `L` never exceeds what the crashed run committed, and equals it
//!   when no fault fired.
//!
//! The property runs the script across the paper's whole configuration
//! matrix — allocation-log kinds × nursery × transaction merging
//! (`txn_batch` windows, one record per physical window) × the typed
//! object layer — with strict (`durable_flush_batch = 1`) and group
//! (`> 1`) commit, plus optional mid-run checkpoints. Deterministic
//! companions pin each fault phase at every append index, the checkpoint
//! crash windows, the background checkpointer, and durable-mode
//! transparency (durable vs. transient runs are observably identical,
//! durable telemetry redacted via `tests/common`).

mod common;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use stm::{
    recover, Abort, CheckScope, FaultPhase, FaultPlan, LogKind, Mode, RecoveryReport, SimDisk,
    Site, StmRuntime, Tx, TxConfig, TxResult,
};
use txmem::{Addr, MemConfig};

static S_SHARED: Site = Site::shared("crash.shared");
static S_CAP: Site = Site::captured_escaped("crash.captured");
static S_LOCAL: Site = Site::captured_local("crash.local");

const CELLS: u64 = 8;
const SLOTS: u64 = 4;
const BLK_WORDS: u64 = 4;

/// One logical transaction, fully determined by its fields and its index:
/// a shared-cell RMW, optionally an allocate-fill-publish (the captured →
/// coalesced-range path), optionally a nested child (partial abort),
/// optionally a user abort (no effects, no commit).
#[derive(Clone, Debug)]
struct TxnSpec {
    cell: u8,
    val: u64,
    alloc: bool,
    slot: u8,
    free_old: bool,
    nested: bool,
    abort_nested: bool,
    user_abort: bool,
}

fn txn_spec() -> impl Strategy<Value = TxnSpec> {
    (
        (any::<u8>(), any::<u64>(), any::<bool>(), any::<u8>()),
        (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            prop_oneof![4 => Just(false), 1 => Just(true)],
        ),
    )
        .prop_map(
            |((cell, val, alloc, slot), (free_old, nested, abort_nested, user_abort))| TxnSpec {
                cell,
                val,
                alloc,
                slot,
                free_old,
                nested,
                abort_nested,
                user_abort,
            },
        )
}

/// Configuration axes one oracle case exercises.
#[derive(Clone, Copy, Debug)]
struct OracleCfg {
    log: LogKind,
    nursery: bool,
    /// `None` = one `txn_result` per logical transaction; `Some(w)` =
    /// merged `txn_batch` windows of width `w`.
    merge: Option<usize>,
    /// Drive the block fill/publish through the typed layer
    /// (`alloc_buf`/`write_elem`) instead of raw word barriers.
    typed: bool,
    flush_batch: u32,
    /// Run one checkpoint after this many logical transactions completed.
    ckpt_after: Option<usize>,
}

fn oracle_cfg() -> impl Strategy<Value = OracleCfg> {
    (
        (
            0..LogKind::ALL.len(),
            any::<bool>(),
            prop_oneof![2 => Just(None), 1 => (2..5usize).prop_map(Some)],
        ),
        (
            any::<bool>(),
            prop_oneof![3 => Just(1u32), 1 => Just(4u32)],
            prop_oneof![2 => Just(None), 1 => (1..6usize).prop_map(Some)],
        ),
    )
        .prop_map(
            |((log_idx, nursery, merge), (typed, flush_batch, ckpt_after))| OracleCfg {
                log: LogKind::ALL[log_idx],
                nursery,
                merge,
                typed,
                flush_batch,
                ckpt_after,
            },
        )
}

fn fault() -> impl Strategy<Value = Option<FaultPlan>> {
    prop_oneof![
        1 => Just(None),
        4 => (0..3usize, 0..40u64, 0..160u32).prop_map(|(ph, at, torn_keep)| {
            Some(FaultPlan {
                phase: [FaultPhase::PreFlush, FaultPhase::TornFlush, FaultPhase::PostFlush][ph],
                at,
                torn_keep,
            })
        }),
    ]
}

fn config(oc: &OracleCfg) -> TxConfig {
    let mut cfg = TxConfig::builder()
        .mode(Mode::Runtime {
            log: oc.log,
            scope: CheckScope::FULL,
        })
        .nursery(oc.nursery)
        .merge_max(oc.merge.unwrap_or(1).max(1) as u32)
        .durable(true)
        .durable_flush_batch(oc.flush_batch)
        .build()
        .unwrap();
    cfg.orec_log2 = 12; // small orec table; single-threaded workload
    cfg
}

// ---------------------------------------------------------------------------
// Shadow simulation: the committed-prefix oracle
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct SimState {
    cells: Vec<u64>,
    /// Per slot: the publishing transaction's index and the block contents
    /// it committed (`None` = never published).
    slots: Vec<Option<(usize, Vec<u64>)>>,
}

fn blk_content(i: usize) -> Vec<u64> {
    let i = i as u64;
    let mut c: Vec<u64> = (0..BLK_WORDS).map(|j| i * 1000 + j).collect();
    c[0] = i * 1000 + 7777; // the deliberate double write (coalescing)
    c
}

fn sim_apply(st: &mut SimState, t: &TxnSpec, i: usize) {
    let c = t.cell as usize % CELLS as usize;
    st.cells[c] = st.cells[c].wrapping_mul(3).wrapping_add(t.val ^ i as u64);
    if t.alloc {
        st.slots[t.slot as usize % SLOTS as usize] = Some((i, blk_content(i)));
    }
    if t.nested && !t.abort_nested {
        let c2 = (t.cell as usize + 1) % CELLS as usize;
        st.cells[c2] ^= i as u64 * 31 + 7;
    }
}

/// Pure re-execution of the first `upto_commits` *committing*
/// transactions of the script (user aborts commit nothing and don't
/// count).
fn simulate(script: &[TxnSpec], upto_commits: u64) -> SimState {
    let mut st = SimState {
        cells: vec![0; CELLS as usize],
        slots: vec![None; SLOTS as usize],
    };
    let mut committed = 0u64;
    for (i, t) in script.iter().enumerate() {
        if committed == upto_commits {
            break;
        }
        if t.user_abort {
            continue;
        }
        sim_apply(&mut st, t, i);
        committed += 1;
    }
    assert_eq!(
        committed, upto_commits,
        "recovery reported a logical prefix the script cannot produce"
    );
    st
}

// ---------------------------------------------------------------------------
// The real workload
// ---------------------------------------------------------------------------

struct Crashed {
    cells: Addr,
    slots: Addr,
    /// Logical commits the crashed run performed (in memory; the disk may
    /// hold fewer).
    committed: u64,
    /// Per transaction index: the block address its final (committed)
    /// execution published, 0 if none.
    ptrs: Vec<u64>,
    killed: bool,
    stats: stm::TxStats,
}

fn body(
    tx: &mut Tx<'_, '_>,
    t: &TxnSpec,
    i: usize,
    cells: Addr,
    slots: Addr,
    typed: bool,
    ptrs: &RefCell<Vec<u64>>,
) -> TxResult<()> {
    let iu = i as u64;
    let c = cells.word(u64::from(t.cell) % CELLS);
    let v = tx.read(&S_SHARED, c)?;
    tx.write(&S_SHARED, c, v.wrapping_mul(3).wrapping_add(t.val ^ iu))?;
    if t.alloc {
        let p = if typed {
            let buf = tx.alloc_buf::<u64>(BLK_WORDS)?;
            for j in 0..BLK_WORDS {
                tx.write_elem(&S_LOCAL, buf, j, iu * 1000 + j)?;
            }
            tx.write_elem(&S_CAP, buf, 0, iu * 1000 + 7777)?;
            buf.addr()
        } else {
            let p = tx.alloc(BLK_WORDS * 8)?;
            for j in 0..BLK_WORDS {
                tx.write(&S_LOCAL, p.word(j), iu * 1000 + j)?;
            }
            tx.write(&S_CAP, p, iu * 1000 + 7777)?;
            p
        };
        let slot = slots.word(u64::from(t.slot) % SLOTS);
        let old = tx.read(&S_SHARED, slot)?;
        tx.write(&S_SHARED, slot, p.raw())?;
        if t.free_old && old != 0 {
            tx.free(Addr(old));
        }
        ptrs.borrow_mut()[i] = p.raw();
    }
    if t.nested {
        let abort = t.abort_nested;
        let c2 = cells.word((u64::from(t.cell) + 1) % CELLS);
        let delta = iu * 31 + 7;
        let _ = tx.nested(|n| {
            let v = n.read(&S_SHARED, c2)?;
            n.write(&S_SHARED, c2, v ^ delta)?;
            if abort {
                Err(Abort::User(9))
            } else {
                Ok(())
            }
        })?;
    }
    if t.user_abort {
        return Err(Abort::User(iu + 1));
    }
    Ok(())
}

/// Run the script on a durable runtime over `disk` until it finishes or
/// the armed fault kills the disk.
fn run_workload(script: &[TxnSpec], oc: &OracleCfg, disk: &Arc<SimDisk>) -> Crashed {
    let rt = StmRuntime::new_durable(MemConfig::small(), config(oc), disk.clone());
    let cells = rt.alloc_global(CELLS * 8);
    let slots = rt.alloc_global(SLOTS * 8);
    let ptrs = RefCell::new(vec![0u64; script.len()]);
    let mut committed = 0u64;
    let mut ckpt_done = false;
    {
        let mut w = rt.spawn_worker();
        let mut done = 0usize;
        while done < script.len() && !disk.is_killed() {
            match oc.merge {
                None => {
                    let t = &script[done];
                    let i = done;
                    let r = w.txn_result(|tx| body(tx, t, i, cells, slots, oc.typed, &ptrs));
                    if r.is_ok() {
                        committed += 1;
                    }
                    done += 1;
                }
                Some(width) => {
                    let offset = done;
                    let quota = width.min(script.len() - done);
                    let run = w.txn_batch(quota, |b| {
                        let i = offset + b.logical_index() as usize;
                        let t = &script[i];
                        body(&mut *b, t, i, cells, slots, oc.typed, &ptrs)?;
                        Ok(true)
                    });
                    committed += run.committed;
                    done += run.committed as usize;
                    if run.user_abort.is_some() {
                        done += 1; // the aborting transaction is consumed, not retried
                    }
                }
            }
            if let Some(k) = oc.ckpt_after {
                if done >= k && !ckpt_done {
                    rt.checkpoint_now();
                    ckpt_done = true;
                }
            }
        }
    }
    Crashed {
        cells,
        slots,
        committed,
        ptrs: ptrs.into_inner(),
        killed: disk.is_killed(),
        stats: rt.collect_stats(),
    }
}

/// Recover from `disk` and diff memory word-for-word against the shadow
/// simulation of the reported committed prefix. Returns the report for
/// callers asserting phase-specific expectations.
fn verify_recovery(
    script: &[TxnSpec],
    oc: &OracleCfg,
    disk: &Arc<SimDisk>,
    crashed: &Crashed,
) -> RecoveryReport {
    let (rt2, report) = recover(MemConfig::small(), config(oc), disk.clone());
    let l = report.logical_committed;
    assert!(
        l <= crashed.committed,
        "recovered more ({l}) than the crashed run committed ({})",
        crashed.committed
    );
    if !crashed.killed {
        assert_eq!(
            l, crashed.committed,
            "a kill-free run must recover every commit"
        );
    }
    let sim = simulate(script, l);
    for c in 0..CELLS as usize {
        assert_eq!(
            rt2.mem().load_private(crashed.cells.word(c as u64)),
            sim.cells[c],
            "cell {c} diverged after recovering {l} commits"
        );
    }
    for s in 0..SLOTS as usize {
        let got = rt2.mem().load_private(crashed.slots.word(s as u64));
        match &sim.slots[s] {
            None => assert_eq!(got, 0, "slot {s} must be unpublished"),
            Some((i, content)) => {
                let ptr = crashed.ptrs[*i];
                assert_ne!(ptr, 0, "ledger lost the publisher of slot {s}");
                assert_eq!(got, ptr, "slot {s} points at the wrong block");
                for (j, &want) in content.iter().enumerate() {
                    assert_eq!(
                        rt2.mem().load_private(Addr(ptr).word(j as u64)),
                        want,
                        "block word {j} of slot {s} (publisher txn {i}) diverged"
                    );
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// The property
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The tentpole's oracle: for any script, configuration, and crash
    // point, recovery reconstructs exactly the committed prefix the disk
    // holds — bit-identical cells, slots, and published block contents.
    #[test]
    fn recovery_is_exactly_the_logged_prefix(
        script in proptest::collection::vec(txn_spec(), 3..14),
        oc in oracle_cfg(),
        fault in fault(),
    ) {
        let disk = SimDisk::new();
        if let Some(f) = fault {
            disk.arm(f);
        }
        let crashed = run_workload(&script, &oc, &disk);
        let report = verify_recovery(&script, &oc, &disk, &crashed);
        prop_assert!(report.frontier > 0, "recovery must restore a heap frontier");
    }
}

// ---------------------------------------------------------------------------
// Deterministic companions
// ---------------------------------------------------------------------------

/// A fixed script in which every transaction commits and writes (so, in
/// strict mode with no checkpoints, log appends correspond 1:1 to
/// commits).
fn fixed_script(n: usize) -> Vec<TxnSpec> {
    (0..n)
        .map(|i| TxnSpec {
            cell: i as u8,
            val: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1),
            alloc: i % 2 == 0,
            slot: i as u8,
            free_old: i % 4 == 0,
            nested: i % 3 == 0,
            abort_nested: i % 6 == 0,
            user_abort: false,
        })
        .collect()
}

const DET_CFG: OracleCfg = OracleCfg {
    log: LogKind::Tree,
    nursery: false,
    merge: None,
    typed: false,
    flush_batch: 1,
    ckpt_after: None,
};

/// Every fault phase at every append index: PreFlush at `k` loses commit
/// `k`; PostFlush at `k` keeps it; TornFlush at `k` loses it and leaves a
/// torn tail for recovery to chop (when any bytes landed).
#[test]
fn every_flush_phase_at_every_append_recovers_the_exact_prefix() {
    let script = fixed_script(6);
    for phase in [
        FaultPhase::PreFlush,
        FaultPhase::TornFlush,
        FaultPhase::PostFlush,
    ] {
        for at in 0..script.len() as u64 {
            let disk = SimDisk::new();
            disk.arm(FaultPlan {
                phase,
                at,
                torn_keep: 13,
            });
            let crashed = run_workload(&script, &DET_CFG, &disk);
            assert!(crashed.killed, "{phase:?}@{at} never fired");
            let report = verify_recovery(&script, &DET_CFG, &disk, &crashed);
            let expect_l = match phase {
                FaultPhase::PostFlush => at + 1,
                _ => at,
            };
            assert_eq!(
                report.logical_committed, expect_l,
                "{phase:?}@{at}: wrong prefix length"
            );
            let expect_torn = u64::from(phase == FaultPhase::TornFlush);
            assert_eq!(
                report.torn_tails, expect_torn,
                "{phase:?}@{at}: torn-tail accounting"
            );
        }
    }
}

/// Crash after the new snapshot is written but before the manifest points
/// at it: recovery must come from the old state (manifest + full logs)
/// and still reconstruct everything.
#[test]
fn checkpoint_crash_mid_snapshot_recovers_from_logs() {
    let script = fixed_script(8);
    let disk = SimDisk::new();
    disk.arm(FaultPlan {
        phase: FaultPhase::MidSnapshot,
        at: 0,
        torn_keep: 0,
    });
    let crashed = {
        let oc = OracleCfg {
            ckpt_after: Some(5),
            ..DET_CFG
        };
        run_workload(&script, &oc, &disk)
    };
    assert!(crashed.killed, "checkpoint fault never fired");
    let report = verify_recovery(&script, &DET_CFG, &disk, &crashed);
    // The manifest was never updated: no snapshot, all records replayed.
    assert_eq!(report.snapshot_clock, 0);
    assert_eq!(report.logical_committed, 5, "all five pre-kill commits");
    assert_eq!(report.stale_skipped, 0);
}

/// Crash after the manifest flips but before the logs truncate: every log
/// record is now stale (`wv ≤` snapshot clock) and must be skipped, not
/// re-applied.
#[test]
fn checkpoint_crash_pre_truncate_skips_stale_records() {
    let script = fixed_script(8);
    let disk = SimDisk::new();
    disk.arm(FaultPlan {
        phase: FaultPhase::PreTruncate,
        at: 0,
        torn_keep: 0,
    });
    let crashed = {
        let oc = OracleCfg {
            ckpt_after: Some(5),
            ..DET_CFG
        };
        run_workload(&script, &oc, &disk)
    };
    assert!(crashed.killed, "checkpoint fault never fired");
    let report = verify_recovery(&script, &DET_CFG, &disk, &crashed);
    assert!(report.snapshot_clock > 0, "recovery must use the snapshot");
    assert_eq!(report.logical_committed, 5);
    assert_eq!(report.records_applied, 0, "every log record is stale");
    assert_eq!(report.stale_skipped, 5);
}

/// A clean checkpoint followed by more commits: recovery = snapshot +
/// replay of only the post-checkpoint records.
#[test]
fn checkpoint_then_more_commits_replays_only_the_suffix() {
    let script = fixed_script(9);
    let disk = SimDisk::new();
    let oc = OracleCfg {
        ckpt_after: Some(4),
        ..DET_CFG
    };
    let crashed = run_workload(&script, &oc, &disk);
    assert!(!crashed.killed);
    let report = verify_recovery(&script, &oc, &disk, &crashed);
    assert!(report.snapshot_clock > 0);
    assert_eq!(report.logical_committed, 9);
    assert_eq!(report.records_applied, 5, "only the post-checkpoint tail");
}

/// Group commit (`durable_flush_batch > 1`): flushes are batched (fewer
/// disk appends than commits), a crash loses at most the buffered tail,
/// and a clean worker drop flushes everything.
#[test]
fn group_commit_batches_flushes_and_loses_at_most_the_buffer() {
    let script = fixed_script(10);
    let oc = OracleCfg {
        flush_batch: 4,
        ..DET_CFG
    };
    // Clean run: everything recovered, flushes < commits.
    let disk = SimDisk::new();
    let crashed = run_workload(&script, &oc, &disk);
    assert_eq!(crashed.committed, 10);
    assert!(
        crashed.stats.durable_flushes < crashed.stats.commits,
        "batching must amortize flushes: {:?}",
        crashed.stats
    );
    let report = verify_recovery(&script, &oc, &disk, &crashed);
    assert_eq!(report.logical_committed, 10);

    // Killed at the second append: commits 0..8 flushed in two batches of
    // four; everything buffered after is lost, nothing torn.
    let disk = SimDisk::new();
    disk.arm(FaultPlan {
        phase: FaultPhase::PostFlush,
        at: 1,
        torn_keep: 0,
    });
    let crashed = run_workload(&script, &oc, &disk);
    assert!(crashed.killed);
    let report = verify_recovery(&script, &oc, &disk, &crashed);
    assert_eq!(report.logical_committed, 8);
    assert_eq!(report.torn_tails, 0);
}

/// The background checkpointer compacting logs concurrently with a live
/// worker (the quiesce gate under real contention): recovery still
/// reconstructs every commit, from a snapshot plus a short log suffix.
#[test]
fn background_checkpointer_compacts_logs_under_load() {
    let script = fixed_script(64);
    let disk = SimDisk::new();
    let rt = StmRuntime::new_durable(MemConfig::small(), config(&DET_CFG), disk.clone());
    let cells = rt.alloc_global(CELLS * 8);
    let slots = rt.alloc_global(SLOTS * 8);
    let ptrs = RefCell::new(vec![0u64; script.len()]);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| rt.checkpoint_loop(2048, &stop));
        let mut w = rt.spawn_worker();
        for (i, t) in script.iter().enumerate() {
            let _ = w.txn_result(|tx| body(tx, t, i, cells, slots, false, &ptrs));
        }
        drop(w);
        // The workload is much faster than the checkpointer's 1 ms poll:
        // hold the loop open until it has seen the over-threshold logs
        // and truncated them, then let it exit.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while disk.log_bytes() >= 2048 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });
    let crashed = Crashed {
        cells,
        slots,
        committed: script.len() as u64,
        ptrs: ptrs.into_inner(),
        killed: false,
        stats: rt.collect_stats(),
    };
    let report = verify_recovery(&script, &DET_CFG, &disk, &crashed);
    assert_eq!(report.logical_committed, 64);
    assert!(
        report.snapshot_clock > 0,
        "64 allocating transactions must have tripped the 2 KiB threshold"
    );
}

/// Durable mode is observably transparent: the same script on a transient
/// runtime produces bit-identical memory and identical statistics once
/// the durable telemetry is redacted (`tests/common`).
#[test]
fn durable_mode_is_transparent_to_the_workload() {
    let script = fixed_script(12);
    for nursery in [false, true] {
        let oc = OracleCfg { nursery, ..DET_CFG };
        // Durable run.
        let disk = SimDisk::new();
        let durable = run_workload(&script, &oc, &disk);
        assert!(!durable.killed);

        // Transient run: same config minus durability.
        let mut cfg = TxConfig::builder()
            .mode(Mode::Runtime {
                log: oc.log,
                scope: CheckScope::FULL,
            })
            .nursery(nursery)
            .build()
            .unwrap();
        cfg.orec_log2 = 12;
        let rt = StmRuntime::new(MemConfig::small(), cfg);
        let cells = rt.alloc_global(CELLS * 8);
        let slots = rt.alloc_global(SLOTS * 8);
        let ptrs = RefCell::new(vec![0u64; script.len()]);
        {
            let mut w = rt.spawn_worker();
            for (i, t) in script.iter().enumerate() {
                let _ = w.txn_result(|tx| body(tx, t, i, cells, slots, false, &ptrs));
            }
        }
        let transient_ptrs = ptrs.into_inner();

        assert_eq!(durable.cells, cells);
        assert_eq!(durable.slots, slots);
        assert_eq!(
            durable.ptrs, transient_ptrs,
            "allocation placement diverged under durability"
        );
        let sim = simulate(&script, script.len() as u64);
        for c in 0..CELLS as usize {
            assert_eq!(rt.mem().load_private(cells.word(c as u64)), sim.cells[c]);
        }
        assert_eq!(
            common::redacted_debug(
                &durable.stats,
                &[common::Redact::Durable, common::Redact::Contention]
            ),
            common::redacted_debug(
                &rt.collect_stats(),
                &[common::Redact::Durable, common::Redact::Contention]
            ),
            "durability changed the execution, not just the logging"
        );
        assert!(durable.stats.durable_words > 0);
        assert!(
            durable.stats.durable_skipped > 0,
            "captured fills must be skipped from per-word logging: {:?}",
            durable.stats
        );
    }
}

/// Recovery hands back a *working* runtime: new transactions commit, new
/// allocations never collide with recovered blocks, and a second
/// kill-and-recover round-trips the combined history.
#[test]
fn recovered_runtime_keeps_committing_and_recovering() {
    let script = fixed_script(6);
    let disk = SimDisk::new();
    let crashed = run_workload(&script, &DET_CFG, &disk);
    let report = verify_recovery(&script, &DET_CFG, &disk, &crashed);
    assert_eq!(report.logical_committed, 6);

    let (rt2, _) = recover(MemConfig::small(), config(&DET_CFG), disk.clone());
    let live: Vec<u64> = crashed.ptrs.iter().copied().filter(|&p| p != 0).collect();
    let fresh = {
        let mut w = rt2.spawn_worker();
        w.txn(|tx| {
            let p = tx.alloc(BLK_WORDS * 8)?;
            for j in 0..BLK_WORDS {
                tx.write(&S_LOCAL, p.word(j), 4242 + j)?;
            }
            let slot = tx.read(&S_SHARED, crashed.slots)?;
            let _ = slot;
            tx.write(&S_SHARED, crashed.slots, p.raw())?;
            Ok(p)
        })
    };
    for &p in &live {
        let disjoint = fresh.raw() + BLK_WORDS * 8 <= p || p + BLK_WORDS * 8 <= fresh.raw();
        assert!(
            disjoint,
            "fresh block {fresh:?} overlaps recovered block {p:#x}"
        );
    }
    // Second crash-recover cycle over the extended history.
    let (rt3, report3) = recover(MemConfig::small(), config(&DET_CFG), disk);
    assert_eq!(report3.logical_committed, 7);
    assert_eq!(rt3.mem().load_private(crashed.slots), fresh.raw());
    for j in 0..BLK_WORDS {
        assert_eq!(rt3.mem().load_private(fresh.word(j)), 4242 + j);
    }
}

/// Strict-ordering dependency closure across workers: worker B copies
/// worker A's counter into its own mirror cell. Whatever the crash point,
/// the recovered mirror can never exceed the recovered counter — B's
/// record is only on disk after the A-record it depends on.
#[test]
fn strict_ordering_is_dependency_closed_across_workers() {
    static S_A: Site = Site::shared("crash.dep.counter");
    static S_B: Site = Site::shared("crash.dep.mirror");
    for at in [3u64, 7, 12, 19] {
        let disk = SimDisk::new();
        disk.arm(FaultPlan {
            phase: FaultPhase::TornFlush,
            at,
            torn_keep: 9,
        });
        let rt = StmRuntime::new_durable(MemConfig::small(), config(&DET_CFG), disk.clone());
        let counter = rt.alloc_global(8);
        let mirror = rt.alloc_global(8);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = rt.spawn_worker();
                while !disk.is_killed() {
                    w.txn(|tx| {
                        let v = tx.read(&S_A, counter)?;
                        tx.write(&S_A, counter, v + 1)
                    });
                }
            });
            s.spawn(|| {
                let mut w = rt.spawn_worker();
                while !disk.is_killed() {
                    w.txn(|tx| {
                        let v = tx.read(&S_A, counter)?;
                        tx.write(&S_B, mirror, v)
                    });
                }
            });
        });
        let (rt2, _) = recover(MemConfig::small(), config(&DET_CFG), disk);
        let c = rt2.mem().load_private(counter);
        let m = rt2.mem().load_private(mirror);
        assert!(
            m <= c,
            "mirror {m} outran counter {c}: a dependent record hit disk \
             before its dependency (kill at append {at})"
        );
    }
}
