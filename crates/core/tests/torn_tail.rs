//! Deterministic torn-tail recovery sweep (ISSUE 8, satellite 3).
//!
//! A fixed strict-mode (`durable_flush_batch = 1`) workload of `N`
//! committing transactions produces one log record per commit. By running
//! the identical `N-1`- and `N`-transaction workloads on fresh disks we
//! learn the byte range `[len0, len1)` the final record occupies. Then,
//! for **every** byte offset in that range, a fresh identical run has its
//! log either truncated at the offset or corrupted at that byte, and
//! recovery must:
//!
//! * drop exactly the final transaction (`logical_committed == N-1`) —
//!   never a partial application, never an earlier record;
//! * report the damage (`torn_tails == 1`, except at the clean record
//!   boundary where the tail is simply absent);
//! * leave memory bit-identical to the `N-1`-commit prefix; and
//! * chop the damaged tail so an immediate second recovery is clean.

use std::sync::Arc;

use stm::{log_file_name, recover, CheckScope, LogKind, Mode, SimDisk, Site, StmRuntime, TxConfig};
use txmem::{Addr, MemConfig};

static S_SHARED: Site = Site::shared("torn.shared");
static S_LOCAL: Site = Site::captured_local("torn.local");

const CELLS: u64 = 4;
const BLK_WORDS: u64 = 3;
const N: usize = 6;

fn cfg() -> TxConfig {
    let mut cfg = TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .durable(true)
        .durable_flush_batch(1)
        .build()
        .unwrap();
    cfg.orec_log2 = 12;
    cfg
}

/// The pure shadow of `n` committed transactions.
struct Sim {
    cells: [u64; CELLS as usize],
    /// `(publisher index, contents)` of the block the slot points at.
    published: Option<(usize, Vec<u64>)>,
}

fn simulate(n: usize) -> Sim {
    let mut cells = [0u64; CELLS as usize];
    let mut published = None;
    for i in 0..n {
        let c = i % CELLS as usize;
        cells[c] = cells[c].wrapping_mul(7).wrapping_add(i as u64 + 1);
        if i % 2 == 1 {
            published = Some((i, (0..BLK_WORDS).map(|j| i as u64 * 100 + j).collect()));
        }
    }
    Sim { cells, published }
}

/// Run the first `n` transactions of the fixed script on a fresh durable
/// runtime over `disk`. Returns the global addresses and the per-txn
/// block-pointer ledger (0 = the transaction allocated nothing).
fn run(n: usize, disk: &Arc<SimDisk>) -> (Addr, Addr, Vec<u64>) {
    let rt = StmRuntime::new_durable(MemConfig::small(), cfg(), disk.clone());
    let cells = rt.alloc_global(CELLS * 8);
    let slot = rt.alloc_global(8);
    let mut ptrs = vec![0u64; n];
    let mut w = rt.spawn_worker();
    for (i, p) in ptrs.iter_mut().enumerate() {
        let iu = i as u64;
        *p = w.txn(|tx| {
            let c = cells.word(iu % CELLS);
            let v = tx.read(&S_SHARED, c)?;
            tx.write(&S_SHARED, c, v.wrapping_mul(7).wrapping_add(iu + 1))?;
            if i % 2 == 1 {
                let b = tx.alloc(BLK_WORDS * 8)?;
                for j in 0..BLK_WORDS {
                    tx.write(&S_LOCAL, b.word(j), iu * 100 + j)?;
                }
                tx.write(&S_SHARED, slot, b.raw())?;
                Ok(b.raw())
            } else {
                Ok(0)
            }
        });
    }
    drop(w);
    (cells, slot, ptrs)
}

/// Recover from `disk` and assert the exact `expect_l`-commit prefix,
/// `expect_torn` torn tails, and bit-identical memory.
fn check(
    disk: &Arc<SimDisk>,
    cells: Addr,
    slot: Addr,
    ptrs: &[u64],
    expect_l: usize,
    expect_torn: u64,
    what: &str,
) {
    let (rt, report) = recover(MemConfig::small(), cfg(), disk.clone());
    assert_eq!(
        report.logical_committed, expect_l as u64,
        "{what}: prefix length"
    );
    assert_eq!(report.torn_tails, expect_torn, "{what}: torn-tail count");
    let sim = simulate(expect_l);
    for c in 0..CELLS as usize {
        assert_eq!(
            rt.mem().load_private(cells.word(c as u64)),
            sim.cells[c],
            "{what}: cell {c} diverged"
        );
    }
    let got = rt.mem().load_private(slot);
    match &sim.published {
        None => assert_eq!(got, 0, "{what}: slot must be unpublished"),
        Some((i, content)) => {
            assert_eq!(got, ptrs[*i], "{what}: slot pointer");
            for (j, &want) in content.iter().enumerate() {
                assert_eq!(
                    rt.mem().load_private(Addr(got).word(j as u64)),
                    want,
                    "{what}: block word {j}"
                );
            }
        }
    }
    // Recovery chopped the damage: a second pass must be clean and agree.
    drop(rt);
    let (_rt2, again) = recover(MemConfig::small(), cfg(), disk.clone());
    assert_eq!(again.torn_tails, 0, "{what}: tail not chopped");
    assert_eq!(
        again.logical_committed, expect_l as u64,
        "{what}: unstable re-recovery"
    );
}

/// Byte range `[len0, len1)` of the final transaction's record, measured
/// from two fresh identical runs (the workload is deterministic, so the
/// first `N-1` records are byte-identical across runs).
fn final_record_range() -> (usize, usize) {
    let name = log_file_name(0);
    let d0 = SimDisk::new();
    run(N - 1, &d0);
    let len0 = d0.file_len(&name);
    let d1 = SimDisk::new();
    run(N, &d1);
    let len1 = d1.file_len(&name);
    assert!(
        len0 > 0 && len1 > len0,
        "workload must append a final record"
    );
    (len0, len1)
}

#[test]
fn truncation_at_every_offset_of_the_final_record_drops_exactly_one_txn() {
    let name = log_file_name(0);
    let (len0, len1) = final_record_range();
    for off in len0..len1 {
        let disk = SimDisk::new();
        let (cells, slot, ptrs) = run(N, &disk);
        disk.truncate_file(&name, off);
        // At the exact record boundary the tail is absent, not torn.
        let torn = u64::from(off > len0);
        check(
            &disk,
            cells,
            slot,
            &ptrs,
            N - 1,
            torn,
            &format!("truncate@{off}"),
        );
    }
}

#[test]
fn corruption_at_every_byte_of_the_final_record_drops_exactly_one_txn() {
    let name = log_file_name(0);
    let (len0, len1) = final_record_range();
    for off in len0..len1 {
        let disk = SimDisk::new();
        let (cells, slot, ptrs) = run(N, &disk);
        disk.corrupt_byte(&name, off);
        check(
            &disk,
            cells,
            slot,
            &ptrs,
            N - 1,
            1,
            &format!("corrupt@{off}"),
        );
    }
}

#[test]
fn undamaged_log_recovers_all_commits() {
    let disk = SimDisk::new();
    let (cells, slot, ptrs) = run(N, &disk);
    check(&disk, cells, slot, &ptrs, N, 0, "clean");
}
