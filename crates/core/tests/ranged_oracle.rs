//! Differential property test for the ranged barriers: every span
//! operation executed through the ranged API (`read_range`/`write_range`/
//! `copy_range`/`fill_range`) must be **observationally identical** to the
//! same operation executed as a loop over the per-word barriers — same
//! final memory, same `TxStats` (with only the `ranged_*` telemetry
//! redacted, since batching shape is exactly what the two APIs are allowed
//! to differ in).
//!
//! The traces stress every run-classification edge: spans over shared
//! memory crossing many orec stripes, spans wholly inside captured scratch
//! blocks, spans straddling the stack capture boundary (words below `sp`
//! shared, the frame captured), spans across nursery holes punched by
//! in-transaction frees (captured → shared → captured splits), nested
//! transactions whose ancestor-captured runs need per-word undo, and
//! partial aborts that must restore bit-identically.
//!
//! A second property pins the ranged API itself across pipelines: the
//! monomorphized ranged rows against the reference pipeline's per-word
//! degradation (`reference_dispatch`), mirroring `dispatch_equiv`.

mod common;

use proptest::prelude::*;
use stm::{Abort, CheckScope, LogKind, Mode, Site, StmRuntime, Tx, TxConfig, TxResult, TxStats};
use txmem::{Addr, MemConfig};

static S_SHARED: Site = Site::shared("ranged.shared");
static S_CAP: Site = Site::captured_escaped("ranged.captured");
static S_LOCAL: Site = Site::captured_local("ranged.local");

/// Shared arena size in words — large enough that spans cross several
/// 64-byte orec stripes.
const CELLS: u64 = 96;

#[derive(Clone, Debug)]
enum Op {
    /// Ranged write of a seeded pattern into the shared arena.
    SpanWrite { off: u8, len: u8, seed: u64 },
    /// Ranged read of an arena span, folded (xor) into one shared cell.
    SpanRead { off: u8, len: u8, cell: u8 },
    /// Copy between the arena's disjoint halves.
    SpanCopy { from: u8, to: u8, len: u8 },
    /// Fill an arena span with one value.
    Fill { off: u8, len: u8, val: u64 },
    /// Allocate a captured scratch block, initialized with a ranged write.
    Alloc { words: u8 },
    /// Ranged write inside a live scratch block (ancestor-captured when
    /// the block was allocated by an enclosing level).
    SpanWriteScratch {
        idx: u8,
        off: u8,
        len: u8,
        seed: u64,
    },
    /// Ranged read of a scratch span, folded into a shared cell.
    SpanReadScratch { idx: u8, off: u8, len: u8, cell: u8 },
    /// Free a live scratch block in-transaction.
    Free { idx: u8 },
    /// Push a frame and span `[frame - below, …)`: the words below `sp`
    /// are shared, the frame is captured — the span must split at the
    /// boundary.
    StackSpan {
        words: u8,
        below: u8,
        len: u8,
        seed: u64,
        cell: u8,
    },
    /// Nursery-only: allocate three adjacent blocks, free the middle one
    /// (punching a hole), then span all three — captured → shared →
    /// captured run splits over contiguous nursery memory.
    HoleSpan { a: u8, c: u8, seed: u64, cell: u8 },
}

#[derive(Clone, Debug)]
struct Txn {
    ops: Vec<Op>,
    nested: Vec<Op>,
    abort_nested: bool,
    commit: bool,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1..48u8, any::<u64>()).prop_map(|(off, len, seed)| Op::SpanWrite {
            off,
            len,
            seed
        }),
        (any::<u8>(), 1..48u8, any::<u8>()).prop_map(|(off, len, cell)| Op::SpanRead {
            off,
            len,
            cell
        }),
        (any::<u8>(), any::<u8>(), 1..32u8).prop_map(|(from, to, len)| Op::SpanCopy {
            from,
            to,
            len
        }),
        (any::<u8>(), 1..48u8, any::<u64>()).prop_map(|(off, len, val)| Op::Fill { off, len, val }),
        (1..24u8).prop_map(|words| Op::Alloc { words }),
        (any::<u8>(), any::<u8>(), 1..24u8, any::<u64>()).prop_map(|(idx, off, len, seed)| {
            Op::SpanWriteScratch {
                idx,
                off,
                len,
                seed,
            }
        }),
        (any::<u8>(), any::<u8>(), 1..24u8, any::<u8>()).prop_map(|(idx, off, len, cell)| {
            Op::SpanReadScratch {
                idx,
                off,
                len,
                cell,
            }
        }),
        any::<u8>().prop_map(|idx| Op::Free { idx }),
        (2..12u8, 1..8u8, 1..16u8, any::<u64>(), any::<u8>()).prop_map(
            |(words, below, len, seed, cell)| Op::StackSpan {
                words,
                below,
                len,
                seed,
                cell
            }
        ),
        (2..8u8, 2..8u8, any::<u64>(), any::<u8>()).prop_map(|(a, c, seed, cell)| Op::HoleSpan {
            a,
            c,
            seed,
            cell
        }),
    ]
}

fn script() -> impl Strategy<Value = Vec<Txn>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(op(), 1..7),
            proptest::collection::vec(op(), 0..5),
            any::<bool>(),
            prop_oneof![3 => Just(true), 1 => Just(false)],
        )
            .prop_map(|(ops, nested, abort_nested, commit)| Txn {
                ops,
                nested,
                abort_nested,
                commit,
            }),
        1..5,
    )
}

/// Live scratch blocks of the current transaction: (addr, words).
type Scratch = Vec<(Addr, u8)>;

/// Deterministic per-word pattern for span writes.
fn pat(seed: u64, k: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k)
}

/// Write `vals` at `addr` through the API under test.
fn span_write(
    tx: &mut Tx<'_, '_>,
    site: &'static Site,
    addr: Addr,
    vals: &[u64],
    ranged: bool,
) -> TxResult<()> {
    if ranged {
        tx.write_range(site, addr, vals)
    } else {
        for (k, &v) in vals.iter().enumerate() {
            tx.write(site, addr.word(k as u64), v)?;
        }
        Ok(())
    }
}

/// Read a span through the API under test.
fn span_read(
    tx: &mut Tx<'_, '_>,
    site: &'static Site,
    addr: Addr,
    dst: &mut [u64],
    ranged: bool,
) -> TxResult<()> {
    if ranged {
        tx.read_range(site, addr, dst)
    } else {
        for (k, slot) in dst.iter_mut().enumerate() {
            *slot = tx.read(site, addr.word(k as u64))?;
        }
        Ok(())
    }
}

fn run_ops(
    tx: &mut Tx<'_, '_>,
    base: Addr,
    ops: &[Op],
    scratch: &mut Scratch,
    ranged: bool,
    nursery: bool,
) -> TxResult<()> {
    for op in ops {
        match *op {
            Op::SpanWrite { off, len, seed } => {
                let off = u64::from(off) % CELLS;
                let n = u64::from(len).min(CELLS - off);
                let vals: Vec<u64> = (0..n).map(|k| pat(seed, k)).collect();
                span_write(tx, &S_SHARED, base.word(off), &vals, ranged)?;
            }
            Op::SpanRead { off, len, cell } => {
                let off = u64::from(off) % CELLS;
                let n = u64::from(len).min(CELLS - off);
                let mut dst = vec![0u64; n as usize];
                span_read(tx, &S_SHARED, base.word(off), &mut dst, ranged)?;
                let folded = dst.iter().fold(0u64, |acc, &v| acc ^ v);
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), folded)?;
            }
            Op::SpanCopy { from, to, len } => {
                // Keep src in the lower half, dst in the upper: disjoint.
                let half = CELLS / 2;
                let from = u64::from(from) % half;
                let to = half + u64::from(to) % half;
                let n = u64::from(len).min(half - from).min(CELLS - to);
                if ranged {
                    tx.copy_range(&S_SHARED, &S_SHARED, base.word(to), base.word(from), n)?;
                } else {
                    for k in 0..n {
                        let v = tx.read(&S_SHARED, base.word(from + k))?;
                        tx.write(&S_SHARED, base.word(to + k), v)?;
                    }
                }
            }
            Op::Fill { off, len, val } => {
                let off = u64::from(off) % CELLS;
                let n = u64::from(len).min(CELLS - off);
                if ranged {
                    tx.fill_range(&S_SHARED, base.word(off), val, n)?;
                } else {
                    for k in 0..n {
                        tx.write(&S_SHARED, base.word(off + k), val)?;
                    }
                }
            }
            Op::Alloc { words } => {
                let p = tx.alloc(u64::from(words) * 8)?;
                let vals: Vec<u64> = (0..u64::from(words)).map(|k| pat(0x5EED, k)).collect();
                span_write(tx, &S_LOCAL, p, &vals, ranged)?;
                scratch.push((p, words));
            }
            Op::SpanWriteScratch {
                idx,
                off,
                len,
                seed,
            } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    let off = u64::from(off) % u64::from(words);
                    let n = u64::from(len).min(u64::from(words) - off);
                    let vals: Vec<u64> = (0..n).map(|k| pat(seed, k)).collect();
                    span_write(tx, &S_CAP, p.word(off), &vals, ranged)?;
                }
            }
            Op::SpanReadScratch {
                idx,
                off,
                len,
                cell,
            } => {
                if !scratch.is_empty() {
                    let (p, words) = scratch[idx as usize % scratch.len()];
                    let off = u64::from(off) % u64::from(words);
                    let n = u64::from(len).min(u64::from(words) - off);
                    let mut dst = vec![0u64; n as usize];
                    span_read(tx, &S_CAP, p.word(off), &mut dst, ranged)?;
                    let folded = dst.iter().fold(0u64, |acc, &v| acc ^ v);
                    tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), folded)?;
                }
            }
            Op::Free { idx } => {
                if !scratch.is_empty() {
                    let (p, _) = scratch.remove(idx as usize % scratch.len());
                    tx.free(p);
                }
            }
            Op::StackSpan {
                words,
                below,
                len,
                seed,
                cell,
            } => {
                let f = tx.stack_push(words as usize);
                // Span [f - below, …): starts in dead (shared) stack space
                // below sp, crosses into the captured frame.
                let start = Addr::from_raw(f.raw() - u64::from(below) * 8);
                let n = u64::from(len).min(u64::from(below) + u64::from(words));
                let vals: Vec<u64> = (0..n).map(|k| pat(seed, k)).collect();
                span_write(tx, &S_CAP, start, &vals, ranged)?;
                let mut dst = vec![0u64; n as usize];
                span_read(tx, &S_CAP, start, &mut dst, ranged)?;
                let folded = dst.iter().fold(0u64, |acc, &v| acc ^ v);
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), folded)?;
                tx.stack_pop(words as usize);
            }
            Op::HoleSpan { a, c, seed, cell } => {
                // Only meaningful (and only memory-safe) with the nursery:
                // freed-block memory stays in the bump region, so spanning
                // the hole touches no allocator metadata. Gated on the
                // *configuration*, so both APIs execute the same trace.
                if !nursery {
                    continue;
                }
                let wa = u64::from(a);
                let wc = u64::from(c);
                let pa = tx.alloc(wa * 8)?;
                let pb = tx.alloc(4 * 8)?;
                let pc = tx.alloc(wc * 8)?;
                let ascending = pb.raw() > pa.raw() && pc.raw() > pb.raw();
                let span_words = (pc.raw().wrapping_sub(pa.raw())) / 8 + wc;
                if ascending && span_words <= 64 {
                    // Fill both live payloads, then free the middle block.
                    let va: Vec<u64> = (0..wa).map(|k| pat(seed, k)).collect();
                    span_write(tx, &S_CAP, pa, &va, ranged)?;
                    let vc: Vec<u64> = (0..wc).map(|k| pat(seed, 100 + k)).collect();
                    span_write(tx, &S_CAP, pc, &vc, ranged)?;
                    tx.free(pb);
                    // Read-only span across the hole: writes would trample
                    // the freed block's inline header, which commit still
                    // reads to recycle it — reads split captured → shared
                    // → captured without touching allocator metadata.
                    let mut dst = vec![0u64; span_words as usize];
                    span_read(tx, &S_CAP, pa, &mut dst, ranged)?;
                    let folded = dst.iter().fold(0u64, |acc, &v| acc ^ v);
                    tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), folded)?;
                } else {
                    tx.free(pb);
                }
                scratch.push((pa, a));
                scratch.push((pc, c));
            }
        }
    }
    Ok(())
}

/// Format the statistics with the `ranged_*` telemetry zeroed: batching
/// shape is the one observable the two APIs legitimately differ in.
fn redacted(stats: &TxStats) -> String {
    common::redacted_debug(stats, &[common::Redact::Ranged, common::Redact::Contention])
}

/// Execute the whole script; returns observable memory (arena + committed
/// scratch blocks), redacted stats, and the ranged-telemetry sum.
fn run(
    script: &[Txn],
    mode: Mode,
    nursery: bool,
    ranged: bool,
    reference: bool,
) -> (Vec<u64>, String, u64) {
    let mut cfg = TxConfig::with_mode(mode);
    cfg.orec_log2 = 12; // small orec table; single-threaded test
    cfg.nursery = nursery;
    cfg.reference_dispatch = reference;
    let nursery_on = cfg.nursery_active();
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let base = rt.alloc_global(CELLS * 8);
    let mut w = rt.spawn_worker();
    let mut persisted: Scratch = Vec::new();

    for t in script {
        let mut committed_scratch: Scratch = Vec::new();
        let r: Result<(), u64> = w.txn_result(|tx| {
            let mut scratch: Scratch = Vec::new();
            run_ops(tx, base, &t.ops, &mut scratch, ranged, nursery_on)?;
            if !t.nested.is_empty() || t.abort_nested {
                let checkpoint = scratch.len();
                let abort_nested = t.abort_nested;
                let nested_ops = &t.nested;
                let res = tx.nested(|ntx| {
                    run_ops(ntx, base, nested_ops, &mut scratch, ranged, nursery_on)?;
                    if abort_nested {
                        Err(Abort::User(9))
                    } else {
                        Ok(())
                    }
                })?;
                if res.is_err() {
                    scratch.truncate(checkpoint);
                }
            }
            committed_scratch.clear();
            committed_scratch.extend_from_slice(&scratch);
            if t.commit {
                Ok(())
            } else {
                Err(Abort::User(1))
            }
        });
        if r.is_ok() {
            persisted.extend_from_slice(&committed_scratch);
        }
    }

    let mut mem: Vec<u64> = (0..CELLS).map(|i| w.load(base.word(i))).collect();
    for &(p, words) in &persisted {
        for i in 0..u64::from(words) {
            mem.push(w.load(p.word(i)));
        }
    }
    let ranged_sum = w.stats.ranged_reads
        + w.stats.ranged_writes
        + w.stats.ranged_spans
        + w.stats.ranged_fallbacks;
    (mem, redacted(&w.stats), ranged_sum)
}

/// The configurations under differential test: the three static modes plus
/// every log × a spread of scope masks × nursery on/off.
fn all_configs() -> Vec<(Mode, bool)> {
    let mut v = vec![
        (Mode::Baseline, false),
        (Mode::Compiler, false),
        (Mode::CompilerInterproc, false),
    ];
    for log in LogKind::ALL {
        // Off, reads-only, writes-only, r+w+stack, r+w+heap, full: every
        // classifier gate (scope.reads/writes/stack/heap) flips somewhere.
        for mask in [0u8, 1, 2, 7, 11, 15] {
            let mode = Mode::Runtime {
                log,
                scope: CheckScope {
                    reads: mask & 1 != 0,
                    writes: mask & 2 != 0,
                    stack: mask & 4 != 0,
                    heap: mask & 8 != 0,
                },
            };
            v.push((mode, false));
            v.push((mode, true));
        }
    }
    v
}

fn has_span_op(script: &[Txn]) -> bool {
    script.iter().any(|t| !t.ops.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Ranged API ≡ per-word loop, per configuration.
    #[test]
    fn ranged_and_per_word_apis_agree(script in script()) {
        for (mode, nursery) in all_configs() {
            let (mem_w, stats_w, ranged_w) = run(&script, mode, nursery, false, false);
            let (mem_r, stats_r, ranged_r) = run(&script, mode, nursery, true, false);
            prop_assert_eq!(
                &mem_w, &mem_r,
                "memory diverged under {:?} nursery={}", mode, nursery
            );
            prop_assert_eq!(
                &stats_w, &stats_r,
                "stats diverged under {:?} nursery={}", mode, nursery
            );
            // The telemetry must prove the ranged side actually batched.
            prop_assert_eq!(ranged_w, 0, "per-word run must not touch ranged counters");
            if has_span_op(&script) {
                prop_assert!(ranged_r > 0, "ranged run recorded no ranged telemetry");
            }
        }
    }

    // Monomorphized ranged rows ≡ reference pipeline's ranged arms.
    #[test]
    fn ranged_mono_and_reference_dispatch_agree(script in script()) {
        for (mode, nursery) in all_configs() {
            let (mem_mono, stats_mono, _) = run(&script, mode, nursery, true, false);
            let (mem_ref, stats_ref, _) = run(&script, mode, nursery, true, true);
            prop_assert_eq!(
                &mem_mono, &mem_ref,
                "memory diverged vs reference under {:?} nursery={}", mode, nursery
            );
            prop_assert_eq!(
                &stats_mono, &stats_ref,
                "stats diverged vs reference under {:?} nursery={}", mode, nursery
            );
        }
    }
}

/// Deterministic spot-check that ranged runs split where they must: a
/// nursery hole span charges captured *and* full counters, and stack
/// boundary spans split at `sp`.
#[test]
fn hole_and_stack_spans_split_runs() {
    let script = vec![Txn {
        ops: vec![
            Op::HoleSpan {
                a: 4,
                c: 4,
                seed: 11,
                cell: 0,
            },
            Op::StackSpan {
                words: 6,
                below: 4,
                len: 10,
                seed: 7,
                cell: 1,
            },
        ],
        nested: vec![],
        abort_nested: false,
        commit: true,
    }];
    let mode = Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::FULL,
    };
    let (_, stats, ranged_sum) = run(&script, mode, true, true, false);
    assert!(ranged_sum > 0);
    // The hole span must have split into captured and shared (full) runs,
    // and the stack span into shared-below-sp and captured-frame runs.
    assert!(stats.contains("elided_stack"), "sanity: debug format shape");
    let (_, stats_pw, _) = run(&script, mode, true, false, false);
    assert_eq!(stats, stats_pw, "split runs must charge per-word counters");
}
