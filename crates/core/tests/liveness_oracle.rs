//! Liveness oracle for the adaptive contention manager (`stm::contention`,
//! DESIGN.md §12): adversarial workloads under schedule fault injection
//! ([`ChaosPlan`]) must make forward progress with a *bounded* worst-case
//! retry chain — no livelock, no starvation, no `max_attempts` panic —
//! while preserving their memory invariants exactly.
//!
//! Three workload families, chosen to starve differently:
//!
//! * **hot-word counters** — every thread increments the same few words;
//!   pure write-write conflict pressure on a handful of orecs;
//! * **skewed transfers** — zipf-ish account selection, so a couple of
//!   accounts absorb most traffic while the tail keeps the read sets wide;
//! * **long reader vs. short writers** — a full-table read-only scan racing
//!   short writers; classic starvation shape for invisible readers (the
//!   scan keeps failing validation until the ladder escalates for it).
//!
//! Plus the semantic-footprint differential: single-threaded, the policy
//! seam and the chaos hooks must be *invisible* — identical memory and
//! identical redacted statistics across Backoff/Adaptive × chaos on/off.

use proptest::prelude::*;
use stm::{
    Abort, ChaosPlan, CheckScope, ContentionPolicy, LogKind, Mode, Site, StmRuntime, TxConfig,
};
use txmem::MemConfig;

mod common;

static S_HOT: Site = Site::shared("live.hot");
static S_ACCT: Site = Site::shared("live.account");
static S_SCRATCH: Site = Site::captured_local("live.scratch");

/// xorshift64* (same generator the runtime uses for backoff jitter).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn mem_cfg(threads: usize) -> MemConfig {
    MemConfig {
        max_threads: threads,
        stack_words: 1 << 10,
        heap_words: 1 << 16,
    }
}

/// The liveness bound the ladder guarantees (see DESIGN.md §12): a
/// transaction escalates to the serialization token after
/// `serialize_threshold` attempts, and while it queues for the token each
/// other thread can finish (or abort) at most a couple of in-flight
/// attempts per token episode. `8 × threads` is a deliberately loose
/// constant multiple of that argument — loose enough for noisy schedules,
/// tight enough that a livelock (tens of thousands of retries) fails.
fn attempt_bound(cfg: &TxConfig, threads: usize) -> u64 {
    cfg.serialize_threshold + 8 * threads as u64
}

fn adaptive_cfg(chaos: Option<ChaosPlan>) -> TxConfig {
    let mut b = TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .contention_policy(ContentionPolicy::Adaptive)
        // Aggressively low thresholds: the point of the oracle is to drive
        // the full ladder (karma, then token), not to avoid it.
        .spin_tries(4)
        .karma_threshold(3)
        .serialize_threshold(10);
    if let Some(plan) = chaos {
        b = b.chaos(plan);
    }
    b.build().unwrap()
}

/// Hot-word counters: `threads` workers × `incrs` increments over `words`
/// shared words. Returns merged stats after asserting the exact sums.
fn run_hot_words(cfg: &TxConfig, threads: usize, incrs: usize, words: u64) -> stm::TxStats {
    let rt = StmRuntime::new(mem_cfg(threads), *cfg);
    let base = rt.alloc_global(words * 8);
    let start = std::sync::Barrier::new(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (rt, start) = (&rt, &start);
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0xA076_1D64_78BD_642F ^ (t as u64 + 1));
                start.wait();
                for _ in 0..incrs {
                    let word = rng.next() % words;
                    w.txn(|tx| {
                        let v = tx.read(&S_HOT, base.word(word))?;
                        tx.write(&S_HOT, base.word(word), v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    let total: u64 = (0..words).map(|i| rt.mem().load(base.word(i))).sum();
    assert_eq!(
        total,
        (threads * incrs) as u64,
        "increments lost or doubled"
    );
    rt.collect_stats()
}

/// Skewed transfers: account indices drawn geometrically (`trailing_zeros`
/// of a uniform draw), so account 0 takes ~half the traffic — the zipf-like
/// skew that makes contention chronic for a few orecs while the long tail
/// keeps read sets honest. Asserts the conserved total.
fn run_skewed_transfers(cfg: &TxConfig, threads: usize, transfers: usize) -> stm::TxStats {
    const ACCOUNTS: u64 = 16;
    const SEED_BALANCE: u64 = 1_000;
    let rt = StmRuntime::new(mem_cfg(threads), *cfg);
    let base = rt.alloc_global(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.mem().store(base.word(i), SEED_BALANCE);
    }
    let start = std::sync::Barrier::new(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (rt, start) = (&rt, &start);
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0x2B99_4D7A_93F1_6E05 ^ (t as u64 + 1));
                start.wait();
                for _ in 0..transfers {
                    let from = (rng.next().trailing_zeros() as u64).min(ACCOUNTS - 1);
                    let to = (rng.next().trailing_zeros() as u64).min(ACCOUNTS - 1);
                    let amt = 1 + rng.next() % 9;
                    w.txn(|tx| {
                        let scratch = tx.alloc(8)?;
                        tx.write(&S_SCRATCH, scratch, amt)?;
                        let a = tx.read(&S_SCRATCH, scratch)?;
                        let f = tx.read(&S_ACCT, base.word(from))?;
                        tx.write(&S_ACCT, base.word(from), f.wrapping_sub(a))?;
                        let v = tx.read(&S_ACCT, base.word(to))?;
                        tx.write(&S_ACCT, base.word(to), v + a)?;
                        tx.free(scratch);
                        Ok(())
                    });
                }
            });
        }
    });
    let total: u64 = (0..ACCOUNTS).map(|i| rt.mem().load(base.word(i))).sum();
    assert_eq!(total, ACCOUNTS * SEED_BALANCE, "transfers lost money");
    rt.collect_stats()
}

/// Long reader vs. short writers: thread 0 repeatedly scans the whole
/// table read-only (its validation keeps failing while writers churn);
/// the rest hammer single-word updates. The reader finishing all its
/// scans with consistent sums *is* the liveness property — under a plain
/// backoff CM this shape can starve the reader indefinitely.
fn run_long_reader(cfg: &TxConfig, threads: usize, scans: usize) -> stm::TxStats {
    const WORDS: u64 = 32;
    const WRITES: usize = 600;
    let rt = StmRuntime::new(mem_cfg(threads), *cfg);
    let base = rt.alloc_global(WORDS * 8);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let start = std::sync::Barrier::new(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (rt, start, stop) = (&rt, &start, &stop);
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                start.wait();
                if t == 0 {
                    for _ in 0..scans {
                        // A full-table scan sees either a consistent
                        // snapshot or nothing: every word is bumped by +1
                        // per writer txn in balanced pairs, so any torn
                        // read breaks the parity check below.
                        let (sum, first) = w.txn(|tx| {
                            let mut acc = 0u64;
                            for i in 0..WORDS {
                                acc = acc.wrapping_add(tx.read(&S_HOT, base.word(i))?);
                            }
                            let first = tx.read(&S_HOT, base.word(0))?;
                            Ok((acc, first))
                        });
                        assert!(sum >= first, "scan saw torn state");
                    }
                    stop.store(true, std::sync::atomic::Ordering::Release);
                } else {
                    let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (t as u64 + 1));
                    let mut n = 0usize;
                    // Keep churning until the reader finishes (bounded by
                    // a floor so writer stats are non-trivial even if the
                    // reader is fast).
                    while n < WRITES || !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let word = rng.next() % WORDS;
                        w.txn(|tx| {
                            let v = tx.read(&S_HOT, base.word(word))?;
                            tx.write(&S_HOT, base.word(word), v + 1)?;
                            Ok(())
                        });
                        n += 1;
                    }
                }
            });
        }
    });
    rt.collect_stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Hot words under chaos: random seeds and injection periods, exact
    // sums, and a worst-case retry chain bounded by the ladder argument.
    #[test]
    fn chaotic_hot_words_stay_live(seed in 1u64..u64::MAX, period in 2u64..6) {
        let cfg = adaptive_cfg(Some(ChaosPlan::all(seed, period)));
        let stats = run_hot_words(&cfg, 4, 150, 2);
        prop_assert!(stats.chaos_injections > 0, "chaos must actually fire: {stats:?}");
        prop_assert!(
            stats.attempts_max <= attempt_bound(&cfg, 4),
            "retry chain exceeded the liveness bound: {stats:?}"
        );
    }

    // Skewed transfers under chaos: conservation plus the liveness bound.
    #[test]
    fn chaotic_skewed_transfers_stay_live(seed in 1u64..u64::MAX, period in 2u64..6) {
        let cfg = adaptive_cfg(Some(ChaosPlan::all(seed, period)));
        let stats = run_skewed_transfers(&cfg, 4, 120);
        prop_assert!(
            stats.attempts_max <= attempt_bound(&cfg, 4),
            "retry chain exceeded the liveness bound: {stats:?}"
        );
    }

    // The starvation-prone shape: the long reader must complete all scans
    // within the bound even with commit-point chaos favoring the writers.
    #[test]
    fn chaotic_long_reader_is_not_starved(seed in 1u64..u64::MAX, period in 2u64..6) {
        let cfg = adaptive_cfg(Some(ChaosPlan::commit_only(seed, period)));
        let stats = run_long_reader(&cfg, 4, 25);
        prop_assert!(
            stats.attempts_max <= attempt_bound(&cfg, 4),
            "a transaction starved past the liveness bound: {stats:?}"
        );
        prop_assert!(stats.commits_ro > 0, "scans must commit read-only: {stats:?}");
    }
}

/// A preemption-heavy chaos profile for tests that *assert* conflicts
/// happen. On a single-core host the OS runs threads to completion far
/// more often than not, so uninstrumented hot-word loops can finish with
/// zero aborts; frequent injected sleeps and yields force mid-transaction
/// preemption regardless of core count, making the conflict assertions
/// deterministic instead of schedule-lucky.
fn preemptive_chaos(seed: u64) -> ChaosPlan {
    ChaosPlan {
        yield_share: 40,
        preempt_share: 30,
        preempt_us: 50,
        ..ChaosPlan::all(seed, 2)
    }
}

/// The ladder's accounting identity, checked on a real contended run:
/// every rollback takes exactly one rung — a backoff wait or a successful
/// token acquisition — never both, never neither.
#[test]
fn ladder_accounts_for_every_abort() {
    let cfg = adaptive_cfg(Some(preemptive_chaos(0xBADC_0FFE)));
    let stats = run_hot_words(&cfg, 4, 400, 1);
    assert!(stats.aborts > 0, "one hot word must conflict: {stats:?}");
    assert_eq!(
        stats.aborts,
        stats.backoff_waits + stats.cm_serializations,
        "ladder accounting broken: {stats:?}"
    );
}

/// Semantic-footprint differential: single-threaded, a fixed op script
/// must produce bit-identical memory and identical redacted statistics
/// under Backoff vs. Adaptive, chaos off vs. on. The contention manager
/// and the chaos hooks may only ever *delay* execution.
#[test]
fn policy_and_chaos_have_no_semantic_footprint() {
    fn run_script(policy: ContentionPolicy, chaos: Option<ChaosPlan>) -> (Vec<u64>, String) {
        const WORDS: u64 = 8;
        let mut b = TxConfig::builder()
            .mode(Mode::Runtime {
                log: LogKind::Array,
                scope: CheckScope::FULL,
            })
            .contention_policy(policy);
        if let Some(plan) = chaos {
            b = b.chaos(plan);
        }
        let rt = StmRuntime::new(mem_cfg(1), b.build().unwrap());
        let base = rt.alloc_global(WORDS * 8);
        let mut w = rt.spawn_worker();
        let mut rng = Rng(0xD6E8_FEB8_6659_FD93);
        for _ in 0..60 {
            let i = rng.next() % WORDS;
            let j = rng.next() % WORDS;
            w.txn(|tx| {
                let scratch = tx.alloc(8)?;
                tx.write(&S_SCRATCH, scratch, i + 1)?;
                let v = tx.read(&S_HOT, base.word(i))?;
                let s = tx.read(&S_SCRATCH, scratch)?;
                tx.write(&S_HOT, base.word(j), v ^ s)?;
                tx.free(scratch);
                Ok(())
            });
        }
        drop(w);
        let mem: Vec<u64> = (0..WORDS).map(|k| rt.mem().load(base.word(k))).collect();
        let stats = common::redacted_debug(&rt.collect_stats(), &[common::Redact::Contention]);
        (mem, stats)
    }

    let baseline = run_script(ContentionPolicy::Backoff, None);
    for (label, got) in [
        ("adaptive", run_script(ContentionPolicy::Adaptive, None)),
        (
            "backoff+chaos",
            run_script(ContentionPolicy::Backoff, Some(ChaosPlan::all(11, 3))),
        ),
        (
            "adaptive+chaos",
            run_script(ContentionPolicy::Adaptive, Some(ChaosPlan::all(11, 3))),
        ),
    ] {
        assert_eq!(got.0, baseline.0, "{label}: memory diverged from backoff");
        assert_eq!(got.1, baseline.1, "{label}: stats diverged from backoff");
    }
}

/// Regression: a nested child that writes a word the parent already read,
/// then user-aborts, must not poison the parent's read set. The
/// anti-ABA rule releases the child's locks at a *fresh* clock ticket; if
/// the surviving parent read entries for those orecs are not re-stamped
/// to the republished version, version-equality validation rejects them
/// on every subsequent attempt — a deterministic single-thread
/// self-livelock (the retry replays the identical nested abort). The
/// batch-window variant lives in `batch_tests`; this covers the plain
/// `nested()` path through `partial_rollback`.
#[test]
fn nested_partial_abort_does_not_poison_parent_reads() {
    for log in LogKind::ALL {
        let cfg = TxConfig::builder()
            .mode(Mode::Runtime {
                log,
                scope: CheckScope::FULL,
            })
            .build()
            .unwrap();
        let rt = StmRuntime::new(mem_cfg(1), cfg);
        let a = rt.alloc_global(8);
        let mut w = rt.spawn_worker();
        w.txn(|tx| {
            let v = tx.read(&S_HOT, a)?;
            let child = tx.nested(|t| {
                t.write(&S_HOT, a, 999)?;
                Err::<(), _>(Abort::User(1))
            })?;
            assert_eq!(child, Err(1), "user abort must surface as Err(code)");
            tx.write(&S_HOT, a, v + 1)?;
            Ok(())
        });
        drop(w);
        assert_eq!(rt.mem().load(a), 1, "{log:?}: child write must be undone");
        let stats = rt.collect_stats();
        assert_eq!(stats.commits, 1, "{log:?}: {stats:?}");
        assert_eq!(stats.partial_aborts, 1, "{log:?}: {stats:?}");
        assert_eq!(
            stats.aborts, 0,
            "a single thread must never conflict with itself ({log:?}): {stats:?}"
        );
    }
}

/// Satellite: the 8-thread hot-word starvation stress, for every capture
/// log kind × nursery on/off. Thresholds are floored so the serialization
/// token *must* engage; the fixed-sum invariant proves the token holder's
/// solo run and the drained waiters never lose an update.
fn run_starvation(log: LogKind, nursery: bool) {
    const THREADS: usize = 8;
    const INCRS: usize = 400;
    let cfg = TxConfig::builder()
        .mode(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        })
        .nursery(nursery)
        .contention_policy(ContentionPolicy::Adaptive)
        .spin_tries(2)
        .karma_threshold(1)
        .serialize_threshold(2)
        .chaos(preemptive_chaos(
            0x5EED ^ (nursery as u64) << 8 ^ log as u64,
        ))
        .build()
        .unwrap();
    let rt = StmRuntime::new(mem_cfg(THREADS), cfg);
    let hot = rt.alloc_global(8);
    let start = std::sync::Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (rt, start) = (&rt, &start);
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                start.wait();
                for k in 0..INCRS {
                    w.txn(|tx| {
                        // A nursery-eligible scratch allocation per txn
                        // keeps the capture log in play on the abort path.
                        let scratch = tx.alloc(8)?;
                        tx.write(&S_SCRATCH, scratch, (t * INCRS + k) as u64)?;
                        let v = tx.read(&S_HOT, hot)?;
                        tx.write(&S_HOT, hot, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    assert_eq!(
        rt.mem().load(hot),
        (THREADS * INCRS) as u64,
        "token serialization lost increments ({log:?}, nursery={nursery})"
    );
    let stats = rt.collect_stats();
    assert!(
        stats.aborts > 0,
        "8 threads on one word must conflict: {stats:?}"
    );
    assert!(
        stats.cm_serializations > 0,
        "serialize_threshold=2 under chronic conflict must engage the \
         token ({log:?}, nursery={nursery}): {stats:?}"
    );
    assert!(
        stats.attempts_max <= attempt_bound(&cfg, THREADS),
        "starvation bound violated ({log:?}, nursery={nursery}): {stats:?}"
    );
    if nursery {
        assert!(stats.nursery_hits > 0, "nursery must engage: {stats:?}");
    }
}

#[test]
fn starvation_stress_all_log_kinds() {
    for log in LogKind::ALL {
        run_starvation(log, false);
        run_starvation(log, true);
    }
}
