//! Differential property test for the typed object layer: the same random
//! operation sequence executed once through the **typed API**
//! (`alloc_obj`/`read_field`/`write_field`/`StackFrame`) and once through
//! the **raw word API** (`alloc`/`read`/`write`/`stack_push`) must produce
//! **bit-identical memory states and `TxStats`**, for every barrier
//! [`Mode`] × nursery on/off.
//!
//! This is the semantic half of the typed layer's zero-cost contract (the
//! performance half is the typed-vs-raw row of the `barrier_dispatch`
//! microbenchmark): the typed entry points must lower to exactly the word
//! barriers the raw code calls — same addresses, same bits, same
//! statistics counters — with the value codecs (`f64` bits, canonical
//! bools, enum discriminants, pointer words) losing nothing.
//!
//! Both executions run on their own runtime with the same configuration
//! and one worker, so allocation and stack addresses are deterministic
//! and pointer-valued fields can be compared bit-for-bit.

mod common;

use proptest::prelude::*;
use stm::{
    tx_object, tx_word_enum, Abort, CheckScope, LogKind, Mode, Site, StmRuntime, Tx, TxConfig,
    TxPtr, TxResult, TxWord,
};
use txmem::{Addr, MemConfig};

static S_SHARED: Site = Site::shared("typed_oracle.shared");
static S_CAP: Site = Site::captured_escaped("typed_oracle.captured");
static S_LOCAL: Site = Site::captured_local("typed_oracle.local");

const CELLS: u64 = 10;

tx_word_enum! {
    /// Three-state tag exercising the enum codec.
    pub enum Tag {
        /// initial
        New = 0,
        /// in flight
        Busy = 1,
        /// finished
        Done = 2,
    }
}

tx_object! {
    /// The five-field record both executors operate on. One field per
    /// codec family: plain word, bool, float, typed pointer, enum.
    pub struct Obj {
        /// Plain word.
        pub a: u64,
        /// Canonical-0/1 bool.
        pub flag: bool,
        /// Bit-cast float.
        pub weight: f64,
        /// Typed link to another record.
        pub link: TxPtr<Obj>,
        /// Enum discriminant.
        pub tag: Tag,
    }
}

tx_object! {
    /// Two-word stack frame for the `StackRound` op.
    pub struct Frame {
        /// Scratch word.
        pub x: u64,
        /// Scratch float.
        pub y: f64,
    }
}

/// Raw word offsets mirroring [`Obj`]'s layout (what the word-level
/// executor uses; must stay in declaration order).
const F_A: u64 = 0;
const F_FLAG: u64 = 1;
const F_WEIGHT: u64 = 2;
const F_LINK: u64 = 3;
const F_TAG: u64 = 4;
const OBJ_WORDS: u64 = 5;

#[derive(Clone, Debug)]
enum Op {
    /// Full-barrier write to a shared cell.
    WriteShared { cell: u8, val: u64 },
    /// Allocate a record (joins the live-scratch list) and set `a`.
    Alloc { seed: u64 },
    /// Write one field of a live record; `val` is reinterpreted per field
    /// (canonicalized identically in both executors).
    WriteField { idx: u8, field: u8, val: u64 },
    /// Link a live record to another live record (or null).
    WriteLink { idx: u8, target: u8 },
    /// Read one field of a live record and publish its word to a cell.
    ReadPublish { idx: u8, field: u8, cell: u8 },
    /// Free a live record in-transaction.
    Free { idx: u8 },
    /// Push a two-word stack frame, write/read it, publish, pop.
    StackRound { val: u64, cell: u8 },
}

#[derive(Clone, Debug)]
struct Txn {
    ops: Vec<Op>,
    nested: Vec<Op>,
    abort_nested: bool,
    commit: bool,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(cell, val)| Op::WriteShared { cell, val }),
        any::<u64>().prop_map(|seed| Op::Alloc { seed }),
        (any::<u8>(), 0..5u8, any::<u64>()).prop_map(|(idx, field, val)| Op::WriteField {
            idx,
            field,
            val
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(idx, target)| Op::WriteLink { idx, target }),
        (any::<u8>(), 0..5u8, any::<u8>()).prop_map(|(idx, field, cell)| Op::ReadPublish {
            idx,
            field,
            cell
        }),
        any::<u8>().prop_map(|idx| Op::Free { idx }),
        (any::<u64>(), any::<u8>()).prop_map(|(val, cell)| Op::StackRound { val, cell }),
    ]
}

fn script() -> impl Strategy<Value = Vec<Txn>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(op(), 1..8),
            proptest::collection::vec(op(), 0..4),
            any::<bool>(),
            prop_oneof![3 => Just(true), 1 => Just(false)],
        )
            .prop_map(|(ops, nested, abort_nested, commit)| Txn {
                ops,
                nested,
                abort_nested,
                commit,
            }),
        1..6,
    )
}

/// Canonical per-field encodings, shared by both executors so the raw
/// side stores exactly the bits the typed codecs produce.
fn canon_flag(val: u64) -> u64 {
    (val & 1 != 0) as u64
}
fn canon_tag(val: u64) -> u64 {
    val % 3
}

// ---------------------------------------------------------------------------
// Typed executor
// ---------------------------------------------------------------------------

fn run_ops_typed(
    tx: &mut Tx<'_, '_>,
    base: Addr,
    ops: &[Op],
    scratch: &mut Vec<TxPtr<Obj>>,
) -> TxResult<()> {
    for op in ops {
        match *op {
            Op::WriteShared { cell, val } => {
                tx.write_as(&S_SHARED, base.word(u64::from(cell) % CELLS), val)?;
            }
            Op::Alloc { seed } => {
                let p = tx.alloc_obj::<Obj>()?;
                tx.write_field(&S_LOCAL, p, Obj::a, seed)?;
                scratch.push(p);
            }
            Op::WriteField { idx, field, val } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch[idx as usize % scratch.len()];
                match field {
                    0 => tx.write_field(&S_CAP, p, Obj::a, val)?,
                    1 => tx.write_field(&S_CAP, p, Obj::flag, val & 1 != 0)?,
                    2 => tx.write_field(&S_CAP, p, Obj::weight, f64::from_bits(val))?,
                    3 => tx.write_field(&S_CAP, p, Obj::link, TxPtr::from_raw(p.raw()))?,
                    _ => tx.write_field(&S_CAP, p, Obj::tag, Tag::from_word(canon_tag(val)))?,
                }
            }
            Op::WriteLink { idx, target } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch[idx as usize % scratch.len()];
                // `target` selects a live record or (at len) the null ptr.
                let t = target as usize % (scratch.len() + 1);
                let q = scratch.get(t).copied().unwrap_or(TxPtr::NULL);
                tx.write_field(&S_CAP, p, Obj::link, q)?;
            }
            Op::ReadPublish { idx, field, cell } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch[idx as usize % scratch.len()];
                let word = match field {
                    0 => tx.read_field(&S_CAP, p, Obj::a)?.to_word(),
                    1 => tx.read_field(&S_CAP, p, Obj::flag)?.to_word(),
                    2 => tx.read_field(&S_CAP, p, Obj::weight)?.to_word(),
                    3 => tx.read_field(&S_CAP, p, Obj::link)?.to_word(),
                    _ => tx.read_field(&S_CAP, p, Obj::tag)?.to_word(),
                };
                tx.write_as(&S_SHARED, base.word(u64::from(cell) % CELLS), word)?;
            }
            Op::Free { idx } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch.remove(idx as usize % scratch.len());
                tx.free_obj(p);
            }
            Op::StackRound { val, cell } => {
                let mut frame = tx.stack_frame::<Frame>();
                frame.write(&S_CAP, Frame::x, val)?;
                frame.write(&S_CAP, Frame::y, f64::from_bits(val ^ 0xF00D))?;
                let x = frame.read(&S_CAP, Frame::x)?;
                let y = frame.read(&S_CAP, Frame::y)?;
                let tx = frame.tx();
                tx.write_as(
                    &S_SHARED,
                    base.word(u64::from(cell) % CELLS),
                    x ^ y.to_word(),
                )?;
                // frame drops here: RAII pop.
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Raw word-level executor (the oracle)
// ---------------------------------------------------------------------------

fn run_ops_raw(
    tx: &mut Tx<'_, '_>,
    base: Addr,
    ops: &[Op],
    scratch: &mut Vec<Addr>,
) -> TxResult<()> {
    for op in ops {
        match *op {
            Op::WriteShared { cell, val } => {
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), val)?;
            }
            Op::Alloc { seed } => {
                let p = tx.alloc(OBJ_WORDS * 8)?;
                tx.write(&S_LOCAL, p.word(F_A), seed)?;
                scratch.push(p);
            }
            Op::WriteField { idx, field, val } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch[idx as usize % scratch.len()];
                match field {
                    0 => tx.write(&S_CAP, p.word(F_A), val)?,
                    1 => tx.write(&S_CAP, p.word(F_FLAG), canon_flag(val))?,
                    2 => tx.write(&S_CAP, p.word(F_WEIGHT), val)?,
                    3 => tx.write(&S_CAP, p.word(F_LINK), p.raw())?,
                    _ => tx.write(&S_CAP, p.word(F_TAG), canon_tag(val))?,
                }
            }
            Op::WriteLink { idx, target } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch[idx as usize % scratch.len()];
                let t = target as usize % (scratch.len() + 1);
                let q = scratch.get(t).copied().unwrap_or(txmem::NULL);
                tx.write(&S_CAP, p.word(F_LINK), q.raw())?;
            }
            Op::ReadPublish { idx, field, cell } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch[idx as usize % scratch.len()];
                let off = match field {
                    0 => F_A,
                    1 => F_FLAG,
                    2 => F_WEIGHT,
                    3 => F_LINK,
                    _ => F_TAG,
                };
                let word = tx.read(&S_CAP, p.word(off))?;
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), word)?;
            }
            Op::Free { idx } => {
                if scratch.is_empty() {
                    continue;
                }
                let p = scratch.remove(idx as usize % scratch.len());
                tx.free(p);
            }
            Op::StackRound { val, cell } => {
                let f = tx.stack_push(2);
                tx.write(&S_CAP, f.word(0), val)?;
                tx.write(&S_CAP, f.word(1), val ^ 0xF00D)?;
                let x = tx.read(&S_CAP, f.word(0))?;
                let y = tx.read(&S_CAP, f.word(1))?;
                tx.write(&S_SHARED, base.word(u64::from(cell) % CELLS), x ^ y)?;
                tx.stack_pop(2);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Execute the whole script under one configuration through one of the
/// two executors; return the observable memory (shared cells + every
/// committed record) and the formatted statistics.
fn run(script: &[Txn], mode: Mode, nursery: bool, typed: bool) -> (Vec<u64>, String) {
    let mut cfg = TxConfig::with_mode(mode);
    cfg.orec_log2 = 12; // small orec table; single-threaded test
    cfg.nursery = nursery;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let base = rt.alloc_global(CELLS * 8);
    let mut w = rt.spawn_worker();
    // Both executors track live records as raw addresses at the harness
    // level so commit bookkeeping is shared; the typed one converts.
    let mut persisted: Vec<Addr> = Vec::new();

    for t in script {
        let mut committed: Vec<Addr> = Vec::new();
        let r: Result<(), u64> = w.txn_result(|tx| {
            let survivors: Vec<Addr> = if typed {
                let mut scratch: Vec<TxPtr<Obj>> = Vec::new();
                run_ops_typed(tx, base, &t.ops, &mut scratch)?;
                if !t.nested.is_empty() || t.abort_nested {
                    let checkpoint = scratch.len();
                    let abort_nested = t.abort_nested;
                    let nested_ops = &t.nested;
                    let res = tx.nested(|ntx| {
                        run_ops_typed(ntx, base, nested_ops, &mut scratch)?;
                        if abort_nested {
                            Err(Abort::User(9))
                        } else {
                            Ok(())
                        }
                    })?;
                    if res.is_err() {
                        // Partial abort deallocated the nested records.
                        scratch.truncate(checkpoint);
                    }
                }
                scratch.iter().map(|p| p.addr()).collect()
            } else {
                let mut scratch: Vec<Addr> = Vec::new();
                run_ops_raw(tx, base, &t.ops, &mut scratch)?;
                if !t.nested.is_empty() || t.abort_nested {
                    let checkpoint = scratch.len();
                    let abort_nested = t.abort_nested;
                    let nested_ops = &t.nested;
                    let res = tx.nested(|ntx| {
                        run_ops_raw(ntx, base, nested_ops, &mut scratch)?;
                        if abort_nested {
                            Err(Abort::User(9))
                        } else {
                            Ok(())
                        }
                    })?;
                    if res.is_err() {
                        scratch.truncate(checkpoint);
                    }
                }
                scratch
            };
            committed.clear();
            committed.extend_from_slice(&survivors);
            if t.commit {
                Ok(())
            } else {
                Err(Abort::User(1))
            }
        });
        if r.is_ok() {
            persisted.extend_from_slice(&committed);
        }
    }

    let mut mem: Vec<u64> = (0..CELLS).map(|i| w.load(base.word(i))).collect();
    for &p in &persisted {
        for i in 0..OBJ_WORDS {
            mem.push(w.load(p.word(i)));
        }
    }
    let stats = common::redacted_debug(&w.stats, &[common::Redact::Contention]);
    (mem, stats)
}

/// Every (mode, nursery) pair: all four barrier modes, with the runtime
/// mode additionally spanning its three allocation logs and nursery
/// on/off (the nursery only composes with runtime capture analysis).
fn all_configs() -> Vec<(Mode, bool)> {
    let mut v = vec![
        (Mode::Baseline, false),
        (Mode::Compiler, false),
        (Mode::CompilerInterproc, false),
    ];
    for log in LogKind::ALL {
        let mode = Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        };
        v.push((mode, false));
        v.push((mode, true));
    }
    // One reduced scope, to pin the codec paths under partial checking.
    let writes_heap = Mode::Runtime {
        log: LogKind::Tree,
        scope: CheckScope::WRITES_HEAP,
    };
    v.push((writes_heap, false));
    v.push((writes_heap, true));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn typed_and_raw_apis_agree(script in script()) {
        for (mode, nursery) in all_configs() {
            let (mem_typed, stats_typed) = run(&script, mode, nursery, true);
            let (mem_raw, stats_raw) = run(&script, mode, nursery, false);
            prop_assert_eq!(
                &mem_typed, &mem_raw,
                "memory diverged under {:?} nursery={}", mode, nursery
            );
            prop_assert_eq!(
                &stats_typed, &stats_raw,
                "stats diverged under {:?} nursery={}", mode, nursery
            );
        }
    }
}

/// Deterministic all-ops case: every op kind, a nested abort, and a
/// top-level abort, so the property above cannot pass vacuously on thin
/// random scripts.
#[test]
fn deterministic_all_transitions_agree() {
    let script = vec![
        Txn {
            ops: vec![
                Op::Alloc { seed: 1 },
                Op::Alloc { seed: 2 },
                Op::WriteField {
                    idx: 0,
                    field: 1,
                    val: 3,
                },
                Op::WriteField {
                    idx: 0,
                    field: 2,
                    val: f64::to_bits(2.5),
                },
                Op::WriteField {
                    idx: 1,
                    field: 4,
                    val: 7,
                },
                Op::WriteLink { idx: 0, target: 1 },
                Op::ReadPublish {
                    idx: 0,
                    field: 2,
                    cell: 0,
                },
                Op::ReadPublish {
                    idx: 0,
                    field: 3,
                    cell: 1,
                },
                Op::StackRound { val: 77, cell: 2 },
                Op::Free { idx: 1 },
            ],
            nested: vec![Op::Alloc { seed: 9 }, Op::WriteShared { cell: 3, val: 4 }],
            abort_nested: true,
            commit: true,
        },
        Txn {
            ops: vec![Op::Alloc { seed: 5 }, Op::WriteShared { cell: 4, val: 6 }],
            nested: vec![],
            abort_nested: false,
            commit: false,
        },
    ];
    for (mode, nursery) in all_configs() {
        let (mem_typed, stats_typed) = run(&script, mode, nursery, true);
        let (mem_raw, stats_raw) = run(&script, mode, nursery, false);
        assert_eq!(
            mem_typed, mem_raw,
            "memory diverged under {mode:?} nursery={nursery}"
        );
        assert_eq!(
            stats_typed, stats_raw,
            "stats diverged under {mode:?} nursery={nursery}"
        );
    }
    // The committed record's fields must carry the canonical encodings.
    let (mem, _) = run(&script, Mode::Baseline, false, true);
    let obj = &mem[CELLS as usize..];
    assert_eq!(obj[F_A as usize], 1, "seed");
    assert_eq!(obj[F_FLAG as usize], 1, "canonical bool");
    assert_eq!(obj[F_WEIGHT as usize], f64::to_bits(2.5));
    assert_eq!(mem[0], f64::to_bits(2.5), "published weight bits");
}
