//! Property-based tests of the STM: arbitrary single-threaded transaction
//! sequences must behave exactly like a sequential model, in every barrier
//! mode — elision (runtime or static) must never change semantics, user
//! aborts must roll back perfectly, and nesting must compose.

use proptest::prelude::*;
use stm::{Abort, CheckScope, LogKind, Mode, Site, StmRuntime, TxConfig};
use txmem::MemConfig;

static S: Site = Site::shared("prop.shared");
static S_ESC: Site = Site::captured_escaped("prop.captured");

const CELLS: u64 = 16;

#[derive(Clone, Debug)]
enum TxOp {
    /// Write `val` to shared cell `i`.
    Write { cell: u8, val: u64 },
    /// Read cell `i` and write it into cell `j` (dataflow).
    Copy { from: u8, to: u8 },
    /// Allocate a scratch block, write through it into a cell.
    ScratchWrite { cell: u8, val: u64 },
    /// Add `k` to cell `i`.
    Add { cell: u8, k: u64 },
}

#[derive(Clone, Debug)]
enum TxEnd {
    Commit,
    UserAbort,
}

fn txop() -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(cell, val)| TxOp::Write { cell, val }),
        (any::<u8>(), any::<u8>()).prop_map(|(from, to)| TxOp::Copy { from, to }),
        (any::<u8>(), any::<u64>()).prop_map(|(cell, val)| TxOp::ScratchWrite { cell, val }),
        (any::<u8>(), 0..1000u64).prop_map(|(cell, k)| TxOp::Add { cell, k }),
    ]
}

fn txn_script() -> impl Strategy<Value = Vec<(Vec<TxOp>, TxEnd)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(txop(), 1..8),
            prop_oneof![
                3 => Just(TxEnd::Commit),
                1 => Just(TxEnd::UserAbort),
            ],
        ),
        1..12,
    )
}

fn apply_model(model: &mut [u64], op: &TxOp) {
    match *op {
        TxOp::Write { cell, val } => model[(cell as u64 % CELLS) as usize] = val,
        TxOp::Copy { from, to } => {
            model[(to as u64 % CELLS) as usize] = model[(from as u64 % CELLS) as usize]
        }
        TxOp::ScratchWrite { cell, val } => model[(cell as u64 % CELLS) as usize] = val ^ 0xABCD,
        TxOp::Add { cell, k } => {
            let c = (cell as u64 % CELLS) as usize;
            model[c] = model[c].wrapping_add(k);
        }
    }
}

fn all_modes() -> Vec<Mode> {
    let mut v = vec![Mode::Baseline, Mode::Compiler];
    for log in LogKind::ALL {
        v.push(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        });
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_transactions_match_model_in_every_mode(script in txn_script()) {
        for mode in all_modes() {
            let rt = StmRuntime::new(MemConfig::small(), TxConfig::with_mode(mode));
            let base = rt.alloc_global(CELLS * 8);
            let mut w = rt.spawn_worker();
            let mut model = vec![0u64; CELLS as usize];

            for (ops, end) in &script {
                let committed = matches!(end, TxEnd::Commit);
                let r: Result<(), u64> = w.txn_result(|tx| {
                    for op in ops {
                        match *op {
                            TxOp::Write { cell, val } => {
                                tx.write(&S, base.word(cell as u64 % CELLS), val)?;
                            }
                            TxOp::Copy { from, to } => {
                                let v = tx.read(&S, base.word(from as u64 % CELLS))?;
                                tx.write(&S, base.word(to as u64 % CELLS), v)?;
                            }
                            TxOp::ScratchWrite { cell, val } => {
                                // Route the value through captured memory so
                                // elision paths are exercised.
                                let scratch = tx.alloc(16)?;
                                tx.write(&S_ESC, scratch, val)?;
                                let v = tx.read(&S_ESC, scratch)?;
                                tx.write(&S, base.word(cell as u64 % CELLS), v ^ 0xABCD)?;
                                tx.free(scratch);
                            }
                            TxOp::Add { cell, k } => {
                                let a = base.word(cell as u64 % CELLS);
                                let v = tx.read(&S, a)?;
                                tx.write(&S, a, v.wrapping_add(k))?;
                            }
                        }
                    }
                    if committed { Ok(()) } else { Err(Abort::User(1)) }
                });
                prop_assert_eq!(r.is_ok(), committed);
                if committed {
                    for op in ops {
                        apply_model(&mut model, op);
                    }
                }
                // After every transaction, memory matches the model.
                for i in 0..CELLS {
                    prop_assert_eq!(
                        w.load(base.word(i)), model[i as usize],
                        "cell {} diverged under {:?}", i, mode
                    );
                }
            }
        }
    }

    #[test]
    fn nested_partial_abort_is_exact(outer in proptest::collection::vec(txop(), 1..5),
                                     inner in proptest::collection::vec(txop(), 1..5),
                                     abort_inner in any::<bool>()) {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let base = rt.alloc_global(CELLS * 8);
        let mut w = rt.spawn_worker();
        let mut model = vec![0u64; CELLS as usize];

        let outer_c = outer.clone();
        let inner_c = inner.clone();
        w.txn(|tx| {
            for op in &outer_c {
                exec_op(tx, base, op)?;
            }
            let r: Result<(), u64> = tx.nested(|tx| {
                for op in &inner_c {
                    exec_op(tx, base, op)?;
                }
                if abort_inner { Err(Abort::User(7)) } else { Ok(()) }
            })?;
            assert_eq!(r.is_err(), abort_inner);
            Ok(())
        });
        for op in &outer {
            apply_model(&mut model, op);
        }
        if !abort_inner {
            for op in &inner {
                apply_model(&mut model, op);
            }
        }
        for i in 0..CELLS {
            prop_assert_eq!(w.load(base.word(i)), model[i as usize], "cell {}", i);
        }
    }

    #[test]
    fn heap_is_balanced_after_any_script(script in txn_script()) {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let base = rt.alloc_global(CELLS * 8);
        let before = rt.heap().bytes_allocated();
        let mut w = rt.spawn_worker();
        for (ops, end) in &script {
            let committed = matches!(end, TxEnd::Commit);
            let _ : Result<(), u64> = w.txn_result(|tx| {
                for op in ops {
                    exec_op(tx, base, op)?;
                }
                if committed { Ok(()) } else { Err(Abort::User(1)) }
            });
        }
        // Every scratch block is freed in-transaction (commit) or undone
        // (abort): live bytes must return to the pre-script level.
        prop_assert_eq!(rt.heap().bytes_allocated(), before);
    }
}

fn exec_op(tx: &mut stm::Tx<'_, '_>, base: txmem::Addr, op: &TxOp) -> stm::TxResult<()> {
    match *op {
        TxOp::Write { cell, val } => tx.write(&S, base.word(cell as u64 % CELLS), val),
        TxOp::Copy { from, to } => {
            let v = tx.read(&S, base.word(from as u64 % CELLS))?;
            tx.write(&S, base.word(to as u64 % CELLS), v)
        }
        TxOp::ScratchWrite { cell, val } => {
            let scratch = tx.alloc(16)?;
            tx.write(&S_ESC, scratch, val)?;
            let v = tx.read(&S_ESC, scratch)?;
            tx.write(&S, base.word(cell as u64 % CELLS), v ^ 0xABCD)?;
            tx.free(scratch);
            Ok(())
        }
        TxOp::Add { cell, k } => {
            let a = base.word(cell as u64 % CELLS);
            let v = tx.read(&S, a)?;
            tx.write(&S, a, v.wrapping_add(k))
        }
    }
}
