//! Microbenchmarks of barrier costs — the quantities behind the paper's
//! §2.2 claims (an STM barrier costs ~10+ instructions vs. a plain access)
//! and §3.1's runtime-check overhead discussion: how much a capture *hit*
//! saves, and how much a capture *miss* adds to a full barrier.

use criterion::{criterion_group, criterion_main, Criterion};
use stm::{CheckScope, LogKind, Mode, Site, StmRuntime, TxConfig};
use txmem::MemConfig;

static S: Site = Site::shared("bench.shared");
static S_ESC: Site = Site::captured_escaped("bench.captured");

const N: u64 = 256;

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("barriers");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1000));

    // Baseline full barriers on shared memory.
    {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let buf = rt.alloc_global(N * 8);
        let mut w = rt.spawn_worker();
        g.bench_function("read_full_shared", |b| {
            b.iter(|| {
                w.txn(|tx| {
                    let mut acc = 0u64;
                    for i in 0..N {
                        acc = acc.wrapping_add(tx.read(&S, buf.word(i))?);
                    }
                    Ok(acc)
                })
            })
        });
        g.bench_function("write_full_shared", |b| {
            b.iter(|| {
                w.txn(|tx| {
                    for i in 0..N {
                        tx.write(&S, buf.word(i), i)?;
                    }
                    Ok(())
                })
            })
        });
    }

    // Plain loads for scale (what elision buys in the limit).
    {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::default());
        let buf = rt.alloc_global(N * 8);
        let w = rt.spawn_worker();
        g.bench_function("read_plain", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..N {
                    acc = acc.wrapping_add(w.load(buf.word(i)));
                }
                acc
            })
        });
    }

    // Capture hits: accesses to a block allocated in the transaction.
    for log in LogKind::ALL {
        let rt = StmRuntime::new(
            MemConfig::small(),
            TxConfig::with_mode(Mode::Runtime {
                log,
                scope: CheckScope::FULL,
            }),
        );
        let mut w = rt.spawn_worker();
        g.bench_function(format!("write_captured_hit/{}", log.name()), |b| {
            b.iter(|| {
                w.txn(|tx| {
                    let p = tx.alloc(N * 8)?;
                    for i in 0..N {
                        tx.write(&S_ESC, p.word(i), i)?;
                    }
                    tx.free(p);
                    Ok(())
                })
            })
        });
    }

    // Capture misses: runtime checks that fail before the full barrier —
    // the added overhead the paper measures via kmeans.
    for log in LogKind::ALL {
        let rt = StmRuntime::new(
            MemConfig::small(),
            TxConfig::with_mode(Mode::Runtime {
                log,
                scope: CheckScope::FULL,
            }),
        );
        let buf = rt.alloc_global(N * 8);
        let mut w = rt.spawn_worker();
        g.bench_function(format!("write_capture_miss/{}", log.name()), |b| {
            b.iter(|| {
                w.txn(|tx| {
                    // One live allocation so the log is non-empty.
                    let p = tx.alloc(64)?;
                    tx.write(&S_ESC, p, 0)?;
                    for i in 0..N {
                        tx.write(&S, buf.word(i), i)?;
                    }
                    tx.free(p); // keep the simulated heap balanced
                    Ok(())
                })
            })
        });
    }

    // Stack capture hit: the cheapest check of all (one range compare).
    {
        let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full());
        let mut w = rt.spawn_worker();
        g.bench_function("write_captured_hit/stack", |b| {
            b.iter(|| {
                w.txn(|tx| {
                    let f = tx.stack_push(N as usize);
                    for i in 0..N {
                        tx.write(&S_ESC, f.word(i), i)?;
                    }
                    tx.stack_pop(N as usize);
                    Ok(())
                })
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
