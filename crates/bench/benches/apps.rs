//! End-to-end application benchmarks: every STAMP port at test scale under
//! baseline / runtime-tree / compiler configurations. These are the
//! criterion-tracked counterparts of the paper's Figure 10 series; the
//! `expt` binary produces the full figure/table reproductions.

use criterion::{criterion_group, criterion_main, Criterion};
use stamp::{Benchmark, Scale};
use stm::{CheckScope, LogKind, Mode, TxConfig};

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));

    let configs: Vec<(&str, TxConfig)> = vec![
        ("baseline", TxConfig::with_mode(Mode::Baseline)),
        (
            "runtime-tree",
            TxConfig::with_mode(Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL,
            }),
        ),
        ("compiler", TxConfig::with_mode(Mode::Compiler)),
    ];

    for b in Benchmark::ALL {
        for (name, cfg) in &configs {
            let cfg = *cfg;
            g.bench_function(
                format!("{}/{}", b.name().replace(' ', "_"), name),
                |bench| {
                    bench.iter(|| {
                        let out = b.run(Scale::Test, cfg, 1);
                        assert!(out.verified);
                        out.stats.commits
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
