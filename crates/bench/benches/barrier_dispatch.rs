//! `cargo bench` entry point for the dispatch microbenchmark; the same
//! measurement backs `expt barriers` and the `BENCH_barriers.json` report.

fn main() {
    print!(
        "{}",
        bench_support::micro::barrier_dispatch_markdown(&bench_support::micro::MicroOpts::default())
    );
}
