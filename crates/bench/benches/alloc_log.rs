//! Microbenchmarks of the three allocation-log data structures (paper
//! §3.1.2) plus the nursery bump-region classifier: insert cost, hit
//! cost, and — crucial for barriers that gain nothing — miss cost, as a
//! function of how many blocks the transaction has allocated.

use capture::{LogImpl, LogKind, NurseryLog};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_alloc_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_log");
    g.sample_size(30);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(700));

    for kind in LogKind::ALL {
        for &n in &[1usize, 4, 16, 64] {
            // Insert + clear cycle (what a transaction with n allocations
            // pays in logging).
            g.bench_with_input(
                BenchmarkId::new(format!("insert_{}", kind.name()), n),
                &n,
                |b, &n| {
                    let mut log = LogImpl::new(kind);
                    b.iter(|| {
                        for i in 0..n as u64 {
                            log.insert(0x10000 + i * 256, 64, 1);
                        }
                        log.clear();
                    })
                },
            );

            // Query hit on a populated log.
            g.bench_with_input(
                BenchmarkId::new(format!("hit_{}", kind.name()), n),
                &n,
                |b, &n| {
                    let mut log = LogImpl::new(kind);
                    for i in 0..n as u64 {
                        log.insert(0x10000 + i * 256, 64, 1);
                    }
                    let probe = 0x10000 + (n as u64 / 2) * 256 + 32;
                    b.iter(|| log.query(probe))
                },
            );

            // Query miss (the cost added to every non-elidable barrier).
            g.bench_with_input(
                BenchmarkId::new(format!("miss_{}", kind.name()), n),
                &n,
                |b, &n| {
                    let mut log = LogImpl::new(kind);
                    for i in 0..n as u64 {
                        log.insert(0x10000 + i * 256, 64, 1);
                    }
                    b.iter(|| log.query(0xdead_0000))
                },
            );
        }
    }
    // The nursery rows: unlike the logs above, "insert" is a bump (no
    // per-word marking, no tree rebalance) and classification is the
    // two-compare scalar range test — block count cannot affect either.
    for &n in &[1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("insert_nursery", n), &n, |b, &n| {
            let mut nur = NurseryLog::new();
            b.iter(|| {
                nur.begin();
                nur.switch_region(0x10000, 1 << 20);
                for _ in 0..n {
                    std::hint::black_box(nur.try_alloc(64));
                }
            })
        });

        g.bench_with_input(BenchmarkId::new("hit_nursery", n), &n, |b, &n| {
            let mut nur = NurseryLog::new();
            nur.begin();
            nur.switch_region(0x10000, 1 << 20);
            for _ in 0..n {
                nur.try_alloc(64);
            }
            let probe = 0x10000 + (n as u64 / 2) * 64 + 32;
            b.iter(|| nur.classify(probe))
        });

        g.bench_with_input(BenchmarkId::new("miss_nursery", n), &n, |b, &n| {
            let mut nur = NurseryLog::new();
            nur.begin();
            nur.switch_region(0x10000, 1 << 20);
            for _ in 0..n {
                nur.try_alloc(64);
            }
            b.iter(|| nur.classify(0xdead_0000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alloc_log);
criterion_main!(benches);
