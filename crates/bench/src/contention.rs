//! The contention-management experiment (`expt contention`): throughput,
//! abort ratio, and starvation telemetry for the fixed backoff policy vs.
//! the adaptive escalation ladder, over three drivers that create the
//! conflict shapes the ladder was built for.
//!
//! - `hot-word` — every thread increments one shared word. The densest
//!   possible conflict graph: almost every attempt collides, so this is
//!   where backoff quality and the serialization token's worst-case
//!   bound show up first.
//! - `transfer-skew` — bank transfers over a small account array with a
//!   low-index skew (min of two uniform draws), the mixed regime: most
//!   transactions clash over a few hot accounts while a tail runs
//!   conflict-free.
//! - `long-reader` — one thread repeatedly sums the whole account array
//!   in a single transaction while the rest transfer. The scan is the
//!   classic chronic aborter: any concurrent commit invalidates it, and
//!   only karma patience or the serialization token gets it through.
//!
//! Both policy arms run under the *same* deterministic [`ChaosPlan`], so
//! conflicts materialize even on single-core hosts and the comparison is
//! fair: the policies face an identical schedule-perturbation stream.
//!
//! Emits `BENCH_contention.json` (committed snapshot, like
//! `BENCH_merge.json`) so future PRs that touch the abort path or the
//! contention ladder have a starvation trajectory to diff against.

use stamp::Scale;
use stm::{ChaosPlan, ContentionPolicy, Site, StmRuntime, TxConfig, TxStats};
use txmem::MemConfig;

use crate::report::{esc, scale_name};
use crate::skew::Rng;
use crate::{median, ExptOpts};

/// The drivers, in row order.
pub const DRIVERS: [&str; 3] = ["hot-word", "transfer-skew", "long-reader"];

/// The policy axis: the paper's fixed backoff first (it seeds the
/// speedup baseline), then the adaptive ladder.
pub const POLICIES: [ContentionPolicy; 2] = [ContentionPolicy::Backoff, ContentionPolicy::Adaptive];

/// Ladder tuning shared by every driver. Aggressive thresholds (vs. the
/// config defaults) so the karma and serialization tiers actually engage
/// at benchmark scale; [`starvation_gate`] checks the bound they imply.
pub const SERIALIZE_THRESHOLD: u64 = 10;
const KARMA_THRESHOLD: u64 = 3;
const SPIN_TRIES: u32 = 4;

static S_HOT: Site = Site::shared("cm.hot");
static S_ACCT: Site = Site::shared("cm.account");

const ACCOUNTS: u64 = 64;
const SEED_BALANCE: u64 = 1_000;

/// Transactions per thread per driver.
fn per_thread(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Small => 8_192,
        Scale::Full => 32_768,
    }
}

/// The shared chaos stream: moderate yield/preempt shares are enough to
/// force mid-transaction overlap (and therefore real conflicts) on
/// single-core hosts, without drowning the timing signal in sleeps.
fn chaos() -> ChaosPlan {
    ChaosPlan {
        yield_share: 40,
        preempt_share: 10,
        ..ChaosPlan::all(0xC0417E57, 4)
    }
}

fn cm_cfg(policy: ContentionPolicy) -> TxConfig {
    TxConfig::builder()
        .mode(stm::Mode::Runtime {
            log: stm::LogKind::Tree,
            scope: stm::CheckScope::FULL,
        })
        .contention_policy(policy)
        .spin_tries(SPIN_TRIES)
        .karma_threshold(KARMA_THRESHOLD)
        .serialize_threshold(SERIALIZE_THRESHOLD)
        .chaos(chaos())
        .build()
        .expect("bench contention config is statically valid")
}

fn new_rt(threads: usize, policy: ContentionPolicy) -> StmRuntime {
    StmRuntime::new(
        MemConfig {
            max_threads: threads + 1,
            stack_words: 1 << 10,
            heap_words: 1 << 16,
        },
        cm_cfg(policy),
    )
}

/// Post-run invariants shared by every driver: the ladder runs exactly
/// once per conflict rollback (it either waits or takes the token), and
/// the fixed policy never escalates.
fn check_ladder(policy: ContentionPolicy, stats: &TxStats) {
    assert_eq!(
        stats.aborts,
        stats.backoff_waits + stats.cm_serializations,
        "every abort backs off or serializes exactly once ({policy:?}): {stats:?}"
    );
    if policy == ContentionPolicy::Backoff {
        assert_eq!(
            stats.cm_serializations + stats.cm_karma_escalations,
            0,
            "the fixed policy must never escalate: {stats:?}"
        );
    }
}

/// One timed run of the hot-word driver; the final counter value is the
/// lost-update check.
fn hot_word_once(scale: Scale, policy: ContentionPolicy, threads: usize) -> (f64, TxStats) {
    let n = per_thread(scale);
    let rt = new_rt(threads, policy);
    let hot = rt.alloc_global(8);
    rt.reset_stats();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                for _ in 0..n {
                    w.txn(|tx| {
                        let v = tx.read(&S_HOT, hot)?;
                        tx.write(&S_HOT, hot, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        rt.mem().load(hot),
        (threads * n) as u64,
        "hot-word increments lost under {policy:?}"
    );
    let stats = rt.collect_stats();
    check_ladder(policy, &stats);
    (seconds, stats)
}

/// One timed run of the skewed-transfer driver; conservation of the
/// account sum is the correctness check. The skew (min of two uniform
/// draws) concentrates roughly half the traffic on the lowest-index
/// quarter of the accounts.
fn transfer_skew_once(scale: Scale, policy: ContentionPolicy, threads: usize) -> (f64, TxStats) {
    let n = per_thread(scale);
    let rt = new_rt(threads, policy);
    let base = rt.alloc_global(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.mem().store(base.word(i), SEED_BALANCE);
    }
    rt.reset_stats();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                for _ in 0..n {
                    let from = rng.skewed_below(ACCOUNTS);
                    let to = rng.below(ACCOUNTS);
                    let amt = 1 + rng.next_u64() % 9;
                    w.txn(|tx| {
                        let f = tx.read(&S_ACCT, base.word(from))?;
                        tx.write(&S_ACCT, base.word(from), f.wrapping_sub(amt))?;
                        let v = tx.read(&S_ACCT, base.word(to))?;
                        tx.write(&S_ACCT, base.word(to), v.wrapping_add(amt))?;
                        Ok(())
                    });
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let total: u64 = (0..ACCOUNTS).map(|i| rt.mem().load(base.word(i))).sum();
    assert_eq!(
        total,
        ACCOUNTS * SEED_BALANCE,
        "skewed transfers lost or duplicated money under {policy:?}"
    );
    let stats = rt.collect_stats();
    check_ladder(policy, &stats);
    (seconds, stats)
}

/// One timed run of the long-reader driver: `threads - 1` writers
/// transfer while one reader repeatedly sums all accounts in a single
/// transaction. Every scan that commits must observe the conserved sum.
fn long_reader_once(scale: Scale, policy: ContentionPolicy, threads: usize) -> (f64, TxStats) {
    let writers = threads.max(2) - 1;
    let n = per_thread(scale);
    let scans = n / 4;
    let rt = new_rt(writers + 1, policy);
    let base = rt.alloc_global(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.mem().store(base.word(i), SEED_BALANCE);
    }
    rt.reset_stats();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..writers {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0xDEADBEEFCAFE ^ (t as u64 + 1));
                for _ in 0..n {
                    let from = rng.next_u64() % ACCOUNTS;
                    let to = rng.next_u64() % ACCOUNTS;
                    let amt = 1 + rng.next_u64() % 9;
                    w.txn(|tx| {
                        let f = tx.read(&S_ACCT, base.word(from))?;
                        tx.write(&S_ACCT, base.word(from), f.wrapping_sub(amt))?;
                        let v = tx.read(&S_ACCT, base.word(to))?;
                        tx.write(&S_ACCT, base.word(to), v.wrapping_add(amt))?;
                        Ok(())
                    });
                }
            });
        }
        let rt = &rt;
        s.spawn(move || {
            let mut w = rt.spawn_worker();
            for _ in 0..scans {
                let sum = w.txn(|tx| {
                    let mut acc = 0u64;
                    for i in 0..ACCOUNTS {
                        acc = acc.wrapping_add(tx.read(&S_ACCT, base.word(i))?);
                    }
                    Ok(acc)
                });
                assert_eq!(
                    sum,
                    ACCOUNTS * SEED_BALANCE,
                    "scan saw a torn total under {policy:?}"
                );
            }
        });
    });
    let seconds = start.elapsed().as_secs_f64();
    let total: u64 = (0..ACCOUNTS).map(|i| rt.mem().load(base.word(i))).sum();
    assert_eq!(
        total,
        ACCOUNTS * SEED_BALANCE,
        "long-reader transfers lost or duplicated money under {policy:?}"
    );
    let stats = rt.collect_stats();
    check_ladder(policy, &stats);
    (seconds, stats)
}

/// One measured (driver, policy) cell.
#[derive(Clone, Debug)]
pub struct ContentionRow {
    pub driver: &'static str,
    pub policy: ContentionPolicy,
    pub threads: usize,
    /// Median wall time over `runs` repetitions.
    pub seconds: f64,
    /// Committed top-level transactions per second.
    pub txn_per_sec: f64,
    /// `aborts / (commits + aborts)`.
    pub abort_ratio: f64,
    /// `txn_per_sec / txn_per_sec(Backoff)` within the driver.
    pub speedup_vs_backoff: f64,
    /// Commit-latency percentiles from [`TxStats::latency_hist`] —
    /// bucket upper bounds, so coarse but comparable across arms.
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub stats: TxStats,
}

fn run_driver(
    driver: &str,
    scale: Scale,
    policy: ContentionPolicy,
    threads: usize,
) -> (f64, TxStats) {
    match driver {
        "hot-word" => hot_word_once(scale, policy, threads),
        "transfer-skew" => transfer_skew_once(scale, policy, threads),
        "long-reader" => long_reader_once(scale, policy, threads),
        other => panic!("unknown contention driver {other}"),
    }
}

/// Run the matrix. Rows are driver-major in [`POLICIES`] order; the
/// backoff row — first by construction — seeds the adaptive row's
/// speedup baseline.
pub fn contention_rows(opts: &ExptOpts) -> Vec<ContentionRow> {
    let threads = opts.threads.max(2);
    let mut rows = Vec::new();
    for driver in DRIVERS {
        let mut base_tput = f64::NAN;
        for policy in POLICIES {
            let samples: Vec<(f64, TxStats)> = (0..opts.runs.max(1))
                .map(|_| run_driver(driver, opts.scale, policy, threads))
                .collect();
            let seconds = median(samples.iter().map(|s| s.0).collect());
            let stats = samples.last().expect("runs >= 1").1;
            let tput = if seconds > 0.0 {
                stats.commits as f64 / seconds
            } else {
                0.0
            };
            if policy == POLICIES[0] {
                base_tput = tput;
            }
            let attempts = stats.commits + stats.aborts;
            rows.push(ContentionRow {
                driver,
                policy,
                threads,
                seconds,
                txn_per_sec: tput,
                abort_ratio: if attempts > 0 {
                    stats.aborts as f64 / attempts as f64
                } else {
                    0.0
                },
                speedup_vs_backoff: if base_tput > 0.0 {
                    tput / base_tput
                } else {
                    0.0
                },
                p50_ns: stats.latency_pct_ns(0.5),
                p99_ns: stats.latency_pct_ns(0.99),
                stats,
            });
        }
    }
    rows
}

/// Render the `BENCH_contention.json` report (hand-written JSON; no
/// serde in the offline container).
pub fn contention_json(opts: &ExptOpts, rows: &[ContentionRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"bench_contention/v1\",\n  \"scale\": \"{}\",\n  \"runs\": {},\n",
        scale_name(opts.scale),
        opts.runs.max(1)
    ));
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));
    out.push_str(&format!("  \"threads\": {},\n", opts.threads.max(2)));
    out.push_str(&format!(
        "  \"serialize_threshold\": {SERIALIZE_THRESHOLD},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"driver\": \"{}\", \"policy\": \"{}\", \"threads\": {}, \
             \"seconds\": {:.6}, \"txn_per_sec\": {:.1}, \"abort_ratio\": {:.4}, \
             \"speedup_vs_backoff\": {:.3}, \"commits\": {}, \"aborts\": {}, \
             \"attempts_max\": {}, \"backoff_waits\": {}, \"cm_karma_escalations\": {}, \
             \"cm_serializations\": {}, \"chaos_injections\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            esc(r.driver),
            r.policy.label(),
            r.threads,
            r.seconds,
            r.txn_per_sec,
            r.abort_ratio,
            r.speedup_vs_backoff,
            r.stats.commits,
            r.stats.aborts,
            r.stats.attempts_max,
            r.stats.backoff_waits,
            r.stats.cm_karma_escalations,
            r.stats.cm_serializations,
            r.stats.chaos_injections,
            r.p50_ns,
            r.p99_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Markdown rendering for the terminal: one row per (driver, policy)
/// with the starvation telemetry the JSON archives.
pub fn render_markdown(opts: &ExptOpts, rows: &[ContentionRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Contention management — backoff vs. adaptive ladder under identical \
         chaos (scale {}, {} threads, median of {} runs)\n\n",
        scale_name(opts.scale),
        opts.threads.max(2),
        opts.runs.max(1)
    ));
    out.push_str(
        "| driver | policy | txn/s | speedup | abort% | att_max | karma | serial | p50 | p99 |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.0} | {:.2}x | {:.1}% | {} | {} | {} | {}ns | {}ns |\n",
            r.driver,
            r.policy.label(),
            r.txn_per_sec,
            r.speedup_vs_backoff,
            100.0 * r.abort_ratio,
            r.stats.attempts_max,
            r.stats.cm_karma_escalations,
            r.stats.cm_serializations,
            r.p50_ns,
            r.p99_ns,
        ));
    }
    out.push('\n');
    out
}

/// Regression gate: the adaptive arm of `driver` must reach `min` of the
/// backoff arm's throughput. The ladder buys its starvation bound with
/// extra bookkeeping, so the gate is usually run with a bound *below*
/// 1.0 — the claim is "no throughput collapse", not "always faster".
pub fn adaptive_speedup_gate(
    rows: &[ContentionRow],
    driver: &str,
    min: f64,
) -> Result<f64, String> {
    let row = rows
        .iter()
        .find(|r| r.driver == driver && r.policy == ContentionPolicy::Adaptive)
        .ok_or_else(|| format!("no adaptive contention row for {driver}"))?;
    if row.speedup_vs_backoff >= min {
        Ok(row.speedup_vs_backoff)
    } else {
        Err(format!(
            "{driver}: adaptive throughput {:.2}x of backoff, below required {min:.2}x",
            row.speedup_vs_backoff
        ))
    }
}

/// Starvation gate: every adaptive row's worst per-transaction attempt
/// count must stay within the ladder's liveness bound — once a
/// transaction hits [`SERIALIZE_THRESHOLD`] consecutive aborts it starts
/// bidding for the serialization token, and with `threads` bidders ahead
/// of it the token (whose holder cannot conflict-abort) arrives within a
/// small per-thread number of further rounds. Returns the worst
/// `attempts_max` observed across the adaptive rows.
pub fn starvation_gate(rows: &[ContentionRow]) -> Result<u64, String> {
    let mut worst = 0u64;
    for r in rows
        .iter()
        .filter(|r| r.policy == ContentionPolicy::Adaptive)
    {
        let bound = SERIALIZE_THRESHOLD + 8 * r.threads as u64;
        if r.stats.attempts_max > bound {
            return Err(format!(
                "{}: adaptive attempts_max {} exceeds the liveness bound {bound}",
                r.driver, r.stats.attempts_max
            ));
        }
        worst = worst.max(r.stats.attempts_max);
    }
    if rows.iter().all(|r| r.policy != ContentionPolicy::Adaptive) {
        return Err("no adaptive rows to gate".into());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_row(driver: &'static str, policy: ContentionPolicy, speedup: f64) -> ContentionRow {
        let mut stats = TxStats::default();
        stats.attempts_max = 5;
        ContentionRow {
            driver,
            policy,
            threads: 4,
            seconds: 1.0 / speedup,
            txn_per_sec: 1000.0 * speedup,
            abort_ratio: 0.05,
            speedup_vs_backoff: speedup,
            p50_ns: 512,
            p99_ns: 4096,
            stats,
        }
    }

    #[test]
    fn gates_pass_and_fail() {
        let rows = vec![
            fake_row("hot-word", ContentionPolicy::Backoff, 1.0),
            fake_row("hot-word", ContentionPolicy::Adaptive, 1.3),
        ];
        assert_eq!(adaptive_speedup_gate(&rows, "hot-word", 0.8).unwrap(), 1.3);
        assert!(adaptive_speedup_gate(&rows, "hot-word", 2.0).is_err());
        assert!(adaptive_speedup_gate(&rows, "long-reader", 0.5).is_err());
        assert_eq!(starvation_gate(&rows).unwrap(), 5);
        let mut starved = rows.clone();
        starved[1].stats.attempts_max = SERIALIZE_THRESHOLD + 8 * 4 + 1;
        assert!(starvation_gate(&starved).is_err());
        assert!(starvation_gate(&rows[..1]).is_err(), "no adaptive rows");
    }

    #[test]
    fn json_is_balanced_and_carries_the_schema() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows = vec![fake_row("hot-word", ContentionPolicy::Backoff, 1.0)];
        let json = contention_json(&opts, &rows);
        assert!(json.contains("\"schema\": \"bench_contention/v1\""));
        assert!(json.contains("\"policy\": \"backoff\""));
        assert!(json.contains("\"attempts_max\": 5"));
        assert!(json.contains("\"cm_serializations\": 0"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    // One run of the full matrix at Test scale; CI additionally smokes it
    // through `expt contention --scale test`. The chaos stream makes the
    // conflict (and therefore abort) telemetry deterministic even on
    // single-core hosts, so both gates run here too.
    #[test]
    fn rows_cover_drivers_and_policies() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows = contention_rows(&opts);
        assert_eq!(rows.len(), DRIVERS.len() * POLICIES.len());
        assert!(!render_markdown(&opts, &rows).is_empty());
        for r in &rows {
            assert!(r.seconds >= 0.0 && r.txn_per_sec > 0.0, "{r:?}");
            assert!((0.0..=1.0).contains(&r.abort_ratio), "{r:?}");
            assert!(
                r.stats.chaos_injections > 0,
                "chaos must actually fire: {r:?}"
            );
            assert!(r.p99_ns >= r.p50_ns, "percentiles must be monotone: {r:?}");
        }
        // Backoff rows seed their own speedup baseline.
        for r in rows
            .iter()
            .filter(|r| r.policy == ContentionPolicy::Backoff)
        {
            assert!((r.speedup_vs_backoff - 1.0).abs() < 1e-9, "{r:?}");
        }
        starvation_gate(&rows).expect("adaptive rows stay within the liveness bound");
    }
}
