//! Machine-readable benchmark reports (`BENCH_barriers.json`): the
//! `barrier_dispatch` microbenchmark plus one STAMP run per barrier mode,
//! so future PRs have a perf trajectory to diff against. The JSON is
//! written by hand (no serde in the offline container) — flat structure,
//! numbers and strings only.

use stamp::{Benchmark, Scale};
use stm::{CheckScope, LogKind, Mode, TxConfig};

use crate::micro::{barrier_dispatch, fastpath_ratio, MicroOpts};
use crate::ExptOpts;

pub(crate) fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

pub(crate) fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// The barrier modes tracked across PRs.
fn tracked_modes() -> Vec<Mode> {
    let mut v = vec![Mode::Baseline];
    for log in LogKind::ALL {
        v.push(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        });
    }
    v.push(Mode::Compiler);
    v.push(Mode::CompilerInterproc);
    v
}

/// Build the full report as a JSON string.
///
/// `opts.scale`/`opts.threads` govern the STAMP section; `"seconds"` is
/// the **median of `opts.runs` repetitions** (single wall-clock samples
/// are far too noisy to serve as a cross-PR trajectory), while the
/// counters come from one additional instrumented run.
pub fn bench_json(opts: &ExptOpts, micro: &MicroOpts) -> String {
    let results = barrier_dispatch(micro);
    let ratio = fastpath_ratio(&results);

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"bench_barriers/v1\",\n  \"scale\": \"{}\",\n  \"threads\": {},\n",
        scale_name(opts.scale),
        opts.threads
    ));
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));

    out.push_str("  \"barrier_dispatch\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"ns_per_access\": {:.3}}}{}\n",
            esc(&r.name),
            r.ns_per_op,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match ratio {
        Some(r) => out.push_str(&format!("  \"captured_tree_vs_direct_ratio\": {r:.3},\n")),
        None => out.push_str("  \"captured_tree_vs_direct_ratio\": null,\n"),
    }

    out.push_str("  \"stamp\": [\n");
    let modes = tracked_modes();
    let total = modes.len() * Benchmark::ALL.len();
    let mut i = 0;
    let runs = opts.runs.max(1);
    for mode in &modes {
        for b in Benchmark::ALL {
            let cfg = TxConfig::with_mode(*mode);
            let seconds = crate::median(crate::time_runs(b, opts.scale, cfg, opts.threads, runs));
            let r = b.run(opts.scale, cfg, opts.threads);
            assert!(
                r.verified,
                "{} failed verification under {mode:?}",
                b.name()
            );
            let all = r.stats.all_accesses();
            i += 1;
            out.push_str(&format!(
                "    {{\"benchmark\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
                 \"seconds\": {seconds:.6}, \
                 \"runs\": {runs}, \"commits\": {}, \"aborts\": {}, \
                 \"elided_fraction\": {:.4}}}{}\n",
                esc(b.name()),
                esc(&mode.label()),
                opts.threads,
                r.stats.commits,
                r.stats.aborts,
                all.elided_fraction(),
                if i < total { "," } else { "" }
            ));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_parseable_shape() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 1,
            runs: 1,
        };
        let json = bench_json(&opts, &MicroOpts::smoke());
        // No serde available: structural spot checks instead of a parser.
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"bench_barriers/v1\""));
        assert!(json.contains("\"barrier_dispatch\": ["));
        assert!(json.contains("captured heap hit/tree"));
        assert!(json.contains("\"stamp\": ["));
        assert!(
            json.contains("\"threads\": 1,"),
            "stamp rows must carry their thread count"
        );
        assert!(json.contains("\"mode\": \"baseline\""));
        assert!(json.contains("\"mode\": \"compiler\""));
        // Balanced braces/brackets (cheap well-formedness guard).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        assert!(!json.contains(",\n  ]"), "no trailing commas");
        assert!(!json.contains(",\n    ]"), "no trailing commas");
    }
}
