//! Machine-readable benchmark reports (`BENCH_barriers.json`): the
//! `barrier_dispatch` microbenchmark plus one STAMP run per barrier mode,
//! so future PRs have a perf trajectory to diff against. The JSON is
//! written by hand (no serde in the offline container) — flat structure,
//! numbers and strings only.

use stamp::{Benchmark, Scale};
use stm::{CheckScope, LogKind, Mode, TxConfig};

use crate::micro::{
    barrier_dispatch, fastpath_ratio, nursery_ratio, ranged_ratio, typed_ratio, MicroOpts,
};
use crate::ExptOpts;

pub(crate) fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

pub(crate) fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// The barrier configurations tracked across PRs.
fn tracked_configs() -> Vec<TxConfig> {
    let mut v = vec![TxConfig::with_mode(Mode::Baseline)];
    for log in LogKind::ALL {
        v.push(TxConfig::with_mode(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        }));
    }
    // The nursery configuration under comparison (tree fallback).
    v.push(TxConfig::runtime_tree_nursery());
    v.push(TxConfig::with_mode(Mode::Compiler));
    v.push(TxConfig::with_mode(Mode::CompilerInterproc));
    v
}

/// Resolve a comma-separated `--benchmarks` filter ("vacation,intruder")
/// into the STAMP subset to run. A token matches a benchmark whose name
/// equals it, starts with it, or equals it with spaces dashed
/// ("vacation" matches both vacation configurations). Unknown tokens are
/// an `Err` listing the valid names.
pub fn parse_benchmark_filter(spec: &str) -> Result<Vec<Benchmark>, String> {
    let mut out = Vec::new();
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let tl = token.to_ascii_lowercase();
        let matched: Vec<Benchmark> = Benchmark::ALL
            .into_iter()
            .filter(|b| {
                let name = b.name();
                name == tl || name.starts_with(&tl) || name.replace(' ', "-") == tl
            })
            .collect();
        if matched.is_empty() {
            let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            return Err(format!(
                "unknown benchmark {token:?}; valid names: {}",
                names.join(", ")
            ));
        }
        for b in matched {
            if !out.contains(&b) {
                out.push(b);
            }
        }
    }
    if out.is_empty() {
        return Err("empty --benchmarks filter".into());
    }
    Ok(out)
}

/// Build the full report as a JSON string.
///
/// `opts.scale`/`opts.threads` govern the STAMP section; `"seconds"` is
/// the **median of `opts.runs` repetitions** (single wall-clock samples
/// are far too noisy to serve as a cross-PR trajectory), while the
/// counters come from one additional instrumented run. `benchmarks`
/// restricts the STAMP section to a subset (CI's smoke step runs only the
/// allocation-heavy pair); `None` runs the whole suite.
pub fn bench_json(opts: &ExptOpts, micro: &MicroOpts, benchmarks: Option<&[Benchmark]>) -> String {
    bench_json_from(opts, &barrier_dispatch(micro), benchmarks)
}

/// Like [`bench_json`], over already-collected microbenchmark results (so
/// a caller that also gates on a ratio measures once).
pub fn bench_json_from(
    opts: &ExptOpts,
    results: &[crate::micro::MicroResult],
    benchmarks: Option<&[Benchmark]>,
) -> String {
    let ratio = fastpath_ratio(results);
    let nratio = nursery_ratio(results);
    let suite: Vec<Benchmark> = match benchmarks {
        Some(b) => b.to_vec(),
        None => Benchmark::ALL.to_vec(),
    };

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"bench_barriers/v1\",\n  \"scale\": \"{}\",\n  \"threads\": {},\n",
        scale_name(opts.scale),
        opts.threads
    ));
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));

    out.push_str("  \"barrier_dispatch\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"ns_per_access\": {:.3}}}{}\n",
            esc(&r.name),
            r.ns_per_op,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match ratio {
        Some(r) => out.push_str(&format!("  \"captured_tree_vs_direct_ratio\": {r:.3},\n")),
        None => out.push_str("  \"captured_tree_vs_direct_ratio\": null,\n"),
    }
    match nratio {
        Some(r) => out.push_str(&format!(
            "  \"captured_nursery_vs_direct_ratio\": {r:.3},\n"
        )),
        None => out.push_str("  \"captured_nursery_vs_direct_ratio\": null,\n"),
    }
    match typed_ratio(results) {
        Some(r) => out.push_str(&format!("  \"captured_typed_vs_raw_ratio\": {r:.3},\n")),
        None => out.push_str("  \"captured_typed_vs_raw_ratio\": null,\n"),
    }
    match ranged_ratio(results) {
        Some(r) => out.push_str(&format!("  \"ranged_span64_vs_per_word_ratio\": {r:.3},\n")),
        None => out.push_str("  \"ranged_span64_vs_per_word_ratio\": null,\n"),
    }

    out.push_str("  \"stamp\": [\n");
    let configs = tracked_configs();
    let total = configs.len() * suite.len();
    let mut i = 0;
    let runs = opts.runs.max(1);
    for cfg in &configs {
        for &b in &suite {
            let seconds = crate::median(crate::time_runs(b, opts.scale, *cfg, opts.threads, runs));
            let r = b.run(opts.scale, *cfg, opts.threads);
            assert!(
                r.verified,
                "{} failed verification under {}",
                b.name(),
                cfg.label()
            );
            let all = r.stats.all_accesses();
            i += 1;
            out.push_str(&format!(
                "    {{\"benchmark\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
                 \"seconds\": {seconds:.6}, \
                 \"runs\": {runs}, \"commits\": {}, \"aborts\": {}, \
                 \"elided_fraction\": {:.4}, \
                 \"ranged_spans\": {}, \"ranged_fallbacks\": {}, \
                 \"conflict_read_locked\": {}, \"conflict_write_locked\": {}, \
                 \"conflict_validation\": {}, \"backoff_waits\": {}, \
                 \"cm_karma_escalations\": {}, \"cm_serializations\": {}, \
                 \"attempts_max\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
                esc(b.name()),
                esc(&cfg.label()),
                opts.threads,
                r.stats.commits,
                r.stats.aborts,
                all.elided_fraction(),
                r.stats.ranged_spans,
                r.stats.ranged_fallbacks,
                r.stats.conflict_read_locked,
                r.stats.conflict_write_locked,
                r.stats.conflict_validation,
                r.stats.backoff_waits,
                r.stats.cm_karma_escalations,
                r.stats.cm_serializations,
                r.stats.attempts_max,
                r.stats.latency_pct_ns(0.5),
                r.stats.latency_pct_ns(0.99),
                if i < total { "," } else { "" }
            ));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_parseable_shape() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 1,
            runs: 1,
        };
        let json = bench_json(&opts, &MicroOpts::smoke(), None);
        // No serde available: structural spot checks instead of a parser.
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"bench_barriers/v1\""));
        assert!(json.contains("\"barrier_dispatch\": ["));
        assert!(json.contains("captured heap hit/tree"));
        assert!(json.contains("captured heap hit/nursery"));
        assert!(json.contains("\"captured_nursery_vs_direct_ratio\": "));
        assert!(json.contains("captured heap hit/tree (typed)"));
        assert!(json.contains("\"captured_typed_vs_raw_ratio\": "));
        assert!(json.contains("ranged captured span 64/tree"));
        assert!(json.contains("\"ranged_span64_vs_per_word_ratio\": "));
        assert!(json.contains("\"ranged_spans\": "));
        assert!(json.contains("\"conflict_validation\": "));
        assert!(json.contains("\"cm_serializations\": "));
        assert!(json.contains("\"attempts_max\": "));
        assert!(json.contains("\"p99_ns\": "));
        assert!(json.contains("\"stamp\": ["));
        assert!(
            json.contains("\"threads\": 1,"),
            "stamp rows must carry their thread count"
        );
        assert!(json.contains("\"mode\": \"baseline\""));
        assert!(json.contains("\"mode\": \"compiler\""));
        assert!(json.contains("\"mode\": \"runtime-tree+nursery (r+w/stack+heap)\""));
        // Balanced braces/brackets (cheap well-formedness guard).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        assert!(!json.contains(",\n  ]"), "no trailing commas");
        assert!(!json.contains(",\n    ]"), "no trailing commas");
    }

    #[test]
    fn benchmark_filter_resolves_subsets() {
        let v = parse_benchmark_filter("vacation,intruder").unwrap();
        assert_eq!(
            v,
            vec![
                Benchmark::VacationHigh,
                Benchmark::VacationLow,
                Benchmark::Intruder
            ]
        );
        assert_eq!(
            parse_benchmark_filter("kmeans high").unwrap(),
            vec![Benchmark::KmeansHigh]
        );
        assert_eq!(
            parse_benchmark_filter("kmeans-low").unwrap(),
            vec![Benchmark::KmeansLow]
        );
        assert!(parse_benchmark_filter("nope").is_err());
        assert!(parse_benchmark_filter("").is_err());
        // A filtered report still has every tracked mode, only fewer rows.
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 1,
            runs: 1,
        };
        let json = bench_json(&opts, &MicroOpts::smoke(), Some(&[Benchmark::Intruder]));
        assert!(json.contains("\"benchmark\": \"intruder\""));
        assert!(!json.contains("\"benchmark\": \"yada\""));
        assert!(!json.contains(",\n  ]"), "no trailing commas");
    }
}
