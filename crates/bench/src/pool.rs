//! The memory-pool experiment (`expt pool`): drive the `pool` crate's
//! multi-index transactional pool with a zipf-skewed multi-worker
//! workload at up to millions of operations, and report committed
//! throughput plus the pool's own telemetry (evictions, duplicate
//! filtering, live bytes vs. heap bytes).
//!
//! The op mix models a mempool's day: mostly fresh submissions (some of
//! which evict), a steady drain of best-priority items, sporadic
//! removals, repricings, sender purges, and a tail of duplicate
//! resubmissions. Senders follow a Zipf(θ) distribution, so a few hot
//! senders own long chains while the tail stays short.
//!
//! Three arms share the workload generator:
//!
//! - `plain` — one transaction per op under the nursery configuration
//!   (each insert allocates its item + payload transactionally, which is
//!   exactly the captured-memory fast path the paper is about). This arm
//!   seeds the [`pool_throughput_gate`].
//! - `merge-N` — the same ops through `txn_batch` windows of N
//!   (`--merge N`), descriptors pre-drawn per window so salvage retries
//!   replay identical ops.
//! - `durable` — one transaction per op with the redo-log commit mode on
//!   (`--durable`, group flush batch 8), reporting the log footprint.
//!
//! Every arm ends with [`pool::TxPool::seq_check`] (index
//! cross-consistency, exact live-byte accounting, budget bound) and an
//! exact reconciliation of the header telemetry against per-thread
//! outcome tallies. Emits `BENCH_pool.json` (committed snapshot, like
//! `BENCH_merge.json`).

use pool::{InsertOutcome, PoolConfig, PoolCounters, TxPool};
use stamp::Scale;
use stm::{SimDisk, StmRuntime, TxConfig, TxObject, TxStats};
use txmem::MemConfig;

use crate::report::{esc, scale_name};
use crate::skew::{Rng, Zipf};
use crate::{median, ExptOpts};

/// Sender-id domain for the Zipf draw.
const SENDERS: u64 = 1 << 10;
/// Priority domain.
const PRIOS: u64 = 1 << 16;

/// Knobs beyond [`ExptOpts`], wired to `expt pool` flags. `ops` and
/// `budget` of 0 are "scale default" sentinels; [`resolve`] replaces
/// them before the driver runs.
#[derive(Clone, Copy, Debug)]
pub struct PoolOpts {
    /// Total operations across all threads (`--ops`; 0 = scale default).
    pub ops: u64,
    /// Pool live-byte budget (`--budget`; 0 = scale default).
    pub budget: u64,
    /// Zipf exponent of the sender distribution (`--theta`).
    pub theta: f64,
    /// Merge factor; > 1 adds the `merge-N` arm (`--merge N`).
    pub merge: usize,
    /// Add the durable arm (`--durable`).
    pub durable: bool,
    /// Max payload words per item.
    pub payload_max: u64,
}

impl Default for PoolOpts {
    fn default() -> Self {
        PoolOpts {
            ops: 0,
            budget: 0,
            theta: 0.8,
            merge: 1,
            durable: false,
            payload_max: 8,
        }
    }
}

/// Ops for `--ops 0`, by scale. Full is the issue's "millions" floor.
pub fn default_ops(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 20_000,
        Scale::Small => 200_000,
        Scale::Full => 1_000_000,
    }
}

/// Budget for `--budget 0`, by scale: small enough that the op mix's net
/// growth (~0.2 live items per op at ~200 accounted bytes each) fills it
/// well before the run ends, so every run actually exercises eviction.
pub fn default_budget(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 1 << 14,
        Scale::Small => 1 << 17,
        Scale::Full => 1 << 20,
    }
}

/// Replace the 0 sentinels with the scale defaults. The `expt` front end
/// calls this once; everything below assumes resolved values.
pub fn resolve(opts: &ExptOpts, popts: &PoolOpts) -> PoolOpts {
    PoolOpts {
        ops: if popts.ops == 0 {
            default_ops(opts.scale)
        } else {
            popts.ops
        },
        budget: if popts.budget == 0 {
            default_budget(opts.scale)
        } else {
            popts.budget
        },
        ..*popts
    }
}

/// One workload operation, fully pre-drawn so a merged window can replay
/// it verbatim after a salvage retry.
#[derive(Clone, Copy, Debug)]
enum OpDesc {
    Insert {
        id: u64,
        sender: u64,
        nonce: u64,
        prio: u64,
        payload_words: u64,
    },
    PopBest,
    Remove {
        id: u64,
    },
    Promote {
        id: u64,
        prio: u64,
    },
    RemoveSender {
        sender: u64,
    },
}

/// What one op did — per-thread tallies reconciled against the pool's
/// own header telemetry at the end of the run.
#[derive(Clone, Copy, Debug, Default)]
struct Tally {
    inserted: u64,
    evicted: u64,
    dup_hits: u64,
    rejected: u64,
    popped: u64,
    removed: u64,
    promoted: u64,
    purged: u64,
}

impl Tally {
    fn add(&mut self, o: &Tally) {
        self.inserted += o.inserted;
        self.evicted += o.evicted;
        self.dup_hits += o.dup_hits;
        self.rejected += o.rejected;
        self.popped += o.popped;
        self.removed += o.removed;
        self.promoted += o.promoted;
        self.purged += o.purged;
    }

    fn matches(&self, c: &PoolCounters) -> Result<(), String> {
        let pairs = [
            ("inserted", self.inserted, c.inserted),
            ("evicted", self.evicted, c.evicted),
            ("dup_hits", self.dup_hits, c.dup_hits),
            ("rejected", self.rejected, c.rejected),
            ("popped", self.popped, c.popped),
            ("removed", self.removed, c.removed),
            ("promoted", self.promoted, c.promoted),
            ("purged", self.purged, c.purged),
        ];
        for (name, mine, pool) in pairs {
            if mine != pool {
                return Err(format!(
                    "telemetry mismatch on {name}: threads tallied {mine}, pool header says {pool}"
                ));
            }
        }
        Ok(())
    }
}

/// Per-thread deterministic op stream. Ids are globally unique by
/// construction (thread tag in the high bits), so only deliberate
/// resubmissions can collide.
struct OpGen<'a> {
    rng: Rng,
    zipf: &'a Zipf,
    thread: u64,
    next_seq: u64,
    next_nonce: u64,
    issued: Vec<u64>,
    payload_words_max: u64,
}

impl<'a> OpGen<'a> {
    fn new(thread: usize, zipf: &'a Zipf, payload_max: u64) -> OpGen<'a> {
        OpGen {
            rng: Rng::new(0x9E3779B97F4A7C15 ^ (thread as u64 + 1)),
            zipf,
            thread: thread as u64 + 1,
            next_seq: 0,
            next_nonce: 0,
            issued: Vec::new(),
            payload_words_max: payload_max,
        }
    }

    fn fresh_insert(&mut self) -> OpDesc {
        self.next_seq += 1;
        let id = (self.thread << 40) | self.next_seq;
        self.issued.push(id);
        self.insert_of(id)
    }

    fn insert_of(&mut self, id: u64) -> OpDesc {
        self.next_nonce += 1;
        OpDesc::Insert {
            id,
            sender: self.zipf.sample(&mut self.rng),
            nonce: self.next_nonce,
            prio: self.rng.below(PRIOS),
            payload_words: self.rng.below(self.payload_words_max + 1),
        }
    }

    fn issued_pick(&mut self) -> Option<u64> {
        if self.issued.is_empty() {
            return None;
        }
        let i = self.rng.below(self.issued.len() as u64) as usize;
        Some(self.issued[i])
    }

    /// Draw the next op. Mix: 55% fresh insert, 15% pop-best, 10% remove,
    /// 10% promote, 5% sender purge, 5% duplicate resubmission (an id
    /// drawn from this thread's history — a `Duplicate` if still live, a
    /// legitimate re-insert if it was evicted or drained since).
    fn next_op(&mut self) -> OpDesc {
        match self.rng.below(100) {
            0..=54 => self.fresh_insert(),
            55..=69 => OpDesc::PopBest,
            70..=79 => match self.issued_pick() {
                Some(id) => OpDesc::Remove { id },
                None => self.fresh_insert(),
            },
            80..=89 => match self.issued_pick() {
                Some(id) => OpDesc::Promote {
                    id,
                    prio: self.rng.below(PRIOS),
                },
                None => self.fresh_insert(),
            },
            90..=94 => OpDesc::RemoveSender {
                sender: self.zipf.sample(&mut self.rng),
            },
            _ => match self.issued_pick() {
                Some(id) => self.insert_of(id),
                None => self.fresh_insert(),
            },
        }
    }
}

/// Apply one descriptor inside a transaction; returns the op's tally.
fn apply(p: &TxPool, tx: &mut stm::Tx<'_, '_>, op: &OpDesc) -> stm::TxResult<Tally> {
    let mut t = Tally::default();
    match *op {
        OpDesc::Insert {
            id,
            sender,
            nonce,
            prio,
            payload_words,
        } => match p.insert(tx, id, sender, nonce, prio, payload_words)? {
            InsertOutcome::Inserted { evicted } => {
                t.inserted = 1;
                t.evicted = evicted;
            }
            InsertOutcome::Duplicate => t.dup_hits = 1,
            InsertOutcome::Rejected => t.rejected = 1,
        },
        OpDesc::PopBest => {
            if p.pop_best(tx)?.is_some() {
                t.popped = 1;
            }
        }
        OpDesc::Remove { id } => {
            if p.remove(tx, id)?.is_some() {
                t.removed = 1;
            }
        }
        OpDesc::Promote { id, prio } => {
            if p.promote(tx, id, prio)? {
                t.promoted = 1;
            }
        }
        OpDesc::RemoveSender { sender } => {
            t.purged = p.remove_sender(tx, sender)?;
        }
    }
    Ok(t)
}

/// The arm axis of one run, in row order.
fn arms(popts: &PoolOpts) -> Vec<String> {
    let mut v = vec!["plain".to_string()];
    if popts.merge > 1 {
        v.push(format!("merge-{}", popts.merge));
    }
    if popts.durable {
        v.push("durable".to_string());
    }
    v
}

fn pool_cfg(popts: &PoolOpts, arm: &str) -> TxConfig {
    let mut cfg = TxConfig::runtime_tree_nursery();
    if arm.starts_with("merge-") {
        cfg = TxConfig::builder()
            .mode(stm::Mode::Runtime {
                log: stm::LogKind::Tree,
                scope: stm::CheckScope::FULL,
            })
            .nursery(true)
            .merge_max(popts.merge as u32)
            .build()
            .expect("merge factor validated at the CLI boundary");
    }
    if arm == "durable" {
        cfg = TxConfig::builder()
            .mode(stm::Mode::Runtime {
                log: stm::LogKind::Tree,
                scope: stm::CheckScope::FULL,
            })
            .nursery(true)
            .durable(true)
            .durable_flush_batch(8)
            .build()
            .expect("durable pool config is statically valid");
    }
    cfg
}

/// Heap sizing: the pool's global structures, the full live-item budget
/// with allocator headroom, and per-thread nursery slack.
fn mem_cfg(popts: &PoolOpts, threads: usize) -> MemConfig {
    let cap = PoolConfig {
        budget_bytes: popts.budget,
        bloom_words: bloom_words_for(popts.budget),
    }
    .capacity();
    let words = 4 * (popts.budget / 8)
        + 16 * cap
        + bloom_words_for(popts.budget)
        + (threads as u64 + 1) * (1 << 12)
        + (1 << 14);
    MemConfig {
        max_threads: threads + 1,
        stack_words: 1 << 10,
        heap_words: words as usize,
    }
}

/// Bloom width scaled to the budget: roughly 8 bits per budget-bounded
/// live item, clamped to a sane power-of-two range.
pub fn bloom_words_for(budget: u64) -> u64 {
    let max_items = (budget / pool::Item::BYTES).max(1);
    (max_items / 8).next_power_of_two().clamp(16, 1 << 16)
}

/// One arm's results.
#[derive(Clone, Debug)]
pub struct PoolRow {
    /// Arm name: `plain`, `merge-N`, or `durable`.
    pub arm: String,
    /// Total committed ops (logical transactions) in the run.
    pub ops: u64,
    pub threads: usize,
    /// Median wall seconds over the configured runs.
    pub seconds: f64,
    /// Committed ops per second.
    pub ops_per_sec: f64,
    /// `aborts / (commits + aborts)`.
    pub abort_rate: f64,
    /// Pool telemetry at quiesce (last run).
    pub counters: PoolCounters,
    /// Live allocator payload bytes at quiesce (the sim-heap's RSS).
    pub heap_bytes: u64,
    /// Redo-log footprint (durable arm only).
    pub log_bytes: u64,
    /// STM stats of the last run.
    pub stats: TxStats,
}

struct ArmOutcome {
    seconds: f64,
    counters: PoolCounters,
    heap_bytes: u64,
    log_bytes: u64,
    stats: TxStats,
}

/// One timed run of one arm. Builds a fresh runtime + pool, drives the
/// full op count across the threads, then reconciles telemetry and runs
/// the structural checker.
fn run_once(opts: &ExptOpts, popts: &PoolOpts, arm: &str) -> ArmOutcome {
    let threads = opts.threads.max(1);
    let ops = popts.ops;
    assert!(ops > 0 && popts.budget > 0, "resolve() the PoolOpts first");
    let per_thread = (ops as usize).div_ceil(threads);
    let cfg = pool_cfg(popts, arm);
    let mem = mem_cfg(popts, threads);
    let (rt, disk) = if arm == "durable" {
        let disk = SimDisk::new();
        (StmRuntime::new_durable(mem, cfg, disk.clone()), Some(disk))
    } else {
        (StmRuntime::new(mem, cfg), None)
    };
    let pool = TxPool::create(
        &rt,
        PoolConfig {
            budget_bytes: popts.budget,
            bloom_words: bloom_words_for(popts.budget),
        },
    );
    let zipf = Zipf::new(SENDERS, popts.theta);
    let factor = if arm.starts_with("merge-") {
        popts.merge
    } else {
        1
    };
    rt.reset_stats();
    let total = std::sync::Mutex::new(Tally::default());
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = &rt;
            let zipf = &zipf;
            let total = &total;
            let payload_max = popts.payload_max;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut g = OpGen::new(t, zipf, payload_max);
                let mut tally = Tally::default();
                if factor > 1 {
                    for _ in 0..per_thread.div_ceil(factor) {
                        // Pre-draw the window so salvage retries replay
                        // the identical ops at the same logical indices.
                        let descs: Vec<OpDesc> = (0..factor).map(|_| g.next_op()).collect();
                        let mut outs: Vec<Tally> = vec![Tally::default(); factor];
                        let run = w.txn_batch(factor, |b| {
                            let i = b.logical_index() as usize;
                            outs[i] = apply(&pool, b, &descs[i])?;
                            Ok(true)
                        });
                        assert_eq!(run.committed, factor as u64);
                        for o in &outs {
                            tally.add(o);
                        }
                    }
                } else {
                    for _ in 0..per_thread {
                        let desc = g.next_op();
                        let t = w.txn(|tx| apply(&pool, tx, &desc));
                        tally.add(&t);
                    }
                }
                total.lock().unwrap().add(&tally);
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    // Quiesce-time verification: structure, accounting, and an exact
    // reconciliation of header telemetry against the thread tallies.
    let w = rt.spawn_worker();
    pool.seq_check(&w);
    let counters = pool.seq_counters(&w);
    let tally = total.into_inner().unwrap();
    if let Err(e) = tally.matches(&counters) {
        panic!("pool {arm} arm: {e}");
    }
    drop(w);
    let stats = rt.collect_stats();
    // The workload must actually exercise the machinery it claims to:
    // a run with zero evictions, zero duplicate traffic, no nursery
    // regions, or (merged) no merged windows measures nothing.
    assert!(
        counters.evicted > 0,
        "pool {arm}: no evictions at {ops} ops"
    );
    assert!(
        counters.dup_hits + counters.dup_skips > 0,
        "pool {arm}: duplicate filter never exercised"
    );
    assert!(
        stats.nursery_regions > 0,
        "pool {arm}: nursery never engaged despite nursery config"
    );
    if factor > 1 {
        assert!(
            stats.merged_txns > 0,
            "pool {arm}: merge windows never actually merged"
        );
    }
    ArmOutcome {
        seconds,
        counters,
        heap_bytes: rt.heap().bytes_allocated(),
        log_bytes: disk.map_or(0, |d| d.log_bytes()),
        stats,
    }
}

/// Run every arm, median-timing each over `opts.runs`.
pub fn pool_rows(opts: &ExptOpts, popts: &PoolOpts) -> Vec<PoolRow> {
    let popts = &resolve(opts, popts);
    let threads = opts.threads.max(1);
    let committed_ops = ((popts.ops as usize).div_ceil(threads) * threads) as u64;
    let mut rows = Vec::new();
    for arm in arms(popts) {
        let outcomes: Vec<ArmOutcome> = (0..opts.runs.max(1))
            .map(|_| run_once(opts, popts, &arm))
            .collect();
        let seconds = median(outcomes.iter().map(|o| o.seconds).collect());
        let last = outcomes.into_iter().next_back().expect("runs >= 1");
        let attempts = last.stats.commits + last.stats.aborts;
        rows.push(PoolRow {
            arm,
            ops: committed_ops,
            threads,
            seconds,
            ops_per_sec: if seconds > 0.0 {
                committed_ops as f64 / seconds
            } else {
                0.0
            },
            abort_rate: if attempts > 0 {
                last.stats.aborts as f64 / attempts as f64
            } else {
                0.0
            },
            counters: last.counters,
            heap_bytes: last.heap_bytes,
            log_bytes: last.log_bytes,
            stats: last.stats,
        });
    }
    rows
}

/// Render the `BENCH_pool.json` report (hand-written JSON; no serde in
/// the offline container).
pub fn pool_json(opts: &ExptOpts, popts: &PoolOpts, rows: &[PoolRow]) -> String {
    let popts = &resolve(opts, popts);
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"bench_pool/v1\",\n  \"scale\": \"{}\",\n  \"runs\": {},\n",
        scale_name(opts.scale),
        opts.runs.max(1)
    ));
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));
    out.push_str(&format!("  \"threads\": {},\n", opts.threads.max(1)));
    out.push_str(&format!(
        "  \"budget_bytes\": {},\n  \"bloom_words\": {},\n  \"theta\": {:.3},\n  \"senders\": {},\n",
        popts.budget,
        bloom_words_for(popts.budget),
        popts.theta,
        SENDERS
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.counters;
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"ops\": {}, \"threads\": {}, \"seconds\": {:.6}, \
             \"ops_per_sec\": {:.1}, \"abort_rate\": {:.4}, \
             \"live_count\": {}, \"live_bytes\": {}, \"heap_bytes\": {}, \
             \"inserted\": {}, \"evicted\": {}, \"evicted_bytes\": {}, \
             \"dup_hits\": {}, \"dup_skips\": {}, \"rejected\": {}, \
             \"popped\": {}, \"removed\": {}, \"promoted\": {}, \"purged\": {}, \
             \"nursery_regions\": {}, \"merged_txns\": {}, \"merge_splits\": {}, \
             \"log_bytes\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            esc(&r.arm),
            r.ops,
            r.threads,
            r.seconds,
            r.ops_per_sec,
            r.abort_rate,
            c.count,
            c.live_bytes,
            r.heap_bytes,
            c.inserted,
            c.evicted,
            c.evicted_bytes,
            c.dup_hits,
            c.dup_skips,
            c.rejected,
            c.popped,
            c.removed,
            c.promoted,
            c.purged,
            r.stats.nursery_regions,
            r.stats.merged_txns,
            r.stats.merge_splits,
            r.log_bytes,
            r.stats.latency_pct_ns(0.5),
            r.stats.latency_pct_ns(0.99),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Markdown rendering: the arm table, then a per-component byte-budget
/// table for the plain arm (where does the sim-heap RSS go?).
pub fn render_markdown(opts: &ExptOpts, popts: &PoolOpts, rows: &[PoolRow]) -> String {
    let popts = &resolve(opts, popts);
    let mut out = String::new();
    out.push_str(&format!(
        "## Transactional memory pool — zipf(θ={:.2}) op mix \
         (scale {}, {} threads, median of {} runs)\n\n",
        popts.theta,
        scale_name(opts.scale),
        opts.threads.max(1),
        opts.runs.max(1)
    ));
    out.push_str(
        "| arm | ops | ops/s | abort % | live items | live bytes | evicted | dup hits | dup skips |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    for r in rows {
        let c = &r.counters;
        out.push_str(&format!(
            "| {} | {} | {:.0} | {:.2} | {} | {} | {} | {} | {} |\n",
            r.arm,
            r.ops,
            r.ops_per_sec,
            100.0 * r.abort_rate,
            c.count,
            c.live_bytes,
            c.evicted,
            c.dup_hits,
            c.dup_skips
        ));
    }
    out.push('\n');
    if let Some(r) = rows.first() {
        let cfg = PoolConfig {
            budget_bytes: popts.budget,
            bloom_words: bloom_words_for(popts.budget),
        };
        let cap = cfg.capacity();
        out.push_str(&format!(
            "Byte budget ({} arm, at quiesce):\n\n\
             | component | formula | bytes |\n|---|---|---:|\n\
             | header | `PoolHdr::BYTES` | {} |\n\
             | id index | `capacity * 8` = {cap} * 8 | {} |\n\
             | sender index | `capacity * 8` = {cap} * 8 | {} |\n\
             | skiplist heads | `MAX_LEVEL * 8` | {} |\n\
             | bloom filter | `bloom_words * 8` | {} |\n\
             | live items | `Σ (Item::BYTES + 8·payload)` | {} |\n\
             | sim-heap live total | allocator telemetry | {} |\n\n",
            r.arm,
            pool::PoolHdr::BYTES,
            cap * 8,
            cap * 8,
            pool::MAX_LEVEL as u64 * 8,
            bloom_words_for(popts.budget) * 8,
            r.counters.live_bytes,
            r.heap_bytes,
        ));
    }
    out
}

/// Release gate: the plain arm must sustain `min` committed ops/s. The
/// `expt` front end self-skips in debug builds.
pub fn pool_throughput_gate(rows: &[PoolRow], min: f64) -> Result<f64, String> {
    let row = rows
        .iter()
        .find(|r| r.arm == "plain")
        .ok_or("no plain pool row")?;
    if row.ops_per_sec >= min {
        Ok(row.ops_per_sec)
    } else {
        Err(format!(
            "pool plain-arm throughput {:.0} ops/s below required {min:.0}",
            row.ops_per_sec
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> (ExptOpts, PoolOpts) {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let popts = PoolOpts {
            ops: 4_000,
            budget: 64 * pool::Item::BYTES,
            ..PoolOpts::default()
        };
        (opts, popts)
    }

    #[test]
    fn plain_arm_runs_checks_and_reconciles() {
        let (opts, popts) = tiny_opts();
        let rows = pool_rows(&opts, &popts);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.arm, "plain");
        assert_eq!(r.ops, 4_000);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.counters.live_bytes <= popts.budget);
    }

    #[test]
    fn merge_and_durable_arms_ride_along() {
        let (opts, mut popts) = tiny_opts();
        popts.merge = 4;
        popts.durable = true;
        let rows = pool_rows(&opts, &popts);
        let names: Vec<&str> = rows.iter().map(|r| r.arm.as_str()).collect();
        assert_eq!(names, ["plain", "merge-4", "durable"]);
        let merged = &rows[1];
        assert!(merged.stats.merged_txns > 0, "{merged:?}");
        let durable = &rows[2];
        assert!(durable.log_bytes > 0, "durable arm must write a log");
    }

    #[test]
    fn json_is_balanced_and_carries_the_schema() {
        let (opts, popts) = tiny_opts();
        let rows = pool_rows(&opts, &popts);
        let json = pool_json(&opts, &popts, &rows);
        assert!(json.contains("\"schema\": \"bench_pool/v1\""));
        assert!(json.contains("\"arm\": \"plain\""));
        assert!(json.contains("\"evicted\":"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        assert!(!render_markdown(&opts, &popts, &rows).is_empty());
    }

    #[test]
    fn gate_passes_and_fails() {
        let (opts, popts) = tiny_opts();
        let rows = pool_rows(&opts, &popts);
        assert!(pool_throughput_gate(&rows, 1.0).is_ok());
        assert!(pool_throughput_gate(&rows, f64::INFINITY).is_err());
        assert!(pool_throughput_gate(&[], 1.0).is_err());
    }
}
