//! The thread-scaling experiment (`expt scaling`): STAMP at 1/2/4/8
//! threads under {baseline, runtime-tree, compiler}, in the spirit of the
//! paper's Figures 10/11 whose evaluation axis is speedup vs. thread
//! count. Emits `BENCH_scaling.json` (committed snapshot, like
//! `BENCH_barriers.json`) so PRs that touch the commit/allocation spines
//! have a scaling trajectory to diff against.
//!
//! Honesty note: rows carry the machine's `available_parallelism`. On a
//! single-core box 4 worker threads time-slice one CPU and the measured
//! speedup is ~1x by construction; the speedup gate
//! ([`speedup_gate`]) therefore only enforces when the hardware can
//! actually run the threads in parallel.

use stamp::{Benchmark, RunOutcome};
use stm::{TxConfig, TxStats};

use crate::report::{esc, scale_name};
use crate::{baseline_cfg, compiler_cfg, median, ExptOpts};

/// The paper's Figure 10/11 thread axis, clamped to powers of two our CI
/// box can schedule.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The three configurations tracked across PRs (label, config).
pub fn scaling_modes() -> Vec<(&'static str, TxConfig)> {
    vec![
        ("baseline", baseline_cfg()),
        ("runtime-tree", TxConfig::runtime_tree_full()),
        ("compiler", compiler_cfg()),
    ]
}

/// One measured (benchmark, mode, thread-count) cell.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    pub benchmark: &'static str,
    pub mode: &'static str,
    pub threads: usize,
    /// Median wall time of the parallel phase over `runs` repetitions.
    pub seconds: f64,
    /// Committed transactions per second (total work is fixed per
    /// benchmark, so this is the throughput axis).
    pub commits_per_sec: f64,
    /// `seconds(1 thread) / seconds(this)` within the same benchmark×mode.
    pub speedup_vs_1t: f64,
    pub stats: TxStats,
}

/// Run the full matrix. Rows are ordered benchmark-major, then mode, then
/// thread count, so the 1-thread row of a series always precedes (and
/// seeds the speedup baseline of) the wider rows.
pub fn scaling_rows(opts: &ExptOpts) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        for (mode, cfg) in scaling_modes() {
            let mut base_seconds = f64::NAN;
            for &threads in &THREAD_COUNTS {
                let outs: Vec<RunOutcome> = (0..opts.runs.max(1))
                    .map(|_| {
                        let out = b.run(opts.scale, cfg, threads);
                        assert!(
                            out.verified,
                            "{} failed verification under {mode}",
                            b.name()
                        );
                        out
                    })
                    .collect();
                let seconds = median(outs.iter().map(|o| o.elapsed.as_secs_f64()).collect());
                let stats = outs.last().expect("runs >= 1").stats;
                if threads == 1 {
                    base_seconds = seconds;
                }
                rows.push(ScalingRow {
                    benchmark: b.name(),
                    mode,
                    threads,
                    seconds,
                    commits_per_sec: if seconds > 0.0 {
                        stats.commits as f64 / seconds
                    } else {
                        0.0
                    },
                    speedup_vs_1t: if seconds > 0.0 {
                        base_seconds / seconds
                    } else {
                        0.0
                    },
                    stats,
                });
            }
        }
    }
    rows
}

/// How many hardware threads this machine can actually run in parallel.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Render the `BENCH_scaling.json` report (hand-written JSON; no serde in
/// the offline container).
pub fn scaling_json(opts: &ExptOpts, rows: &[ScalingRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"bench_scaling/v1\",\n  \"scale\": \"{}\",\n  \"runs\": {},\n",
        scale_name(opts.scale),
        opts.runs.max(1)
    ));
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        available_parallelism()
    ));
    out.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        THREAD_COUNTS
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"seconds\": {:.6}, \"commits_per_sec\": {:.1}, \"speedup_vs_1t\": {:.3}, \
             \"commits\": {}, \"commits_ro\": {}, \"aborts\": {}, \"clock_adopts\": {}}}{}\n",
            esc(r.benchmark),
            esc(r.mode),
            r.threads,
            r.seconds,
            r.commits_per_sec,
            r.speedup_vs_1t,
            r.stats.commits,
            r.stats.commits_ro,
            r.stats.aborts,
            r.stats.clock_adopts,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Markdown rendering for the terminal: one table per mode, thread counts
/// as columns, speedup-vs-1-thread cells.
pub fn render_markdown(opts: &ExptOpts, rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Thread scaling — speedup vs. 1 thread (scale {}, median of {} runs, {} hw threads)\n\n",
        scale_name(opts.scale),
        opts.runs.max(1),
        available_parallelism()
    ));
    for (mode, _) in scaling_modes() {
        out.push_str(&format!("### {mode}\n\n| benchmark |"));
        for t in THREAD_COUNTS {
            out.push_str(&format!(" {t}t |"));
        }
        out.push_str("\n|---|");
        for _ in THREAD_COUNTS {
            out.push_str("---:|");
        }
        out.push('\n');
        for b in Benchmark::ALL {
            let mut line = format!("| {} |", b.name());
            for t in THREAD_COUNTS {
                let cell = rows
                    .iter()
                    .find(|r| r.benchmark == b.name() && r.mode == mode && r.threads == t);
                match cell {
                    Some(r) => line.push_str(&format!(" {:.2}x |", r.speedup_vs_1t)),
                    None => line.push_str(" - |"),
                }
            }
            out.push_str(&line);
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Regression gate: `benchmark` under `mode` at `threads` threads must
/// reach `min` speedup over its own 1-thread row. Returns the measured
/// speedup, or `None` when the machine cannot run `threads` in parallel
/// (time-slicing one core cannot speed anything up, so the gate would
/// only measure scheduler noise).
pub fn speedup_gate(
    rows: &[ScalingRow],
    benchmark: &str,
    mode: &str,
    threads: usize,
    min: f64,
) -> Result<Option<f64>, String> {
    if available_parallelism() < threads {
        return Ok(None);
    }
    let row = rows
        .iter()
        .find(|r| r.benchmark == benchmark && r.mode == mode && r.threads == threads)
        .ok_or_else(|| format!("no scaling row for {benchmark}/{mode}/{threads}t"))?;
    if row.speedup_vs_1t >= min {
        Ok(Some(row.speedup_vs_1t))
    } else {
        Err(format!(
            "{benchmark}/{mode}: {threads}-thread speedup {:.2}x below required {min:.2}x",
            row.speedup_vs_1t
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp::Scale;

    fn fake_row(mode: &'static str, threads: usize, speedup: f64) -> ScalingRow {
        ScalingRow {
            benchmark: "vacation low",
            mode,
            threads,
            seconds: 1.0 / speedup,
            commits_per_sec: 100.0 * speedup,
            speedup_vs_1t: speedup,
            stats: TxStats::default(),
        }
    }

    #[test]
    fn gate_passes_fails_and_skips() {
        let rows = vec![
            fake_row("runtime-tree", 1, 1.0),
            fake_row("runtime-tree", 4, 2.1),
        ];
        let cores = available_parallelism();
        if cores >= 4 {
            assert_eq!(
                speedup_gate(&rows, "vacation low", "runtime-tree", 4, 1.5).unwrap(),
                Some(2.1)
            );
            assert!(speedup_gate(&rows, "vacation low", "runtime-tree", 4, 3.0).is_err());
        } else {
            assert_eq!(
                speedup_gate(&rows, "vacation low", "runtime-tree", 4, 1.5).unwrap(),
                None,
                "gate must skip when the hardware cannot run 4 threads"
            );
        }
        assert!(
            speedup_gate(&rows, "vacation low", "runtime-tree", 1, 0.5)
                .unwrap()
                .is_some(),
            "1-thread gate never skips"
        );
        assert!(speedup_gate(&rows, "nope", "runtime-tree", 1, 0.5).is_err());
    }

    #[test]
    fn json_has_rows_for_the_full_matrix() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows: Vec<ScalingRow> = vec![fake_row("baseline", 1, 1.0)];
        let json = scaling_json(&opts, &rows);
        assert!(json.contains("\"schema\": \"bench_scaling/v1\""));
        assert!(json.contains("\"thread_counts\": [1, 2, 4, 8]"));
        assert!(json.contains("\"speedup_vs_1t\": 1.000"));
        assert!(json.contains("\"clock_adopts\": 0"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    // One run of the full matrix at Test scale (seconds of wall time);
    // CI additionally smokes it through `expt scaling --scale test`.
    #[test]
    fn rows_cover_modes_and_thread_counts() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows = scaling_rows(&opts);
        assert_eq!(
            rows.len(),
            Benchmark::ALL.len() * scaling_modes().len() * THREAD_COUNTS.len()
        );
        for r in &rows {
            assert!(r.seconds >= 0.0 && r.speedup_vs_1t > 0.0);
        }
        // Every series' 1-thread row is its own speedup baseline.
        for r in rows.iter().filter(|r| r.threads == 1) {
            assert!((r.speedup_vs_1t - 1.0).abs() < 1e-9);
        }
    }
}
