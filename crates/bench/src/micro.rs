//! The `barrier_dispatch` microbenchmark: per-access cost of every barrier
//! path, pinned against the uninstrumented `load_direct`/`store_direct`
//! floor.
//!
//! This is the measurement behind the dispatch refactor's acceptance
//! criterion: with mode/log dispatch hoisted to runtime construction, the
//! captured-access fast path must sit within a small constant of a raw
//! access — and measurably below the enum-dispatch reference pipeline
//! (`TxConfig::reference_dispatch`), which re-decides the mode per access
//! the way the pre-refactor barriers did.

use std::time::Instant;

use crate::median;

use stm::{CheckScope, LogKind, Mode, Site, StmRuntime, TxConfig};
use txmem::MemConfig;

static S_SHARED: Site = Site::shared("micro.shared");
static S_CAP: Site = Site::captured_escaped("micro.captured");

/// Words accessed per transaction (amortizes begin/commit cost).
const WORDS: u64 = 256;

/// Every measured loop body performs one write and one read per word, so
/// per-access numbers divide by twice the word count.
const ACCESSES_PER_TXN: u64 = WORDS * 2;

/// One measured barrier path.
#[derive(Clone, Debug)]
pub struct MicroResult {
    pub name: String,
    pub ns_per_op: f64,
}

/// Options for one microbenchmark run.
#[derive(Clone, Copy, Debug)]
pub struct MicroOpts {
    /// Timed samples per measurement (median is reported).
    pub samples: usize,
    /// Transactions per sample.
    pub txns_per_sample: usize,
}

impl Default for MicroOpts {
    fn default() -> Self {
        MicroOpts {
            samples: 15,
            txns_per_sample: 64,
        }
    }
}

impl MicroOpts {
    /// Tiny run for smoke tests.
    pub fn smoke() -> MicroOpts {
        MicroOpts {
            samples: 3,
            txns_per_sample: 2,
        }
    }
}

/// One interleaved measurement row: a named transaction body bound to its
/// own (leaked — this is a one-shot bench process) runtime + worker.
struct Row {
    name: String,
    run: Box<dyn FnMut()>,
    /// Word accesses one `run` performs — the per-access divisor. The
    /// ranged span-1024 rows touch more words per transaction than the
    /// per-word rows, so the divisor is per row rather than global.
    accesses: u64,
    samples: Vec<f64>,
}

/// Measure all rows **interleaved**: every sampling round times one batch
/// of each row back to back, and each row reports the median of its own
/// per-round timings. Sequential per-row measurement (the previous shape)
/// let machine-load drift hit rows unequally — on a busy 1-core container
/// that skews cross-row *ratios*, which are exactly what the acceptance
/// gates consume. With interleaving, a slow period inflates every row of
/// that round together and the medians stay comparable.
fn measure_interleaved(opts: &MicroOpts, mut rows: Vec<Row>) -> Vec<MicroResult> {
    // Warm-up: fill allocator caches, fault memory, train the predictor.
    for row in &mut rows {
        for _ in 0..opts.txns_per_sample {
            (row.run)();
        }
    }
    for _ in 0..opts.samples {
        for row in &mut rows {
            let t0 = Instant::now();
            for _ in 0..opts.txns_per_sample {
                (row.run)();
            }
            row.samples.push(
                t0.elapsed().as_nanos() as f64
                    / (opts.txns_per_sample as u64 * row.accesses) as f64,
            );
        }
    }
    rows.into_iter()
        .map(|r| MicroResult {
            name: r.name,
            ns_per_op: median(r.samples),
        })
        .collect()
}

fn runtime_cfg(log: LogKind, reference: bool) -> TxConfig {
    TxConfig::builder()
        .mode(Mode::Runtime {
            log,
            scope: CheckScope::FULL,
        })
        .reference_dispatch(reference)
        .build()
        .expect("runtime microbench config is valid")
}

fn nursery_cfg(reference: bool) -> TxConfig {
    // Derive from the canonical preset (the documented single source of
    // truth for nursery-on comparisons) so these rows can never drift
    // from what expt/stamp_runner and the tests measure.
    let mut cfg = TxConfig::runtime_tree_nursery();
    cfg.reference_dispatch = reference;
    cfg
}

/// Measure every barrier path; returns results in display order.
pub fn barrier_dispatch(opts: &MicroOpts) -> Vec<MicroResult> {
    let mut rows: Vec<Row> = Vec::new();
    // Each row leaks its runtime so the worker (and the closure that owns
    // it) can borrow it for 'static; a handful of small simulated heaps
    // for the lifetime of a bench process.
    let mut spawn = |cfg: TxConfig| -> (&'static StmRuntime, stm::WorkerCtx<'static>) {
        let rt: &'static StmRuntime = Box::leak(Box::new(StmRuntime::new(MemConfig::small(), cfg)));
        let w = rt.spawn_worker();
        (rt, w)
    };
    let captured_row =
        |name: String,
         cfg: TxConfig,
         spawn: &mut dyn FnMut(TxConfig) -> (&'static StmRuntime, stm::WorkerCtx<'static>)|
         -> Row {
            let (_, mut w) = spawn(cfg);
            Row {
                name,
                run: Box::new(move || {
                    w.txn(|tx| {
                        let p = tx.alloc(WORDS * 8)?;
                        let mut acc = 0u64;
                        for i in 0..WORDS {
                            tx.write(&S_CAP, p.word(i), i)?;
                            acc = acc.wrapping_add(tx.read(&S_CAP, p.word(i))?);
                        }
                        tx.free(p);
                        Ok(std::hint::black_box(acc))
                    });
                }),
                accesses: ACCESSES_PER_TXN,
                samples: Vec::new(),
            }
        };

    // --- the uninstrumented floor: raw loads/stores of captured memory ---
    {
        let (_, mut w) = spawn(TxConfig::default());
        rows.push(Row {
            name: "direct (load+store, no barrier)".into(),
            run: Box::new(move || {
                w.txn(|tx| {
                    let p = tx.alloc(WORDS * 8)?;
                    let mut acc = 0u64;
                    for i in 0..WORDS {
                        tx.store_direct(p.word(i), i);
                        acc = acc.wrapping_add(tx.load_direct(p.word(i)));
                    }
                    tx.free(p);
                    Ok(std::hint::black_box(acc))
                });
            }),
            accesses: ACCESSES_PER_TXN,
            samples: Vec::new(),
        });
    }

    // --- captured-access fast path, monomorphized, per policy ---
    for log in LogKind::ALL {
        rows.push(captured_row(
            format!("captured heap hit/{}", log.name()),
            runtime_cfg(log, false),
            &mut spawn,
        ));
    }

    // --- the same workload through the typed object layer ---
    // Zero-cost pin: `alloc_buf`/`write_elem`/`read_elem` must lower to
    // the identical inline fast path as the raw `alloc`/`write`/`read`
    // row above (tree log, same block size, same access pattern). Gated
    // against the raw tree row in release runs (`--max-typed-ratio`).
    {
        let (_, mut w) = spawn(runtime_cfg(LogKind::Tree, false));
        rows.push(Row {
            name: "captured heap hit/tree (typed)".into(),
            run: Box::new(move || {
                w.txn(|tx| {
                    let b = tx.alloc_buf::<u64>(WORDS)?;
                    let mut acc = 0u64;
                    for i in 0..WORDS {
                        tx.write_elem(&S_CAP, b, i, i)?;
                        acc = acc.wrapping_add(tx.read_elem(&S_CAP, b, i)?);
                    }
                    tx.free_buf(b);
                    Ok(std::hint::black_box(acc))
                });
            }),
            accesses: ACCESSES_PER_TXN,
            samples: Vec::new(),
        });
    }

    // --- nursery bump region: the two-compare captured-heap check ---
    for reference in [false, true] {
        rows.push(captured_row(
            if reference {
                "captured heap hit/nursery (reference dispatch)".into()
            } else {
                "captured heap hit/nursery".into()
            },
            nursery_cfg(reference),
            &mut spawn,
        ));
    }

    // --- the same, through the enum-dispatch reference pipeline ---
    for log in LogKind::ALL {
        rows.push(captured_row(
            format!("captured heap hit/{} (reference dispatch)", log.name()),
            runtime_cfg(log, true),
            &mut spawn,
        ));
    }

    // --- stack-captured fast path (one range compare) ---
    {
        let (_, mut w) = spawn(runtime_cfg(LogKind::Tree, false));
        rows.push(Row {
            name: "captured stack hit".into(),
            run: Box::new(move || {
                w.txn(|tx| {
                    let f = tx.stack_push(WORDS as usize);
                    let mut acc = 0u64;
                    for i in 0..WORDS {
                        tx.write(&S_CAP, f.word(i), i)?;
                        acc = acc.wrapping_add(tx.read(&S_CAP, f.word(i))?);
                    }
                    tx.stack_pop(WORDS as usize);
                    Ok(std::hint::black_box(acc))
                });
            }),
            accesses: ACCESSES_PER_TXN,
            samples: Vec::new(),
        });
    }

    // --- full STM barrier on shared memory, for scale ---
    {
        let (rt, mut w) = spawn(TxConfig::default());
        let buf = rt.alloc_global(WORDS * 8);
        rows.push(Row {
            name: "full barrier (shared)".into(),
            run: Box::new(move || {
                w.txn(|tx| {
                    let mut acc = 0u64;
                    for i in 0..WORDS {
                        tx.write(&S_SHARED, buf.word(i), i)?;
                        acc = acc.wrapping_add(tx.read(&S_SHARED, buf.word(i))?);
                    }
                    Ok(std::hint::black_box(acc))
                });
            }),
            accesses: ACCESSES_PER_TXN,
            samples: Vec::new(),
        });
    }

    // --- ranged barriers: classify once per span instead of per word ---
    // Captured rows pin the bulk-copy lowering (the tentpole's headline
    // number, gated vs the per-word tree row by `--max-ranged-ratio`);
    // shared rows pin the one-orec-per-stripe batching against the
    // per-word full barrier. Ranged rows use a 4096-word block (hence the
    // per-row `accesses` divisor): at 256 words the begin/alloc/commit
    // fixed cost *is* the measurement (the `direct` floor), drowning the
    // per-word span cost these rows exist to track.
    for span in [4u64, 64, 1024] {
        let block = 4096u64.max(span);
        {
            let (_, mut w) = spawn(runtime_cfg(LogKind::Tree, false));
            let mut buf = vec![0u64; span as usize];
            rows.push(Row {
                name: format!("ranged captured span {span}/tree"),
                run: Box::new(move || {
                    w.txn(|tx| {
                        let p = tx.alloc(block * 8)?;
                        let mut acc = 0u64;
                        for s in 0..block / span {
                            tx.write_range(&S_CAP, p.word(s * span), &buf)?;
                            tx.read_range(&S_CAP, p.word(s * span), &mut buf)?;
                            acc = acc.wrapping_add(buf[0]);
                        }
                        tx.free(p);
                        Ok(std::hint::black_box(acc))
                    });
                }),
                accesses: block * 2,
                samples: Vec::new(),
            });
        }
        {
            let (rt, mut w) = spawn(TxConfig::default());
            let gbuf = rt.alloc_global(block * 8);
            let mut buf = vec![0u64; span as usize];
            rows.push(Row {
                name: format!("ranged shared span {span}"),
                run: Box::new(move || {
                    w.txn(|tx| {
                        let mut acc = 0u64;
                        for s in 0..block / span {
                            tx.write_range(&S_SHARED, gbuf.word(s * span), &buf)?;
                            tx.read_range(&S_SHARED, gbuf.word(s * span), &mut buf)?;
                            acc = acc.wrapping_add(buf[0]);
                        }
                        Ok(std::hint::black_box(acc))
                    });
                }),
                accesses: block * 2,
                samples: Vec::new(),
            });
        }
    }

    // Display order == declaration order; interleaving only affects when
    // each row's batches execute.
    measure_interleaved(opts, rows)
}

/// The headline ratio of the acceptance criterion: monomorphized
/// captured-heap hit (tree) over the uninstrumented floor.
pub fn fastpath_ratio(results: &[MicroResult]) -> Option<f64> {
    ratio_of(results, "captured heap hit/tree")
}

/// The nursery acceptance ratio (ISSUE 4): captured-heap hit through the
/// nursery's scalar range test over the uninstrumented floor.
pub fn nursery_ratio(results: &[MicroResult]) -> Option<f64> {
    ratio_of(results, "captured heap hit/nursery")
}

/// The typed layer's zero-cost ratio (ISSUE 5): the captured-heap hit
/// through `alloc_buf`/`write_elem`/`read_elem` over the identical
/// workload through the raw word API (both tree log). Release acceptance
/// bar: ≤ 1.10x; CI gates looser for noisy shared runners.
pub fn typed_ratio(results: &[MicroResult]) -> Option<f64> {
    let find = |name: &str| results.iter().find(|r| r.name == name).map(|r| r.ns_per_op);
    let raw = find("captured heap hit/tree")?;
    let typed = find("captured heap hit/tree (typed)")?;
    if raw > 0.0 {
        Some(typed / raw)
    } else {
        None
    }
}

/// The ranged-barrier acceptance ratio (ISSUE 6): per-word cost of a
/// 64-word captured span through `write_range`/`read_range` over the
/// per-word captured-hit row (both tree log). The ISSUE bar is ≥4x faster
/// per word, i.e. a ratio ≤ 0.25 in release runs (`--max-ranged-ratio`).
pub fn ranged_ratio(results: &[MicroResult]) -> Option<f64> {
    let find = |name: &str| results.iter().find(|r| r.name == name).map(|r| r.ns_per_op);
    let per_word = find("captured heap hit/tree")?;
    let ranged = find("ranged captured span 64/tree")?;
    if per_word > 0.0 {
        Some(ranged / per_word)
    } else {
        None
    }
}

fn ratio_of(results: &[MicroResult], name: &str) -> Option<f64> {
    let find = |name: &str| results.iter().find(|r| r.name == name).map(|r| r.ns_per_op);
    let direct = find("direct (load+store, no barrier)")?;
    let captured = find(name)?;
    if direct > 0.0 {
        Some(captured / direct)
    } else {
        None
    }
}

/// Markdown rendering for the `expt barriers` subcommand.
pub fn barrier_dispatch_markdown(opts: &MicroOpts) -> String {
    render_markdown(&barrier_dispatch(opts), opts)
}

/// Render already-collected results (lets callers also gate on the ratio
/// without re-measuring).
pub fn render_markdown(results: &[MicroResult], opts: &MicroOpts) -> String {
    let mut out = String::new();
    out.push_str("## barrier_dispatch — per-access barrier cost (ns, lower is better)\n\n");
    out.push_str(&format!(
        "{} words per txn, one write + one read each; median of {} samples x {} txns.\n\n",
        WORDS, opts.samples, opts.txns_per_sample
    ));
    out.push_str("| path | ns/access |\n|---|---:|\n");
    for r in results {
        out.push_str(&format!("| {} | {:.2} |\n", r.name, r.ns_per_op));
    }
    if let Some(ratio) = fastpath_ratio(results) {
        out.push_str(&format!(
            "\ncaptured-heap fast path (tree) vs direct: {ratio:.2}x\n"
        ));
    }
    if let Some(ratio) = nursery_ratio(results) {
        out.push_str(&format!(
            "captured-heap fast path (nursery) vs direct: {ratio:.2}x\n"
        ));
    }
    if let Some(ratio) = typed_ratio(results) {
        out.push_str(&format!(
            "typed layer vs raw word API (tree captured hit): {ratio:.2}x\n"
        ));
    }
    if let Some(ratio) = ranged_ratio(results) {
        out.push_str(&format!(
            "ranged captured span 64 vs per-word (tree captured hit): {ratio:.2}x per word\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_measures_every_path() {
        let results = barrier_dispatch(&MicroOpts::smoke());
        assert_eq!(results.len(), 18);
        assert!(results.iter().all(|r| r.ns_per_op > 0.0));
        let ratio = fastpath_ratio(&results).expect("both pin measurements present");
        assert!(ratio.is_finite() && ratio > 0.0);
        let nratio = nursery_ratio(&results).expect("nursery pin present");
        assert!(nratio.is_finite() && nratio > 0.0);
        let tratio = typed_ratio(&results).expect("typed pin present");
        assert!(tratio.is_finite() && tratio > 0.0);
        let rratio = ranged_ratio(&results).expect("ranged pin present");
        assert!(rratio.is_finite() && rratio > 0.0);
        // No timing assertion here: debug builds and CI noise make absolute
        // ratios meaningless outside `--release` runs.
    }
}
