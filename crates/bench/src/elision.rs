//! The barrier-elision experiment (`expt elision`): run the real `txcc`
//! analyses over STAMP-representative mini-language programs and compare
//! three compiler configurations —
//!
//! * **intraprocedural**: the paper's §3.2 flow analysis with *no* help
//!   across calls;
//! * **intraproc+inlining**: the same analysis after bounded inlining
//!   (the paper's actual pipeline — "relies on function inlining to
//!   extend the analysis results across function calls");
//! * **interprocedural**: the summary-based whole-program pass
//!   (`txcc::interproc`), no inlining at all.
//!
//! Each mini-app mirrors the transactional shape DESIGN.md §4.4 describes
//! for its STAMP namesake — helper constructors behind the allocator
//! guard that defeats bounded inlining, captured-buffer laundering,
//! stack-slot iterators, and the no-opportunity kernels — so the
//! cross-config deltas are the ones the site tags in `crates/stamp` claim.
//!
//! The experiment is also a gate. For every app it asserts:
//!
//! 1. **superset** — the interprocedural pass elides every site the
//!    intraprocedural pass elides ([`txcc::interproc::check_superset`]);
//! 2. **ordering** — dynamically executed elisions are `interproc ≥
//!    intraproc` and `interproc ≥ intraproc+inlining` per app, and
//!    strictly greater than intraprocedural in aggregate;
//! 3. **soundness** — a naive build runs under the runtime's precise
//!    capture oracle ([`txcc::SiteAudit`]) and every interprocedural
//!    `Elide` site must be observed captured on all executions;
//! 4. **semantics** — all four builds produce bit-identical shared memory.
//!
//! `expt elision` prints the Markdown table; `--out` writes
//! `BENCH_elision.json` (committed snapshot, like the other BENCH files).

use stm::{StmRuntime, TxConfig};
use txcc::capture::{desugar_address_taken, sites_in_atomic};
use txcc::codegen::OptLevel;
use txcc::{compile, interproc, parse, Vm};
use txmem::MemConfig;

use crate::report::esc;

/// One STAMP-representative mini-language program.
pub struct MiniApp {
    pub name: &'static str,
    /// What the app demonstrates (one line, carried into the report).
    pub pattern: &'static str,
    src: &'static str,
    /// Loop-trip argument passed to `main(s, n)`.
    n: u64,
    /// Words of shared buffer handed to `main`.
    shared_words: u64,
}

/// The corpus. Every `main` takes `(s, n)`: a shared buffer and a trip
/// count. Helpers carry the allocator-failure guard (an early return)
/// that real STAMP constructors have, which makes them un-inlinable for
/// `txcc::inline` — precisely the gap the interprocedural pass closes.
pub const APPS: &[MiniApp] = &[
    MiniApp {
        name: "genome",
        pattern: "segment nodes built by a factory too big for bounded inlining; caller links them",
        src: "fn mk_node(key, val) {
                  var node = malloc(208);
                  node[1] = key;
                  node[2] = val;
                  node[3] = 0;
                  node[4] = 0;
                  node[5] = 0;
                  node[6] = 0;
                  node[7] = 0;
                  node[8] = 0;
                  node[9] = 0;
                  node[10] = 0;
                  node[11] = 0;
                  node[12] = 0;
                  node[13] = 0;
                  node[14] = 0;
                  node[15] = 0;
                  node[16] = 0;
                  node[17] = 0;
                  node[18] = 0;
                  node[19] = 0;
                  node[20] = 0;
                  node[21] = 0;
                  node[22] = 0;
                  node[23] = 0;
                  node[24] = 0;
                  return node;
              }
              fn main(s, n) {
                  var i = 0;
                  while (i < n) {
                      atomic {
                          var node = mk_node(i, i * 2);
                          node[0] = s[0];
                          s[0] = node;
                      }
                      i = i + 1;
                  }
                  return 0;
              }",
        n: 48,
        shared_words: 8,
    },
    MiniApp {
        name: "vacation",
        pattern: "caller allocates records; a guarded constructor initializes through the pointer",
        src: "fn res_init(rec, total, price) {
                  if (total == 0) { return 0; }
                  rec[0] = total;
                  rec[1] = total;
                  rec[2] = price;
                  return 1;
              }
              fn main(s, n) {
                  var i = 0;
                  while (i < n) {
                      atomic {
                          var rec = malloc(24);
                          var z = res_init(rec, 50 + i, 90);
                          s[i + 1] = rec;
                          s[0] = s[0] + 1;
                      }
                      i = i + 1;
                  }
                  return 0;
              }",
        n: 48,
        shared_words: 64,
    },
    MiniApp {
        name: "intruder",
        pattern: "flow record from an oversized factory, finished through a guarded helper",
        src: "fn set_sum(rec, v) {
                  if (v > 1048576) { return 0; }
                  rec[2] = v;
                  return 1;
              }
              fn mk_flow(expect) {
                  var rec = malloc(224);
                  rec[1] = expect;
                  rec[3] = 0;
                  rec[4] = 0;
                  rec[5] = 0;
                  rec[6] = 0;
                  rec[7] = 0;
                  rec[8] = 0;
                  rec[9] = 0;
                  rec[10] = 0;
                  rec[11] = 0;
                  rec[12] = 0;
                  rec[13] = 0;
                  rec[14] = 0;
                  rec[15] = 0;
                  rec[16] = 0;
                  rec[17] = 0;
                  rec[18] = 0;
                  rec[19] = 0;
                  rec[20] = 0;
                  rec[21] = 0;
                  rec[22] = 0;
                  rec[23] = 0;
                  rec[24] = 0;
                  rec[25] = 0;
                  return rec;
              }
              fn main(s, n) {
                  var i = 0;
                  while (i < n) {
                      atomic {
                          var rec = mk_flow(4);
                          rec[0] = 1;
                          var z = set_sum(rec, i);
                          s[0] = s[0] + rec[2];
                      }
                      i = i + 1;
                  }
                  return 0;
              }",
        n: 48,
        shared_words: 8,
    },
    MiniApp {
        name: "kmeans",
        pattern: "shared accumulator updates only: no elision opportunity in any pipeline",
        src: "fn main(s, n) {
                  var i = 0;
                  while (i < n) {
                      atomic {
                          var k = i - (i / 4) * 4;
                          s[k] = s[k] + 1;
                          s[4] = s[4] + 1;
                      }
                      i = i + 1;
                  }
                  return 0;
              }",
        n: 64,
        shared_words: 8,
    },
    MiniApp {
        name: "labyrinth",
        pattern: "grid writes are genuinely shared; BFS bookkeeping lives in registers",
        src: "fn main(s, n) {
                  var i = 0;
                  while (i < n) {
                      atomic {
                          var pos = s[8 + i];
                          s[16 + pos] = i;
                          s[0] = s[0] + 1;
                      }
                      i = i + 1;
                  }
                  return 0;
              }",
        n: 48,
        shared_words: 80,
    },
    MiniApp {
        name: "ssca2",
        pattern: "adjacency temp laundered through a captured cell (field-aware load)",
        src: "fn main(s, n) {
                  atomic {
                      var buf = malloc(16);
                      var tmp = malloc(8);
                      buf[0] = tmp;
                      var t2 = buf[0];
                      t2[0] = 7;
                      var j = 0;
                      while (j < n) {
                          s[2 + j] = t2[0];
                          j = j + 1;
                      }
                  }
                  return 0;
              }",
        n: 48,
        shared_words: 64,
    },
    MiniApp {
        name: "yada",
        pattern: "cavity refinement: loop-allocated elements initialized by a guarded helper",
        src: "fn elem_init(e, quality) {
                  if (quality > 100) { return 0; }
                  e[0] = quality;
                  return 1;
              }
              fn main(s, n) {
                  var i = 0;
                  while (i < n) {
                      atomic {
                          var cavity = malloc(8);
                          cavity[0] = 0;
                          var j = 0;
                          while (j < 3) {
                              var e = malloc(32);
                              var z = elem_init(e, 60 + j);
                              e[1] = cavity[0];
                              cavity[0] = e;
                              j = j + 1;
                          }
                          var head = cavity[0];
                          s[0] = head;
                          s[1] = s[1] + 3;
                      }
                      i = i + 1;
                  }
                  return 0;
              }",
        n: 24,
        shared_words: 8,
    },
    MiniApp {
        name: "bayes",
        pattern: "Fig. 1(a) stack iterator advanced by a helper through its address",
        src: "fn advance(itp, v) {
                  if (v > 1048576) { return 0; }
                  itp[0] = v;
                  return 1;
              }
              fn main(s, n) {
                  var i = 0;
                  while (i < n) {
                      atomic {
                          var it;
                          var a = &it;
                          a[0] = s[0];
                          var z = advance(a, i);
                          var cur = a[0];
                          s[1] = s[1] + cur;
                      }
                      i = i + 1;
                  }
                  return 0;
              }",
        n: 48,
        shared_words: 8,
    },
];

/// Figure-8 categories of the app's barriers (from the audited classify
/// run of the naive build; the VM's sites are `required`, so the
/// "not required (other)" bucket is structurally empty here).
#[derive(Clone, Copy, Debug, Default)]
pub struct Fig8 {
    pub heap: u64,
    pub stack: u64,
    pub other: u64,
    pub required: u64,
}

/// One compiler configuration's numbers for one app.
#[derive(Clone, Debug)]
pub struct ConfigRow {
    pub config: &'static str,
    /// Static instrumentation of normal (non-clone) code.
    pub static_elided: usize,
    pub static_barriers: usize,
    /// Dynamically executed barrier ops (`LoadTx`+`StoreTx`).
    pub dyn_barriers: u64,
    /// Barrier executions the configuration removed vs. the naive build.
    pub dyn_elided: u64,
    /// `dyn_elided / naive_barriers` (the per-app elision rate).
    pub rate: f64,
}

/// Everything measured for one mini-app.
#[derive(Clone, Debug)]
pub struct AppReport {
    pub app: &'static str,
    pub pattern: &'static str,
    pub sites_in_atomic: usize,
    /// Barrier executions of the naive build (the denominator).
    pub naive_barriers: u64,
    pub fig8: Fig8,
    pub rows: Vec<ConfigRow>,
}

struct RunResult {
    snapshot: Vec<u64>,
    tx_ops: u64,
}

/// Execute one compiled build against a fresh runtime; returns the shared
/// buffer snapshot and the executed barrier-op count. `audit` requests a
/// classify-mode runtime and per-site capture observations.
fn run_app(
    app: &MiniApp,
    prog: &txcc::CompiledProgram,
    n_sites: usize,
    audit: bool,
) -> (RunResult, Option<(txcc::SiteAudit, stm::TxStats)>) {
    let mut cfg = TxConfig::default();
    cfg.classify = audit;
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let shared = rt.alloc_global(app.shared_words * 8);
    let mut w = rt.spawn_worker();
    let mut vm = if audit {
        Vm::with_audit(prog, n_sites)
    } else {
        Vm::new(prog)
    };
    vm.run(&mut w, "main", &[shared.raw(), app.n]);
    let snapshot: Vec<u64> = (0..app.shared_words)
        .map(|i| w.load(shared.word(i)))
        .collect();
    let tx_ops = vm.stats.tx_loads + vm.stats.tx_stores;
    // Read the per-worker stats *before* they flush into the runtime
    // aggregate on drop (flush_stats zeroes them).
    let stats = w.stats;
    drop(w);
    (RunResult { snapshot, tx_ops }, vm.audit.map(|a| (a, stats)))
}

/// Run the full experiment and enforce its gates; panics with a precise
/// message on any violation (CI runs this as a smoke step).
pub fn elision_report() -> Vec<AppReport> {
    let mut reports = Vec::new();
    let mut total_intra = 0u64;
    let mut total_inter = 0u64;
    for app in APPS {
        // One desugared, non-inlined program shared by every site-indexed
        // artifact (desugaring is deterministic and idempotent, so the
        // compile() calls below reproduce the same site numbering).
        let mut prog = parse(app.src).unwrap_or_else(|e| panic!("{}: parse: {e:?}", app.name));
        desugar_address_taken(&mut prog);
        let n_sites = prog.n_sites;
        let interproc_result = interproc::analyze_program(&prog);
        interproc::check_superset(&prog, &interproc_result)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));

        let naive = compile(&prog, OptLevel::Naive);
        let intra = compile(&prog, OptLevel::CaptureAnalysis);
        let inline = txcc::build(app.src, OptLevel::CaptureAnalysis).unwrap();
        let inter = compile(&prog, OptLevel::CaptureInterproc);

        // Ground truth: audited naive run under the classify oracle.
        let (naive_run, audit) = run_app(app, &naive, n_sites, true);
        let (site_audit, classify_stats) = audit.expect("audited run");
        let all = classify_stats.all_accesses();
        let fig8 = Fig8 {
            heap: all.class_heap,
            stack: all.class_stack,
            other: all.class_other,
            required: all.class_required,
        };
        // Soundness gate: every interprocedural Elide site must be
        // observed captured on all executions, per compilation context.
        for (site, (nv, tv)) in interproc_result
            .normal
            .verdicts
            .iter()
            .zip(&interproc_result.tx.verdicts)
            .enumerate()
        {
            if *nv == txcc::Verdict::Elide {
                assert!(
                    site_audit.normal[site].always_captured(),
                    "{}: site {site} elided (normal) but observed uncaptured",
                    app.name
                );
            }
            if *tv == txcc::Verdict::Elide {
                assert!(
                    site_audit.tx[site].always_captured(),
                    "{}: site {site} elided (tx clone) but observed uncaptured",
                    app.name
                );
            }
        }

        let mut rows = Vec::new();
        let mut dyn_of = |label: &'static str, compiled: &txcc::CompiledProgram| -> u64 {
            let (run, _) = run_app(app, compiled, n_sites, false);
            assert_eq!(
                run.snapshot, naive_run.snapshot,
                "{}: {label} build diverged from the naive build",
                app.name
            );
            assert!(
                run.tx_ops <= naive_run.tx_ops,
                "{}: {label} executed more barriers than naive",
                app.name
            );
            let elided = naive_run.tx_ops - run.tx_ops;
            rows.push(ConfigRow {
                config: label,
                static_elided: compiled.stats.elided,
                static_barriers: compiled.stats.barriers,
                dyn_barriers: run.tx_ops,
                dyn_elided: elided,
                rate: if naive_run.tx_ops == 0 {
                    0.0
                } else {
                    elided as f64 / naive_run.tx_ops as f64
                },
            });
            elided
        };
        let e_intra = dyn_of("intraprocedural", &intra);
        let e_inline = dyn_of("intraproc+inlining", &inline);
        let e_inter = dyn_of("interprocedural", &inter);
        // Ordering gates.
        assert!(
            e_inter >= e_intra,
            "{}: interproc ({e_inter}) < intraproc ({e_intra})",
            app.name
        );
        assert!(
            e_inter >= e_inline,
            "{}: interproc ({e_inter}) < intraproc+inlining ({e_inline})",
            app.name
        );
        total_intra += e_intra;
        total_inter += e_inter;

        reports.push(AppReport {
            app: app.name,
            pattern: app.pattern,
            sites_in_atomic: sites_in_atomic(&prog),
            naive_barriers: naive_run.tx_ops,
            fig8,
            rows,
        });
    }
    assert!(
        total_inter > total_intra,
        "interprocedural pass must elide strictly more than intraprocedural \
         in aggregate ({total_inter} vs {total_intra})"
    );
    reports
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Markdown rendering for `expt elision`.
pub fn render_markdown(reports: &[AppReport]) -> String {
    let mut out = String::new();
    out.push_str("## Elision — static capture analysis across call boundaries\n\n");
    out.push_str(
        "Dynamically executed barrier elisions per configuration (percent of the \
         naive build's barrier executions), on STAMP-representative TL programs.\n\n",
    );
    out.push_str(
        "| app | sites in atomic | naive barrier ops | intraproc | intraproc+inlining | interproc |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|\n");
    for r in reports {
        let mut row = format!(
            "| {} | {} | {} |",
            r.app, r.sites_in_atomic, r.naive_barriers
        );
        for c in &r.rows {
            row.push_str(&format!(" {:.1} |", 100.0 * c.rate));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push('\n');
    out.push_str("### Figure-8 categories (audited naive run, percent of barriers)\n\n");
    out.push_str("| app | tx-local heap | tx-local stack | other | required |\n");
    out.push_str("|---|---:|---:|---:|---:|\n");
    for r in reports {
        let f = r.fig8;
        let total = f.heap + f.stack + f.other + f.required;
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
            r.app,
            pct(f.heap, total),
            pct(f.stack, total),
            pct(f.other, total),
            pct(f.required, total),
        ));
    }
    out.push('\n');
    out.push_str("Patterns:\n\n");
    for r in reports {
        out.push_str(&format!("* **{}** — {}\n", r.app, r.pattern));
    }
    out.push('\n');
    out
}

/// JSON report (`BENCH_elision.json`); handwritten like the other BENCH
/// emitters (no serde in the offline container).
pub fn elision_json(reports: &[AppReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench_elision/v1\",\n");
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));
    out.push_str("  \"apps\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"app\": \"{}\",\n", esc(r.app)));
        out.push_str(&format!("      \"pattern\": \"{}\",\n", esc(r.pattern)));
        out.push_str(&format!(
            "      \"sites_in_atomic\": {},\n      \"naive_barrier_ops\": {},\n",
            r.sites_in_atomic, r.naive_barriers
        ));
        let f = r.fig8;
        out.push_str(&format!(
            "      \"fig8\": {{\"heap\": {}, \"stack\": {}, \"other\": {}, \"required\": {}}},\n",
            f.heap, f.stack, f.other, f.required
        ));
        out.push_str("      \"configs\": [\n");
        for (j, c) in r.rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"config\": \"{}\", \"static_elided\": {}, \"static_barriers\": {}, \
                 \"dyn_barrier_ops\": {}, \"dyn_elided_ops\": {}, \"elision_rate\": {:.4}}}{}\n",
                esc(c.config),
                c.static_elided,
                c.static_barriers,
                c.dyn_barriers,
                c.dyn_elided,
                c.rate,
                if j + 1 < r.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_hold_and_report_shapes_up() {
        // elision_report() itself asserts the superset, ordering,
        // soundness and determinism gates — running it IS the acceptance
        // test. Then spot-check the per-app expectations the corpus was
        // designed around.
        let reports = elision_report();
        assert_eq!(reports.len(), APPS.len());
        let by_name = |n: &str| reports.iter().find(|r| r.app == n).unwrap();
        let rate = |r: &AppReport, cfg: &str| r.rows.iter().find(|c| c.config == cfg).unwrap().rate;
        // The guarded-helper apps are interproc-only wins.
        for app in ["genome", "vacation", "intruder", "ssca2", "yada", "bayes"] {
            let r = by_name(app);
            assert!(
                rate(r, "interprocedural") > rate(r, "intraproc+inlining"),
                "{app}: interproc must beat inlining"
            );
        }
        // The no-opportunity kernels stay at zero in every pipeline.
        for app in ["kmeans", "labyrinth"] {
            let r = by_name(app);
            for c in &r.rows {
                assert_eq!(c.dyn_elided, 0, "{app}/{}", c.config);
            }
        }

        let md = render_markdown(&reports);
        assert!(md.contains("| genome |"));
        let json = elision_json(&reports);
        assert!(json.contains("\"schema\": \"bench_elision/v1\""));
        assert!(json.contains("\"app\": \"yada\""));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }
}
