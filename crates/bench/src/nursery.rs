//! The nursery-on vs nursery-off experiment (ISSUE 4): the same runtime
//! capture analysis (tree log, full scope) across STAMP, with and without
//! per-transaction nursery allocation, plus the nursery's own telemetry
//! (scalar-hit share, regions carved, bytes recycled wholesale).

use stamp::Benchmark;
use stm::TxConfig;

use crate::{median, time_runs, ExptOpts};

/// One benchmark's comparison row.
#[derive(Clone, Debug)]
pub struct NurseryRow {
    pub benchmark: &'static str,
    /// Median seconds under runtime-tree (nursery off).
    pub tree_s: f64,
    /// Median seconds under runtime-tree+nursery.
    pub nursery_s: f64,
    /// Barriers whose verdict came from the nursery scalar range.
    pub nursery_hits: u64,
    /// Heap-elided + parent-captured barriers (the population the nursery
    /// competes for).
    pub heap_verdicts: u64,
    pub regions: u64,
    pub bytes_recycled: u64,
}

impl NurseryRow {
    /// Percent improvement of nursery-on over nursery-off (positive =
    /// nursery faster).
    pub fn improvement_pct(&self) -> f64 {
        100.0 * (self.tree_s - self.nursery_s) / self.tree_s
    }

    /// Share of captured-heap verdicts served by the scalar range test.
    pub fn hit_share(&self) -> f64 {
        if self.heap_verdicts == 0 {
            0.0
        } else {
            self.nursery_hits as f64 / self.heap_verdicts as f64
        }
    }
}

/// Run the comparison over `benchmarks` (default: the whole suite).
pub fn nursery_rows(opts: &ExptOpts, benchmarks: Option<&[Benchmark]>) -> Vec<NurseryRow> {
    let tree = TxConfig::runtime_tree_full();
    let nursery = TxConfig::runtime_tree_nursery();
    let suite: Vec<Benchmark> = match benchmarks {
        Some(b) => b.to_vec(),
        None => Benchmark::ALL.to_vec(),
    };
    suite
        .into_iter()
        .map(|b| {
            let tree_s = median(time_runs(b, opts.scale, tree, opts.threads, opts.runs));
            let nursery_s = median(time_runs(b, opts.scale, nursery, opts.threads, opts.runs));
            let r = b.run(opts.scale, nursery, opts.threads);
            assert!(r.verified, "{} failed under nursery", b.name());
            let all = r.stats.all_accesses();
            NurseryRow {
                benchmark: b.name(),
                tree_s,
                nursery_s,
                nursery_hits: r.stats.nursery_hits,
                heap_verdicts: all.elided_heap + all.parent_captured,
                regions: r.stats.nursery_regions,
                bytes_recycled: r.stats.nursery_bytes_recycled,
            }
        })
        .collect()
}

/// Markdown table for the `expt nursery` subcommand.
pub fn render_markdown(opts: &ExptOpts, rows: &[NurseryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Nursery allocation — runtime-tree vs runtime-tree+nursery \
         ({:?} scale, {} threads, median of {} runs)\n\n",
        opts.scale, opts.threads, opts.runs
    ));
    out.push_str(
        "| benchmark | tree (s) | nursery (s) | improvement % | scalar-hit share | \
         regions | bytes recycled |\n|---|---:|---:|---:|---:|---:|---:|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.4} | {:.4} | {:+.1} | {:.2} | {} | {} |\n",
            r.benchmark,
            r.tree_s,
            r.nursery_s,
            r.improvement_pct(),
            r.hit_share(),
            r.regions,
            r.bytes_recycled,
        ));
    }
    out.push_str(
        "\nscalar-hit share = nursery_hits / (heap-elided + parent-captured) barriers; \
         the remainder went through the fallback log (overflow/demoted/large blocks).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp::Scale;

    #[test]
    fn rows_cover_and_hit() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 1,
            runs: 1,
        };
        let rows = nursery_rows(&opts, Some(&[Benchmark::VacationLow, Benchmark::Intruder]));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.tree_s > 0.0 && r.nursery_s > 0.0);
            assert!(r.nursery_hits > 0, "{}: nursery idle", r.benchmark);
            assert!(
                r.hit_share() > 0.5,
                "{}: share {}",
                r.benchmark,
                r.hit_share()
            );
        }
        let md = render_markdown(&opts, &rows);
        assert!(md.contains("| vacation low |"));
        assert!(md.contains("| intruder |"));
    }
}
