//! The durability-tax experiment (`expt durability`): what does the
//! durable redo-log commit mode (`TxConfig::durable`) cost, and how much
//! of that cost does the paper's captured-memory analysis claw back?
//!
//! Two drivers bracket the answer:
//!
//! - `shared` — a bank-transfer loop whose every write hits pre-existing
//!   shared memory. Nothing is captured, so every committed word must be
//!   logged: this is the durability worst case and the honest price tag.
//! - `captured` — an allocate-fill-publish loop: each transaction fills a
//!   fresh block through captured barriers and publishes one pointer.
//!   Per-word logging is elided for the entire fill (the block survives,
//!   so it is logged once as a single coalesced content range), and the
//!   reported `skip_ratio` shows the dividend.
//!
//! Each driver runs at three durability modes: `off` (transient
//!   baseline), `strict` (`durable_flush_batch = 1`, a disk append inside
//!   every commit), and `group8` (`durable_flush_batch = 8`, buffered
//!   group commit). The tax of a durable row is its wall time over the
//!   same driver's `off` row.
//!
//! Emits `BENCH_durability.json` (committed snapshot, like
//! `BENCH_merge.json`) so future PRs that touch the commit spine or the
//! redo-log encoder have a durability trajectory to diff against.

use stamp::Scale;
use stm::{SimDisk, Site, StmRuntime, TxConfig, TxStats};
use txmem::{Addr, MemConfig};

use crate::report::{esc, scale_name};
use crate::skew::Rng;
use crate::{median, ExptOpts};

/// The durability-mode axis, in row order. `off` must come first: it
/// seeds the tax baseline of the durable rows.
pub const MODES: [&str; 3] = ["off", "strict", "group8"];

/// The drivers, in row order.
pub const DRIVERS: [&str; 2] = ["shared", "captured"];

static S_ACCT: Site = Site::shared("durability.account");
static S_SLOT: Site = Site::shared("durability.slot");
static S_FILL: Site = Site::captured_local("durability.fill");

const ACCOUNTS: u64 = 1024;
const SEED_BALANCE: u64 = 10_000;
const SLOTS: u64 = 256;
const BLK_WORDS: u64 = 16;

/// Logical transactions per thread per driver. Smaller than the merge
/// experiment's axis: durable rows keep their whole redo log in the
/// simulated disk (no checkpointer runs during timing), so the count
/// bounds the log footprint.
fn per_thread(scale: Scale) -> usize {
    match scale {
        Scale::Test => 2_048,
        Scale::Small => 16_384,
        Scale::Full => 65_536,
    }
}

/// `flush_batch` of a mode name; `None` = durability off.
fn mode_flush_batch(mode: &str) -> Option<u32> {
    match mode {
        "off" => None,
        "strict" => Some(1),
        "group8" => Some(8),
        other => panic!("unknown durability mode {other}"),
    }
}

fn durability_cfg(mode: &str) -> TxConfig {
    let mut b = TxConfig::builder().mode(stm::Mode::Runtime {
        log: stm::LogKind::Tree,
        scope: stm::CheckScope::FULL,
    });
    if let Some(batch) = mode_flush_batch(mode) {
        b = b.durable(true).durable_flush_batch(batch);
    }
    b.build().expect("modes are validated at the CLI boundary")
}

/// Build the runtime for a mode: transient, or durable over a fresh
/// in-memory [`SimDisk`]. Returns the disk so callers can report the log
/// footprint.
fn build_runtime(mode: &str, mem: MemConfig) -> (StmRuntime, Option<std::sync::Arc<SimDisk>>) {
    let cfg = durability_cfg(mode);
    if mode_flush_batch(mode).is_some() {
        let disk = SimDisk::new();
        (StmRuntime::new_durable(mem, cfg, disk.clone()), Some(disk))
    } else {
        (StmRuntime::new(mem, cfg), None)
    }
}

/// One timed run of the shared-heavy driver: every logical transaction
/// moves money between two of [`ACCOUNTS`] accounts. The closing
/// conservation check catches any redo-buffer interference with the
/// transactional state.
fn shared_once(scale: Scale, mode: &str, threads: usize) -> (f64, TxStats, u64) {
    let mem = MemConfig {
        max_threads: threads.max(1) + 1,
        stack_words: 1 << 10,
        heap_words: 1 << 16,
    };
    let (rt, disk) = build_runtime(mode, mem);
    let base = rt.alloc_global(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.mem().store(base.word(i), SEED_BALANCE);
    }
    rt.reset_stats();
    let n = per_thread(scale);
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                for _ in 0..n {
                    let from = rng.next_u64() % ACCOUNTS;
                    let to = rng.next_u64() % ACCOUNTS;
                    let amt = 1 + rng.next_u64() % 9;
                    w.txn(|tx| {
                        let f = tx.read(&S_ACCT, base.word(from))?;
                        tx.write(&S_ACCT, base.word(from), f.wrapping_sub(amt))?;
                        let v = tx.read(&S_ACCT, base.word(to))?;
                        tx.write(&S_ACCT, base.word(to), v.wrapping_add(amt))
                    });
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let total: u64 = (0..ACCOUNTS).map(|i| rt.mem().load(base.word(i))).sum();
    assert_eq!(
        total,
        ACCOUNTS * SEED_BALANCE,
        "shared driver lost or duplicated money (mode {mode})"
    );
    let log_bytes = disk.map_or(0, |d| d.log_bytes());
    (seconds, rt.collect_stats(), log_bytes)
}

/// One timed run of the captured-heavy driver: allocate a block, fill it
/// through captured barriers, publish it into a random slot, free the
/// block it displaced (bounding the live heap at [`SLOTS`] blocks).
fn captured_once(scale: Scale, mode: &str, threads: usize) -> (f64, TxStats, u64) {
    let mem = MemConfig {
        max_threads: threads.max(1) + 1,
        stack_words: 1 << 10,
        heap_words: 1 << 18,
    };
    let (rt, disk) = build_runtime(mode, mem);
    let slots = rt.alloc_global(SLOTS * 8);
    rt.reset_stats();
    let n = per_thread(scale);
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0xA076_1D64_78BD_642F ^ (t as u64 + 1));
                for i in 0..n {
                    let slot = slots.word(rng.next_u64() % SLOTS);
                    let tag = (t as u64 + 1) * 1_000_000_000 + i as u64 * 100;
                    w.txn(|tx| {
                        let b = tx.alloc(BLK_WORDS * 8)?;
                        for j in 0..BLK_WORDS {
                            tx.write(&S_FILL, b.word(j), tag + j)?;
                        }
                        let old = tx.read(&S_SLOT, slot)?;
                        tx.write(&S_SLOT, slot, b.raw())?;
                        if old != 0 {
                            tx.free(Addr(old));
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    // Every published block must be a coherent fill (word j = word 0 + j):
    // a torn publication would mean the redo path leaked into execution.
    for sidx in 0..SLOTS {
        let p = rt.mem().load(slots.word(sidx));
        if p != 0 {
            let w0 = rt.mem().load(Addr(p));
            for j in 1..BLK_WORDS {
                assert_eq!(
                    rt.mem().load(Addr(p).word(j)),
                    w0 + j,
                    "slot {sidx} holds a torn block (mode {mode})"
                );
            }
        }
    }
    let log_bytes = disk.map_or(0, |d| d.log_bytes());
    (seconds, rt.collect_stats(), log_bytes)
}

/// One measured (driver, mode) cell.
#[derive(Clone, Debug)]
pub struct DurabilityRow {
    pub driver: &'static str,
    pub mode: &'static str,
    pub threads: usize,
    /// Median wall time over `runs` repetitions.
    pub seconds: f64,
    /// Committed transactions per second.
    pub commits_per_sec: f64,
    /// Wall-time ratio against the driver's `off` row (1.0 for `off`
    /// itself): the durability tax.
    pub tax_vs_off: f64,
    /// `durable_skipped / (durable_words + durable_skipped)`: the share
    /// of committed words the captured-memory analysis kept out of the
    /// redo log (0 for `off` rows).
    pub skip_ratio: f64,
    /// Final redo-log footprint on the simulated disk (0 for `off`).
    pub log_bytes: u64,
    pub stats: TxStats,
}

fn run_driver(driver: &str, scale: Scale, mode: &str, threads: usize) -> (f64, TxStats, u64) {
    match driver {
        "shared" => shared_once(scale, mode, threads),
        "captured" => captured_once(scale, mode, threads),
        other => panic!("unknown durability driver {other}"),
    }
}

/// Run the matrix. Rows are driver-major in [`MODES`] order; each
/// driver's `off` row seeds the tax baseline of its durable rows.
pub fn durability_rows(opts: &ExptOpts) -> Vec<DurabilityRow> {
    let threads = opts.threads.max(1);
    let mut rows = Vec::new();
    for driver in DRIVERS {
        let mut base_seconds = f64::NAN;
        for mode in MODES {
            let samples: Vec<(f64, TxStats, u64)> = (0..opts.runs.max(1))
                .map(|_| run_driver(driver, opts.scale, mode, threads))
                .collect();
            let seconds = median(samples.iter().map(|s| s.0).collect());
            let (_, stats, log_bytes) = *samples.last().expect("runs >= 1");
            if mode == "off" {
                base_seconds = seconds;
            }
            let logged = stats.durable_words + stats.durable_skipped;
            rows.push(DurabilityRow {
                driver,
                mode,
                threads,
                seconds,
                commits_per_sec: if seconds > 0.0 {
                    stats.commits as f64 / seconds
                } else {
                    0.0
                },
                tax_vs_off: if base_seconds > 0.0 {
                    seconds / base_seconds
                } else {
                    0.0
                },
                skip_ratio: if logged > 0 {
                    stats.durable_skipped as f64 / logged as f64
                } else {
                    0.0
                },
                log_bytes,
                stats,
            });
        }
    }
    rows
}

/// Render the `BENCH_durability.json` report (hand-written JSON; no serde
/// in the offline container).
pub fn durability_json(opts: &ExptOpts, rows: &[DurabilityRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"bench_durability/v1\",\n  \"scale\": \"{}\",\n  \"runs\": {},\n",
        scale_name(opts.scale),
        opts.runs.max(1)
    ));
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));
    out.push_str(&format!("  \"threads\": {},\n", opts.threads.max(1)));
    out.push_str(&format!(
        "  \"modes\": [{}],\n",
        MODES
            .iter()
            .map(|m| format!("\"{m}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"driver\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"seconds\": {:.6}, \"commits_per_sec\": {:.1}, \"tax_vs_off\": {:.3}, \
             \"skip_ratio\": {:.4}, \"log_bytes\": {}, \"commits\": {}, \"aborts\": {}, \
             \"durable_words\": {}, \"durable_skipped\": {}, \"durable_flushes\": {}}}{}\n",
            esc(r.driver),
            esc(r.mode),
            r.threads,
            r.seconds,
            r.commits_per_sec,
            r.tax_vs_off,
            r.skip_ratio,
            r.log_bytes,
            r.stats.commits,
            r.stats.aborts,
            r.stats.durable_words,
            r.stats.durable_skipped,
            r.stats.durable_flushes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Markdown rendering for the terminal: one line per driver, modes as
/// columns, tax and skip-ratio cells.
pub fn render_markdown(opts: &ExptOpts, rows: &[DurabilityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Durability — redo-log commit tax vs. transient \
         (scale {}, {} threads, median of {} runs)\n\n",
        scale_name(opts.scale),
        opts.threads.max(1),
        opts.runs.max(1)
    ));
    out.push_str("| driver |");
    for m in MODES {
        out.push_str(&format!(" {m} |"));
    }
    out.push_str(" skip ratio |\n|---|");
    for _ in MODES {
        out.push_str("---:|");
    }
    out.push_str("---:|\n");
    for driver in DRIVERS {
        let mut line = format!("| {driver} |");
        for m in MODES {
            match rows.iter().find(|r| r.driver == driver && r.mode == m) {
                Some(r) => line.push_str(&format!(" {:.2}x |", r.tax_vs_off)),
                None => line.push_str(" - |"),
            }
        }
        let skip = rows
            .iter()
            .find(|r| r.driver == driver && r.mode == "strict")
            .map_or(0.0, |r| r.skip_ratio);
        line.push_str(&format!(" {:.1}% |", 100.0 * skip));
        out.push_str(&line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Regression gate: `driver` at durability mode `mode` must stay within
/// `max` wall-time tax over the transient baseline. Like the merge gate
/// there is no hardware skip, and the `expt` front end self-skips in
/// debug builds, where the relative cost of the encoder is distorted.
pub fn durability_tax_gate(
    rows: &[DurabilityRow],
    driver: &str,
    mode: &str,
    max: f64,
) -> Result<f64, String> {
    let row = rows
        .iter()
        .find(|r| r.driver == driver && r.mode == mode)
        .ok_or_else(|| format!("no durability row for {driver}/{mode}"))?;
    if row.tax_vs_off <= max {
        Ok(row.tax_vs_off)
    } else {
        Err(format!(
            "{driver}: {mode} durability tax {:.2}x above allowed {max:.2}x",
            row.tax_vs_off
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_row(driver: &'static str, mode: &'static str, tax: f64) -> DurabilityRow {
        DurabilityRow {
            driver,
            mode,
            threads: 4,
            seconds: tax,
            commits_per_sec: 1000.0 / tax,
            tax_vs_off: tax,
            skip_ratio: 0.5,
            log_bytes: 4096,
            stats: TxStats::default(),
        }
    }

    #[test]
    fn gate_passes_and_fails() {
        let rows = vec![
            fake_row("shared", "off", 1.0),
            fake_row("shared", "strict", 1.4),
        ];
        assert_eq!(
            durability_tax_gate(&rows, "shared", "strict", 2.0).unwrap(),
            1.4
        );
        assert!(durability_tax_gate(&rows, "shared", "strict", 1.2).is_err());
        assert!(durability_tax_gate(&rows, "captured", "strict", 2.0).is_err());
    }

    #[test]
    fn json_is_balanced_and_carries_the_schema() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows = vec![fake_row("shared", "off", 1.0)];
        let json = durability_json(&opts, &rows);
        assert!(json.contains("\"schema\": \"bench_durability/v1\""));
        assert!(json.contains("\"modes\": [\"off\", \"strict\", \"group8\"]"));
        assert!(json.contains("\"skip_ratio\": 0.5000"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    // One run of the full matrix at Test scale; CI additionally smokes it
    // through `expt durability --scale test`.
    #[test]
    fn rows_cover_drivers_and_modes() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows = durability_rows(&opts);
        assert_eq!(rows.len(), DRIVERS.len() * MODES.len());
        assert!(!render_markdown(&opts, &rows).is_empty());
        for r in &rows {
            assert!(r.seconds >= 0.0 && r.commits_per_sec > 0.0, "{r:?}");
            if r.mode == "off" {
                assert!((r.tax_vs_off - 1.0).abs() < 1e-9, "{r:?}");
                assert_eq!(r.stats.durable_flushes, 0, "{r:?}");
                assert_eq!(r.log_bytes, 0, "{r:?}");
            } else {
                assert!(r.stats.durable_flushes > 0, "{r:?}");
                assert!(r.log_bytes > 0, "{r:?}");
                assert!(r.stats.durable_words > 0, "{r:?}");
            }
        }
        // The captured driver is the dividend: a large share of committed
        // words is kept out of per-word logging (the fill ships once as a
        // coalesced range, which itself counts toward `durable_words`, so
        // the ratio is bounded below 0.5 by construction), and the shared
        // driver (which captures nothing) must skip none.
        for mode in ["strict", "group8"] {
            let cap = rows
                .iter()
                .find(|r| r.driver == "captured" && r.mode == mode)
                .unwrap();
            assert!(
                cap.skip_ratio > 0.3,
                "captured fills must drive the skip ratio: {cap:?}"
            );
            let sh = rows
                .iter()
                .find(|r| r.driver == "shared" && r.mode == mode)
                .unwrap();
            assert_eq!(sh.stats.durable_skipped, 0, "{sh:?}");
        }
        // Group commit amortizes appends.
        let strict = rows
            .iter()
            .find(|r| r.driver == "shared" && r.mode == "strict")
            .unwrap();
        let group = rows
            .iter()
            .find(|r| r.driver == "shared" && r.mode == "group8")
            .unwrap();
        assert!(
            group.stats.durable_flushes < strict.stats.durable_flushes,
            "group commit must batch appends: {} vs {}",
            group.stats.durable_flushes,
            strict.stats.durable_flushes
        );
    }
}
