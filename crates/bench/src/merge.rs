//! The transaction-merging experiment (`expt merge`): logical-transaction
//! throughput and abort rate as a function of the merge factor, over three
//! drivers that stress different parts of the batch machinery.
//!
//! - `transfer` — a high-rate bank-transfer loop (two shared account
//!   words read+written per logical transaction). Fixed per-commit costs
//!   (GV4 ticket, lock publication, log resets) dominate the tiny
//!   transaction body, so this is where merging pays the most; it is also
//!   the series the release gate ([`merge_speedup_gate`]) enforces.
//! - `queue` — producer/consumer rounds over the STAMP `TxQueue`: all
//!   threads produce into one queue, then all threads drain it into
//!   per-consumer accumulator cells. Head/tail words are hot, so merged
//!   windows conflict, split, and salvage under fire.
//! - `intruder` — the real STAMP app with its merged packet loop
//!   (`TxConfig::merge_max > 1`), measuring merging on pointer-chasing
//!   collection code rather than a synthetic loop.
//!
//! Emits `BENCH_merge.json` (committed snapshot, like
//! `BENCH_scaling.json`) so future PRs that touch the commit spine or the
//! batch machinery have a merging trajectory to diff against.

use stamp::collections::TxQueue;
use stamp::{Benchmark, Scale};
use stm::{Site, StmRuntime, TxConfig, TxStats};
use txmem::MemConfig;

use crate::report::{esc, scale_name};
use crate::skew::Rng;
use crate::{median, ExptOpts};

/// The merge-factor axis: unmerged baseline, a shallow batch, the gate's
/// sweet spot, and a wide window that actually splits under contention.
pub const FACTORS: [usize; 4] = [1, 2, 8, 32];

/// The drivers, in row order.
pub const DRIVERS: [&str; 3] = ["transfer", "queue", "intruder"];

static S_ACCT: Site = Site::shared("merge.account");
static S_CELL: Site = Site::shared("merge.cell");

const ACCOUNTS: u64 = 1024;
const SEED_BALANCE: u64 = 10_000;

/// Logical transactions per thread per driver phase — a power of two so
/// every factor in [`FACTORS`] divides it evenly.
fn logical_per_thread(scale: Scale) -> usize {
    match scale {
        Scale::Test => 2_048,
        Scale::Small => 65_536,
        Scale::Full => 262_144,
    }
}

fn merged_cfg(factor: usize) -> TxConfig {
    TxConfig::builder()
        .mode(stm::Mode::Runtime {
            log: stm::LogKind::Tree,
            scope: stm::CheckScope::FULL,
        })
        .merge_max(factor as u32)
        .build()
        .expect("factors are validated at the CLI boundary")
}

/// One timed run of the transfer driver. Every logical transaction moves
/// money between two of [`ACCOUNTS`] accounts; the closing conservation
/// check catches any salvage bug.
fn transfer_once(scale: Scale, factor: usize, threads: usize) -> (f64, TxStats) {
    let per_thread = logical_per_thread(scale);
    let rt = StmRuntime::new(
        MemConfig {
            max_threads: threads.max(1) + 1,
            stack_words: 1 << 10,
            heap_words: 1 << 16,
        },
        merged_cfg(factor),
    );
    let base = rt.alloc_global(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.mem().store(base.word(i), SEED_BALANCE);
    }
    rt.reset_stats();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut rng = Rng(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                for _ in 0..per_thread / factor {
                    // Pre-draw the window's transfers: a salvage retry
                    // re-runs the same logical index and must redo the
                    // same move.
                    let moves: Vec<(u64, u64, u64)> = (0..factor)
                        .map(|_| {
                            (
                                rng.next_u64() % ACCOUNTS,
                                rng.next_u64() % ACCOUNTS,
                                1 + rng.next_u64() % 9,
                            )
                        })
                        .collect();
                    let run = w.txn_batch(factor, |b| {
                        let (from, to, amt) = moves[b.logical_index() as usize];
                        let f = b.read(&S_ACCT, base.word(from))?;
                        b.write(&S_ACCT, base.word(from), f.wrapping_sub(amt))?;
                        let v = b.read(&S_ACCT, base.word(to))?;
                        b.write(&S_ACCT, base.word(to), v.wrapping_add(amt))?;
                        Ok(true)
                    });
                    assert_eq!(run.committed, factor as u64);
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let total: u64 = (0..ACCOUNTS).map(|i| rt.mem().load(base.word(i))).sum();
    assert_eq!(
        total,
        ACCOUNTS * SEED_BALANCE,
        "merged transfers lost or duplicated money (factor {factor})"
    );
    (seconds, rt.collect_stats())
}

/// One timed run of the queue driver: a produce phase (every thread
/// pushes its work-list into one shared queue) followed by a drain phase
/// (every thread pops into its own accumulator cell until the queue is
/// empty). Conservation of the value sum across both phases is the
/// correctness check.
fn queue_once(scale: Scale, factor: usize, threads: usize) -> (f64, TxStats) {
    // Round down to whole windows so a non-power-of-two `--merge N`
    // factor still produces exactly what the drain phase expects.
    let rounds = logical_per_thread(scale) / factor;
    let per_thread = rounds * factor;
    let total_items = (per_thread * threads) as u64;
    let rt = StmRuntime::new(
        MemConfig {
            max_threads: threads.max(1) + 1,
            stack_words: 1 << 10,
            heap_words: (total_items * 4 + (1 << 12)) as usize,
        },
        merged_cfg(factor),
    );
    let q = TxQueue::create(&rt, total_items + 2);
    let cells = rt.alloc_global(threads.max(1) as u64 * 8);
    let expected: u64 = (0..threads as u64)
        .map(|t| (0..per_thread as u64).map(|i| value_of(t, i)).sum::<u64>())
        .sum();
    rt.reset_stats();
    let start = std::time::Instant::now();
    // Produce phase: merged pushes against a hot tail word.
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let mut next = 0u64;
                for _ in 0..rounds {
                    let run = w.txn_batch(factor, |b| {
                        let v = value_of(t as u64, next + b.logical_index());
                        q.push(b, v)?;
                        Ok(true)
                    });
                    assert_eq!(run.committed, factor as u64);
                    next += run.committed;
                }
            });
        }
    });
    // Drain phase: merged pops against a hot head word, each value folded
    // into the popping thread's private accumulator cell.
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = &rt;
            s.spawn(move || {
                let mut w = rt.spawn_worker();
                let cell = cells.word(t as u64);
                if factor > 1 {
                    // A drained "stop" invocation still commits, so a
                    // full window (committed == factor) means the queue
                    // may have more; a short one means it is empty. At
                    // factor 1 every window is "full" by that test, so
                    // the unmerged loop below handles it instead.
                    loop {
                        let run = w.txn_batch(factor, |b| {
                            let Some(v) = q.pop(b)? else {
                                return Ok(false); // drained: stop, still commits
                            };
                            let s = b.read(&S_CELL, cell)?;
                            b.write(&S_CELL, cell, s + v)?;
                            Ok(true)
                        });
                        if run.committed < factor as u64 {
                            break;
                        }
                    }
                } else {
                    loop {
                        let drained = w.txn(|tx| {
                            let Some(v) = q.pop(tx)? else {
                                return Ok(true);
                            };
                            let s = tx.read(&S_CELL, cell)?;
                            tx.write(&S_CELL, cell, s + v)?;
                            Ok(false)
                        });
                        if drained {
                            break;
                        }
                    }
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let drained: u64 = (0..threads as u64)
        .map(|t| rt.mem().load(cells.word(t)))
        .sum();
    assert_eq!(
        drained, expected,
        "queue driver lost or duplicated items (factor {factor})"
    );
    (seconds, rt.collect_stats())
}

fn value_of(thread: u64, i: u64) -> u64 {
    (thread + 1) * 1_000_000 + i
}

/// One timed run of the STAMP intruder app with its merged packet loop.
fn intruder_once(scale: Scale, factor: usize, threads: usize) -> (f64, TxStats) {
    let cfg = merged_cfg(factor);
    let out = Benchmark::Intruder.run(scale, cfg, threads);
    assert!(
        out.verified,
        "intruder failed verification at merge factor {factor}"
    );
    (out.elapsed.as_secs_f64(), out.stats)
}

/// One measured (driver, merge-factor) cell.
#[derive(Clone, Debug)]
pub struct MergeRow {
    pub driver: &'static str,
    pub factor: usize,
    pub threads: usize,
    /// Median wall time over `runs` repetitions.
    pub seconds: f64,
    /// Committed *logical* transactions per second (`commits` counts
    /// logical transactions; the work per driver is fixed, so this is the
    /// throughput axis merging is supposed to move).
    pub logical_per_sec: f64,
    /// `aborts / (commits + aborts)` — merging must not buy throughput by
    /// exploding the conflict rate.
    pub abort_rate: f64,
    /// `logical_per_sec / logical_per_sec(factor 1)` within the driver.
    pub speedup_vs_f1: f64,
    pub stats: TxStats,
}

fn run_driver(driver: &str, scale: Scale, factor: usize, threads: usize) -> (f64, TxStats) {
    match driver {
        "transfer" => transfer_once(scale, factor, threads),
        "queue" => queue_once(scale, factor, threads),
        "intruder" => intruder_once(scale, factor, threads),
        other => panic!("unknown merge driver {other}"),
    }
}

/// Run the matrix over `factors` (usually [`FACTORS`]; `expt merge
/// --merge N` narrows it to `[1, N]`). Rows are driver-major in factor
/// order, and the first factor of the list — factor 1 by construction —
/// seeds the speedup baseline of the merged rows.
pub fn merge_rows(opts: &ExptOpts, factors: &[usize]) -> Vec<MergeRow> {
    let threads = opts.threads.max(1);
    let mut rows = Vec::new();
    for driver in DRIVERS {
        let mut base_tput = f64::NAN;
        for &factor in factors {
            let samples: Vec<(f64, TxStats)> = (0..opts.runs.max(1))
                .map(|_| run_driver(driver, opts.scale, factor, threads))
                .collect();
            let seconds = median(samples.iter().map(|s| s.0).collect());
            let stats = samples.last().expect("runs >= 1").1;
            let tput = if seconds > 0.0 {
                stats.commits as f64 / seconds
            } else {
                0.0
            };
            if factor == factors[0] {
                base_tput = tput;
            }
            let attempts = stats.commits + stats.aborts;
            rows.push(MergeRow {
                driver,
                factor,
                threads,
                seconds,
                logical_per_sec: tput,
                abort_rate: if attempts > 0 {
                    stats.aborts as f64 / attempts as f64
                } else {
                    0.0
                },
                speedup_vs_f1: if base_tput > 0.0 {
                    tput / base_tput
                } else {
                    0.0
                },
                stats,
            });
        }
    }
    rows
}

/// Render the `BENCH_merge.json` report (hand-written JSON; no serde in
/// the offline container).
pub fn merge_json(opts: &ExptOpts, factors: &[usize], rows: &[MergeRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"bench_merge/v1\",\n  \"scale\": \"{}\",\n  \"runs\": {},\n",
        scale_name(opts.scale),
        opts.runs.max(1)
    ));
    out.push_str(&format!("  \"debug_build\": {},\n", cfg!(debug_assertions)));
    out.push_str(&format!("  \"threads\": {},\n", opts.threads.max(1)));
    out.push_str(&format!(
        "  \"factors\": [{}],\n",
        factors
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"driver\": \"{}\", \"factor\": {}, \"threads\": {}, \
             \"seconds\": {:.6}, \"logical_per_sec\": {:.1}, \"abort_rate\": {:.4}, \
             \"speedup_vs_f1\": {:.3}, \"commits\": {}, \"aborts\": {}, \
             \"merged_txns\": {}, \"merge_splits\": {}, \"merge_salvaged\": {}, \
             \"backoff_waits\": {}}}{}\n",
            esc(r.driver),
            r.factor,
            r.threads,
            r.seconds,
            r.logical_per_sec,
            r.abort_rate,
            r.speedup_vs_f1,
            r.stats.commits,
            r.stats.aborts,
            r.stats.merged_txns,
            r.stats.merge_splits,
            r.stats.merge_salvaged,
            r.stats.backoff_waits,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Markdown rendering for the terminal: one table per driver, merge
/// factors as columns, throughput-speedup and abort-rate cells.
pub fn render_markdown(opts: &ExptOpts, factors: &[usize], rows: &[MergeRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Transaction merging — logical-txn throughput vs. merge factor \
         (scale {}, {} threads, median of {} runs)\n\n",
        scale_name(opts.scale),
        opts.threads.max(1),
        opts.runs.max(1)
    ));
    out.push_str("| driver |");
    for f in factors {
        out.push_str(&format!(" x{f} |"));
    }
    out.push_str("\n|---|");
    for _ in factors {
        out.push_str("---:|");
    }
    out.push('\n');
    for driver in DRIVERS {
        let mut line = format!("| {driver} |");
        for &f in factors {
            match rows.iter().find(|r| r.driver == driver && r.factor == f) {
                Some(r) => line.push_str(&format!(
                    " {:.2}x ({:.1}% ab) |",
                    r.speedup_vs_f1,
                    100.0 * r.abort_rate
                )),
                None => line.push_str(" - |"),
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Regression gate: `driver` at merge factor `factor` must reach `min`
/// logical-transaction-throughput speedup over the same driver's
/// factor-1 row. Unlike the thread-scaling gate there is no hardware
/// skip — merging amortizes per-commit costs even on one core — but the
/// `expt` front end still self-skips in debug builds, where fixed costs
/// are distorted.
pub fn merge_speedup_gate(
    rows: &[MergeRow],
    driver: &str,
    factor: usize,
    min: f64,
) -> Result<f64, String> {
    let row = rows
        .iter()
        .find(|r| r.driver == driver && r.factor == factor)
        .ok_or_else(|| format!("no merge row for {driver}/x{factor}"))?;
    if row.speedup_vs_f1 >= min {
        Ok(row.speedup_vs_f1)
    } else {
        Err(format!(
            "{driver}: merge-factor-{factor} throughput speedup {:.2}x below required {min:.2}x",
            row.speedup_vs_f1
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_row(driver: &'static str, factor: usize, speedup: f64) -> MergeRow {
        MergeRow {
            driver,
            factor,
            threads: 4,
            seconds: 1.0 / speedup,
            logical_per_sec: 1000.0 * speedup,
            abort_rate: 0.01,
            speedup_vs_f1: speedup,
            stats: TxStats::default(),
        }
    }

    #[test]
    fn gate_passes_and_fails() {
        let rows = vec![fake_row("transfer", 1, 1.0), fake_row("transfer", 8, 1.8)];
        assert_eq!(merge_speedup_gate(&rows, "transfer", 8, 1.5).unwrap(), 1.8);
        assert!(merge_speedup_gate(&rows, "transfer", 8, 2.5).is_err());
        assert!(merge_speedup_gate(&rows, "queue", 8, 1.0).is_err());
    }

    #[test]
    fn json_is_balanced_and_carries_the_schema() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows = vec![fake_row("transfer", 1, 1.0)];
        let json = merge_json(&opts, &FACTORS, &rows);
        assert!(json.contains("\"schema\": \"bench_merge/v1\""));
        assert!(json.contains("\"factors\": [1, 2, 8, 32]"));
        assert!(json.contains("\"speedup_vs_f1\": 1.000"));
        assert!(json.contains("\"merge_salvaged\": 0"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    // One run of the full matrix at Test scale; CI additionally smokes it
    // through `expt merge --scale test`.
    #[test]
    fn rows_cover_drivers_and_factors() {
        let opts = ExptOpts {
            scale: Scale::Test,
            threads: 2,
            runs: 1,
        };
        let rows = merge_rows(&opts, &FACTORS);
        assert_eq!(rows.len(), DRIVERS.len() * FACTORS.len());
        assert!(!render_markdown(&opts, &FACTORS, &rows).is_empty());
        for r in &rows {
            assert!(r.seconds >= 0.0 && r.logical_per_sec > 0.0, "{r:?}");
            assert!((0.0..=1.0).contains(&r.abort_rate), "{r:?}");
            if r.factor > 1 {
                assert!(
                    r.stats.merged_txns > 0,
                    "factor-{} rows must actually merge: {r:?}",
                    r.factor
                );
            } else {
                assert_eq!(r.stats.merged_txns, 0, "{r:?}");
            }
        }
        // Factor-1 rows seed their own speedup baseline.
        for r in rows.iter().filter(|r| r.factor == 1) {
            assert!((r.speedup_vs_f1 - 1.0).abs() < 1e-9, "{r:?}");
        }
    }
}
