//! Shared deterministic randomness for the experiment drivers: the
//! xorshift64* generator every driver seeds per-thread (previously
//! copy-pasted into each of them), the min-of-two skew trick the
//! contention driver uses, and a proper Zipf sampler for the pool
//! workload's sender distribution.

/// xorshift64*: fast, deterministic, and good enough for workload
/// shaping. Seed must be non-zero (every driver seeds with a constant
/// XOR a thread index + 1).
pub struct Rng(pub u64);

impl Rng {
    /// A generator from a non-zero seed.
    pub fn new(seed: u64) -> Rng {
        assert_ne!(seed, 0, "xorshift64* cannot leave a zero state");
        Rng(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A draw uniform in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A mildly skewed draw in `0..n` — the minimum of two uniforms, so
    /// low indices are roughly twice as likely as high ones. Cheap and
    /// good enough for "make some accounts hotter"; for a tunable
    /// power-law use [`Zipf`].
    pub fn skewed_below(&mut self, n: u64) -> u64 {
        self.below(n).min(self.below(n))
    }

    /// A draw uniform in `[0, 1)` (53 random mantissa bits).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * 2f64.powi(-53)
    }
}

/// A Zipf(θ) sampler over ranks `0..n` by inverse-CDF lookup: rank `k`
/// has probability proportional to `1 / (k + 1)^θ`. θ = 0 degenerates to
/// uniform; θ around 0.8–1.2 is the classic "a few senders dominate"
/// shape. Construction is O(n) and sampling is a binary search, so build
/// one per run and share it across threads (sampling takes `&self`).
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(rank <= k), last entry 1.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `0..n` with exponent `theta`.
    ///
    /// # Panics
    /// If `n == 0` or `theta` is not finite and non-negative.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.unit();
        // First rank whose cumulative probability covers u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn skewed_draws_favor_low_indices() {
        let mut rng = Rng::new(7);
        let n = 100u64;
        let low = (0..10_000).filter(|_| rng.skewed_below(n) < n / 2).count();
        assert!(low > 6_500, "min-of-two should land low ~75% of the time");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(3);
        let mut hist = [0u32; 10];
        for _ in 0..10_000 {
            hist[z.sample(&mut rng) as usize] += 1;
        }
        for &h in &hist {
            assert!(
                (700..1_300).contains(&h),
                "uniform bucket out of range: {h}"
            );
        }
    }

    #[test]
    fn zipf_skews_toward_rank_zero() {
        let z = Zipf::new(1_000, 1.0);
        let mut rng = Rng::new(9);
        let mut top = 0u32;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                top += 1;
            }
        }
        // With θ=1 over 1000 ranks, the top 10 carry ~39% of the mass.
        assert!(top > 2_500, "zipf tail too flat: top-10 share {top}/10000");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let z = Zipf::new(17, 0.8);
        let mut rng = Rng::new(11);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }
}
