//! Experiment implementations regenerating every table and figure of
//! "Optimizing Transactions for Captured Memory" (SPAA 2009).
//!
//! Each `figN`/`tableN` function runs the corresponding experiment on the
//! STAMP-like suite and returns a Markdown table mirroring the paper's
//! rows/series; the `expt` binary prints them, and EXPERIMENTS.md archives a
//! captured run with paper-vs-measured commentary.

pub mod contention;
pub mod durability;
pub mod elision;
pub mod merge;
pub mod micro;
pub mod nursery;
pub mod pool;
pub mod report;
pub mod scaling;
pub mod skew;

use std::time::Duration;

use stamp::{Benchmark, RunOutcome, Scale};
use stm::{CheckScope, LogKind, Mode, TxConfig};

/// Options shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExptOpts {
    pub scale: Scale,
    /// Thread count for the "16 threads" experiments (the paper's machine
    /// had 24 cores; scale to yours).
    pub threads: usize,
    /// Repetitions for timing experiments.
    pub runs: usize,
}

impl Default for ExptOpts {
    fn default() -> Self {
        ExptOpts {
            scale: Scale::Small,
            threads: 4,
            runs: 3,
        }
    }
}

/// The named configurations of the paper's evaluation, assembled through
/// the validating [`TxConfig::builder`] (the combinations here are static
/// and correct, so the `expect`s are unreachable; the point is that the
/// harness exercises the same front door user configurations come
/// through).
pub fn baseline_cfg() -> TxConfig {
    TxConfig::builder()
        .mode(Mode::Baseline)
        .build()
        .expect("baseline preset is valid")
}

pub fn runtime_cfg(log: LogKind, scope: CheckScope) -> TxConfig {
    TxConfig::builder()
        .mode(Mode::Runtime { log, scope })
        .build()
        .expect("runtime preset is valid")
}

pub fn compiler_cfg() -> TxConfig {
    TxConfig::builder()
        .mode(Mode::Compiler)
        .build()
        .expect("compiler preset is valid")
}

pub fn compiler_interproc_cfg() -> TxConfig {
    TxConfig::builder()
        .mode(Mode::CompilerInterproc)
        .build()
        .expect("compiler-interproc preset is valid")
}

fn classify_cfg() -> TxConfig {
    TxConfig::builder()
        .classify(true)
        .build()
        .expect("classify preset is valid")
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

pub(crate) fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn rel_stddev_pct(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 || xs.len() < 2 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    100.0 * var.sqrt() / m
}

pub(crate) fn time_runs(
    b: Benchmark,
    scale: Scale,
    cfg: TxConfig,
    threads: usize,
    runs: usize,
) -> Vec<f64> {
    (0..runs)
        .map(|_| {
            let out = b.run(scale, cfg, threads);
            assert!(
                out.verified,
                "{} failed verification under {:?}",
                b.name(),
                cfg.mode
            );
            out.elapsed.as_secs_f64()
        })
        .collect()
}

/// Percent improvement of `t` over baseline `base` (paper's metric in
/// Figures 10/11).
fn improvement_pct(base: f64, t: f64) -> f64 {
    100.0 * (base - t) / base
}

// ---------------------------------------------------------------------------
// Figure 8: breakdown of compiler-inserted barriers at one thread.
// ---------------------------------------------------------------------------

pub fn fig8(opts: &ExptOpts) -> String {
    let mut out = String::new();
    out.push_str("## Figure 8 — memory access breakdown (1 thread)\n\n");
    out.push_str("Share of compiler-inserted STM barriers per category (percent).\n\n");
    type Pick = fn(&stm::TxStats) -> stm::BarrierStats;
    let views: [(&str, Pick); 3] = [
        ("(a) read breakdown", |s| s.reads),
        ("(b) write breakdown", |s| s.writes),
        ("(c) all accesses", |s| s.all_accesses()),
    ];
    for (title, pick) in views {
        out.push_str(&format!("### {title}\n\n"));
        out.push_str(
            "| benchmark | tx-local heap | tx-local stack | not required (other) | required |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|\n");
        for b in Benchmark::ALL {
            let r = b.run(opts.scale, classify_cfg(), 1);
            assert!(r.verified, "{} failed verification", b.name());
            let s = pick(&r.stats);
            let total = s.class_heap + s.class_stack + s.class_other + s.class_required;
            out.push_str(&format!(
                "| {} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
                b.name(),
                pct(s.class_heap, total),
                pct(s.class_stack, total),
                pct(s.class_other, total),
                pct(s.class_required, total),
            ));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9: portion of barriers removed by each technique (1 thread).
// ---------------------------------------------------------------------------

pub fn fig9(opts: &ExptOpts) -> String {
    let techniques: Vec<(&str, TxConfig)> = vec![
        ("tree", runtime_cfg(LogKind::Tree, CheckScope::FULL)),
        ("array", runtime_cfg(LogKind::Array, CheckScope::FULL)),
        ("filtering", runtime_cfg(LogKind::Filter, CheckScope::FULL)),
        ("compiler", compiler_cfg()),
    ];
    let mut out = String::new();
    out.push_str("## Figure 9 — portion of barriers removed (1 thread, percent)\n\n");
    for (title, is_read) in [("(a) read barriers", true), ("(b) write barriers", false)] {
        out.push_str(&format!("### {title}\n\n"));
        out.push_str("| benchmark | tree | array | filtering | compiler |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for b in Benchmark::ALL {
            let mut row = format!("| {} |", b.name());
            for (_, cfg) in &techniques {
                let r = b.run(opts.scale, *cfg, 1);
                assert!(r.verified, "{} failed verification", b.name());
                let s = if is_read {
                    r.stats.reads
                } else {
                    r.stats.writes
                };
                row.push_str(&format!(" {:.1} |", 100.0 * s.elided_fraction()));
            }
            out.push_str(&row);
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Table 1: abort-to-commit ratio at N threads.
// ---------------------------------------------------------------------------

pub fn table1(opts: &ExptOpts) -> String {
    let configs: Vec<(&str, TxConfig)> = vec![
        ("Baseline", baseline_cfg()),
        ("Tree", runtime_cfg(LogKind::Tree, CheckScope::FULL)),
        ("Array", runtime_cfg(LogKind::Array, CheckScope::FULL)),
        ("Filtering", runtime_cfg(LogKind::Filter, CheckScope::FULL)),
        ("Compiler", compiler_cfg()),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "## Table 1 — abort-to-commit ratio at {} threads\n\n",
        opts.threads
    ));
    out.push_str("| benchmark | Baseline | Tree | Array | Filtering | Compiler |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|\n");
    for b in Benchmark::ALL {
        let mut row = format!("| {} |", b.name());
        for (_, cfg) in &configs {
            let r = b.run(opts.scale, *cfg, opts.threads);
            assert!(r.verified, "{} failed verification", b.name());
            row.push_str(&format!(" {:.2} |", r.stats.abort_to_commit_ratio()));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Table 2: percent relative standard deviation at N threads.
// ---------------------------------------------------------------------------

pub fn table2(opts: &ExptOpts) -> String {
    let configs: Vec<(&str, TxConfig)> = vec![
        ("Baseline", baseline_cfg()),
        ("Tree", runtime_cfg(LogKind::Tree, CheckScope::FULL)),
        ("Array", runtime_cfg(LogKind::Array, CheckScope::FULL)),
        ("Filtering", runtime_cfg(LogKind::Filter, CheckScope::FULL)),
        ("Compiler", compiler_cfg()),
    ];
    let runs = opts.runs.max(5); // the paper uses 5 repetitions
    let mut out = String::new();
    out.push_str(&format!(
        "## Table 2 — percent relative standard deviation at {} threads ({} runs)\n\n",
        opts.threads, runs
    ));
    out.push_str("| benchmark | Baseline | Tree | Array | Filtering | Compiler |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|\n");
    for b in Benchmark::ALL {
        let mut row = format!("| {} |", b.name());
        for (_, cfg) in &configs {
            let times = time_runs(b, opts.scale, *cfg, opts.threads, runs);
            row.push_str(&format!(" {:.1} |", rel_stddev_pct(&times)));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Figure 10: single-thread performance improvement.
// ---------------------------------------------------------------------------

fn perf_figure(
    title: &str,
    configs: &[(&str, TxConfig)],
    opts: &ExptOpts,
    threads: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str("Percent improvement over baseline (positive = faster).\n\n");
    out.push_str("| benchmark |");
    for (name, _) in configs {
        out.push_str(&format!(" {name} |"));
    }
    out.push_str("\n|---|");
    for _ in configs {
        out.push_str("---:|");
    }
    out.push('\n');
    for b in Benchmark::ALL {
        let base = median(time_runs(b, opts.scale, baseline_cfg(), threads, opts.runs));
        let mut row = format!("| {} |", b.name());
        for (_, cfg) in configs {
            let t = median(time_runs(b, opts.scale, *cfg, threads, opts.runs));
            row.push_str(&format!(" {:+.1} |", improvement_pct(base, t)));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push('\n');
    out
}

pub fn fig10(opts: &ExptOpts) -> String {
    let configs: Vec<(&str, TxConfig)> = vec![
        (
            "runtime r+w/stack+heap",
            runtime_cfg(LogKind::Tree, CheckScope::FULL),
        ),
        (
            "runtime w/stack+heap",
            runtime_cfg(LogKind::Tree, CheckScope::WRITES_STACK_HEAP),
        ),
        (
            "runtime w/heap",
            runtime_cfg(LogKind::Tree, CheckScope::WRITES_HEAP),
        ),
        ("compiler", compiler_cfg()),
    ];
    perf_figure(
        "Figure 10 — performance improvement at 1 thread",
        &configs,
        opts,
        1,
    )
}

// ---------------------------------------------------------------------------
// Figure 11(a): runtime configurations & compiler at N threads.
// ---------------------------------------------------------------------------

pub fn fig11a(opts: &ExptOpts) -> String {
    let configs: Vec<(&str, TxConfig)> = vec![
        (
            "runtime r+w/stack+heap",
            runtime_cfg(LogKind::Tree, CheckScope::FULL),
        ),
        (
            "runtime w/stack+heap",
            runtime_cfg(LogKind::Tree, CheckScope::WRITES_STACK_HEAP),
        ),
        (
            "runtime w/heap",
            runtime_cfg(LogKind::Tree, CheckScope::WRITES_HEAP),
        ),
        ("compiler", compiler_cfg()),
    ];
    perf_figure(
        &format!(
            "Figure 11(a) — performance improvement at {} threads (runtime configurations, tree)",
            opts.threads
        ),
        &configs,
        opts,
        opts.threads,
    )
}

// ---------------------------------------------------------------------------
// Figure 11(b): data structures at N threads (write barriers, heap only).
// ---------------------------------------------------------------------------

pub fn fig11b(opts: &ExptOpts) -> String {
    let configs: Vec<(&str, TxConfig)> = vec![
        ("tree", runtime_cfg(LogKind::Tree, CheckScope::WRITES_HEAP)),
        (
            "array",
            runtime_cfg(LogKind::Array, CheckScope::WRITES_HEAP),
        ),
        (
            "filtering",
            runtime_cfg(LogKind::Filter, CheckScope::WRITES_HEAP),
        ),
        ("compiler", compiler_cfg()),
    ];
    perf_figure(
        &format!(
            "Figure 11(b) — performance improvement at {} threads (allocation-log data structures)",
            opts.threads
        ),
        &configs,
        opts,
        opts.threads,
    )
}

// ---------------------------------------------------------------------------
// Extension ablation: the §3.1.3 annotation API (not in the paper's runs).
// ---------------------------------------------------------------------------

pub fn annotations(opts: &ExptOpts) -> String {
    let mut plain = baseline_cfg();
    plain.annotations = false;
    let mut annotated = baseline_cfg();
    annotated.annotations = true;

    let mut out = String::new();
    out.push_str("## Ablation — addPrivateMemoryBlock annotations (paper §3.1.3)\n\n");
    out.push_str("bayes with thread-local query vectors annotated as private.\n\n");
    out.push_str("| config | barriers elided by annotations | time (s) |\n|---|---:|---:|\n");
    for (name, cfg) in [("baseline", plain), ("annotated", annotated)] {
        let cfgc = cfg;
        let times: Vec<f64> = (0..opts.runs)
            .map(|_| {
                let r = Benchmark::Bayes.run(opts.scale, cfgc, opts.threads);
                assert!(r.verified);
                r.elapsed.as_secs_f64()
            })
            .collect();
        let r = Benchmark::Bayes.run(opts.scale, cfgc, opts.threads);
        out.push_str(&format!(
            "| {} | {} | {:.3} |\n",
            name,
            r.stats.all_accesses().elided_annotation,
            median(times),
        ));
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Extension ablation: transaction-record table size vs. false conflicts.
// ---------------------------------------------------------------------------

/// The paper attributes part of vacation's improvement to *fewer false
/// conflicts*: elided barriers never touch the orec table, so collisions in
/// a (too small) table stop mattering. This ablation makes the mechanism
/// directly visible by shrinking the table.
pub fn orec_ablation(opts: &ExptOpts) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Ablation — orec table size vs. false conflicts (vacation high, {} threads)\n\n",
        opts.threads
    ));
    out.push_str("Abort-to-commit ratio; smaller tables mean more false conflicts, which barrier elision avoids touching.\n\n");
    out.push_str("| orec table size | Baseline | Tree | Compiler |\n|---|---:|---:|---:|\n");
    for log2 in [10u32, 14, 20] {
        let mut row = format!("| 2^{log2} |");
        for mode in [
            Mode::Baseline,
            Mode::Runtime {
                log: LogKind::Tree,
                scope: CheckScope::FULL,
            },
            Mode::Compiler,
        ] {
            let mut cfg = TxConfig::with_mode(mode);
            cfg.orec_log2 = log2;
            let r = Benchmark::VacationHigh.run(opts.scale, cfg, opts.threads);
            assert!(r.verified);
            row.push_str(&format!(" {:.2} |", r.stats.abort_to_commit_ratio()));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Quick smoke run of every benchmark (sanity + verification), used by the
/// harness's own tests and `expt check`.
pub fn check(scale: Scale, threads: usize) -> Vec<RunOutcome> {
    Benchmark::ALL
        .iter()
        .map(|b| {
            let r = b.run(scale, baseline_cfg(), threads);
            assert!(r.verified, "{} failed verification", b.name());
            r
        })
        .collect()
}

/// Pretty Duration for logs.
pub fn fmt_dur(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(rel_stddev_pct(&[5.0, 5.0, 5.0]), 0.0);
        assert!(rel_stddev_pct(&[1.0, 3.0]) > 0.0);
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(pct(0, 0), 0.0);
        assert!((improvement_pct(2.0, 1.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn check_runs_all_benchmarks() {
        let outs = check(Scale::Test, 2);
        assert_eq!(outs.len(), 10);
        assert!(outs.iter().all(|o| o.verified));
    }
}
