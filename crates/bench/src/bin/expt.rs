//! Experiment driver: regenerates every table and figure of the paper,
//! plus the dispatch-refactor microbenchmark and its JSON report.
//!
//! ```text
//! expt <fig8|fig9|fig10|fig11a|fig11b|table1|table2|annotations|orec|check|all>
//!      [--scale test|small|full] [--threads N] [--runs K]
//! expt barriers [--max-ratio F]  # barrier_dispatch microbenchmark (Markdown);
//!                                # exits 1 if captured/direct ratio exceeds F
//! expt bench-json [--out FILE]   # BENCH_barriers.json emitter
//! ```
//!
//! Output is Markdown, mirroring the paper's rows/series; see EXPERIMENTS.md
//! for an archived run with paper-vs-measured commentary.

use bench_support as bench;
use stamp::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: expt <fig8|fig9|fig10|fig11a|fig11b|table1|table2|annotations|orec|check|\
         barriers|bench-json|all> \
         [--scale test|small|full] [--threads N] [--runs K] [--out FILE] [--max-ratio F]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].as_str();
    let mut opts = bench::ExptOpts::default();
    let mut out_path = String::from("BENCH_barriers.json");
    let mut max_ratio: Option<f64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--max-ratio" => {
                i += 1;
                max_ratio = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(|s| s.as_str()) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--runs" => {
                i += 1;
                opts.runs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    eprintln!(
        "# expt {cmd} (scale {:?}, {} threads, {} runs)",
        opts.scale, opts.threads, opts.runs
    );
    let t0 = std::time::Instant::now();
    match cmd {
        "fig8" => print!("{}", bench::fig8(&opts)),
        "fig9" => print!("{}", bench::fig9(&opts)),
        "fig10" => print!("{}", bench::fig10(&opts)),
        "fig11a" => print!("{}", bench::fig11a(&opts)),
        "fig11b" => print!("{}", bench::fig11b(&opts)),
        "table1" => print!("{}", bench::table1(&opts)),
        "table2" => print!("{}", bench::table2(&opts)),
        "annotations" => print!("{}", bench::annotations(&opts)),
        "orec" => print!("{}", bench::orec_ablation(&opts)),
        "barriers" => {
            let micro_opts = bench::micro::MicroOpts::default();
            let results = bench::micro::barrier_dispatch(&micro_opts);
            print!("{}", bench::micro::render_markdown(&results, &micro_opts));
            if let Some(max) = max_ratio {
                // Regression gate (CI): the monomorphized captured-heap
                // fast path must stay within `max` of the raw-access
                // floor. Pass a loose bound — single-run ratios wobble.
                let ratio = bench::micro::fastpath_ratio(&results)
                    .expect("pin measurements missing from results");
                if ratio > max {
                    eprintln!("# FAIL: fast-path ratio {ratio:.2} exceeds --max-ratio {max:.2}");
                    std::process::exit(1);
                }
                eprintln!("# fast-path ratio {ratio:.2} within --max-ratio {max:.2}");
            }
        }
        "bench-json" => {
            let json = bench::report::bench_json(&opts, &bench::micro::MicroOpts::default());
            std::fs::write(&out_path, &json)
                .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
            eprintln!("# wrote {out_path}");
        }
        "check" => {
            for r in bench::check(opts.scale, opts.threads) {
                println!(
                    "{:<14} {:>10} commits  {:>8} aborts  {}  verified={}",
                    r.benchmark,
                    r.stats.commits,
                    r.stats.aborts,
                    bench::fmt_dur(r.elapsed),
                    r.verified
                );
            }
        }
        "all" => {
            print!("{}", bench::fig8(&opts));
            print!("{}", bench::fig9(&opts));
            print!("{}", bench::fig10(&opts));
            print!("{}", bench::fig11a(&opts));
            print!("{}", bench::fig11b(&opts));
            print!("{}", bench::table1(&opts));
            print!("{}", bench::table2(&opts));
            print!("{}", bench::annotations(&opts));
            print!("{}", bench::orec_ablation(&opts));
        }
        _ => usage(),
    }
    eprintln!("# done in {}", bench::fmt_dur(t0.elapsed()));
}
