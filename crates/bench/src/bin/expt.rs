//! Experiment driver: regenerates every table and figure of the paper,
//! plus the dispatch-refactor microbenchmark, the thread-scaling
//! experiment, and their JSON reports.
//!
//! ```text
//! expt <fig8|fig9|fig10|fig11a|fig11b|table1|table2|annotations|orec|check|all>
//!      [--scale test|small|full] [--threads N] [--runs K]
//! expt elision [--out FILE]      # static-elision comparison (intraproc vs
//!                                # intraproc+inlining vs interprocedural)
//!                                # over STAMP-representative TL programs;
//!                                # enforces the superset/ordering/oracle
//!                                # gates and writes BENCH_elision.json
//!                                # with --out
//! expt barriers [--max-ratio F] [--max-typed-ratio F] [--max-ranged-ratio F]
//!                                # barrier_dispatch microbenchmark (Markdown);
//!                                # exits 1 if captured/direct ratio exceeds
//!                                # --max-ratio, if the typed-layer row
//!                                # exceeds --max-typed-ratio x the raw tree
//!                                # row (the ISSUE-5 zero-cost gate;
//!                                # release acceptance bar 1.10), or if the
//!                                # ranged captured span-64 row exceeds
//!                                # --max-ranged-ratio x the per-word tree
//!                                # row (the ISSUE-6 bulk-copy gate; release
//!                                # acceptance bar 0.25 = ≥4x faster per
//!                                # word; skipped on debug builds)
//! expt bench-json [--out FILE] [--benchmarks a,b] [--max-nursery-ratio F]
//!                                # BENCH_barriers.json emitter.
//!                                # --benchmarks restricts the STAMP rows to a
//!                                # comma-separated subset (CI smoke runs only
//!                                # vacation+intruder); --max-nursery-ratio
//!                                # gates `captured heap hit/nursery` vs
//!                                # `direct` (release builds only — debug
//!                                # timings are meaningless and skip with a
//!                                # note)
//! expt nursery [--benchmarks a,b]
//!                                # nursery-on vs nursery-off across STAMP
//!                                # (runtime-tree fallback), with scalar-hit
//!                                # share and region telemetry
//! expt scaling [--out FILE] [--min-speedup F]
//!                                # STAMP at 1/2/4/8 threads x {baseline,
//!                                # runtime-tree, compiler}; Markdown to
//!                                # stdout, BENCH_scaling.json with --out.
//!                                # --min-speedup gates vacation-low
//!                                # runtime-tree at 4 threads (skipped on
//!                                # hardware with <4 threads).
//! expt merge [--out FILE] [--merge N] [--min-merge-speedup F]
//!                                # transaction-merging experiment: logical
//!                                # throughput + abort rate at merge
//!                                # factors 1/2/8/32 over the transfer,
//!                                # queue, and intruder drivers; Markdown
//!                                # to stdout, BENCH_merge.json with
//!                                # --out. --merge N narrows the factor
//!                                # axis to {1, N} (rejected for 0 or
//!                                # above stm::MERGE_MAX_LIMIT);
//!                                # --min-merge-speedup gates the transfer
//!                                # driver at factor 8 (or at N when
//!                                # --merge is given; release acceptance
//!                                # bar 1.5 — debug builds skip with a
//!                                # note, their fixed costs are distorted)
//! expt contention [--out FILE] [--min-adaptive-speedup F]
//!                                # contention-management experiment: backoff
//!                                # vs adaptive-ladder policy under identical
//!                                # deterministic chaos over the hot-word,
//!                                # transfer-skew, and long-reader drivers;
//!                                # Markdown to stdout, BENCH_contention.json
//!                                # with --out. The starvation gate (adaptive
//!                                # attempts_max within the ladder's liveness
//!                                # bound) always runs; --min-adaptive-speedup
//!                                # additionally gates the hot-word driver's
//!                                # adaptive/backoff throughput ratio (release
//!                                # acceptance bar 0.7 — the claim is "no
//!                                # collapse", not "always faster"; debug
//!                                # builds skip it with a note)
//! expt durability [--out FILE] [--max-durability-tax F]
//!                                # durable redo-log commit tax: shared-heavy
//!                                # vs captured-heavy drivers at durability
//!                                # off / strict / group-commit, with the
//!                                # captured skip ratio; Markdown to stdout,
//!                                # BENCH_durability.json with --out.
//!                                # --max-durability-tax gates the captured
//!                                # driver's strict row against its own
//!                                # transient row (release acceptance bar
//!                                # 12.0 — transient captured commits are
//!                                # nearly free, so the ratio is large by
//!                                # construction; CI smoke uses a loose
//!                                # bound — debug builds skip with a note,
//!                                # their encoder costs are distorted)
//! expt pool [--out FILE] [--ops N] [--budget BYTES] [--theta F]
//!           [--merge N] [--durable] [--min-pool-throughput F]
//!                                # multi-index transactional memory pool
//!                                # (crates/pool) under a zipf(θ)-skewed
//!                                # mempool op mix: inserts with eviction,
//!                                # pop-best drain, removals, repricings,
//!                                # sender purges, duplicate resubmissions.
//!                                # --ops overrides the scale default
//!                                # (20k/200k/1M); --budget sets the pool's
//!                                # live-byte budget; --merge N adds a
//!                                # txn_batch arm; --durable adds a redo-log
//!                                # arm. Markdown to stdout, BENCH_pool.json
//!                                # with --out. --min-pool-throughput gates
//!                                # the plain arm's committed ops/s (debug
//!                                # builds skip with a note)
//! ```
//!
//! Output is Markdown, mirroring the paper's rows/series; see EXPERIMENTS.md
//! for an archived run with paper-vs-measured commentary.

use bench_support as bench;
use stamp::Scale;
use stm::TxObject;

fn usage() -> ! {
    eprintln!(
        "usage: expt <fig8|fig9|fig10|fig11a|fig11b|table1|table2|annotations|orec|check|\
         barriers|bench-json|scaling|merge|elision|nursery|durability|contention|pool|all> \
         [--scale test|small|full] [--threads N] [--runs K] [--out FILE] [--max-ratio F] \
         [--max-typed-ratio F] [--max-ranged-ratio F] [--min-speedup F] [--benchmarks a,b] \
         [--max-nursery-ratio F] [--merge N] [--min-merge-speedup F] [--max-durability-tax F] \
         [--min-adaptive-speedup F] [--ops N] [--budget BYTES] [--theta F] [--durable] \
         [--min-pool-throughput F]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("expt: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].as_str();
    let mut opts = bench::ExptOpts::default();
    let mut out_path: Option<String> = None;
    let mut max_ratio: Option<f64> = None;
    let mut max_typed_ratio: Option<f64> = None;
    let mut max_ranged_ratio: Option<f64> = None;
    let mut min_speedup: Option<f64> = None;
    let mut max_nursery_ratio: Option<f64> = None;
    let mut merge_factor: Option<usize> = None;
    let mut min_merge_speedup: Option<f64> = None;
    let mut max_durability_tax: Option<f64> = None;
    let mut min_adaptive_speedup: Option<f64> = None;
    let mut benchmarks: Option<Vec<stamp::Benchmark>> = None;
    let mut pool_ops: Option<u64> = None;
    let mut pool_budget: Option<u64> = None;
    let mut pool_theta: Option<f64> = None;
    let mut pool_durable = false;
    let mut min_pool_throughput: Option<f64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--max-ratio" => {
                i += 1;
                max_ratio = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--max-typed-ratio" => {
                i += 1;
                max_typed_ratio = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--max-ranged-ratio" => {
                i += 1;
                max_ranged_ratio = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--max-nursery-ratio" => {
                i += 1;
                max_nursery_ratio = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--benchmarks" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| usage());
                benchmarks =
                    Some(bench::report::parse_benchmark_filter(&spec).unwrap_or_else(|e| fail(&e)));
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--merge" => {
                i += 1;
                merge_factor = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--min-merge-speedup" => {
                i += 1;
                min_merge_speedup = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--max-durability-tax" => {
                i += 1;
                max_durability_tax = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--min-adaptive-speedup" => {
                i += 1;
                min_adaptive_speedup = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--ops" => {
                i += 1;
                pool_ops = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--budget" => {
                i += 1;
                pool_budget = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--theta" => {
                i += 1;
                pool_theta = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--durable" => {
                pool_durable = true;
            }
            "--min-pool-throughput" => {
                i += 1;
                min_pool_throughput = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(|s| s.as_str()) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--runs" => {
                i += 1;
                opts.runs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    // Validate up front: zero threads divides work by zero, zero runs has
    // no median, and absurd thread counts would balloon every benchmark's
    // simulated address space (one stack region per thread).
    if opts.threads == 0 {
        fail("--threads must be at least 1");
    }
    if opts.threads > stamp::MAX_THREADS {
        fail(&format!(
            "--threads {} exceeds the supported maximum of {} worker stack regions",
            opts.threads,
            stamp::MAX_THREADS
        ));
    }
    if opts.runs == 0 {
        fail("--runs must be at least 1 (timings report the median run)");
    }
    if let Some(n) = merge_factor {
        // Reject factors the runtime's own config validation would reject:
        // a zero-wide batch is meaningless and anything above
        // MERGE_MAX_LIMIT would fail TxConfig::builder deep in the driver.
        if n == 0 {
            fail("--merge must be at least 1 (1 = unmerged baseline)");
        }
        if n > stm::MERGE_MAX_LIMIT as usize {
            fail(&format!(
                "--merge {n} exceeds the supported maximum merge_max of {}",
                stm::MERGE_MAX_LIMIT
            ));
        }
    }

    // Pool-flag validation mirrors the library's PoolConfig::validate but
    // fails at the CLI boundary with actionable messages instead of a
    // panic deep inside a worker thread.
    if pool_ops == Some(0) {
        fail("--ops must be at least 1 (omit it for the scale default)");
    }
    if let Some(b) = pool_budget {
        if b < pool::Item::BYTES {
            fail(&format!(
                "--budget {b} cannot hold a single pool item ({} bytes minimum)",
                pool::Item::BYTES
            ));
        }
    }
    if let Some(t) = pool_theta {
        if !t.is_finite() || !(0.0..=4.0).contains(&t) {
            fail("--theta must be a finite zipf exponent in 0.0..=4.0");
        }
    }

    eprintln!(
        "# expt {cmd} (scale {:?}, {} threads, {} runs)",
        opts.scale, opts.threads, opts.runs
    );
    let t0 = std::time::Instant::now();
    match cmd {
        "fig8" => print!("{}", bench::fig8(&opts)),
        "fig9" => print!("{}", bench::fig9(&opts)),
        "fig10" => print!("{}", bench::fig10(&opts)),
        "fig11a" => print!("{}", bench::fig11a(&opts)),
        "fig11b" => print!("{}", bench::fig11b(&opts)),
        "table1" => print!("{}", bench::table1(&opts)),
        "table2" => print!("{}", bench::table2(&opts)),
        "annotations" => print!("{}", bench::annotations(&opts)),
        "orec" => print!("{}", bench::orec_ablation(&opts)),
        "barriers" => {
            let micro_opts = bench::micro::MicroOpts::default();
            let results = bench::micro::barrier_dispatch(&micro_opts);
            print!("{}", bench::micro::render_markdown(&results, &micro_opts));
            if let Some(max) = max_ratio {
                // Regression gate (CI): the monomorphized captured-heap
                // fast path must stay within `max` of the raw-access
                // floor. Pass a loose bound — single-run ratios wobble.
                let ratio = bench::micro::fastpath_ratio(&results)
                    .expect("pin measurements missing from results");
                if ratio > max {
                    eprintln!("# FAIL: fast-path ratio {ratio:.2} exceeds --max-ratio {max:.2}");
                    std::process::exit(1);
                }
                eprintln!("# fast-path ratio {ratio:.2} within --max-ratio {max:.2}");
            }
            if let Some(max) = max_typed_ratio {
                // Regression gate (CI): the typed object layer must stay
                // zero-cost — its captured-heap row is the same workload
                // as the raw tree row through `read_field`-family entry
                // points, so any real gap means the typed wrappers stopped
                // inlining down to the word barriers.
                let ratio = bench::micro::typed_ratio(&results)
                    .expect("typed pin measurements missing from results");
                if ratio > max {
                    eprintln!(
                        "# FAIL: typed/raw ratio {ratio:.2} exceeds --max-typed-ratio {max:.2}"
                    );
                    std::process::exit(1);
                }
                eprintln!("# typed/raw ratio {ratio:.2} within --max-typed-ratio {max:.2}");
            }
            if let Some(max) = max_ranged_ratio {
                // Release gate (ISSUE 6): a 64-word captured span must cost
                // at most `max` of the per-word captured hit per word —
                // classify-once + bulk copy vs one classification per word.
                // Debug timings are meaningless; skip with a note there.
                if cfg!(debug_assertions) {
                    eprintln!("# ranged ratio gate skipped: debug build");
                } else {
                    let ratio = bench::micro::ranged_ratio(&results)
                        .expect("ranged pin measurements missing from results");
                    if ratio > max {
                        eprintln!(
                            "# FAIL: ranged/per-word ratio {ratio:.2} exceeds \
                             --max-ranged-ratio {max:.2}"
                        );
                        std::process::exit(1);
                    }
                    eprintln!(
                        "# ranged/per-word ratio {ratio:.2} within --max-ranged-ratio {max:.2}"
                    );
                }
            }
        }
        "bench-json" => {
            let micro = bench::micro::MicroOpts::default();
            let results = bench::micro::barrier_dispatch(&micro);
            let json = bench::report::bench_json_from(&opts, &results, benchmarks.as_deref());
            let path = out_path.as_deref().unwrap_or("BENCH_barriers.json");
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("# wrote {path}");
            if let Some(max) = max_nursery_ratio {
                // Regression gate (CI): the nursery's two-compare captured
                // heap hit must stay within `max` of the raw-access floor.
                // Debug timings are meaningless; skip with a note there.
                if cfg!(debug_assertions) {
                    eprintln!("# nursery ratio gate skipped: debug build");
                } else {
                    let ratio = bench::micro::nursery_ratio(&results)
                        .expect("nursery pin missing from results");
                    if ratio > max {
                        eprintln!(
                            "# FAIL: nursery ratio {ratio:.2} exceeds \
                             --max-nursery-ratio {max:.2}"
                        );
                        std::process::exit(1);
                    }
                    eprintln!("# nursery ratio {ratio:.2} within --max-nursery-ratio {max:.2}");
                }
            }
        }
        "nursery" => {
            let rows = bench::nursery::nursery_rows(&opts, benchmarks.as_deref());
            print!("{}", bench::nursery::render_markdown(&opts, &rows));
        }
        "scaling" => {
            let rows = bench::scaling::scaling_rows(&opts);
            print!("{}", bench::scaling::render_markdown(&opts, &rows));
            if let Some(path) = out_path.as_deref() {
                let json = bench::scaling::scaling_json(&opts, &rows);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("# wrote {path}");
            }
            if let Some(min) = min_speedup {
                // Regression gate (CI): the allocation-heavy captured
                // workload must keep scaling once the serialization points
                // are sharded. Skipped (with a note) when the hardware
                // cannot physically run 4 threads at once.
                match bench::scaling::speedup_gate(&rows, "vacation low", "runtime-tree", 4, min) {
                    Ok(Some(s)) => {
                        eprintln!("# vacation-low runtime-tree 4t speedup {s:.2}x >= {min:.2}x")
                    }
                    Ok(None) => eprintln!(
                        "# speedup gate skipped: only {} hardware thread(s) available",
                        bench::scaling::available_parallelism()
                    ),
                    Err(msg) => {
                        eprintln!("# FAIL: {msg}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "merge" => {
            // --merge N narrows the factor axis to {1, N} (factor 1 stays:
            // it seeds the speedup baseline); default is the full sweep.
            let factors: Vec<usize> = match merge_factor {
                Some(1) | None => bench::merge::FACTORS.to_vec(),
                Some(n) => vec![1, n],
            };
            let rows = bench::merge::merge_rows(&opts, &factors);
            print!("{}", bench::merge::render_markdown(&opts, &factors, &rows));
            if let Some(path) = out_path.as_deref() {
                let json = bench::merge::merge_json(&opts, &factors, &rows);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("# wrote {path}");
            }
            if let Some(min) = min_merge_speedup {
                // Release gate (ISSUE 7): merging must amortize commit
                // costs — the transfer driver at factor 8 (or the custom
                // --merge factor) has to beat its own unmerged row. Debug
                // fixed costs are distorted; skip with a note there.
                if cfg!(debug_assertions) {
                    eprintln!("# merge speedup gate skipped: debug build");
                } else {
                    let gate_factor = match merge_factor {
                        Some(n) if n > 1 => n,
                        _ => 8,
                    };
                    match bench::merge::merge_speedup_gate(&rows, "transfer", gate_factor, min) {
                        Ok(s) => eprintln!(
                            "# transfer merge-factor-{gate_factor} speedup {s:.2}x >= {min:.2}x"
                        ),
                        Err(msg) => {
                            eprintln!("# FAIL: {msg}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
        "durability" => {
            let rows = bench::durability::durability_rows(&opts);
            print!("{}", bench::durability::render_markdown(&opts, &rows));
            if let Some(path) = out_path.as_deref() {
                let json = bench::durability::durability_json(&opts, &rows);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("# wrote {path}");
            }
            if let Some(max) = max_durability_tax {
                // Release gate (ISSUE 8): the captured-heavy driver's
                // strict durable row must stay within `max` of its own
                // transient row — the coalesced-range encoder and the
                // capture skip are what keep the tax bounded. Debug
                // encoder costs are distorted; skip with a note there.
                if cfg!(debug_assertions) {
                    eprintln!("# durability tax gate skipped: debug build");
                } else {
                    match bench::durability::durability_tax_gate(&rows, "captured", "strict", max) {
                        Ok(t) => eprintln!("# captured strict durability tax {t:.2}x <= {max:.2}x"),
                        Err(msg) => {
                            eprintln!("# FAIL: {msg}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
        "contention" => {
            let rows = bench::contention::contention_rows(&opts);
            print!("{}", bench::contention::render_markdown(&opts, &rows));
            if let Some(path) = out_path.as_deref() {
                let json = bench::contention::contention_json(&opts, &rows);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("# wrote {path}");
            }
            // Liveness gate (ISSUE 9): the adaptive ladder's whole point is
            // a bounded worst case — no transaction may exceed the
            // serialize-threshold-plus-drain attempt bound. This is a
            // correctness property of the schedule, not a timing, so it
            // runs unconditionally (debug builds included).
            match bench::contention::starvation_gate(&rows) {
                Ok(worst) => eprintln!(
                    "# adaptive attempts_max {worst} within the liveness bound {}",
                    bench::contention::SERIALIZE_THRESHOLD + 8 * opts.threads.max(2) as u64
                ),
                Err(msg) => {
                    eprintln!("# FAIL: {msg}");
                    std::process::exit(1);
                }
            }
            if let Some(min) = min_adaptive_speedup {
                // Release gate (ISSUE 9): serializing chronic aborters must
                // not collapse throughput — the adaptive arm of the densest
                // driver has to hold `min` of its backoff arm. Debug
                // timings are meaningless; skip with a note there.
                if cfg!(debug_assertions) {
                    eprintln!("# adaptive speedup gate skipped: debug build");
                } else {
                    match bench::contention::adaptive_speedup_gate(&rows, "hot-word", min) {
                        Ok(s) => {
                            eprintln!("# hot-word adaptive/backoff throughput {s:.2}x >= {min:.2}x")
                        }
                        Err(msg) => {
                            eprintln!("# FAIL: {msg}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
        "pool" => {
            let mut popts = bench::pool::PoolOpts::default();
            if let Some(n) = pool_ops {
                popts.ops = n;
            }
            if let Some(b) = pool_budget {
                popts.budget = b;
            }
            if let Some(t) = pool_theta {
                popts.theta = t;
            }
            if let Some(n) = merge_factor {
                popts.merge = n;
            }
            popts.durable = pool_durable;
            let rows = bench::pool::pool_rows(&opts, &popts);
            print!("{}", bench::pool::render_markdown(&opts, &popts, &rows));
            if let Some(path) = out_path.as_deref() {
                let json = bench::pool::pool_json(&opts, &popts, &rows);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("# wrote {path}");
            }
            if let Some(min) = min_pool_throughput {
                // Release gate (ISSUE 10): the pool's plain arm must
                // sustain the committed-op throughput bar. Debug timings
                // are meaningless; skip with a note there.
                if cfg!(debug_assertions) {
                    eprintln!("# pool throughput gate skipped: debug build");
                } else {
                    match bench::pool::pool_throughput_gate(&rows, min) {
                        Ok(t) => eprintln!("# pool plain-arm throughput {t:.0} ops/s >= {min:.0}"),
                        Err(msg) => {
                            eprintln!("# FAIL: {msg}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
        "elision" => {
            // The report function enforces the superset / ordering /
            // vm-oracle gates itself (panics on violation), so running
            // this subcommand is the acceptance check.
            let reports = bench::elision::elision_report();
            print!("{}", bench::elision::render_markdown(&reports));
            if let Some(path) = out_path.as_deref() {
                let json = bench::elision::elision_json(&reports);
                std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("# wrote {path}");
            }
        }
        "check" => {
            for r in bench::check(opts.scale, opts.threads) {
                println!(
                    "{:<14} {:>10} commits  {:>8} aborts  {}  verified={}  \
                     ranged r/w/spans/fallbacks={}/{}/{}/{}  \
                     cm waits/karma/serial/att_max={}/{}/{}/{}",
                    r.benchmark,
                    r.stats.commits,
                    r.stats.aborts,
                    bench::fmt_dur(r.elapsed),
                    r.verified,
                    r.stats.ranged_reads,
                    r.stats.ranged_writes,
                    r.stats.ranged_spans,
                    r.stats.ranged_fallbacks,
                    r.stats.backoff_waits,
                    r.stats.cm_karma_escalations,
                    r.stats.cm_serializations,
                    r.stats.attempts_max
                );
            }
        }
        "all" => {
            print!("{}", bench::fig8(&opts));
            print!("{}", bench::fig9(&opts));
            print!("{}", bench::fig10(&opts));
            print!("{}", bench::fig11a(&opts));
            print!("{}", bench::fig11b(&opts));
            print!("{}", bench::table1(&opts));
            print!("{}", bench::table2(&opts));
            print!("{}", bench::annotations(&opts));
            print!("{}", bench::orec_ablation(&opts));
        }
        _ => usage(),
    }
    eprintln!("# done in {}", bench::fmt_dur(t0.elapsed()));
}
