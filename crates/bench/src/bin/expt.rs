//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! expt <fig8|fig9|fig10|fig11a|fig11b|table1|table2|annotations|orec|check|all>
//!      [--scale test|small|full] [--threads N] [--runs K]
//! ```
//!
//! Output is Markdown, mirroring the paper's rows/series; see EXPERIMENTS.md
//! for an archived run with paper-vs-measured commentary.

use bench_support as bench;
use stamp::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: expt <fig8|fig9|fig10|fig11a|fig11b|table1|table2|annotations|orec|check|all> \
         [--scale test|small|full] [--threads N] [--runs K]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].as_str();
    let mut opts = bench::ExptOpts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(|s| s.as_str()) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--threads" => {
                i += 1;
                opts.threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--runs" => {
                i += 1;
                opts.runs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    eprintln!(
        "# expt {cmd} (scale {:?}, {} threads, {} runs)",
        opts.scale, opts.threads, opts.runs
    );
    let t0 = std::time::Instant::now();
    match cmd {
        "fig8" => print!("{}", bench::fig8(&opts)),
        "fig9" => print!("{}", bench::fig9(&opts)),
        "fig10" => print!("{}", bench::fig10(&opts)),
        "fig11a" => print!("{}", bench::fig11a(&opts)),
        "fig11b" => print!("{}", bench::fig11b(&opts)),
        "table1" => print!("{}", bench::table1(&opts)),
        "table2" => print!("{}", bench::table2(&opts)),
        "annotations" => print!("{}", bench::annotations(&opts)),
        "orec" => print!("{}", bench::orec_ablation(&opts)),
        "check" => {
            for r in bench::check(opts.scale, opts.threads) {
                println!(
                    "{:<14} {:>10} commits  {:>8} aborts  {}  verified={}",
                    r.benchmark,
                    r.stats.commits,
                    r.stats.aborts,
                    bench::fmt_dur(r.elapsed),
                    r.verified
                );
            }
        }
        "all" => {
            print!("{}", bench::fig8(&opts));
            print!("{}", bench::fig9(&opts));
            print!("{}", bench::fig10(&opts));
            print!("{}", bench::fig11a(&opts));
            print!("{}", bench::fig11b(&opts));
            print!("{}", bench::table1(&opts));
            print!("{}", bench::table2(&opts));
            print!("{}", bench::annotations(&opts));
            print!("{}", bench::orec_ablation(&opts));
        }
        _ => usage(),
    }
    eprintln!("# done in {}", bench::fmt_dur(t0.elapsed()));
}
