//! Differential oracle for the transactional pool (ISSUE 10 acceptance):
//! random op scripts run against [`TxPool`] under every allocation-log
//! kind × nursery on/off × merge widths, and every arm must match the
//! sequential [`ModelPool`] bit-for-bit — per-op return values, final
//! contents, and all twelve header counters. That includes `dup_skips`,
//! which depends on bloom-filter *false positives*: the model earns
//! parity by simulating the filter bit-exactly, not by cheating with a
//! perfect set.
//!
//! On top of the model comparison every arm runs [`TxPool::seq_check`]
//! (index cross-consistency, exact byte accounting, budget bound), and
//! the nursery-on/off pair must agree on the capture-independent stats
//! line (commits, aborts, transactional allocs/frees) — the pool's
//! behaviour may not depend on which capture classifier is loaded.

use pool::model::ModelPool;
use pool::{Item, PoolConfig, PoolCounters, PoolEntry, TxPool};
use proptest::prelude::*;
use stm::{CheckScope, LogKind, Mode, StmRuntime, TxConfig, TxObject};
use txmem::MemConfig;

/// Twelve max-size items; small enough that scripts routinely evict and
/// hit the rejected-insert path.
const BUDGET: u64 = 12 * Item::BYTES;
/// Tiny filter (128 bits) so bloom false positives actually occur and
/// the `dup_skips` mirror is tested, not just vacuously equal.
const BLOOM_WORDS: u64 = 2;

#[derive(Clone, Debug)]
enum Op {
    Insert {
        id: u64,
        sender: u64,
        nonce: u64,
        prio: u64,
        payload_words: u64,
    },
    Remove {
        id: u64,
    },
    PopBest,
    Promote {
        id: u64,
        prio: u64,
    },
    RemoveSender {
        sender: u64,
    },
    Contains {
        id: u64,
    },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (1..28u64, 0..6u64, 0..8u64, 0..8u64, 0..4u64).prop_map(
            |(id, sender, nonce, prio, payload_words)| Op::Insert {
                id,
                sender,
                nonce,
                prio,
                payload_words,
            }
        ),
        2 => (1..28u64).prop_map(|id| Op::Remove { id }),
        2 => Just(Op::PopBest),
        2 => (1..28u64, 0..8u64).prop_map(|(id, prio)| Op::Promote { id, prio }),
        1 => (0..6u64).prop_map(|sender| Op::RemoveSender { sender }),
        1 => (1..28u64).prop_map(|id| Op::Contains { id }),
    ]
}

fn script() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op(), 1..80)
}

/// One op against the real pool; the outcome is rendered with `Debug` so
/// `InsertOutcome`, `Option<PoolEntry>`, `bool`, and `u64` returns all
/// compare through one channel.
fn apply(pool: &TxPool, tx: &mut stm::Tx<'_, '_>, op: &Op) -> stm::TxResult<String> {
    Ok(match *op {
        Op::Insert {
            id,
            sender,
            nonce,
            prio,
            payload_words,
        } => format!(
            "{:?}",
            pool.insert(tx, id, sender, nonce, prio, payload_words)?
        ),
        Op::Remove { id } => format!("{:?}", pool.remove(tx, id)?),
        Op::PopBest => format!("{:?}", pool.pop_best(tx)?),
        Op::Promote { id, prio } => format!("{:?}", pool.promote(tx, id, prio)?),
        Op::RemoveSender { sender } => format!("{:?}", pool.remove_sender(tx, sender)?),
        Op::Contains { id } => format!("{:?}", pool.contains(tx, id)?),
    })
}

/// The same op against the sequential model.
fn apply_model(m: &mut ModelPool, op: &Op) -> String {
    match *op {
        Op::Insert {
            id,
            sender,
            nonce,
            prio,
            payload_words,
        } => format!("{:?}", m.insert(id, sender, nonce, prio, payload_words)),
        Op::Remove { id } => format!("{:?}", m.remove(id)),
        Op::PopBest => format!("{:?}", m.pop_best()),
        Op::Promote { id, prio } => format!("{:?}", m.promote(id, prio)),
        Op::RemoveSender { sender } => format!("{:?}", m.remove_sender(sender)),
        Op::Contains { id } => format!("{:?}", m.contains(id)),
    }
}

struct PoolRun {
    outcomes: Vec<String>,
    contents: Vec<PoolEntry>,
    counters: PoolCounters,
    /// Capture-independent stats: (commits, aborts, tx_allocs, tx_frees).
    stats: (u64, u64, u64, u64),
}

/// Run the script one-transaction-per-op (`merge <= 1`) or through
/// `txn_batch` windows of `merge` logical transactions.
fn run_pool(script: &[Op], cfg: TxConfig, merge: usize) -> PoolRun {
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let pool = TxPool::create(
        &rt,
        PoolConfig {
            budget_bytes: BUDGET,
            bloom_words: BLOOM_WORDS,
        },
    );
    let mut w = rt.spawn_worker();
    let mut outcomes = Vec::with_capacity(script.len());
    if merge <= 1 {
        for op in script {
            outcomes.push(w.txn(|tx| apply(&pool, tx, op)));
        }
    } else {
        for window in script.chunks(merge) {
            let mut outs = vec![String::new(); window.len()];
            let run = w.txn_batch(window.len(), |b| {
                let i = b.logical_index() as usize;
                outs[i] = apply(&pool, b, &window[i])?;
                Ok(true)
            });
            assert_eq!(run.committed, window.len() as u64, "merged window aborted");
            outcomes.append(&mut outs);
        }
    }
    pool.seq_check(&w);
    PoolRun {
        outcomes,
        contents: pool.seq_collect(&w),
        counters: pool.seq_counters(&w),
        stats: (
            w.stats.commits,
            w.stats.aborts,
            w.stats.tx_allocs,
            w.stats.tx_frees,
        ),
    }
}

fn run_model(script: &[Op]) -> (Vec<String>, Vec<PoolEntry>, PoolCounters) {
    let mut m = ModelPool::new(BUDGET, BLOOM_WORDS);
    let outcomes = script.iter().map(|op| apply_model(&mut m, op)).collect();
    (outcomes, m.contents(), m.counters())
}

fn log_cfg(log: LogKind, nursery: bool) -> TxConfig {
    let mut cfg = TxConfig::with_mode(Mode::Runtime {
        log,
        scope: CheckScope::FULL,
    });
    cfg.nursery = nursery;
    cfg
}

/// Config arms the acceptance clause names: every log kind, nursery
/// on/off for the tree log, and merge widths 1 and 4 (the merged arm
/// rides the nursery config, where salvage matters most).
fn arms() -> Vec<(&'static str, TxConfig, usize)> {
    let merged = TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .nursery(true)
        .merge_max(4)
        .build()
        .expect("static merge config");
    vec![
        ("tree", TxConfig::runtime_tree_full(), 1),
        ("tree+nursery", TxConfig::runtime_tree_nursery(), 1),
        ("array", log_cfg(LogKind::Array, false), 1),
        ("filtering", log_cfg(LogKind::Filter, false), 1),
        ("tree+nursery+merge4", merged, 4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole's oracle: every arm reproduces the sequential model's
    // outcome stream, contents, and counters exactly, and the nursery
    // on/off pair agrees on the capture-independent stats line.
    #[test]
    fn pool_matches_sequential_model(script in script()) {
        let (m_out, m_contents, m_counters) = run_model(&script);
        let mut tree_pair: Vec<(u64, u64, u64, u64)> = Vec::new();
        for (name, cfg, merge) in arms() {
            let r = run_pool(&script, cfg, merge);
            prop_assert_eq!(&r.outcomes, &m_out, "op outcomes diverged in arm {}", name);
            prop_assert_eq!(&r.contents, &m_contents, "contents diverged in arm {}", name);
            prop_assert_eq!(&r.counters, &m_counters, "counters diverged in arm {}", name);
            if name.starts_with("tree") && merge == 1 {
                tree_pair.push(r.stats);
            }
        }
        prop_assert_eq!(
            tree_pair[0], tree_pair[1],
            "nursery on/off changed commits/aborts/allocs/frees"
        );
    }
}

/// Deterministic vacuity guard: a fixed script that provably drives the
/// interesting paths — eviction, duplicate hit, bloom-negative skip,
/// rejection, promote, sender purge — so the property above cannot pass
/// on scripts that never leave the easy region.
#[test]
fn oracle_script_space_is_not_vacuous() {
    let mut script: Vec<Op> = (1..=16u64)
        .map(|id| Op::Insert {
            id,
            sender: id % 3,
            nonce: id,
            prio: id,
            payload_words: id % 4,
        })
        .collect();
    script.push(Op::Insert {
        id: 16,
        sender: 0,
        nonce: 99,
        prio: 7,
        payload_words: 0,
    }); // id 16 has the best priority, so it survived eviction: duplicate
    script.push(Op::Insert {
        id: 100,
        sender: 5,
        nonce: 0,
        prio: 0,
        payload_words: 0,
    }); // worst prio into a full pool: rejected
    script.push(Op::Promote { id: 14, prio: 0 });
    script.push(Op::RemoveSender { sender: 1 });
    script.push(Op::PopBest);
    script.push(Op::Remove { id: 15 });

    let (m_out, m_contents, m_counters) = run_model(&script);
    assert!(
        m_counters.evicted > 0,
        "script never evicts: {m_counters:?}"
    );
    assert!(m_counters.dup_hits > 0, "script never hits a duplicate");
    assert!(m_counters.rejected > 0, "script never rejects an insert");
    assert!(
        m_counters.dup_skips > 0,
        "script never skips on a bloom negative"
    );
    assert!(m_counters.promoted > 0 && m_counters.purged > 0 && m_counters.popped > 0);

    for (name, cfg, merge) in arms() {
        let r = run_pool(&script, cfg, merge);
        assert_eq!(r.outcomes, m_out, "outcomes diverged in arm {name}");
        assert_eq!(r.contents, m_contents, "contents diverged in arm {name}");
        assert_eq!(r.counters, m_counters, "counters diverged in arm {name}");
    }
}
