//! Eviction edge cases (ISSUE 10 satellite): exact-budget boundaries,
//! the incoming item never evicting itself, re-insertion of an evicted
//! id (bloom-positive but live-miss), all-or-nothing rejection, and
//! eviction racing a by-sender purge — every scenario ends with
//! [`TxPool::seq_check`], and the deterministic ones are cross-checked
//! against the sequential model.

use pool::model::ModelPool;
use pool::{InsertOutcome, Item, PoolConfig, TxPool};
use stm::{StmRuntime, TxConfig, TxObject};
use txmem::MemConfig;

const B: u64 = Item::BYTES;

fn pool_rt(budget_bytes: u64) -> (StmRuntime, TxPool) {
    let rt = StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_nursery());
    let pool = TxPool::create(
        &rt,
        PoolConfig {
            budget_bytes,
            bloom_words: 4,
        },
    );
    (rt, pool)
}

/// Budget met to the byte is *within* budget: no eviction until the next
/// insert actually needs room, and then exactly one victim goes.
#[test]
fn budget_exactly_met_then_single_evict() {
    let (rt, pool) = pool_rt(3 * B);
    let mut w = rt.spawn_worker();
    for id in 1..=3u64 {
        let out = w.txn(|tx| pool.insert(tx, id, 0, id, id, 0));
        assert_eq!(out, InsertOutcome::Inserted { evicted: 0 });
    }
    let full = w.txn(|tx| pool.live_bytes(tx));
    assert_eq!(full, 3 * B, "pool should sit exactly at budget");
    pool.seq_check(&w);

    // A better item displaces exactly the worst one; live bytes return
    // to the exact budget.
    let out = w.txn(|tx| pool.insert(tx, 4, 0, 4, 9, 0));
    assert_eq!(out, InsertOutcome::Inserted { evicted: 1 });
    assert_eq!(w.txn(|tx| pool.live_bytes(tx)), 3 * B);
    let ids: Vec<u64> = pool.seq_collect(&w).iter().map(|e| e.id).collect();
    assert_eq!(ids, vec![2, 3, 4], "the prio-1 item must be the victim");
    pool.seq_check(&w);
}

/// The incoming item is never its own eviction victim: when it would be
/// the worst item in the pool, the plan finds no strictly-worse prefix
/// and rejects, leaving the pool byte-identical.
#[test]
fn incoming_worst_item_is_rejected_untouched() {
    let (rt, pool) = pool_rt(3 * B);
    let mut w = rt.spawn_worker();
    for id in 10..=12u64 {
        w.txn(|tx| pool.insert(tx, id, 0, id, 5, 0));
    }
    let before = pool.seq_collect(&w);

    // Strictly worse priority: nothing below it to evict.
    let out = w.txn(|tx| pool.insert(tx, 90, 1, 0, 2, 0));
    assert_eq!(out, InsertOutcome::Rejected);
    // Equal priority, *lower* id: the incoming key (5, 5) sorts below
    // every live (5, 10..12) key, so the strictly-worse prefix is empty —
    // the item it would most like to evict is, rank-wise, itself.
    let out = w.txn(|tx| pool.insert(tx, 5, 1, 0, 5, 0));
    assert_eq!(
        out,
        InsertOutcome::Rejected,
        "a same-priority item never evicts peers that outrank it"
    );
    assert_eq!(
        pool.seq_collect(&w),
        before,
        "rejection must not disturb the pool"
    );
    assert_eq!(pool.seq_counters(&w).rejected, 2);
    pool.seq_check(&w);
}

/// An id that was evicted reads as bloom-positive forever (the filter is
/// monotone) but must re-insert as a fresh item, not a duplicate.
#[test]
fn reinsert_after_evict_is_fresh_not_duplicate() {
    let (rt, pool) = pool_rt(3 * B);
    let mut w = rt.spawn_worker();
    let mut m = ModelPool::new(3 * B, 4);

    assert_eq!(
        w.txn(|tx| pool.insert(tx, 1, 0, 0, 1, 0)),
        m.insert(1, 0, 0, 1, 0)
    );
    for id in 2..=4u64 {
        assert_eq!(
            w.txn(|tx| pool.insert(tx, id, 0, id, 8, 0)),
            m.insert(id, 0, id, 8, 0)
        );
    }
    assert!(!w.txn(|tx| pool.contains(tx, 1)), "id 1 should be evicted");

    // Re-insert at a winning priority: bloom says maybe-seen, the exact
    // probe misses, and it comes back as a brand-new item.
    let out = w.txn(|tx| pool.insert(tx, 1, 0, 9, 9, 0));
    assert_eq!(out, m.insert(1, 0, 9, 9, 0));
    assert!(matches!(out, InsertOutcome::Inserted { .. }));
    let c = pool.seq_counters(&w);
    assert_eq!(c.dup_hits, 0, "an evicted id is not a duplicate");
    assert_eq!(c, m.counters());
    assert_eq!(pool.seq_collect(&w), m.contents());
    pool.seq_check(&w);
}

/// Victim bytes that match the incoming need exactly: one eviction, and
/// the pool lands back on the precise budget boundary.
#[test]
fn eviction_frees_exactly_the_needed_bytes() {
    let budget = 3 * B + 16;
    let (rt, pool) = pool_rt(budget);
    let mut w = rt.spawn_worker();
    // 184 + 168 + 168 = budget exactly; the prio-1 item carries the
    // 2-word payload.
    assert_eq!(
        w.txn(|tx| pool.insert(tx, 1, 0, 0, 1, 2)),
        InsertOutcome::Inserted { evicted: 0 }
    );
    for id in 2..=3u64 {
        w.txn(|tx| pool.insert(tx, id, 0, id, 5, 0));
    }
    assert_eq!(w.txn(|tx| pool.live_bytes(tx)), budget);

    // Needs 184; evicting the single 184-byte worst item is exactly enough.
    let out = w.txn(|tx| pool.insert(tx, 4, 0, 4, 9, 2));
    assert_eq!(out, InsertOutcome::Inserted { evicted: 1 });
    assert_eq!(w.txn(|tx| pool.live_bytes(tx)), budget);
    let c = pool.seq_counters(&w);
    assert_eq!((c.evicted, c.evicted_bytes), (1, B + 16));
    pool.seq_check(&w);
}

/// A by-sender purge and an eviction composed in ONE transaction are
/// atomic: a user abort after both rolls everything back.
#[test]
fn purge_plus_evicting_insert_compose_and_roll_back() {
    let (rt, pool) = pool_rt(4 * B);
    let mut w = rt.spawn_worker();
    for id in 1..=4u64 {
        w.txn(|tx| pool.insert(tx, id, id % 2, id, id, 0));
    }
    let before = pool.seq_collect(&w);
    let before_counters = pool.seq_counters(&w);

    // Aborted attempt: purge sender 1 (ids 1, 3), insert a full-budget
    // replacement that evicts, then bail. Nothing may stick.
    let r: Result<(), u64> = w.txn_result(|tx| {
        let purged = pool.remove_sender(tx, 1)?;
        assert_eq!(purged, 2);
        let out = pool.insert(tx, 50, 9, 0, 9, 0)?;
        assert!(matches!(out, InsertOutcome::Inserted { .. }));
        Err(stm::Abort::User(7))
    });
    assert_eq!(r, Err(7));
    assert_eq!(
        pool.seq_collect(&w),
        before,
        "user abort must undo purge + insert"
    );
    assert_eq!(pool.seq_counters(&w), before_counters);
    pool.seq_check(&w);

    // Committed attempt: both effects land atomically.
    let (purged, out) = w.txn(|tx| {
        let purged = pool.remove_sender(tx, 1)?;
        let out = pool.insert(tx, 50, 9, 0, 9, 0)?;
        Ok((purged, out))
    });
    assert_eq!(purged, 2);
    assert_eq!(out, InsertOutcome::Inserted { evicted: 0 });
    let ids: Vec<u64> = pool.seq_collect(&w).iter().map(|e| e.id).collect();
    assert_eq!(ids, vec![2, 4, 50]);
    pool.seq_check(&w);
}

/// Two threads, one evicting by inserting ever-better items into a tiny
/// pool, one purging that sender's chain: whatever interleaving the STM
/// serializes to, the indices stay cross-consistent and the conservation
/// law (`inserted == live + evicted + popped + removed + purged`) holds.
#[test]
fn eviction_racing_sender_purge_stays_consistent() {
    let (rt, pool) = pool_rt(6 * B);
    const ROUNDS: u64 = 300;
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut w = rt.spawn_worker();
            for i in 0..ROUNDS {
                // Sender 7 items climb in priority so later inserts evict
                // earlier ones while the purger races the same chain.
                w.txn(|tx| pool.insert(tx, 1000 + i, 7, i, i, i % 3));
            }
        });
        s.spawn(|| {
            let mut w = rt.spawn_worker();
            for _ in 0..ROUNDS / 4 {
                w.txn(|tx| pool.remove_sender(tx, 7));
            }
        });
    });
    let w = rt.spawn_worker();
    pool.seq_check(&w);
    let c = pool.seq_counters(&w);
    assert!(c.evicted > 0, "race never evicted: {c:?}");
    assert!(c.purged > 0, "race never purged: {c:?}");
    // Every item the purger missed was either evicted or is still live.
    assert_eq!(
        c.inserted,
        pool.seq_collect(&w).len() as u64 + c.evicted + c.purged
    );
}
