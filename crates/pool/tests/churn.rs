//! Multi-thread churn stress (ISSUE 10 satellite): the pool under
//! concurrent insert/pop/remove/promote/purge traffic with the nursery,
//! transaction merging, and schedule chaos engaged — and an explicit
//! check that the telemetry those features emit is *non-degenerate*
//! (`nursery_regions > 0`, `merged_txns > 0`, and a seed sweep that
//! actually observes `merge_splits > 0`), so a regression that silently
//! disables a subsystem cannot hide behind green invariants.

use pool::{Item, PoolConfig, TxPool};
use stm::{ChaosPlan, CheckScope, LogKind, Mode, StmRuntime, TxConfig, TxObject, TxStats};
use txmem::MemConfig;

const THREADS: u64 = 3;
const ROUNDS: usize = 400;
const BUDGET: u64 = 16 * Item::BYTES;

#[derive(Clone)]
enum Op {
    Insert {
        id: u64,
        sender: u64,
        nonce: u64,
        prio: u64,
        pw: u64,
    },
    PopBest,
    Remove {
        id: u64,
    },
    Promote {
        id: u64,
        prio: u64,
    },
    RemoveSender {
        sender: u64,
    },
}

/// xorshift64* — local copy; the pool crate deliberately has no
/// dev-dependency on the bench crate's shared generator.
fn next(x: &mut u64) -> u64 {
    *x ^= *x >> 12;
    *x ^= *x << 25;
    *x ^= *x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A deterministic per-thread op stream: mostly inserts with rotating
/// priorities (so eviction churns), plus pops, removes of own ids,
/// promotes, and sender purges.
fn ops_for(thread: u64, seed: u64) -> Vec<Op> {
    let mut x = seed ^ (thread + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut ops = Vec::with_capacity(ROUNDS);
    let mut seq = 0u64;
    for _ in 0..ROUNDS {
        let r = next(&mut x) % 100;
        let own = |s: u64, n: u64| (thread + 1) << 32 | (n % s.max(1)).wrapping_add(1);
        ops.push(match r {
            0..=59 => {
                seq += 1;
                Op::Insert {
                    id: (thread + 1) << 32 | seq,
                    sender: next(&mut x) % 4,
                    nonce: seq,
                    prio: next(&mut x) % 64,
                    pw: next(&mut x) % 3,
                }
            }
            60..=74 => Op::PopBest,
            75..=84 => Op::Remove {
                id: own(seq, next(&mut x)),
            },
            85..=94 => Op::Promote {
                id: own(seq, next(&mut x)),
                prio: next(&mut x) % 64,
            },
            _ => Op::RemoveSender {
                sender: next(&mut x) % 4,
            },
        });
    }
    ops
}

fn apply(pool: &TxPool, tx: &mut stm::Tx<'_, '_>, op: &Op) -> stm::TxResult<()> {
    match *op {
        Op::Insert {
            id,
            sender,
            nonce,
            prio,
            pw,
        } => {
            pool.insert(tx, id, sender, nonce, prio, pw)?;
        }
        Op::PopBest => {
            pool.pop_best(tx)?;
        }
        Op::Remove { id } => {
            pool.remove(tx, id)?;
        }
        Op::Promote { id, prio } => {
            pool.promote(tx, id, prio)?;
        }
        Op::RemoveSender { sender } => {
            pool.remove_sender(tx, sender)?;
        }
    }
    Ok(())
}

/// Run the churn under `cfg`; `merge > 1` routes every thread's stream
/// through `txn_batch` windows. Returns the merged runtime stats after
/// `seq_check` and the conservation law have passed.
fn churn(cfg: TxConfig, merge: usize, seed: u64) -> TxStats {
    let rt = StmRuntime::new(MemConfig::small(), cfg);
    let pool = TxPool::create(
        &rt,
        PoolConfig {
            budget_bytes: BUDGET,
            bloom_words: 64,
        },
    );
    rt.reset_stats();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rt = &rt;
            s.spawn(move || {
                let ops = ops_for(t, seed);
                let mut w = rt.spawn_worker();
                if merge > 1 {
                    for window in ops.chunks(merge) {
                        let run = w.txn_batch(window.len(), |b| {
                            let i = b.logical_index() as usize;
                            apply(&pool, b, &window[i])?;
                            Ok(true)
                        });
                        assert_eq!(run.committed, window.len() as u64);
                    }
                } else {
                    for op in &ops {
                        w.txn(|tx| apply(&pool, tx, op));
                    }
                }
            });
        }
    });
    let w = rt.spawn_worker();
    pool.seq_check(&w);
    let c = pool.seq_counters(&w);
    assert!(c.inserted > 0 && c.evicted > 0, "churn too tame: {c:?}");
    assert_eq!(
        c.inserted,
        c.count + c.evicted + c.popped + c.removed + c.purged,
        "item conservation violated: {c:?}"
    );
    rt.collect_stats()
}

fn merged_cfg(chaos: Option<ChaosPlan>) -> TxConfig {
    let mut b = TxConfig::builder()
        .mode(Mode::Runtime {
            log: LogKind::Tree,
            scope: CheckScope::FULL,
        })
        .nursery(true)
        .merge_max(4);
    if let Some(plan) = chaos {
        b = b.chaos(plan);
    }
    b.build().expect("static churn config")
}

/// Nursery arm: transactional item allocation must actually route
/// through bump regions, not silently fall back to the classic path.
#[test]
fn churn_under_nursery_exercises_regions() {
    let s = churn(TxConfig::runtime_tree_nursery(), 1, 0xA11CE);
    assert!(s.commits >= THREADS * ROUNDS as u64);
    assert!(s.nursery_regions > 0, "nursery idle during churn: {s:?}");
    assert!(s.tx_allocs > 0);
}

/// Merge arm: windows must actually merge, and a short seed sweep must
/// catch the window-split path at least once — three threads hammering
/// the same header words conflict reliably under schedule chaos.
#[test]
fn churn_under_merge_exercises_windows_and_splits() {
    let s = churn(merged_cfg(None), 4, 0xB0B);
    assert!(s.merged_txns > 0, "merging idle during churn: {s:?}");

    let mut split_seen = false;
    for seed in 1..=5u64 {
        let s = churn(merged_cfg(Some(ChaosPlan::all(seed, 7))), 4, seed);
        assert!(s.merged_txns > 0);
        if s.merge_splits > 0 || s.merge_salvaged > 0 {
            split_seen = true;
            break;
        }
    }
    assert!(
        split_seen,
        "no chaos seed produced a mid-window conflict; split path untested"
    );
}

/// Chaos arm without merging: scheduling faults at every seam may cost
/// retries but never consistency.
#[test]
fn churn_under_chaos_keeps_indices_consistent() {
    let mut cfg = TxConfig::runtime_tree_nursery();
    cfg.chaos = Some(ChaosPlan::all(0xC4405, 11));
    let s = churn(cfg, 1, 0xC4405);
    assert!(s.commits >= THREADS * ROUNDS as u64);
}
