//! The pool's public mutations. Each takes `&mut Tx`, so operations
//! compose inside caller transactions (and inside `txn_batch` windows);
//! the driver wraps each call in one transaction, making every mutation
//! atomic and every telemetry counter roll back with its transaction.

use crate::index::KeyKind;
use crate::{Item, PoolEntry, PoolHdr, TxPool, S_HDR_R, S_INIT_W, S_ITEM_R};
use stm::{Abort, Tx, TxBuf, TxObject, TxPtr, TxResult};

/// What [`TxPool::insert`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The item is live; `evicted` strictly-worse items made room for it.
    Inserted {
        /// Number of lower-priority items evicted by this insert.
        evicted: u64,
    },
    /// An item with this id is already live; nothing changed.
    Duplicate,
    /// The item did not fit and the strictly-lower-priority prefix could
    /// not make room (or the item alone exceeds the whole budget);
    /// nothing changed.
    Rejected,
}

impl TxPool {
    /// Insert an item. One transaction's worth of work: duplicate
    /// filtering (bloom, then the exact probe only on a bloom positive),
    /// budget planning, eviction of strictly-worse items if needed, then
    /// allocation and linking into all three indices.
    ///
    /// The payload is `payload_words` words of a deterministic
    /// id-derived pattern, so integrity is checkable at quiesce.
    pub fn insert(
        &self,
        tx: &mut Tx<'_, '_>,
        id: u64,
        sender: u64,
        nonce: u64,
        prio: u64,
        payload_words: u64,
    ) -> TxResult<InsertOutcome> {
        assert_ne!(id, 0, "item ids are non-zero");
        let need = Item::BYTES + 8 * payload_words;
        if need > self.budget {
            self.bump(tx, PoolHdr::rejected, 1)?;
            return Ok(InsertOutcome::Rejected);
        }
        // Duplicate filter: a bloom negative proves the id was never
        // inserted, so the exact probe is skipped outright.
        let maybe_seen = self.bloom_might_contain(tx, id)?;
        if maybe_seen && self.table_find(tx, self.slots, KeyKind::Id, id)?.is_some() {
            self.bump(tx, PoolHdr::dup_hits, 1)?;
            return Ok(InsertOutcome::Duplicate);
        }
        // Budget plan: walk the strictly-worse skiplist prefix read-only
        // first — eviction must be all-or-nothing with the admission
        // decision (a rejected insert may not have evicted anybody).
        let live = tx.read_field(&S_HDR_R, self.hdr, PoolHdr::live_bytes)?;
        let key = (prio, id);
        let mut freed = 0u64;
        let mut victims = 0u64;
        if live.saturating_add(need) > self.budget {
            // Saturating arithmetic and a walk bound: a doomed reader can
            // see garbage `bytes` fields and recycled `fwd0` links here
            // (see the module note in `index.rs`), and must degrade to an
            // abort, never underflow or spin.
            let mut cur = self.skip_min(tx)?;
            while live.saturating_sub(freed).saturating_add(need) > self.budget {
                if cur.is_null() || self.skip_key_of(tx, cur)? >= key {
                    self.bump(tx, PoolHdr::rejected, 1)?;
                    return Ok(InsertOutcome::Rejected);
                }
                freed = freed.saturating_add(tx.read_field(&S_ITEM_R, cur, Item::bytes)?);
                victims += 1;
                if victims > self.walk_bound() {
                    return Err(Abort::Conflict);
                }
                cur = tx.read_field(&S_ITEM_R, cur, Item::fwd0)?;
            }
            for _ in 0..victims {
                self.evict_min(tx)?;
            }
        }
        // Allocate and initialize the item (captured: these stores elide).
        let p = tx.alloc_obj::<Item>()?;
        tx.write_field(&S_INIT_W, p, Item::id, id)?;
        tx.write_field(&S_INIT_W, p, Item::sender, sender)?;
        tx.write_field(&S_INIT_W, p, Item::nonce, nonce)?;
        tx.write_field(&S_INIT_W, p, Item::prio, prio)?;
        tx.write_field(&S_INIT_W, p, Item::bytes, need)?;
        tx.write_field(&S_INIT_W, p, Item::payload_words, payload_words)?;
        tx.write_field(&S_INIT_W, p, Item::snext, TxPtr::NULL)?;
        tx.write_field(&S_INIT_W, p, Item::level, crate::level_of(id))?;
        for l in 0..crate::MAX_LEVEL {
            tx.write_field(&S_INIT_W, p, Item::fwd(l), TxPtr::NULL)?;
        }
        let payload = if payload_words > 0 {
            let buf: TxBuf<u64> = tx.alloc_buf(payload_words)?;
            for w in 0..payload_words {
                tx.write_as(&S_INIT_W, buf.elem(w), payload_word(id, w))?;
            }
            buf
        } else {
            TxBuf::NULL
        };
        tx.write_field(&S_INIT_W, p, Item::payload, payload)?;
        // Link into all three indices; a bloom negative also lets the
        // primary insert probe skip occupant compares (it only did).
        self.table_insert(tx, self.slots, id, p)?;
        self.skip_insert(tx, p, key)?;
        self.sender_insert(tx, p, sender, nonce, id)?;
        self.bloom_add(tx, id)?;
        self.bump(tx, PoolHdr::count, 1)?;
        self.bump(tx, PoolHdr::live_bytes, need)?;
        self.bump(tx, PoolHdr::inserted, 1)?;
        if !maybe_seen {
            self.bump(tx, PoolHdr::dup_skips, 1)?;
        }
        Ok(InsertOutcome::Inserted { evicted: victims })
    }

    /// Remove the item with `id`; returns its entry if it was live.
    pub fn remove(&self, tx: &mut Tx<'_, '_>, id: u64) -> TxResult<Option<PoolEntry>> {
        let Some((_, p)) = self.table_find(tx, self.slots, KeyKind::Id, id)? else {
            return Ok(None);
        };
        let entry = self.entry_of(tx, p)?;
        self.unlink_item(tx, p)?;
        self.bump(tx, PoolHdr::removed, 1)?;
        Ok(Some(entry))
    }

    /// Remove and return the best item — the highest `(priority, id)`.
    pub fn pop_best(&self, tx: &mut Tx<'_, '_>) -> TxResult<Option<PoolEntry>> {
        let p = self.skip_max(tx)?;
        if p.is_null() {
            return Ok(None);
        }
        let entry = self.entry_of(tx, p)?;
        self.unlink_item(tx, p)?;
        self.bump(tx, PoolHdr::popped, 1)?;
        Ok(Some(entry))
    }

    /// Change the priority of the item with `id` (up or down),
    /// repositioning it in the by-priority index. Returns `false` if no
    /// such item is live.
    pub fn promote(&self, tx: &mut Tx<'_, '_>, id: u64, new_prio: u64) -> TxResult<bool> {
        let Some((_, p)) = self.table_find(tx, self.slots, KeyKind::Id, id)? else {
            return Ok(false);
        };
        let old = tx.read_field(&S_ITEM_R, p, Item::prio)?;
        if old != new_prio {
            self.skip_remove(tx, p, (old, id))?;
            tx.write_field(&crate::S_LINK_W, p, Item::prio, new_prio)?;
            self.skip_insert(tx, p, (new_prio, id))?;
        }
        self.bump(tx, PoolHdr::promoted, 1)?;
        Ok(true)
    }

    /// Remove every live item of `sender`; returns how many went.
    pub fn remove_sender(&self, tx: &mut Tx<'_, '_>, sender: u64) -> TxResult<u64> {
        let mut n = 0u64;
        while let Some((_, head)) = self.table_find(tx, self.senders, KeyKind::Sender, sender)? {
            self.unlink_item(tx, head)?;
            n += 1;
            if n > self.walk_bound() {
                // More unlinks than any consistent chain can hold: a
                // zombie re-finding recycled heads. Abort and retry.
                return Err(Abort::Conflict);
            }
        }
        self.bump(tx, PoolHdr::purged, n)?;
        Ok(n)
    }

    /// Is an item with `id` live?
    pub fn contains(&self, tx: &mut Tx<'_, '_>, id: u64) -> TxResult<bool> {
        Ok(self.table_find(tx, self.slots, KeyKind::Id, id)?.is_some())
    }

    /// Evict the skiplist minimum (the strictly-worst live item); the
    /// caller has established the pool is non-empty.
    fn evict_min(&self, tx: &mut Tx<'_, '_>) -> TxResult<()> {
        let p = self.skip_min(tx)?;
        if p.is_null() {
            // The caller's plan proved the pool non-empty; an empty
            // skiplist now means the snapshot is doomed.
            return Err(Abort::Conflict);
        }
        let bytes = tx.read_field(&S_ITEM_R, p, Item::bytes)?;
        self.unlink_item(tx, p)?;
        self.bump(tx, PoolHdr::evicted, 1)?;
        self.bump(tx, PoolHdr::evicted_bytes, bytes)
    }

    /// Read an item's observable entry.
    fn entry_of(&self, tx: &mut Tx<'_, '_>, p: TxPtr<Item>) -> TxResult<PoolEntry> {
        Ok(PoolEntry {
            id: tx.read_field(&S_ITEM_R, p, Item::id)?,
            sender: tx.read_field(&S_ITEM_R, p, Item::sender)?,
            nonce: tx.read_field(&S_ITEM_R, p, Item::nonce)?,
            prio: tx.read_field(&S_ITEM_R, p, Item::prio)?,
            payload_words: tx.read_field(&S_ITEM_R, p, Item::payload_words)?,
        })
    }

    /// Unlink a live item from all three indices, free its memory, and
    /// settle the live accounting. Callers add their own telemetry.
    fn unlink_item(&self, tx: &mut Tx<'_, '_>, p: TxPtr<Item>) -> TxResult<()> {
        let id = tx.read_field(&S_ITEM_R, p, Item::id)?;
        let sender = tx.read_field(&S_ITEM_R, p, Item::sender)?;
        let prio = tx.read_field(&S_ITEM_R, p, Item::prio)?;
        let bytes = tx.read_field(&S_ITEM_R, p, Item::bytes)?;
        let payload_words = tx.read_field(&S_ITEM_R, p, Item::payload_words)?;
        self.skip_remove(tx, p, (prio, id))?;
        let Some((slot, q)) = self.table_find(tx, self.slots, KeyKind::Id, id)? else {
            return Err(Abort::Conflict);
        };
        if q.raw() != p.raw() {
            return Err(Abort::Conflict);
        }
        self.table_remove_at(tx, self.slots, KeyKind::Id, slot)?;
        self.sender_unlink(tx, p, sender)?;
        if payload_words > 0 {
            let payload: TxBuf<u64> = tx.read_field(&S_ITEM_R, p, Item::payload)?;
            tx.free_buf(payload);
        }
        tx.free_obj(p);
        self.debit(tx, PoolHdr::count, 1)?;
        self.debit(tx, PoolHdr::live_bytes, bytes)
    }
}

/// The deterministic payload pattern: word `w` of item `id`'s payload.
#[inline]
pub(crate) fn payload_word(id: u64, w: u64) -> u64 {
    id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolConfig;
    use stm::{StmRuntime, TxConfig};
    use txmem::MemConfig;

    fn rt() -> StmRuntime {
        StmRuntime::new(MemConfig::small(), TxConfig::runtime_tree_full())
    }

    fn budget_for(items: u64) -> u64 {
        items * Item::BYTES
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let rt = rt();
        let pool = TxPool::create(
            &rt,
            PoolConfig {
                budget_bytes: budget_for(16),
                bloom_words: 4,
            },
        );
        let mut w = rt.spawn_worker();
        assert_eq!(
            w.txn(|tx| pool.insert(tx, 7, 1, 0, 50, 3)),
            InsertOutcome::Inserted { evicted: 0 }
        );
        assert_eq!(
            w.txn(|tx| pool.insert(tx, 7, 9, 9, 99, 0)),
            InsertOutcome::Duplicate,
            "same id is a duplicate regardless of other fields"
        );
        assert!(w.txn(|tx| pool.contains(tx, 7)));
        assert!(!w.txn(|tx| pool.contains(tx, 8)));
        let e = w.txn(|tx| pool.remove(tx, 7)).expect("live");
        assert_eq!(
            (e.id, e.sender, e.nonce, e.prio, e.payload_words),
            (7, 1, 0, 50, 3)
        );
        assert_eq!(w.txn(|tx| pool.remove(tx, 7)), None);
        assert_eq!(w.txn(|tx| pool.len(tx)), 0);
        pool.seq_check(&w);
    }

    #[test]
    fn pop_best_takes_highest_priority_then_highest_id() {
        let rt = rt();
        let pool = TxPool::create(
            &rt,
            PoolConfig {
                budget_bytes: budget_for(16),
                bloom_words: 4,
            },
        );
        let mut w = rt.spawn_worker();
        for (id, prio) in [(1u64, 5u64), (2, 9), (3, 9), (4, 1)] {
            w.txn(|tx| pool.insert(tx, id, 0, 0, prio, 0));
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| w.txn(|tx| pool.pop_best(tx)).map(|e| e.id)).collect();
        assert_eq!(order, vec![3, 2, 1, 4]);
        pool.seq_check(&w);
    }

    #[test]
    fn mutations_roll_back_with_their_transaction() {
        let rt = rt();
        let pool = TxPool::create(
            &rt,
            PoolConfig {
                budget_bytes: budget_for(8),
                bloom_words: 4,
            },
        );
        let mut w = rt.spawn_worker();
        w.txn(|tx| pool.insert(tx, 1, 0, 0, 5, 2));
        let r: Result<(), u64> = w.txn_result(|tx| {
            pool.insert(tx, 2, 0, 1, 6, 0)?;
            pool.remove(tx, 1)?;
            Err(stm::Abort::User(0))
        });
        assert!(r.is_err());
        assert_eq!(pool.seq_collect(&w).len(), 1, "aborted ops left no trace");
        assert_eq!(pool.seq_collect(&w)[0].id, 1);
        pool.seq_check(&w);
    }

    #[test]
    fn remove_sender_purges_whole_chains() {
        let rt = rt();
        let pool = TxPool::create(
            &rt,
            PoolConfig {
                budget_bytes: budget_for(16),
                bloom_words: 4,
            },
        );
        let mut w = rt.spawn_worker();
        for (id, sender, nonce) in [(1u64, 7u64, 2u64), (2, 7, 0), (3, 5, 0), (4, 7, 1)] {
            w.txn(|tx| pool.insert(tx, id, sender, nonce, 10, 0));
        }
        assert_eq!(w.txn(|tx| pool.remove_sender(tx, 7)), 3);
        assert_eq!(w.txn(|tx| pool.remove_sender(tx, 7)), 0);
        let left = pool.seq_collect(&w);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].sender, 5);
        pool.seq_check(&w);
    }

    #[test]
    fn promote_repositions_in_the_priority_index() {
        let rt = rt();
        let pool = TxPool::create(
            &rt,
            PoolConfig {
                budget_bytes: budget_for(16),
                bloom_words: 4,
            },
        );
        let mut w = rt.spawn_worker();
        for (id, prio) in [(1u64, 1u64), (2, 5), (3, 9)] {
            w.txn(|tx| pool.insert(tx, id, 0, 0, prio, 0));
        }
        assert!(w.txn(|tx| pool.promote(tx, 1, 99)));
        assert!(!w.txn(|tx| pool.promote(tx, 42, 1)));
        pool.seq_check(&w);
        assert_eq!(w.txn(|tx| pool.pop_best(tx)).map(|e| e.id), Some(1));
        pool.seq_check(&w);
    }
}
