//! A multi-index transactional memory pool on the typed STM API — the
//! repo's first macro-scale consumer and its first reusable transactional
//! collection library.
//!
//! The shape is a mempool's (primary hash index, per-sender ordering,
//! priority ordering, duplicate filter, byte-budget eviction), but every
//! structure lives in the simulated transactional address space and every
//! mutation is one transaction:
//!
//! * **Primary index** — an open-addressing hash table keyed by item id
//!   (linear probing, backward-shift deletion, so no tombstones and no
//!   rehash; the configured byte budget bounds the load factor at 1/2).
//! * **By-priority index** — an intrusive skiplist ordered by
//!   `(priority, id)` ascending. The head is the eviction victim, the tail
//!   is what [`TxPool::pop_best`] takes. Levels are a deterministic
//!   function of the id, so every run (and every oracle arm) builds the
//!   identical structure.
//! * **By-sender index** — a second open-addressing table keyed by sender,
//!   each slot heading an intrusive chain sorted by `(nonce, id)`.
//! * **Duplicate filter** — a monotone bloom filter in front of the exact
//!   primary-index probe: a negative lets insertion skip the exact
//!   duplicate lookup entirely (`dup_skips` telemetry); a positive falls
//!   back to the probe, which is exact (`dup_hits`).
//! * **Eviction** — inserting past the byte budget evicts strictly
//!   lower-priority items from the skiplist head until the newcomer fits;
//!   if the strictly-worse prefix cannot make room the *insert* is
//!   rejected untouched (a pool may never evict better items — nor the
//!   item being inserted — to admit a worse one).
//!
//! Correctness is proven differentially (`tests/pool_oracle.rs` runs
//! random op scripts against the sequential [`model::ModelPool`]) and
//! structurally ([`TxPool::seq_check`] asserts index cross-consistency,
//! exact live-byte accounting, and the budget bound at quiesce points).

#![warn(missing_docs)]

use stm::{tx_object, Field, Site, StmRuntime, Tx, TxBuf, TxObject, TxPtr, TxResult};

mod check;
mod index;
pub mod model;
mod ops;

pub use check::PoolCounters;
pub use ops::InsertOutcome;

/// Skiplist height cap. `P(level >= k) = 2^-(k-1)`, so 12 levels keep the
/// expected search logarithmic up to a few million live items — far past
/// any budget this pool is configured with.
pub const MAX_LEVEL: usize = 12;

tx_object! {
    /// One pool item. The indices are intrusive: the sender chain link
    /// and the skiplist forward pointers live in the item itself, so
    /// every index mutation is a handful of word barriers.
    pub struct Item {
        /// Unique item id (non-zero); the primary-index key.
        pub id: u64,
        /// Sender id; the by-sender index key.
        pub sender: u64,
        /// Per-sender sequence number; orders the sender chain.
        pub nonce: u64,
        /// Priority (larger = better); orders the skiplist.
        pub prio: u64,
        /// Accounted bytes: `Item::BYTES + 8 * payload_words`.
        pub bytes: u64,
        /// Payload buffer (null when `payload_words == 0`).
        pub payload: TxBuf<u64>,
        /// Payload length in words.
        pub payload_words: u64,
        /// Next item in this sender's `(nonce, id)`-ordered chain.
        pub snext: TxPtr<Item>,
        /// This item's skiplist height (1..=[`MAX_LEVEL`]).
        pub level: u64,
        /// Skiplist forward pointer, level 0. Levels 1.. are the
        /// contiguous fields below, reached as `Item::fwd(l)` via the
        /// computed projection `Item::fwd0.index(l)`.
        pub fwd0: TxPtr<Item>,
        /// Skiplist forward pointer, level 1.
        pub fwd1: TxPtr<Item>,
        /// Skiplist forward pointer, level 2.
        pub fwd2: TxPtr<Item>,
        /// Skiplist forward pointer, level 3.
        pub fwd3: TxPtr<Item>,
        /// Skiplist forward pointer, level 4.
        pub fwd4: TxPtr<Item>,
        /// Skiplist forward pointer, level 5.
        pub fwd5: TxPtr<Item>,
        /// Skiplist forward pointer, level 6.
        pub fwd6: TxPtr<Item>,
        /// Skiplist forward pointer, level 7.
        pub fwd7: TxPtr<Item>,
        /// Skiplist forward pointer, level 8.
        pub fwd8: TxPtr<Item>,
        /// Skiplist forward pointer, level 9.
        pub fwd9: TxPtr<Item>,
        /// Skiplist forward pointer, level 10.
        pub fwd10: TxPtr<Item>,
        /// Skiplist forward pointer, level 11.
        pub fwd11: TxPtr<Item>,
    }
}

impl Item {
    /// Computed projection of the level-`l` skiplist forward pointer.
    #[inline]
    pub fn fwd(l: usize) -> Field<Item, TxPtr<Item>> {
        debug_assert!(l < MAX_LEVEL, "skiplist level {l} out of range");
        Item::fwd0.index(l as u64)
    }
}

tx_object! {
    /// The pool header: live accounting plus telemetry, all transactional
    /// so counters roll back with their transaction. This is the pool's
    /// one serialization point — every mutation reads and writes
    /// `count`/`live_bytes`, exactly like the single lock a conventional
    /// mempool takes (the contention ladder absorbs the storms).
    pub struct PoolHdr {
        /// Live item count.
        pub count: u64,
        /// Sum of live items' accounted bytes; `<= budget` post-commit.
        pub live_bytes: u64,
        /// Successful inserts.
        pub inserted: u64,
        /// Items evicted to make room.
        pub evicted: u64,
        /// Accounted bytes of evicted items.
        pub evicted_bytes: u64,
        /// Inserts refused as exact duplicates.
        pub dup_hits: u64,
        /// Inserts whose bloom negative skipped the exact duplicate probe.
        pub dup_skips: u64,
        /// Inserts rejected because the strictly-worse prefix could not
        /// make room (includes items larger than the whole budget).
        pub rejected: u64,
        /// Items taken by [`TxPool::pop_best`].
        pub popped: u64,
        /// Items removed by id.
        pub removed: u64,
        /// Successful priority changes.
        pub promoted: u64,
        /// Items removed via [`TxPool::remove_sender`].
        pub purged: u64,
    }
}

// --- access sites ----------------------------------------------------------
pub(crate) static S_HDR_R: Site = Site::shared("pool.hdr.read");
pub(crate) static S_HDR_W: Site = Site::shared("pool.hdr.write");
pub(crate) static S_SLOT_R: Site = Site::shared("pool.slot.read");
pub(crate) static S_SLOT_W: Site = Site::shared("pool.slot.write");
pub(crate) static S_SKIP_R: Site = Site::shared("pool.skip.read");
pub(crate) static S_SKIP_W: Site = Site::shared("pool.skip.write");
pub(crate) static S_BLOOM_R: Site = Site::shared("pool.bloom.read");
pub(crate) static S_BLOOM_W: Site = Site::shared("pool.bloom.write");
pub(crate) static S_ITEM_R: Site = Site::shared("pool.item.read");
pub(crate) static S_LINK_W: Site = Site::shared("pool.link.write");
// Initialization of a freshly allocated item/payload: captured (the
// allocation happens in the same transaction), so these writes elide.
pub(crate) static S_INIT_W: Site = Site::captured_local("pool.item_init.write");

/// Pool sizing. The hash capacity is derived from the budget (the budget
/// bounds live items at `budget_bytes / Item::BYTES`, and the tables are
/// sized to twice that, capping the load factor at 1/2), so the only
/// tuning surface is bytes and bloom width.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Live-byte budget; inserting past it evicts or rejects.
    pub budget_bytes: u64,
    /// Bloom filter width in 64-bit words (power of two). The filter is
    /// monotone — it tracks ids *ever* inserted — so it saturates under
    /// unbounded distinct ids; that only decays the `dup_skips` fast
    /// path, never correctness.
    pub bloom_words: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            budget_bytes: 1 << 20,
            bloom_words: 1 << 10,
        }
    }
}

impl PoolConfig {
    /// Validate the configuration: the budget must hold at least one
    /// payload-less item and the bloom width must be a power of two.
    pub fn validate(&self) -> Result<(), String> {
        if self.budget_bytes < Item::BYTES {
            return Err(format!(
                "budget_bytes {} cannot hold a single item header ({} bytes)",
                self.budget_bytes,
                Item::BYTES
            ));
        }
        if self.bloom_words == 0 || !self.bloom_words.is_power_of_two() {
            return Err(format!(
                "bloom_words {} must be a non-zero power of two",
                self.bloom_words
            ));
        }
        Ok(())
    }

    /// Hash-table capacity (both tables): two slots per budget-bounded
    /// live item, so linear probing never crosses load factor 1/2.
    pub fn capacity(&self) -> u64 {
        (2 * (self.budget_bytes / Item::BYTES))
            .next_power_of_two()
            .max(16)
    }
}

/// The observable value of one live item — what the differential oracle
/// compares against the sequential model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PoolEntry {
    /// Item id.
    pub id: u64,
    /// Sender id.
    pub sender: u64,
    /// Per-sender nonce.
    pub nonce: u64,
    /// Priority.
    pub prio: u64,
    /// Payload length in words.
    pub payload_words: u64,
}

impl PoolEntry {
    /// Accounted bytes of an entry with this payload length.
    pub fn bytes(&self) -> u64 {
        Item::BYTES + 8 * self.payload_words
    }
}

/// A transactional multi-index pool. The handle is plain copyable data
/// (addresses plus immutable sizing); all mutable state lives in the
/// simulated transactional address space, so clones on any thread see the
/// same pool.
#[derive(Clone, Copy, Debug)]
pub struct TxPool {
    pub(crate) hdr: TxPtr<PoolHdr>,
    pub(crate) slots: TxBuf<TxPtr<Item>>,
    pub(crate) senders: TxBuf<TxPtr<Item>>,
    pub(crate) heads: TxBuf<TxPtr<Item>>,
    pub(crate) bloom: TxBuf<u64>,
    /// `capacity - 1` for both tables.
    pub(crate) mask: u64,
    /// `64 * bloom_words - 1`.
    pub(crate) bloom_mask: u64,
    /// Live-byte budget.
    pub(crate) budget: u64,
}

impl TxPool {
    /// Create a pool during (non-transactional) setup.
    ///
    /// # Panics
    /// If `cfg` fails [`PoolConfig::validate`].
    pub fn create(rt: &StmRuntime, cfg: PoolConfig) -> TxPool {
        cfg.validate().expect("invalid PoolConfig");
        let cap = cfg.capacity();
        let hdr = TxPtr::<PoolHdr>::from_addr(rt.alloc_global(PoolHdr::BYTES));
        let slots = TxBuf::<TxPtr<Item>>::from_addr(rt.alloc_global(cap * 8));
        let senders = TxBuf::<TxPtr<Item>>::from_addr(rt.alloc_global(cap * 8));
        let heads = TxBuf::<TxPtr<Item>>::from_addr(rt.alloc_global(MAX_LEVEL as u64 * 8));
        let bloom = TxBuf::<u64>::from_addr(rt.alloc_global(cfg.bloom_words * 8));
        for w in 0..PoolHdr::WORDS {
            rt.mem().store(hdr.addr().word(w), 0);
        }
        for i in 0..cap {
            rt.mem().store(slots.elem(i), 0);
            rt.mem().store(senders.elem(i), 0);
        }
        for l in 0..MAX_LEVEL as u64 {
            rt.mem().store(heads.elem(l), 0);
        }
        for i in 0..cfg.bloom_words {
            rt.mem().store(bloom.elem(i), 0);
        }
        TxPool {
            hdr,
            slots,
            senders,
            heads,
            bloom,
            mask: cap - 1,
            bloom_mask: 64 * cfg.bloom_words - 1,
            budget: cfg.budget_bytes,
        }
    }

    /// The configured live-byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Hash-table capacity (per table).
    pub fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Transactional live item count.
    pub fn len(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read_field(&S_HDR_R, self.hdr, PoolHdr::count)
    }

    /// Transactional emptiness check.
    pub fn is_empty(&self, tx: &mut Tx<'_, '_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Transactional live-byte total.
    pub fn live_bytes(&self, tx: &mut Tx<'_, '_>) -> TxResult<u64> {
        tx.read_field(&S_HDR_R, self.hdr, PoolHdr::live_bytes)
    }

    /// Read-and-add on one header counter.
    pub(crate) fn bump(
        &self,
        tx: &mut Tx<'_, '_>,
        f: Field<PoolHdr, u64>,
        delta: u64,
    ) -> TxResult<()> {
        let v = tx.read_field(&S_HDR_R, self.hdr, f)?;
        tx.write_field(&S_HDR_W, self.hdr, f, v.wrapping_add(delta))
    }

    /// Read-and-subtract on one header counter.
    pub(crate) fn debit(
        &self,
        tx: &mut Tx<'_, '_>,
        f: Field<PoolHdr, u64>,
        delta: u64,
    ) -> TxResult<()> {
        // Wrapping, no underflow assert: `delta` may come from a doomed
        // reader's garbage `bytes` field (see the note in `index.rs`);
        // the wrapped write rolls back with the inevitable abort, and
        // `seq_check` audits the true totals at quiesce.
        let v = tx.read_field(&S_HDR_R, self.hdr, f)?;
        tx.write_field(&S_HDR_W, self.hdr, f, v.wrapping_sub(delta))
    }
}

/// splitmix64 finalizer: the hash behind slot homes, bloom bits, and
/// skiplist levels.
#[inline]
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic skiplist height for `id`: geometric via trailing zeros,
/// capped at [`MAX_LEVEL`]. A pure function of the id so every
/// configuration (and every oracle arm) builds the identical structure.
#[inline]
pub(crate) fn level_of(id: u64) -> u64 {
    (1 + mix(id ^ 0x51D0_051D0).trailing_zeros() as u64).min(MAX_LEVEL as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(PoolConfig::default().validate().is_ok());
        let too_small = PoolConfig {
            budget_bytes: Item::BYTES - 1,
            ..PoolConfig::default()
        };
        assert!(too_small.validate().is_err());
        let bad_bloom = PoolConfig {
            bloom_words: 3,
            ..PoolConfig::default()
        };
        assert!(bad_bloom.validate().is_err());
        let zero_bloom = PoolConfig {
            bloom_words: 0,
            ..PoolConfig::default()
        };
        assert!(zero_bloom.validate().is_err());
    }

    #[test]
    fn capacity_keeps_the_load_factor_under_half() {
        let cfg = PoolConfig {
            budget_bytes: 100 * Item::BYTES,
            bloom_words: 16,
        };
        let max_items = cfg.budget_bytes / Item::BYTES;
        assert!(cfg.capacity() >= 2 * max_items);
        assert!(cfg.capacity().is_power_of_two());
        // A budget that rounds to zero items still gets a usable table.
        let tiny = PoolConfig {
            budget_bytes: Item::BYTES,
            bloom_words: 1,
        };
        assert_eq!(tiny.capacity(), 16);
    }

    #[test]
    fn levels_are_deterministic_and_capped() {
        for id in 1..512u64 {
            let l = level_of(id);
            assert!((1..=MAX_LEVEL as u64).contains(&l));
            assert_eq!(l, level_of(id), "pure function of id");
        }
        // The distribution must actually use multiple levels.
        let distinct: std::collections::HashSet<u64> = (1..512).map(level_of).collect();
        assert!(distinct.len() >= 4, "degenerate level distribution");
    }

    #[test]
    fn item_layout_matches_the_fwd_run() {
        assert_eq!(Item::WORDS, 9 + MAX_LEVEL as u64);
        for l in 0..MAX_LEVEL {
            assert_eq!(Item::fwd(l).word(), Item::fwd0.word() + l as u64);
        }
        assert_eq!(Item::fwd(1).word(), Item::fwd1.word());
        assert_eq!(Item::fwd(11).word(), Item::fwd11.word());
    }
}
