//! Index internals: the two open-addressing tables (items by id, sender
//! chains by sender), the bloom duplicate filter, and the intrusive
//! skiplist. Everything here is `pub(crate)` plumbing for the public
//! operations in `ops.rs`.
//!
//! # Doomed readers never panic
//!
//! Under the capture-optimized runtime an optimistic reader can follow a
//! pointer into a block that a concurrent transaction has since freed and
//! a third has recycled — and the recycler's *captured* init stores bump
//! no orec, so the stale words pass per-read validation (DESIGN.md §8).
//! Such a zombie is guaranteed to abort at commit (it reached the block
//! through a link whose orec *did* advance), but until then it can observe
//! states no consistent snapshot allows: "full" tables, skiplist searches
//! that miss a live key, broken sender chains. Every invariant check on
//! transactionally-read state therefore degrades to `Err(Abort::Conflict)`
//! instead of panicking, and every pointer walk carries a capacity-derived
//! step bound so a zombie-visible cycle becomes a retry, not a hang. Real
//! corruption is still caught — by `seq_check` at quiesce, where reads are
//! non-transactional and consistent, and by the differential oracle.

use txmem::Addr;

use crate::{
    level_of, mix, Item, TxPool, MAX_LEVEL, S_BLOOM_R, S_BLOOM_W, S_ITEM_R, S_SKIP_R, S_SKIP_W,
    S_SLOT_R, S_SLOT_W,
};
use stm::{Abort, Tx, TxBuf, TxPtr, TxResult};

/// Which key a table is organized by — resolves the field the
/// backward-shift relocation reads to recompute an entry's home slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum KeyKind {
    /// The item table: keyed by `Item::id`.
    Id,
    /// The sender table: slots head sender chains, keyed by the head
    /// item's `Item::sender`.
    Sender,
}

impl TxPool {
    /// Step allowance for any pointer walk: generous against any
    /// consistent state (live items never exceed half the table), so
    /// exhausting it proves the walker is a zombie chasing recycled
    /// links — possibly around a cycle.
    pub(crate) fn walk_bound(&self) -> u64 {
        4 * (self.mask + 2)
    }

    fn key_of(&self, tx: &mut Tx<'_, '_>, p: TxPtr<Item>, kind: KeyKind) -> TxResult<u64> {
        match kind {
            KeyKind::Id => tx.read_field(&S_ITEM_R, p, Item::id),
            KeyKind::Sender => tx.read_field(&S_ITEM_R, p, Item::sender),
        }
    }

    /// Probe for `key` starting at its home slot. Returns the slot index
    /// and entry, or `None` at the first empty slot (linear probing with
    /// backward-shift deletion leaves no holes inside a cluster, so an
    /// empty slot proves absence).
    pub(crate) fn table_find(
        &self,
        tx: &mut Tx<'_, '_>,
        table: TxBuf<TxPtr<Item>>,
        kind: KeyKind,
        key: u64,
    ) -> TxResult<Option<(u64, TxPtr<Item>)>> {
        let mut i = mix(key) & self.mask;
        let mut probes = 0u64;
        loop {
            let p: TxPtr<Item> = tx.read_as(&S_SLOT_R, table.elem(i))?;
            if p.is_null() {
                return Ok(None);
            }
            if self.key_of(tx, p, kind)? == key {
                return Ok(Some((i, p)));
            }
            i = (i + 1) & self.mask;
            probes += 1;
            if probes > self.mask {
                // Capacity is 2x the worst-case item count, so a full
                // table is impossible in a consistent snapshot — only a
                // zombie can see one. Abort and let the retry see truth.
                return Err(Abort::Conflict);
            }
        }
    }

    /// Insert `p` under `key`, which the caller has established is absent
    /// (so the probe never compares occupants — it only hunts the
    /// cluster's first empty slot).
    pub(crate) fn table_insert(
        &self,
        tx: &mut Tx<'_, '_>,
        table: TxBuf<TxPtr<Item>>,
        key: u64,
        p: TxPtr<Item>,
    ) -> TxResult<()> {
        let mut i = mix(key) & self.mask;
        let mut probes = 0u64;
        loop {
            let q: TxPtr<Item> = tx.read_as(&S_SLOT_R, table.elem(i))?;
            if q.is_null() {
                return tx.write_as(&S_SLOT_W, table.elem(i), p);
            }
            i = (i + 1) & self.mask;
            probes += 1;
            if probes > self.mask {
                return Err(Abort::Conflict);
            }
        }
    }

    /// Vacate slot `i` and backward-shift the rest of the cluster so the
    /// no-holes probe invariant survives without tombstones: any later
    /// entry whose home slot is cyclically outside `(hole, entry]` can
    /// legally move back into the hole, leaving its old slot as the new
    /// hole; the first empty slot ends the cluster.
    pub(crate) fn table_remove_at(
        &self,
        tx: &mut Tx<'_, '_>,
        table: TxBuf<TxPtr<Item>>,
        kind: KeyKind,
        mut i: u64,
    ) -> TxResult<()> {
        tx.write_as(&S_SLOT_W, table.elem(i), TxPtr::<Item>::NULL)?;
        let mut j = i;
        let mut probes = 0u64;
        loop {
            j = (j + 1) & self.mask;
            let p: TxPtr<Item> = tx.read_as(&S_SLOT_R, table.elem(j))?;
            if p.is_null() {
                return Ok(());
            }
            let home = mix(self.key_of(tx, p, kind)?) & self.mask;
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                tx.write_as(&S_SLOT_W, table.elem(i), p)?;
                tx.write_as(&S_SLOT_W, table.elem(j), TxPtr::<Item>::NULL)?;
                i = j;
            }
            probes += 1;
            if probes > self.mask {
                return Err(Abort::Conflict);
            }
        }
    }

    // --- bloom duplicate filter -------------------------------------------

    /// The two (word address, bit mask) probes for `id`.
    pub(crate) fn bloom_probes(&self, id: u64) -> [(Addr, u64); 2] {
        let h = mix(id ^ 0xB10_0F11);
        let g = mix(h);
        let b1 = h & self.bloom_mask;
        let b2 = g & self.bloom_mask;
        [
            (self.bloom.elem(b1 >> 6), 1u64 << (b1 & 63)),
            (self.bloom.elem(b2 >> 6), 1u64 << (b2 & 63)),
        ]
    }

    /// Might `id` have ever been inserted? False positives possible,
    /// false negatives not.
    pub(crate) fn bloom_might_contain(&self, tx: &mut Tx<'_, '_>, id: u64) -> TxResult<bool> {
        for (addr, bit) in self.bloom_probes(id) {
            let w: u64 = tx.read_as(&S_BLOOM_R, addr)?;
            if w & bit == 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Record `id` in the filter. Writes only words that actually change,
    /// so a saturated filter stops generating write-set conflicts.
    pub(crate) fn bloom_add(&self, tx: &mut Tx<'_, '_>, id: u64) -> TxResult<()> {
        for (addr, bit) in self.bloom_probes(id) {
            let w: u64 = tx.read_as(&S_BLOOM_R, addr)?;
            if w & bit == 0 {
                tx.write_as(&S_BLOOM_W, addr, w | bit)?;
            }
        }
        Ok(())
    }

    // --- skiplist ----------------------------------------------------------

    /// The skiplist key of a live item.
    pub(crate) fn skip_key_of(&self, tx: &mut Tx<'_, '_>, p: TxPtr<Item>) -> TxResult<(u64, u64)> {
        Ok((
            tx.read_field(&S_ITEM_R, p, Item::prio)?,
            tx.read_field(&S_ITEM_R, p, Item::id)?,
        ))
    }

    /// Search for `key`: per level, the address of the forward word whose
    /// successor is the first node with key `>= key` (the "update" array
    /// of the textbook algorithm), plus that level-0 successor.
    fn skip_search(
        &self,
        tx: &mut Tx<'_, '_>,
        key: (u64, u64),
    ) -> TxResult<([Addr; MAX_LEVEL], TxPtr<Item>)> {
        let mut update = [txmem::NULL; MAX_LEVEL];
        let mut pred = TxPtr::<Item>::NULL;
        let mut steps = self.walk_bound();
        for l in (0..MAX_LEVEL).rev() {
            let mut link = if pred.is_null() {
                self.heads.elem(l as u64)
            } else {
                pred.field(Item::fwd(l))
            };
            loop {
                let nxt: TxPtr<Item> = tx.read_as(&S_SKIP_R, link)?;
                if nxt.is_null() || self.skip_key_of(tx, nxt)? >= key {
                    break;
                }
                steps -= 1;
                if steps == 0 {
                    return Err(Abort::Conflict);
                }
                pred = nxt;
                link = nxt.field(Item::fwd(l));
            }
            update[l] = link;
        }
        let succ: TxPtr<Item> = tx.read_as(&S_SKIP_R, update[0])?;
        Ok((update, succ))
    }

    /// Link a fresh item (its key fields already initialized) into the
    /// by-priority index. The forward-pointer stores into `p` are init
    /// writes of captured memory; only the predecessors' words take full
    /// barriers.
    pub(crate) fn skip_insert(
        &self,
        tx: &mut Tx<'_, '_>,
        p: TxPtr<Item>,
        key: (u64, u64),
    ) -> TxResult<()> {
        let lvl = level_of(key.1);
        let (update, succ) = self.skip_search(tx, key)?;
        if !succ.is_null() && succ.raw() == p.raw() {
            // Already linked: impossible in a consistent snapshot.
            return Err(Abort::Conflict);
        }
        for (l, link) in update.iter().enumerate().take(lvl as usize) {
            let nxt: TxPtr<Item> = tx.read_as(&S_SKIP_R, *link)?;
            tx.write_field(&crate::S_INIT_W, p, Item::fwd(l), nxt)?;
            tx.write_as(&S_SKIP_W, *link, p)?;
        }
        Ok(())
    }

    /// Unlink `p` (which must be live under `key`) from the by-priority
    /// index.
    pub(crate) fn skip_remove(
        &self,
        tx: &mut Tx<'_, '_>,
        p: TxPtr<Item>,
        key: (u64, u64),
    ) -> TxResult<()> {
        let (update, succ) = self.skip_search(tx, key)?;
        if succ.raw() != p.raw() {
            // A search that misses an item the same transaction proved
            // live means the snapshot is already doomed.
            return Err(Abort::Conflict);
        }
        let lvl = tx.read_field(&S_ITEM_R, p, Item::level)?;
        for (l, link) in update.iter().enumerate().take(lvl as usize) {
            let at: TxPtr<Item> = tx.read_as(&S_SKIP_R, *link)?;
            if at.raw() != p.raw() {
                return Err(Abort::Conflict);
            }
            let nxt = tx.read_field(&S_ITEM_R, p, Item::fwd(l))?;
            tx.write_as(&S_SKIP_W, *link, nxt)?;
        }
        Ok(())
    }

    /// The lowest-key live item (the eviction victim), or null.
    pub(crate) fn skip_min(&self, tx: &mut Tx<'_, '_>) -> TxResult<TxPtr<Item>> {
        tx.read_as(&S_SKIP_R, self.heads.elem(0))
    }

    /// The highest-key live item (what `pop_best` takes), or null: walk
    /// right at each level, descending at the nulls.
    pub(crate) fn skip_max(&self, tx: &mut Tx<'_, '_>) -> TxResult<TxPtr<Item>> {
        let mut pred = TxPtr::<Item>::NULL;
        let mut steps = self.walk_bound();
        for l in (0..MAX_LEVEL).rev() {
            let mut link = if pred.is_null() {
                self.heads.elem(l as u64)
            } else {
                pred.field(Item::fwd(l))
            };
            loop {
                let nxt: TxPtr<Item> = tx.read_as(&S_SKIP_R, link)?;
                if nxt.is_null() {
                    break;
                }
                steps -= 1;
                if steps == 0 {
                    return Err(Abort::Conflict);
                }
                pred = nxt;
                link = nxt.field(Item::fwd(l));
            }
        }
        Ok(pred)
    }

    // --- sender chains ------------------------------------------------------

    /// Link a fresh item into its sender's `(nonce, id)`-ordered chain,
    /// creating the sender-table entry if this is the sender's first item.
    pub(crate) fn sender_insert(
        &self,
        tx: &mut Tx<'_, '_>,
        p: TxPtr<Item>,
        sender: u64,
        nonce: u64,
        id: u64,
    ) -> TxResult<()> {
        let key = (nonce, id);
        match self.table_find(tx, self.senders, KeyKind::Sender, sender)? {
            None => self.table_insert(tx, self.senders, sender, p),
            Some((slot, head)) => {
                let hk = (
                    tx.read_field(&S_ITEM_R, head, Item::nonce)?,
                    tx.read_field(&S_ITEM_R, head, Item::id)?,
                );
                if key < hk {
                    tx.write_field(&crate::S_INIT_W, p, Item::snext, head)?;
                    return tx.write_as(&S_SLOT_W, self.senders.elem(slot), p);
                }
                let mut prev = head;
                let mut steps = self.walk_bound();
                loop {
                    let nx: TxPtr<Item> = tx.read_field(&S_ITEM_R, prev, Item::snext)?;
                    let insert_here = if nx.is_null() {
                        true
                    } else {
                        key < (
                            tx.read_field(&S_ITEM_R, nx, Item::nonce)?,
                            tx.read_field(&S_ITEM_R, nx, Item::id)?,
                        )
                    };
                    if insert_here {
                        tx.write_field(&crate::S_INIT_W, p, Item::snext, nx)?;
                        return tx.write_field(&crate::S_LINK_W, prev, Item::snext, p);
                    }
                    steps -= 1;
                    if steps == 0 {
                        return Err(Abort::Conflict);
                    }
                    prev = nx;
                }
            }
        }
    }

    /// Unlink a live item from its sender chain, dropping the sender's
    /// table entry when the chain empties.
    pub(crate) fn sender_unlink(
        &self,
        tx: &mut Tx<'_, '_>,
        p: TxPtr<Item>,
        sender: u64,
    ) -> TxResult<()> {
        let Some((slot, head)) = self.table_find(tx, self.senders, KeyKind::Sender, sender)? else {
            // A live item without a sender chain: doomed snapshot.
            return Err(Abort::Conflict);
        };
        if head.raw() == p.raw() {
            let nxt: TxPtr<Item> = tx.read_field(&S_ITEM_R, p, Item::snext)?;
            if nxt.is_null() {
                return self.table_remove_at(tx, self.senders, KeyKind::Sender, slot);
            }
            return tx.write_as(&S_SLOT_W, self.senders.elem(slot), nxt);
        }
        let mut prev = head;
        let mut steps = self.walk_bound();
        loop {
            let nx: TxPtr<Item> = tx.read_field(&S_ITEM_R, prev, Item::snext)?;
            if nx.is_null() {
                return Err(Abort::Conflict);
            }
            if nx.raw() == p.raw() {
                let after: TxPtr<Item> = tx.read_field(&S_ITEM_R, p, Item::snext)?;
                return tx.write_field(&crate::S_LINK_W, prev, Item::snext, after);
            }
            steps -= 1;
            if steps == 0 {
                return Err(Abort::Conflict);
            }
            prev = nx;
        }
    }
}
