//! Sequential (non-transactional) inspection and the structural invariant
//! checker. Everything here reads the transactional address space through
//! [`stm::WorkerCtx::load_as`], so it is only valid at quiesce points —
//! after workers have joined or between transactions on a single thread.

use crate::index::KeyKind;
use crate::{mix, Item, PoolEntry, PoolHdr, TxPool, MAX_LEVEL};
use stm::{TxBuf, TxObject, TxPtr, WorkerCtx};

/// A snapshot of the pool header's telemetry words, for comparison with
/// the sequential model's bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Live item count.
    pub count: u64,
    /// Sum of live items' accounted bytes.
    pub live_bytes: u64,
    /// Successful inserts.
    pub inserted: u64,
    /// Items evicted to make room.
    pub evicted: u64,
    /// Accounted bytes of evicted items.
    pub evicted_bytes: u64,
    /// Inserts refused as exact duplicates.
    pub dup_hits: u64,
    /// Inserts whose bloom negative skipped the exact duplicate probe.
    pub dup_skips: u64,
    /// Rejected inserts.
    pub rejected: u64,
    /// Items taken by `pop_best`.
    pub popped: u64,
    /// Items removed by id.
    pub removed: u64,
    /// Successful priority changes.
    pub promoted: u64,
    /// Items removed via `remove_sender`.
    pub purged: u64,
}

impl TxPool {
    /// Snapshot every live item, sorted by id.
    pub fn seq_collect(&self, w: &WorkerCtx<'_>) -> Vec<PoolEntry> {
        let mut out = Vec::new();
        let mut cur: TxPtr<Item> = w.load_as(self.heads.elem(0));
        while !cur.is_null() {
            out.push(PoolEntry {
                id: w.load_as(cur.field(Item::id)),
                sender: w.load_as(cur.field(Item::sender)),
                nonce: w.load_as(cur.field(Item::nonce)),
                prio: w.load_as(cur.field(Item::prio)),
                payload_words: w.load_as(cur.field(Item::payload_words)),
            });
            cur = w.load_as(cur.field(Item::fwd0));
        }
        out.sort();
        out
    }

    /// Snapshot the header telemetry.
    pub fn seq_counters(&self, w: &WorkerCtx<'_>) -> PoolCounters {
        let hdr = |f| w.load_as(self.hdr.field(f));
        PoolCounters {
            count: hdr(PoolHdr::count),
            live_bytes: hdr(PoolHdr::live_bytes),
            inserted: hdr(PoolHdr::inserted),
            evicted: hdr(PoolHdr::evicted),
            evicted_bytes: hdr(PoolHdr::evicted_bytes),
            dup_hits: hdr(PoolHdr::dup_hits),
            dup_skips: hdr(PoolHdr::dup_skips),
            rejected: hdr(PoolHdr::rejected),
            popped: hdr(PoolHdr::popped),
            removed: hdr(PoolHdr::removed),
            promoted: hdr(PoolHdr::promoted),
            purged: hdr(PoolHdr::purged),
        }
    }

    /// Assert every structural invariant the pool promises post-commit:
    ///
    /// * both hash tables are valid open-addressing states (every entry is
    ///   reachable from its home slot with no empty slot in between) and
    ///   the primary table holds exactly the live items;
    /// * the skiplist's level-0 chain is strictly `(prio, id)`-sorted and
    ///   each upper level is exactly the sub-chain of taller items;
    /// * each sender chain is strictly `(nonce, id)`-sorted, homogeneous
    ///   in sender, and the chains partition the live items;
    /// * `live_bytes` is the exact sum of per-item accounted bytes, each
    ///   item's `bytes` matches its payload length, and the budget holds;
    /// * the bloom filter answers positive for every live id;
    /// * every payload word still carries the id-derived pattern.
    ///
    /// # Panics
    /// On any violation.
    pub fn seq_check(&self, w: &WorkerCtx<'_>) {
        let cap = self.capacity();
        // --- skiplist: level 0 is the ground truth for "live" ------------
        let mut live: Vec<(u64, TxPtr<Item>)> = Vec::new();
        let mut prev_key: Option<(u64, u64)> = None;
        let mut cur: TxPtr<Item> = w.load_as(self.heads.elem(0));
        let mut bytes_sum = 0u64;
        while !cur.is_null() {
            let id: u64 = w.load_as(cur.field(Item::id));
            let prio: u64 = w.load_as(cur.field(Item::prio));
            let bytes: u64 = w.load_as(cur.field(Item::bytes));
            let payload_words: u64 = w.load_as(cur.field(Item::payload_words));
            let level: u64 = w.load_as(cur.field(Item::level));
            assert_ne!(id, 0, "live item with zero id");
            assert_eq!(
                level,
                crate::level_of(id),
                "item {id}: stored level disagrees with level_of"
            );
            assert_eq!(
                bytes,
                Item::BYTES + 8 * payload_words,
                "item {id}: accounted bytes disagree with payload length"
            );
            let payload: TxBuf<u64> = w.load_as(cur.field(Item::payload));
            if payload_words == 0 {
                assert!(payload.is_null(), "item {id}: empty payload not null");
            } else {
                for pw in 0..payload_words {
                    let got: u64 = w.load_as(payload.elem(pw));
                    assert_eq!(
                        got,
                        crate::ops::payload_word(id, pw),
                        "item {id}: payload word {pw} corrupted"
                    );
                }
            }
            let key = (prio, id);
            assert!(
                prev_key.is_none_or(|p| p < key),
                "skiplist level 0 not strictly sorted at item {id}"
            );
            prev_key = Some(key);
            bytes_sum += bytes;
            live.push((id, cur));
            cur = w.load_as(cur.field(Item::fwd0));
        }
        // Upper levels are exactly the taller-item sub-chains, in order.
        for l in 1..MAX_LEVEL {
            let mut expect = live
                .iter()
                .filter(|&&(id, _)| crate::level_of(id) > l as u64)
                .map(|&(_, p)| p);
            let mut cur: TxPtr<Item> = w.load_as(self.heads.elem(l as u64));
            while !cur.is_null() {
                let want = expect.next().unwrap_or_else(|| {
                    panic!("skiplist level {l} longer than the taller-item set")
                });
                assert_eq!(cur.raw(), want.raw(), "skiplist level {l} chain mismatch");
                cur = w.load_as(cur.field(Item::fwd(l)));
            }
            assert!(
                expect.next().is_none(),
                "skiplist level {l} shorter than the taller-item set"
            );
        }
        // --- header accounting -------------------------------------------
        let c = self.seq_counters(w);
        assert_eq!(c.count, live.len() as u64, "header count is wrong");
        assert_eq!(c.live_bytes, bytes_sum, "live_bytes accounting is wrong");
        assert!(
            c.live_bytes <= self.budget,
            "budget exceeded post-commit: {} > {}",
            c.live_bytes,
            self.budget
        );
        assert!(c.count <= cap / 2, "load factor above 1/2");
        assert_eq!(
            c.inserted,
            c.count + c.evicted + c.popped + c.removed + c.purged,
            "item conservation: inserted == live + every removal cause"
        );
        // --- primary table ------------------------------------------------
        let ids: std::collections::BTreeMap<u64, TxPtr<Item>> = live.iter().copied().collect();
        assert_eq!(ids.len(), live.len(), "duplicate live ids");
        self.seq_check_table(w, self.slots, KeyKind::Id, cap);
        let mut slot_entries = 0u64;
        for i in 0..cap {
            let p: TxPtr<Item> = w.load_as(self.slots.elem(i));
            if p.is_null() {
                continue;
            }
            slot_entries += 1;
            let id: u64 = w.load_as(p.field(Item::id));
            let q = ids
                .get(&id)
                .unwrap_or_else(|| panic!("primary table holds id {id} which is not live"));
            assert_eq!(q.raw(), p.raw(), "primary table points at a stale item");
        }
        assert_eq!(
            slot_entries,
            live.len() as u64,
            "primary table entry count disagrees with live count"
        );
        // --- sender table and chains ---------------------------------------
        self.seq_check_table(w, self.senders, KeyKind::Sender, cap);
        let mut chained = 0u64;
        let mut seen_senders = std::collections::HashSet::new();
        for i in 0..cap {
            let head: TxPtr<Item> = w.load_as(self.senders.elem(i));
            if head.is_null() {
                continue;
            }
            let sender: u64 = w.load_as(head.field(Item::sender));
            assert!(seen_senders.insert(sender), "sender {sender} has two slots");
            let mut prev: Option<(u64, u64)> = None;
            let mut cur = head;
            while !cur.is_null() {
                let s: u64 = w.load_as(cur.field(Item::sender));
                let nonce: u64 = w.load_as(cur.field(Item::nonce));
                let id: u64 = w.load_as(cur.field(Item::id));
                assert_eq!(s, sender, "sender chain mixes senders at item {id}");
                assert!(
                    ids.contains_key(&id),
                    "sender chain holds id {id} which is not live"
                );
                let key = (nonce, id);
                assert!(
                    prev.is_none_or(|p| p < key),
                    "sender {sender} chain not strictly (nonce, id)-sorted"
                );
                prev = Some(key);
                chained += 1;
                cur = w.load_as(cur.field(Item::snext));
            }
        }
        assert_eq!(
            chained,
            live.len() as u64,
            "sender chains do not partition the live items"
        );
        // --- bloom filter ---------------------------------------------------
        for &(id, _) in &live {
            for (addr, bit) in self.bloom_probes(id) {
                let word: u64 = w.load_as(addr);
                assert!(word & bit != 0, "bloom negative for live id {id}");
            }
        }
    }

    /// Open-addressing validity for one table: every occupied slot must be
    /// reachable from its key's home by a probe that crosses no empty slot
    /// (otherwise lookups would miss it). With backward-shift deletion and
    /// no tombstones this is the whole probe-sequence contract.
    fn seq_check_table(
        &self,
        w: &WorkerCtx<'_>,
        table: TxBuf<TxPtr<Item>>,
        kind: KeyKind,
        cap: u64,
    ) {
        for i in 0..cap {
            let p: TxPtr<Item> = w.load_as(table.elem(i));
            if p.is_null() {
                continue;
            }
            let key: u64 = match kind {
                KeyKind::Id => w.load_as(p.field(Item::id)),
                KeyKind::Sender => w.load_as(p.field(Item::sender)),
            };
            let home = mix(key) & self.mask;
            let mut j = home;
            while j != i {
                let q: TxPtr<Item> = w.load_as(table.elem(j));
                assert!(
                    !q.is_null(),
                    "{kind:?} table: empty slot {j} between home {home} and entry {i}"
                );
                j = (j + 1) & self.mask;
            }
        }
    }
}
