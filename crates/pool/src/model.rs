//! The sequential reference implementation the differential oracle runs
//! alongside the transactional pool. Plain `std` collections, the same
//! observable semantics — including the exact eviction, rejection, and
//! telemetry behavior — so `tests/pool_oracle.rs` can demand equality of
//! both contents and counters after arbitrary op scripts.
//!
//! The one deliberate coupling to the real pool: the bloom filter is
//! simulated bit for bit (same hash, same width), because the
//! `dup_skips` counter depends on bloom *false positives* — a mere
//! "ever inserted" set would diverge from the real telemetry the first
//! time two ids collide in the filter.

use crate::{InsertOutcome, PoolCounters, PoolEntry};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Sequential mirror of `TxPool`.
#[derive(Clone, Debug, Default)]
pub struct ModelPool {
    budget: u64,
    items: HashMap<u64, PoolEntry>,
    by_prio: BTreeMap<(u64, u64), u64>,
    by_sender: HashMap<u64, BTreeSet<(u64, u64)>>,
    bloom: Vec<u64>,
    bloom_mask: u64,
    counters: PoolCounters,
}

impl ModelPool {
    /// A model pool with the given live-byte budget and bloom width —
    /// pass the same values as the `PoolConfig` under test.
    pub fn new(budget_bytes: u64, bloom_words: u64) -> ModelPool {
        assert!(bloom_words.is_power_of_two());
        ModelPool {
            budget: budget_bytes,
            bloom: vec![0; bloom_words as usize],
            bloom_mask: 64 * bloom_words - 1,
            ..ModelPool::default()
        }
    }

    /// Bit-exact mirror of the pool's two bloom probes.
    fn bloom_probes(&self, id: u64) -> [(usize, u64); 2] {
        let h = crate::mix(id ^ 0xB10_0F11);
        let g = crate::mix(h);
        let b1 = h & self.bloom_mask;
        let b2 = g & self.bloom_mask;
        [
            ((b1 >> 6) as usize, 1u64 << (b1 & 63)),
            ((b2 >> 6) as usize, 1u64 << (b2 & 63)),
        ]
    }

    fn bloom_might_contain(&self, id: u64) -> bool {
        self.bloom_probes(id)
            .iter()
            .all(|&(w, bit)| self.bloom[w] & bit != 0)
    }

    fn bloom_add(&mut self, id: u64) {
        for (w, bit) in self.bloom_probes(id) {
            self.bloom[w] |= bit;
        }
    }

    /// Mirror of `TxPool::insert`.
    pub fn insert(
        &mut self,
        id: u64,
        sender: u64,
        nonce: u64,
        prio: u64,
        payload_words: u64,
    ) -> InsertOutcome {
        let entry = PoolEntry {
            id,
            sender,
            nonce,
            prio,
            payload_words,
        };
        let need = entry.bytes();
        if need > self.budget {
            self.counters.rejected += 1;
            return InsertOutcome::Rejected;
        }
        let maybe_seen = self.bloom_might_contain(id);
        if maybe_seen && self.items.contains_key(&id) {
            self.counters.dup_hits += 1;
            return InsertOutcome::Duplicate;
        }
        // Plan eviction over the strictly-worse prefix, all-or-nothing.
        let key = (prio, id);
        let mut freed = 0u64;
        let mut victims: Vec<u64> = Vec::new();
        if self.counters.live_bytes + need > self.budget {
            for (&k, &vid) in self.by_prio.iter() {
                if self.counters.live_bytes - freed + need <= self.budget {
                    break;
                }
                if k >= key {
                    break;
                }
                freed += self.items[&vid].bytes();
                victims.push(vid);
            }
            if self.counters.live_bytes - freed + need > self.budget {
                self.counters.rejected += 1;
                return InsertOutcome::Rejected;
            }
            for vid in &victims {
                let gone = self.unlink(*vid);
                self.counters.evicted += 1;
                self.counters.evicted_bytes += gone.bytes();
            }
        }
        self.items.insert(id, entry);
        self.by_prio.insert(key, id);
        self.by_sender
            .entry(sender)
            .or_default()
            .insert((nonce, id));
        self.bloom_add(id);
        self.counters.count += 1;
        self.counters.live_bytes += need;
        self.counters.inserted += 1;
        if !maybe_seen {
            self.counters.dup_skips += 1;
        }
        InsertOutcome::Inserted {
            evicted: victims.len() as u64,
        }
    }

    /// Mirror of `TxPool::remove`.
    pub fn remove(&mut self, id: u64) -> Option<PoolEntry> {
        if !self.items.contains_key(&id) {
            return None;
        }
        let e = self.unlink(id);
        self.counters.removed += 1;
        Some(e)
    }

    /// Mirror of `TxPool::pop_best`.
    pub fn pop_best(&mut self) -> Option<PoolEntry> {
        let (_, &id) = self.by_prio.iter().next_back()?;
        let e = self.unlink(id);
        self.counters.popped += 1;
        Some(e)
    }

    /// Mirror of `TxPool::promote`.
    pub fn promote(&mut self, id: u64, new_prio: u64) -> bool {
        let Some(&e) = self.items.get(&id) else {
            return false;
        };
        if e.prio != new_prio {
            self.by_prio.remove(&(e.prio, id));
            self.by_prio.insert((new_prio, id), id);
            self.items.get_mut(&id).expect("live").prio = new_prio;
        }
        self.counters.promoted += 1;
        true
    }

    /// Mirror of `TxPool::remove_sender`.
    pub fn remove_sender(&mut self, sender: u64) -> u64 {
        let ids: Vec<u64> = self
            .by_sender
            .get(&sender)
            .map(|s| s.iter().map(|&(_, id)| id).collect())
            .unwrap_or_default();
        for &id in &ids {
            self.unlink(id);
        }
        self.counters.purged += ids.len() as u64;
        ids.len() as u64
    }

    /// Mirror of `TxPool::contains`.
    pub fn contains(&self, id: u64) -> bool {
        self.items.contains_key(&id)
    }

    /// Every live item, sorted by id — comparable with
    /// `TxPool::seq_collect`.
    pub fn contents(&self) -> Vec<PoolEntry> {
        let mut out: Vec<PoolEntry> = self.items.values().copied().collect();
        out.sort();
        out
    }

    /// The telemetry snapshot — comparable with `TxPool::seq_counters`.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// Remove a live item from every index and settle accounting; the
    /// caller records the cause.
    fn unlink(&mut self, id: u64) -> PoolEntry {
        let e = self.items.remove(&id).expect("unlink of a dead item");
        self.by_prio.remove(&(e.prio, id));
        let chain = self.by_sender.get_mut(&e.sender).expect("sender chain");
        chain.remove(&(e.nonce, id));
        if chain.is_empty() {
            self.by_sender.remove(&e.sender);
        }
        self.counters.count -= 1;
        self.counters.live_bytes -= e.bytes();
        e
    }
}
