use std::fmt;

/// Number of bytes in one simulated machine word.
pub const WORD_BYTES: u64 = 8;

/// The null address. Word 0 of the simulated memory is reserved so that 0 is
/// never a valid data address, mirroring C's `NULL`.
pub const NULL: Addr = Addr(0);

/// Byte size of an object `words` machine words long — the typed layer's
/// size helper (`stm::TxObject::WORDS` → allocation request).
///
/// Panics (also in release) on multiply overflow: a wrapped size would
/// silently under-allocate and hand back a tiny block beneath a huge
/// typed handle, corrupting unrelated simulated memory on the first
/// out-of-block element access.
#[inline]
pub const fn words_to_bytes(words: u64) -> u64 {
    match words.checked_mul(WORD_BYTES) {
        Some(bytes) => bytes,
        None => panic!("object size in words overflows the byte address space"),
    }
}

/// A byte address into the simulated shared memory.
///
/// All loads and stores are word (8-byte) granular and must be word aligned;
/// pointers stored *in* simulated memory are plain `u64` values equal to
/// `Addr::0`, so data structures built on the heap can freely link to each
/// other just like C structs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Construct an address from a raw word stored in memory.
    #[inline]
    pub const fn from_raw(raw: u64) -> Addr {
        Addr(raw)
    }

    /// The raw byte address (what gets stored into memory for pointers).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True if this is the reserved null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Index of the word containing this (word-aligned) address.
    #[inline]
    pub const fn word_index(self) -> usize {
        (self.0 / WORD_BYTES) as usize
    }

    /// True if the address is word aligned.
    #[inline]
    pub const fn is_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Byte offset arithmetic (like C pointer arithmetic on `char*`).
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Word offset arithmetic (like C pointer arithmetic on `uint64_t*`).
    #[inline]
    pub const fn word(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_word_zero() {
        assert!(NULL.is_null());
        assert_eq!(NULL.word_index(), 0);
        assert!(!Addr(8).is_null());
    }

    #[test]
    fn word_index_and_alignment() {
        assert_eq!(Addr(0).word_index(), 0);
        assert_eq!(Addr(8).word_index(), 1);
        assert_eq!(Addr(64).word_index(), 8);
        assert!(Addr(16).is_aligned());
        assert!(!Addr(12).is_aligned());
    }

    #[test]
    fn offset_arithmetic() {
        let a = Addr(0x100);
        assert_eq!(a.offset(8), Addr(0x108));
        assert_eq!(a.word(2), Addr(0x110));
    }

    #[test]
    fn roundtrips_through_raw() {
        let a = Addr(0xdead0);
        assert_eq!(Addr::from_raw(a.raw()), a);
    }

    #[test]
    fn words_to_bytes_scales_and_checks() {
        assert_eq!(words_to_bytes(0), 0);
        assert_eq!(words_to_bytes(3), 24);
        let r = std::panic::catch_unwind(|| words_to_bytes(u64::MAX / 2));
        assert!(r.is_err(), "overflowing size must panic, not wrap");
    }
}
