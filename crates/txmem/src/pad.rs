//! Cache-line padding for hot shared state.
//!
//! Fields that different threads hammer concurrently (the commit clock, the
//! allocator's bump frontier, per-shard locks, global statistics) must not
//! share a cache line, or every update by one thread invalidates the line
//! under every other thread — false sharing that serializes otherwise
//! independent work. [`CachePadded`] aligns (and therefore pads) its
//! contents to 128 bytes: two 64-byte lines, covering the adjacent-line
//! prefetcher on x86 that pulls line pairs.

/// Aligns `T` to 128 bytes so it owns its cache line (pair).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_are_line_aligned_and_disjoint() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let pair: [CachePadded<u64>; 2] = [CachePadded::new(1), CachePadded::new(2)];
        let a = &*pair[0] as *const u64 as usize;
        let b = &*pair[1] as *const u64 as usize;
        assert!(b - a >= 128, "neighbors must not share a line");
    }

    #[test]
    fn deref_reaches_the_value() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
