use crate::addr::{Addr, WORD_BYTES};
use crate::mem::SharedMem;

/// A per-thread, downward-growing stack inside the simulated address space.
///
/// This reproduces the layout of the paper's Figure 3: the STM records the
/// stack pointer at transaction begin (`start_sp`, kept by the transaction
/// descriptor in the `stm` crate) and the live stack top is `sp`. The
/// transaction-local stack is everything pushed after transaction begin,
/// i.e. the byte range `[sp, start_sp)` (the paper draws the same contiguous
/// region; its Figure 4 writes the comparison with the opposite sense because
/// it treats `sp` as the numerically larger bound).
pub struct ThreadStack {
    /// One past the highest byte of the stack region (initial sp).
    base: u64,
    /// Lowest valid byte of the stack region.
    limit: u64,
    /// Current stack top; grows downward. `sp == base` means empty.
    sp: u64,
}

impl ThreadStack {
    /// Create the stack view for thread `tid`, with `sp` at the top.
    pub fn new(mem: &SharedMem, tid: usize) -> ThreadStack {
        let (limit, base) = mem.layout().stack_range(tid);
        ThreadStack {
            base,
            limit,
            sp: base,
        }
    }

    /// Current stack pointer (byte address; everything at `>= sp` within the
    /// region is live).
    #[inline]
    pub fn sp(&self) -> u64 {
        self.sp
    }

    /// Highest address of the region + 1 (the initial `sp`).
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Lowest valid address of the region.
    #[inline]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Push a frame of `words` words; returns the (lowest) address of the
    /// frame. Panics on simulated stack overflow.
    pub fn push(&mut self, words: usize) -> Addr {
        let bytes = words as u64 * WORD_BYTES;
        assert!(
            self.sp - self.limit >= bytes,
            "simulated stack overflow: sp={:#x} limit={:#x} request={} words",
            self.sp,
            self.limit,
            words
        );
        self.sp -= bytes;
        Addr(self.sp)
    }

    /// Pop a frame of `words` words (must match a previous push).
    pub fn pop(&mut self, words: usize) {
        let bytes = words as u64 * WORD_BYTES;
        assert!(
            self.sp + bytes <= self.base,
            "simulated stack underflow: sp={:#x} base={:#x} pop={} words",
            self.sp,
            self.base,
            words
        );
        self.sp += bytes;
    }

    /// Reset the stack pointer to an earlier value (used when a transaction
    /// aborts: every frame pushed inside the transaction is discarded).
    #[inline]
    pub fn reset_to(&mut self, sp: u64) {
        debug_assert!(sp >= self.sp && sp <= self.base, "bad stack reset");
        self.sp = sp;
    }

    /// True if `addr` lies inside this thread's stack region at all.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.limit && addr.0 < self.base
    }

    /// The paper's runtime stack capture check (Figure 4): is `addr` in the
    /// transaction-local part of the stack, i.e. pushed after the transaction
    /// began at `start_sp`? With a downward-growing stack that is
    /// `sp <= addr < start_sp`.
    #[inline]
    pub fn is_captured(&self, addr: Addr, start_sp: u64) -> bool {
        addr.0 >= self.sp && addr.0 < start_sp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemConfig;

    fn mk() -> (SharedMem, ThreadStack) {
        let mem = SharedMem::new(MemConfig::small());
        let st = ThreadStack::new(&mem, 0);
        (mem, st)
    }

    #[test]
    fn push_pop_moves_sp() {
        let (_, mut st) = mk();
        let base = st.sp();
        let f = st.push(4);
        assert_eq!(f.0, base - 32);
        assert_eq!(st.sp(), base - 32);
        st.pop(4);
        assert_eq!(st.sp(), base);
    }

    #[test]
    fn frames_are_usable_memory() {
        let (mem, mut st) = mk();
        let f = st.push(2);
        mem.store(f, 11);
        mem.store(f.word(1), 22);
        assert_eq!(mem.load(f), 11);
        assert_eq!(mem.load(f.word(1)), 22);
        st.pop(2);
    }

    #[test]
    fn capture_check_matches_paper_semantics() {
        let (_, mut st) = mk();
        // Frame pushed *before* the transaction: live-in, not captured.
        let before = st.push(2);
        let start_sp = st.sp(); // transaction begins here
        let inside = st.push(2);
        assert!(st.is_captured(inside, start_sp));
        assert!(st.is_captured(inside.word(1), start_sp));
        assert!(!st.is_captured(before, start_sp));
        // An address below sp (not yet allocated) is not captured.
        assert!(!st.is_captured(Addr(st.sp() - 8), start_sp));
    }

    #[test]
    fn reset_to_discards_tx_frames() {
        let (_, mut st) = mk();
        let start_sp = st.sp();
        st.push(8);
        st.push(8);
        st.reset_to(start_sp);
        assert_eq!(st.sp(), start_sp);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let (_, mut st) = mk();
        st.push(1 << 20);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let (_, mut st) = mk();
        st.pop(1);
    }

    #[test]
    fn contains_is_region_wide() {
        let (_, mut st) = mk();
        let f = st.push(1);
        assert!(st.contains(f));
        assert!(!st.contains(Addr(st.base())));
    }
}
