use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::addr::{Addr, WORD_BYTES};
use crate::mem::SharedMem;
use crate::pad::CachePadded;

/// Size classes (total block bytes, including the 8-byte header), in the
/// spirit of McRT-Malloc's segregated free lists. Payload capacity of a class
/// is `class - HEADER_BYTES`.
pub const SIZE_CLASSES: [u64; 16] = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 4096, 8192,
];

/// Largest payload served from the size-class fast path.
pub const MAX_SMALL_BYTES: u64 = SIZE_CLASSES[SIZE_CLASSES.len() - 1] - HEADER_BYTES;

/// Every block (size-class or nursery-bump) starts with one word holding
/// its total byte count; the payload address is `block + HEADER_BYTES`.
pub const HEADER_BYTES: u64 = WORD_BYTES;
const NCLASSES: usize = SIZE_CLASSES.len();
/// Bytes per nursery region: one largest-size-class block, so regions are
/// carved from and recycled to the very same lock-free frontier /
/// recycled-block shards that back ordinary allocations.
pub const NURSERY_REGION_BYTES: u64 = SIZE_CLASSES[NCLASSES - 1];
const REGION_CLASS: usize = NCLASSES - 1;
/// Largest *total* block size (header included) served from a nursery
/// region; bigger blocks take the classic allocation path. Half a region,
/// so a region always fits at least two of the biggest nursery blocks.
pub const NURSERY_MAX_BLOCK_BYTES: u64 = NURSERY_REGION_BYTES / 2;

/// Round a payload request up to the size-class block total (header
/// included) the allocator would serve it with; `None` for large blocks.
/// Nursery bump allocation uses the same rounding so a nursery block is
/// byte-for-byte identical to a free-list block: `usable_size` and `free`
/// work on it unchanged, and a post-commit `free` recycles it into the
/// ordinary class shards.
#[inline]
pub fn small_block_total(payload: u64) -> Option<u64> {
    let total = (payload.max(1) + HEADER_BYTES).div_ceil(WORD_BYTES) * WORD_BYTES;
    size_to_class(total).map(|c| SIZE_CLASSES[c])
}
/// How many blocks a thread pulls from / spills to a shard pool at once.
const BATCH: usize = 16;
/// Byte cap on one frontier carve: a refill takes `BATCH` blocks for small
/// classes but never more than this many bytes, so a thread refilling a
/// large class (worst case the 8 KiB nursery-region class) cannot hoard
/// `BATCH × 8 KiB = 128 KiB` in its private cache — on a small heap a few
/// concurrently-refilling threads would exhaust the frontier with almost
/// all of the carved memory sitting idle in per-thread lists.
const BATCH_BYTES_MAX: u64 = 8192;
/// A thread free list longer than this spills half back to its home shard.
const SPILL_AT: usize = 64;
/// Recycled-block pool shards (power of two). Threads stripe over shards by
/// id, so with up to `NSHARDS` allocating threads no two convoy on one lock.
pub const NSHARDS: usize = 8;

/// Allocation failure: the simulated heap is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocError {
    pub requested: u64,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated heap exhausted (requested {} bytes)",
            self.requested
        )
    }
}

impl std::error::Error for AllocError {}

fn size_to_class(total: u64) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= total)
}

/// One stripe of the recycled-block pool: per-class free lists behind its
/// own (cache-line-padded) lock.
struct Shard {
    free: [Vec<u64>; NCLASSES],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            free: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// Per-thread allocator state: segregated free lists that serve allocations
/// without any locking, refilled from the shared [`TxHeap`] pool in batches.
pub struct ThreadAlloc {
    free: Vec<Vec<u64>>,
    /// Which pool shard this thread refills from / spills to
    /// (`stripe % NSHARDS`); workers use their thread id.
    stripe: usize,
    /// Number of blocks this thread allocated (for tests/telemetry).
    pub alloc_count: u64,
    /// Number of blocks this thread freed.
    pub free_count: u64,
}

impl Default for ThreadAlloc {
    fn default() -> Self {
        ThreadAlloc::new()
    }
}

impl ThreadAlloc {
    pub fn new() -> ThreadAlloc {
        ThreadAlloc::with_stripe(0)
    }

    /// A thread allocator striped to pool shard `stripe % NSHARDS`. Using
    /// the worker's thread id keeps shard choice deterministic (important
    /// for the differential dispatch tests, where allocation addresses feed
    /// the lossy capture filter) while spreading concurrent workers over
    /// all shards.
    pub fn with_stripe(stripe: usize) -> ThreadAlloc {
        ThreadAlloc {
            free: (0..NCLASSES).map(|_| Vec::new()).collect(),
            stripe: stripe % NSHARDS,
            alloc_count: 0,
            free_count: 0,
        }
    }

    pub fn stripe(&self) -> usize {
        self.stripe
    }
}

/// The shared heap: a McRT-Malloc-style size-class allocator over the heap
/// region of the simulated memory.
///
/// The allocator itself is *not* transactional: the STM layer on top logs
/// transactional allocations and frees, undoing allocations on abort and
/// deferring frees to commit. This matches the paper's design where the
/// transactional memory allocator wraps a scalable malloc (ref \[11\]) and the
/// allocation log lives in the transaction descriptor.
///
/// Concurrency structure (no single global lock):
/// * the bump frontier is an atomic — fresh batches are carved with one CAS;
/// * recycled blocks live in [`NSHARDS`] thread-striped shards, each behind
///   its own cache-line-padded lock, so refill/spill traffic from different
///   threads never contends on one mutex;
/// * only the (rare) large-block free list keeps a single lock.
pub struct TxHeap {
    mem: Arc<SharedMem>,
    /// Next unused byte of the heap region; carved lock-free by CAS.
    bump: CachePadded<AtomicU64>,
    /// One past the last heap byte.
    end: u64,
    /// Recycled size-class blocks, striped by thread id.
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    /// Free large blocks: (block start, total bytes). Rare path, one lock.
    large_free: Mutex<Vec<(u64, u64)>>,
    /// Total bytes handed out (telemetry; relaxed).
    bytes_allocated: CachePadded<AtomicU64>,
}

impl TxHeap {
    pub fn new(mem: Arc<SharedMem>) -> TxHeap {
        let l = *mem.layout();
        TxHeap {
            mem,
            bump: CachePadded::new(AtomicU64::new(l.heap_start)),
            end: l.heap_end,
            shards: (0..NSHARDS)
                .map(|_| CachePadded::new(Mutex::new(Shard::new())))
                .collect(),
            large_free: Mutex::new(Vec::new()),
            bytes_allocated: CachePadded::new(AtomicU64::new(0)),
        }
    }

    #[inline]
    pub fn mem(&self) -> &SharedMem {
        &self.mem
    }

    /// Carve up to `want` contiguous blocks of `block_bytes` from the bump
    /// frontier with a single CAS; returns (first block, count). Fewer
    /// blocks (down to one) when the heap is nearly full.
    fn carve_chunk(&self, block_bytes: u64, want: usize) -> Option<(u64, usize)> {
        let mut b = self.bump.load(Ordering::Relaxed);
        loop {
            let take = (((self.end - b) / block_bytes) as usize).min(want);
            if take == 0 {
                return None;
            }
            let next = b + take as u64 * block_bytes;
            match self
                .bump
                .compare_exchange_weak(b, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some((b, take)),
                Err(cur) => b = cur,
            }
        }
    }

    /// Allocate `size` payload bytes; returns the payload address (header is
    /// at `addr - 8`). The payload is zeroed.
    pub fn alloc(&self, ta: &mut ThreadAlloc, size: u64) -> Result<Addr, AllocError> {
        let size = size.max(1);
        let total = (size + HEADER_BYTES).div_ceil(WORD_BYTES) * WORD_BYTES;
        let block = match size_to_class(total) {
            Some(class) => {
                let cls_total = SIZE_CLASSES[class];
                let block = match ta.free[class].pop() {
                    Some(b) => b,
                    None => self
                        .refill(ta, class)
                        .ok_or(AllocError { requested: size })?,
                };
                self.mem.store_private(Addr(block), cls_total);
                block
            }
            None => self
                .alloc_large(total)
                .ok_or(AllocError { requested: size })?,
        };
        ta.alloc_count += 1;
        let payload = Addr(block + HEADER_BYTES);
        let usable = self.usable_size(payload);
        self.mem.zero_range(payload, usable);
        self.bytes_allocated.fetch_add(usable, Ordering::Relaxed);
        Ok(payload)
    }

    /// Drain up to [`BATCH`] recycled blocks of `class` from `shard` into
    /// the thread cache; returns one of them if the shard had any.
    fn take_batch(&self, ta: &mut ThreadAlloc, shard: usize, class: usize) -> Option<u64> {
        let mut s = self.shards[shard].lock().unwrap();
        let take = s.free[class].len().min(BATCH);
        if take == 0 {
            return None;
        }
        let at = s.free[class].len() - take;
        ta.free[class].extend(s.free[class].drain(at..));
        ta.free[class].pop()
    }

    fn refill(&self, ta: &mut ThreadAlloc, class: usize) -> Option<u64> {
        let cls_total = SIZE_CLASSES[class];
        // Prefer recycled blocks from the home shard.
        let home = ta.stripe;
        if let Some(b) = self.take_batch(ta, home, class) {
            return Some(b);
        }
        // Carve a fresh batch from the bump frontier — one CAS, no lock,
        // byte-capped so large classes refill a block or two at a time.
        let want = BATCH.min((BATCH_BYTES_MAX / cls_total).max(1) as usize);
        if let Some((start, n)) = self.carve_chunk(cls_total, want) {
            for i in 0..n {
                ta.free[class].push(start + i as u64 * cls_total);
            }
            return ta.free[class].pop();
        }
        // Frontier exhausted: steal recycled blocks from the other shards.
        (1..NSHARDS).find_map(|d| self.take_batch(ta, (home + d) % NSHARDS, class))
    }

    fn alloc_large(&self, total: u64) -> Option<u64> {
        // First fit over the large free list.
        {
            let mut large = self.large_free.lock().unwrap();
            if let Some(i) = large.iter().position(|&(_, sz)| sz >= total) {
                let (a, sz) = large.swap_remove(i);
                self.mem.store_private(Addr(a), sz);
                return Some(a);
            }
        }
        let (a, _) = self.carve_chunk(total, 1)?;
        self.mem.store_private(Addr(a), total);
        Some(a)
    }

    /// Free a block previously returned by [`TxHeap::alloc`].
    pub fn free(&self, ta: &mut ThreadAlloc, addr: Addr) {
        assert!(!addr.is_null(), "free(NULL)");
        let block = addr.0 - HEADER_BYTES;
        let total = self.mem.load_private(Addr(block));
        ta.free_count += 1;
        self.bytes_allocated
            .fetch_sub(total - HEADER_BYTES, Ordering::Relaxed);
        match size_to_class(total) {
            Some(class) if SIZE_CLASSES[class] == total => {
                self.push_block(ta, class, block);
            }
            _ => {
                self.large_free.lock().unwrap().push((block, total));
            }
        }
    }

    /// Return a class-sized block to the thread's free list, spilling half
    /// to the home shard when the list grows past [`SPILL_AT`].
    fn push_block(&self, ta: &mut ThreadAlloc, class: usize, block: u64) {
        ta.free[class].push(block);
        if ta.free[class].len() > SPILL_AT {
            let spill_at = ta.free[class].len() / 2;
            let mut s = self.shards[ta.stripe].lock().unwrap();
            s.free[class].extend(ta.free[class].drain(spill_at..));
        }
    }

    // ------------------------------------------------------------------
    // Nursery regions (transaction-local bump allocation).
    //
    // A nursery region is one largest-size-class block used as raw space:
    // the transaction bump-allocates class-rounded blocks (with ordinary
    // headers) inside it. Because regions are just class blocks, carving
    // comes from — and whole-region recycling returns to — the existing
    // frontier/shard machinery, with no new allocator state.
    // ------------------------------------------------------------------

    /// Carve one [`NURSERY_REGION_BYTES`] region for a transaction's
    /// nursery; `None` when the simulated heap is exhausted.
    pub fn carve_region(&self, ta: &mut ThreadAlloc) -> Option<u64> {
        match ta.free[REGION_CLASS].pop() {
            Some(b) => Some(b),
            None => self.refill(ta, REGION_CLASS),
        }
    }

    /// Try to grow a region whose end is exactly the current bump frontier
    /// by [`NURSERY_REGION_BYTES`] in place — one CAS, succeeding only if
    /// no other thread carved in between (the contiguity the nursery's
    /// scalar range test needs).
    pub fn try_extend_region(&self, hi: u64) -> bool {
        let next = hi + NURSERY_REGION_BYTES;
        if next > self.end {
            return false;
        }
        self.bump
            .compare_exchange(hi, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Initialize a nursery bump block at `block` (a class-rounded `total`
    /// from [`small_block_total`]): write the header, zero the payload,
    /// account the bytes. The result is indistinguishable from a block
    /// returned by [`TxHeap::alloc`].
    pub fn init_nursery_block(&self, ta: &mut ThreadAlloc, block: u64, total: u64) -> Addr {
        debug_assert_eq!(size_to_class(total).map(|c| SIZE_CLASSES[c]), Some(total));
        self.mem.store_private(Addr(block), total);
        ta.alloc_count += 1;
        let payload = Addr(block + HEADER_BYTES);
        let usable = total - HEADER_BYTES;
        self.mem.zero_range(payload, usable);
        self.bytes_allocated.fetch_add(usable, Ordering::Relaxed);
        payload
    }

    /// Drop `usable` bytes from the live-byte telemetry without touching
    /// any free list — used when nursery memory is reclaimed wholesale
    /// (bump-back, hole punch, abort-time region recycling), where the
    /// space returns via the region itself rather than `free`. An abort
    /// settles all of a transaction's nursery blocks with one call.
    pub fn forget_live_bytes(&self, usable: u64) {
        self.bytes_allocated.fetch_sub(usable, Ordering::Relaxed);
    }

    /// Recycle a headered class block (e.g. a nursery block whose free was
    /// deferred to commit) straight onto the thread's class free list —
    /// never the large-block lock. Byte accounting must already have been
    /// settled via [`TxHeap::forget_live_bytes`].
    pub fn recycle_block(&self, ta: &mut ThreadAlloc, addr: Addr) {
        let block = addr.0 - HEADER_BYTES;
        let total = self.mem.load_private(Addr(block));
        let class = size_to_class(total).expect("nursery blocks are class-sized");
        debug_assert_eq!(SIZE_CLASSES[class], total);
        self.push_block(ta, class, block);
    }

    /// Return an arbitrary (16-byte-granular) byte range — a whole aborted
    /// nursery region, or the unused tail trimmed at commit — to the
    /// recycled shards, splitting it greedily into size-class blocks.
    /// A full region is a single push (O(1) per region); partial tails
    /// split into at most a handful of pieces. Returns the bytes recycled.
    pub fn recycle_region_range(&self, ta: &mut ThreadAlloc, start: u64, len: u64) -> u64 {
        debug_assert!(start.is_multiple_of(WORD_BYTES) && len.is_multiple_of(WORD_BYTES));
        let mut a = start;
        let end = start + len;
        while end - a >= SIZE_CLASSES[0] {
            let rem = end - a;
            let class = SIZE_CLASSES
                .iter()
                .rposition(|&c| c <= rem)
                .expect("rem >= smallest class");
            self.push_block(ta, class, a);
            a += SIZE_CLASSES[class];
        }
        a - start
    }

    /// Return every cached block of a retiring thread allocator to its
    /// home shard. A [`ThreadAlloc`] dropped with a populated cache
    /// strands those blocks — no other thread can reach a private free
    /// list — so a workload that cycles workers (or scoped threads that
    /// exit while others still run) would slowly bleed the heap dry.
    /// Workers call this on drop.
    pub fn release(&self, ta: &mut ThreadAlloc) {
        if ta.free.iter().all(|l| l.is_empty()) {
            return;
        }
        let mut s = self.shards[ta.stripe].lock().unwrap();
        for (class, list) in ta.free.iter_mut().enumerate() {
            s.free[class].append(list);
        }
    }

    /// Free large blocks currently parked behind the single large-block
    /// lock (diagnostics; lets tests assert small-block churn never takes
    /// the global lock path).
    pub fn large_free_blocks(&self) -> usize {
        self.large_free.lock().unwrap().len()
    }

    /// Usable payload bytes of an allocated block. The capture log records
    /// the whole usable range so that any in-bounds access hits.
    #[inline]
    pub fn usable_size(&self, addr: Addr) -> u64 {
        let total = self.mem.load_private(Addr(addr.0 - HEADER_BYTES));
        total - HEADER_BYTES
    }

    /// Live payload bytes currently allocated (telemetry).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Current bump frontier (byte address one past the highest carved
    /// block). The durable checkpointer snapshots `[heap_start, frontier)`;
    /// everything above the frontier has never been allocated and is
    /// guaranteed zero.
    pub fn frontier(&self) -> u64 {
        self.bump.load(Ordering::Acquire)
    }

    /// Restore the bump frontier after crash recovery, so that new
    /// allocations are carved strictly above every replayed block. Only
    /// moves the frontier forward; free-list state is *not* recovered
    /// (recycled blocks that were on a free list at the crash leak, which
    /// costs space, never correctness).
    pub fn restore_frontier(&self, v: u64) {
        debug_assert!(v >= self.mem.layout().heap_start && v <= self.mem.layout().heap_end);
        self.bump.fetch_max(v, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemConfig;

    fn mk() -> (Arc<SharedMem>, TxHeap, ThreadAlloc) {
        let mem = Arc::new(SharedMem::new(MemConfig::small()));
        let heap = TxHeap::new(mem.clone());
        (mem, heap, ThreadAlloc::new())
    }

    #[test]
    fn alloc_returns_zeroed_disjoint_blocks() {
        let (mem, heap, mut ta) = mk();
        let a = heap.alloc(&mut ta, 24).unwrap();
        let b = heap.alloc(&mut ta, 24).unwrap();
        assert_ne!(a, b);
        for i in 0..3 {
            assert_eq!(mem.load(a.word(i)), 0);
        }
        mem.store(a, 42);
        assert_eq!(mem.load(b), 0, "blocks must not alias");
    }

    #[test]
    fn usable_size_covers_request() {
        let (_, heap, mut ta) = mk();
        for req in [1u64, 8, 16, 24, 100, 1000, 4000] {
            let a = heap.alloc(&mut ta, req).unwrap();
            assert!(heap.usable_size(a) >= req, "req={req}");
        }
    }

    #[test]
    fn free_then_alloc_reuses_memory() {
        let (_, heap, mut ta) = mk();
        let a = heap.alloc(&mut ta, 32).unwrap();
        heap.free(&mut ta, a);
        let b = heap.alloc(&mut ta, 32).unwrap();
        assert_eq!(a, b, "size-class free list should recycle LIFO");
    }

    #[test]
    fn large_allocations_roundtrip() {
        let (mem, heap, mut ta) = mk();
        let big = MAX_SMALL_BYTES + 1000;
        let a = heap.alloc(&mut ta, big).unwrap();
        assert!(heap.usable_size(a) >= big);
        mem.store(a.word(1000), 5);
        heap.free(&mut ta, a);
        let b = heap.alloc(&mut ta, big).unwrap();
        assert_eq!(a, b, "large free list should recycle");
    }

    #[test]
    fn exhaustion_reports_error_not_panic() {
        let (_, heap, mut ta) = mk();
        let mut n = 0u64;
        loop {
            match heap.alloc(&mut ta, 4096) {
                Ok(_) => n += 1,
                Err(e) => {
                    assert_eq!(e.requested, 4096);
                    break;
                }
            }
            assert!(n < 1 << 20, "heap never exhausted?");
        }
        assert!(n > 10);
    }

    #[test]
    fn bytes_allocated_tracks_live_data() {
        let (_, heap, mut ta) = mk();
        let before = heap.bytes_allocated();
        let a = heap.alloc(&mut ta, 100).unwrap();
        assert!(heap.bytes_allocated() > before);
        heap.free(&mut ta, a);
        assert_eq!(heap.bytes_allocated(), before);
    }

    #[test]
    fn frontier_tracks_carves_and_restores_forward_only() {
        let (mem, heap, mut ta) = mk();
        let start = heap.frontier();
        assert_eq!(start, mem.layout().heap_start);
        let a = heap.alloc(&mut ta, 100).unwrap();
        let after = heap.frontier();
        assert!(after > start, "carving a batch moves the frontier");
        assert!(a.0 < after, "blocks live below the frontier");
        heap.restore_frontier(start); // backward restore is a no-op
        assert_eq!(heap.frontier(), after);
        heap.restore_frontier(after + 4096);
        assert_eq!(heap.frontier(), after + 4096);
        // New allocations land above the restored frontier once the
        // pre-carved batch is used up.
        let mut last = a;
        for _ in 0..64 {
            last = heap.alloc(&mut ta, 100).unwrap();
        }
        assert!(heap.frontier() >= after + 4096);
        assert!(!last.is_null());
    }

    #[test]
    fn refill_carves_are_byte_capped_for_large_classes() {
        let (_, heap, mut ta) = mk();
        let start = heap.frontier();
        // First region-class carve: exactly one region's worth, not a
        // BATCH × region hoard.
        let r = heap.carve_region(&mut ta).expect("fresh heap has a region");
        assert_eq!(r, start, "regions carve from the frontier");
        assert_eq!(
            heap.frontier() - start,
            NURSERY_REGION_BYTES,
            "one region-class refill must carve one region"
        );
        // A small class still batches (BATCH blocks fit under the cap).
        let before = heap.frontier();
        let a = heap.alloc(&mut ta, 8).unwrap();
        assert!(!a.is_null());
        assert_eq!(
            heap.frontier() - before,
            BATCH as u64 * SIZE_CLASSES[0],
            "small classes keep the full batch"
        );
    }

    #[test]
    fn released_thread_cache_is_reachable_by_successors() {
        let (_, heap, mut ta1) = mk();
        // Fill ta1's private cache: a freed block goes to the thread list,
        // not the shard (below SPILL_AT nothing spills).
        let a = heap.alloc(&mut ta1, 56).unwrap();
        heap.free(&mut ta1, a);
        let frontier = heap.frontier();
        // Without release, a successor on the same stripe would re-carve.
        heap.release(&mut ta1);
        let mut ta2 = ThreadAlloc::new();
        assert_eq!(ta1.stripe(), ta2.stripe());
        let b = heap.alloc(&mut ta2, 56).unwrap();
        assert_eq!(a, b, "the released block must be recycled first");
        assert_eq!(heap.frontier(), frontier, "no fresh carve needed");
    }

    #[test]
    fn cross_thread_recycling_via_shared_shard() {
        let (_, heap, mut ta1) = mk();
        let mut ta2 = ThreadAlloc::new();
        assert_eq!(ta1.stripe(), ta2.stripe(), "same stripe shares a shard");
        // Thread 1 allocates and frees enough to spill to its home shard.
        let blocks: Vec<_> = (0..SPILL_AT + 10)
            .map(|_| heap.alloc(&mut ta1, 56).unwrap())
            .collect();
        for b in blocks {
            heap.free(&mut ta1, b);
        }
        // Thread 2 (same stripe) should be able to pull recycled blocks.
        let x = heap.alloc(&mut ta2, 56).unwrap();
        assert!(!x.is_null());
    }

    #[test]
    fn cross_shard_stealing_on_exhaustion() {
        let (_, heap, mut ta1) = mk();
        // Fill thread 1's home shard with recycled blocks, then burn the
        // bump frontier down below one smallest-class block, so a 56-byte
        // refill can neither use its (empty) home shard nor carve.
        let blocks: Vec<_> = (0..SPILL_AT + 10)
            .map(|_| heap.alloc(&mut ta1, 56).unwrap())
            .collect();
        for &b in &blocks {
            heap.free(&mut ta1, b);
        }
        while heap.alloc(&mut ta1, 8).is_ok() {}
        // A thread striped to a *different* shard must steal thread 1's
        // recycled blocks rather than report exhaustion.
        let mut ta2 = ThreadAlloc::with_stripe(ta1.stripe() + 1);
        assert_ne!(ta1.stripe(), ta2.stripe());
        let x = heap
            .alloc(&mut ta2, 56)
            .expect("exhausted frontier must fall back to stealing");
        assert!(
            blocks.contains(&x),
            "steal must return one of the blocks thread 1 recycled"
        );
    }

    #[test]
    fn stripes_wrap_over_shards() {
        assert_eq!(ThreadAlloc::with_stripe(0).stripe(), 0);
        assert_eq!(ThreadAlloc::with_stripe(NSHARDS).stripe(), 0);
        assert_eq!(ThreadAlloc::with_stripe(NSHARDS + 3).stripe(), 3);
    }

    #[test]
    fn small_block_total_matches_alloc_rounding() {
        let (_, heap, mut ta) = mk();
        for req in [1u64, 7, 8, 24, 100, 1000, 4000] {
            let total = small_block_total(req).unwrap();
            assert!(total - HEADER_BYTES >= req);
            let a = heap.alloc(&mut ta, req).unwrap();
            assert_eq!(heap.usable_size(a), total - HEADER_BYTES, "req={req}");
        }
        assert_eq!(small_block_total(MAX_SMALL_BYTES + 1), None);
    }

    #[test]
    fn nursery_blocks_are_ordinary_blocks() {
        // A bump block initialized inside a carved region must satisfy
        // usable_size and free exactly like a free-list block.
        let (mem, heap, mut ta) = mk();
        let region = heap.carve_region(&mut ta).expect("region");
        let total = small_block_total(100).unwrap();
        let a = heap.init_nursery_block(&mut ta, region, total);
        assert_eq!(heap.usable_size(a), total - HEADER_BYTES);
        for i in 0..(total - HEADER_BYTES) / 8 {
            assert_eq!(mem.load(a.word(i)), 0, "payload zeroed");
        }
        // Publish-then-free: the block recycles into the class shards, not
        // the large-block lock.
        let large_before = heap.large_free_blocks();
        heap.free(&mut ta, a);
        assert_eq!(heap.large_free_blocks(), large_before);
        let b = heap.alloc(&mut ta, 100).unwrap();
        assert_eq!(a, b, "freed nursery block is LIFO-recycled");
    }

    #[test]
    fn region_recycling_roundtrips() {
        let (_, heap, mut ta) = mk();
        let before = heap.bytes_allocated();
        let region = heap.carve_region(&mut ta).expect("region");
        // Whole-region recycle is a single class push.
        assert_eq!(
            heap.recycle_region_range(&mut ta, region, NURSERY_REGION_BYTES),
            NURSERY_REGION_BYTES
        );
        // A 16-byte-granular tail splits with nothing left over.
        let region2 = heap.carve_region(&mut ta).expect("region");
        let tail = NURSERY_REGION_BYTES - 4096 - 48;
        assert_eq!(
            heap.recycle_region_range(&mut ta, region2 + 4096 + 48, tail),
            tail
        );
        assert_eq!(
            heap.bytes_allocated(),
            before,
            "regions never count as live"
        );
    }

    #[test]
    fn try_extend_region_needs_the_frontier() {
        let (_, heap, mut ta) = mk();
        // Burn the thread cache so carving hits the frontier, then carve a
        // fresh batch: the *last* block of the carved batch ends at the
        // frontier and can extend; earlier ones cannot.
        let mut regions = Vec::new();
        for _ in 0..BATCH + 1 {
            regions.push(heap.carve_region(&mut ta).expect("region"));
        }
        regions.sort_unstable();
        let last_end = regions.last().unwrap() + NURSERY_REGION_BYTES;
        assert!(!heap.try_extend_region(regions[0] + NURSERY_REGION_BYTES));
        assert!(heap.try_extend_region(last_end));
        assert!(
            !heap.try_extend_region(last_end),
            "the frontier moved; the same edge cannot extend twice"
        );
    }

    #[test]
    fn forget_and_recycle_block_settle_accounting() {
        let (_, heap, mut ta) = mk();
        let before = heap.bytes_allocated();
        let region = heap.carve_region(&mut ta).expect("region");
        let total = small_block_total(40).unwrap();
        let a = heap.init_nursery_block(&mut ta, region, total);
        assert_eq!(heap.bytes_allocated(), before + total - HEADER_BYTES);
        heap.forget_live_bytes(total - HEADER_BYTES);
        assert_eq!(heap.bytes_allocated(), before);
        heap.recycle_block(&mut ta, a);
        let b = heap.alloc(&mut ta, 40).unwrap();
        assert_eq!(a, b, "recycled block is on the class free list");
    }

    #[test]
    fn concurrent_alloc_is_disjoint() {
        let mem = Arc::new(SharedMem::new(MemConfig {
            max_threads: 8,
            stack_words: 1 << 10,
            heap_words: 1 << 18,
        }));
        let heap = Arc::new(TxHeap::new(mem));
        let mut handles = Vec::new();
        for t in 0..4 {
            let heap = heap.clone();
            handles.push(std::thread::spawn(move || {
                let mut ta = ThreadAlloc::with_stripe(t);
                let mut addrs = Vec::new();
                for i in 0..500 {
                    addrs.push(heap.alloc(&mut ta, 16 + (i % 5) * 24).unwrap());
                }
                addrs
            }));
        }
        let mut all: Vec<Addr> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "threads handed out overlapping blocks");
    }

    #[test]
    fn concurrent_alloc_free_churn_across_shards() {
        // Alloc/free churn from every stripe at once: spills, refills and
        // steals must never hand out an address twice concurrently.
        let mem = Arc::new(SharedMem::new(MemConfig {
            max_threads: 8,
            stack_words: 1 << 10,
            heap_words: 1 << 18,
        }));
        let heap = Arc::new(TxHeap::new(mem));
        std::thread::scope(|s| {
            for t in 0..NSHARDS {
                let heap = heap.clone();
                s.spawn(move || {
                    let mut ta = ThreadAlloc::with_stripe(t);
                    let mut live = Vec::new();
                    for i in 0..2000u64 {
                        live.push(heap.alloc(&mut ta, 8 + (i % 7) * 16).unwrap());
                        if i % 3 != 0 {
                            let idx = (i as usize * 7 + t) % live.len();
                            let a = live.swap_remove(idx);
                            heap.mem().store(a, t as u64 + 1);
                            heap.free(&mut ta, a);
                        }
                    }
                    // Every still-live block is private to this thread:
                    // write a tag and verify nobody else scribbled on it.
                    for (i, &a) in live.iter().enumerate() {
                        heap.mem().store(a, (t as u64) << 32 | i as u64);
                    }
                    for (i, &a) in live.iter().enumerate() {
                        assert_eq!(heap.mem().load(a), (t as u64) << 32 | i as u64);
                    }
                });
            }
        });
    }
}
