use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::addr::{Addr, WORD_BYTES};
use crate::mem::SharedMem;

/// Size classes (total block bytes, including the 8-byte header), in the
/// spirit of McRT-Malloc's segregated free lists. Payload capacity of a class
/// is `class - HEADER_BYTES`.
pub const SIZE_CLASSES: [u64; 16] = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 4096, 8192,
];

/// Largest payload served from the size-class fast path.
pub const MAX_SMALL_BYTES: u64 = SIZE_CLASSES[SIZE_CLASSES.len() - 1] - HEADER_BYTES;

const HEADER_BYTES: u64 = WORD_BYTES;
const NCLASSES: usize = SIZE_CLASSES.len();
/// How many blocks a thread pulls from / spills to the global pool at once.
const BATCH: usize = 16;
/// A thread free list longer than this spills half back to the global pool.
const SPILL_AT: usize = 64;

/// Allocation failure: the simulated heap is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocError {
    pub requested: u64,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated heap exhausted (requested {} bytes)",
            self.requested
        )
    }
}

impl std::error::Error for AllocError {}

fn size_to_class(total: u64) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= total)
}

struct GlobalPool {
    /// Next unused byte of the heap region (bump frontier).
    bump: u64,
    /// One past the last heap byte.
    end: u64,
    /// Global free lists per class (block start addresses).
    free: [Vec<u64>; NCLASSES],
    /// Free large blocks: (block start, total bytes).
    large_free: Vec<(u64, u64)>,
}

impl GlobalPool {
    fn carve(&mut self, total: u64) -> Option<u64> {
        if self.end - self.bump < total {
            return None;
        }
        let a = self.bump;
        self.bump += total;
        Some(a)
    }
}

/// Per-thread allocator state: segregated free lists that serve allocations
/// without any locking, refilled from the shared [`TxHeap`] pool in batches.
#[derive(Default)]
pub struct ThreadAlloc {
    free: Vec<Vec<u64>>,
    /// Number of blocks this thread allocated (for tests/telemetry).
    pub alloc_count: u64,
    /// Number of blocks this thread freed.
    pub free_count: u64,
}

impl ThreadAlloc {
    pub fn new() -> ThreadAlloc {
        ThreadAlloc {
            free: (0..NCLASSES).map(|_| Vec::new()).collect(),
            alloc_count: 0,
            free_count: 0,
        }
    }
}

/// The shared heap: a McRT-Malloc-style size-class allocator over the heap
/// region of the simulated memory.
///
/// The allocator itself is *not* transactional: the STM layer on top logs
/// transactional allocations and frees, undoing allocations on abort and
/// deferring frees to commit. This matches the paper's design where the
/// transactional memory allocator wraps a scalable malloc (ref [11]) and the
/// allocation log lives in the transaction descriptor.
pub struct TxHeap {
    mem: Arc<SharedMem>,
    global: Mutex<GlobalPool>,
    /// Total bytes handed out (telemetry; relaxed).
    bytes_allocated: AtomicU64,
}

impl TxHeap {
    pub fn new(mem: Arc<SharedMem>) -> TxHeap {
        let l = *mem.layout();
        TxHeap {
            mem,
            global: Mutex::new(GlobalPool {
                bump: l.heap_start,
                end: l.heap_end,
                free: std::array::from_fn(|_| Vec::new()),
                large_free: Vec::new(),
            }),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn mem(&self) -> &SharedMem {
        &self.mem
    }

    /// Allocate `size` payload bytes; returns the payload address (header is
    /// at `addr - 8`). The payload is zeroed.
    pub fn alloc(&self, ta: &mut ThreadAlloc, size: u64) -> Result<Addr, AllocError> {
        let size = size.max(1);
        let total = (size + HEADER_BYTES).div_ceil(WORD_BYTES) * WORD_BYTES;
        let block = match size_to_class(total) {
            Some(class) => {
                let cls_total = SIZE_CLASSES[class];
                let block = match ta.free[class].pop() {
                    Some(b) => b,
                    None => self
                        .refill(ta, class)
                        .ok_or(AllocError { requested: size })?,
                };
                self.mem.store_private(Addr(block), cls_total);
                block
            }
            None => self
                .alloc_large(total)
                .ok_or(AllocError { requested: size })?,
        };
        ta.alloc_count += 1;
        let payload = Addr(block + HEADER_BYTES);
        let usable = self.usable_size(payload);
        self.mem.zero_range(payload, usable);
        self.bytes_allocated.fetch_add(usable, Ordering::Relaxed);
        Ok(payload)
    }

    fn refill(&self, ta: &mut ThreadAlloc, class: usize) -> Option<u64> {
        let cls_total = SIZE_CLASSES[class];
        let mut g = self.global.lock().unwrap();
        // Prefer recycled blocks.
        let take = g.free[class].len().min(BATCH);
        if take > 0 {
            let at = g.free[class].len() - take;
            ta.free[class].extend(g.free[class].drain(at..));
        } else {
            // Carve a fresh batch from the bump frontier; fall back to fewer
            // blocks (down to one) when the heap is nearly full.
            let mut carved = 0;
            while carved < BATCH {
                match g.carve(cls_total) {
                    Some(b) => {
                        ta.free[class].push(b);
                        carved += 1;
                    }
                    None => break,
                }
            }
            if carved == 0 {
                return None;
            }
        }
        ta.free[class].pop()
    }

    fn alloc_large(&self, total: u64) -> Option<u64> {
        let mut g = self.global.lock().unwrap();
        // First fit over the large free list.
        if let Some(i) = g.large_free.iter().position(|&(_, sz)| sz >= total) {
            let (a, sz) = g.large_free.swap_remove(i);
            self.mem.store_private(Addr(a), sz);
            return Some(a);
        }
        let a = g.carve(total)?;
        self.mem.store_private(Addr(a), total);
        Some(a)
    }

    /// Free a block previously returned by [`TxHeap::alloc`].
    pub fn free(&self, ta: &mut ThreadAlloc, addr: Addr) {
        assert!(!addr.is_null(), "free(NULL)");
        let block = addr.0 - HEADER_BYTES;
        let total = self.mem.load_private(Addr(block));
        ta.free_count += 1;
        self.bytes_allocated
            .fetch_sub(total - HEADER_BYTES, Ordering::Relaxed);
        match size_to_class(total) {
            Some(class) if SIZE_CLASSES[class] == total => {
                ta.free[class].push(block);
                if ta.free[class].len() > SPILL_AT {
                    let spill_at = ta.free[class].len() / 2;
                    let mut g = self.global.lock().unwrap();
                    g.free[class].extend(ta.free[class].drain(spill_at..));
                }
            }
            _ => {
                let mut g = self.global.lock().unwrap();
                g.large_free.push((block, total));
            }
        }
    }

    /// Usable payload bytes of an allocated block. The capture log records
    /// the whole usable range so that any in-bounds access hits.
    #[inline]
    pub fn usable_size(&self, addr: Addr) -> u64 {
        let total = self.mem.load_private(Addr(addr.0 - HEADER_BYTES));
        total - HEADER_BYTES
    }

    /// Live payload bytes currently allocated (telemetry).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemConfig;

    fn mk() -> (Arc<SharedMem>, TxHeap, ThreadAlloc) {
        let mem = Arc::new(SharedMem::new(MemConfig::small()));
        let heap = TxHeap::new(mem.clone());
        (mem, heap, ThreadAlloc::new())
    }

    #[test]
    fn alloc_returns_zeroed_disjoint_blocks() {
        let (mem, heap, mut ta) = mk();
        let a = heap.alloc(&mut ta, 24).unwrap();
        let b = heap.alloc(&mut ta, 24).unwrap();
        assert_ne!(a, b);
        for i in 0..3 {
            assert_eq!(mem.load(a.word(i)), 0);
        }
        mem.store(a, 42);
        assert_eq!(mem.load(b), 0, "blocks must not alias");
    }

    #[test]
    fn usable_size_covers_request() {
        let (_, heap, mut ta) = mk();
        for req in [1u64, 8, 16, 24, 100, 1000, 4000] {
            let a = heap.alloc(&mut ta, req).unwrap();
            assert!(heap.usable_size(a) >= req, "req={req}");
        }
    }

    #[test]
    fn free_then_alloc_reuses_memory() {
        let (_, heap, mut ta) = mk();
        let a = heap.alloc(&mut ta, 32).unwrap();
        heap.free(&mut ta, a);
        let b = heap.alloc(&mut ta, 32).unwrap();
        assert_eq!(a, b, "size-class free list should recycle LIFO");
    }

    #[test]
    fn large_allocations_roundtrip() {
        let (mem, heap, mut ta) = mk();
        let big = MAX_SMALL_BYTES + 1000;
        let a = heap.alloc(&mut ta, big).unwrap();
        assert!(heap.usable_size(a) >= big);
        mem.store(a.word(1000), 5);
        heap.free(&mut ta, a);
        let b = heap.alloc(&mut ta, big).unwrap();
        assert_eq!(a, b, "large free list should recycle");
    }

    #[test]
    fn exhaustion_reports_error_not_panic() {
        let (_, heap, mut ta) = mk();
        let mut n = 0u64;
        loop {
            match heap.alloc(&mut ta, 4096) {
                Ok(_) => n += 1,
                Err(e) => {
                    assert_eq!(e.requested, 4096);
                    break;
                }
            }
            assert!(n < 1 << 20, "heap never exhausted?");
        }
        assert!(n > 10);
    }

    #[test]
    fn bytes_allocated_tracks_live_data() {
        let (_, heap, mut ta) = mk();
        let before = heap.bytes_allocated();
        let a = heap.alloc(&mut ta, 100).unwrap();
        assert!(heap.bytes_allocated() > before);
        heap.free(&mut ta, a);
        assert_eq!(heap.bytes_allocated(), before);
    }

    #[test]
    fn cross_thread_recycling_via_global_pool() {
        let (_, heap, mut ta1) = mk();
        let mut ta2 = ThreadAlloc::new();
        // Thread 1 allocates and frees enough to spill to the global pool.
        let blocks: Vec<_> = (0..SPILL_AT + 10)
            .map(|_| heap.alloc(&mut ta1, 56).unwrap())
            .collect();
        for b in blocks {
            heap.free(&mut ta1, b);
        }
        // Thread 2 should be able to pull recycled blocks.
        let x = heap.alloc(&mut ta2, 56).unwrap();
        assert!(!x.is_null());
    }

    #[test]
    fn concurrent_alloc_is_disjoint() {
        let mem = Arc::new(SharedMem::new(MemConfig {
            max_threads: 8,
            stack_words: 1 << 10,
            heap_words: 1 << 18,
        }));
        let heap = Arc::new(TxHeap::new(mem));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let heap = heap.clone();
            handles.push(std::thread::spawn(move || {
                let mut ta = ThreadAlloc::new();
                let mut addrs = Vec::new();
                for i in 0..500 {
                    addrs.push(heap.alloc(&mut ta, 16 + (i % 5) * 24).unwrap());
                }
                addrs
            }));
        }
        let mut all: Vec<Addr> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "threads handed out overlapping blocks");
    }
}
