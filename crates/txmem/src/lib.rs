//! Simulated word-addressable shared memory for the captured-memory STM.
//!
//! The paper ("Optimizing Transactions for Captured Memory", SPAA 2009)
//! instruments C++ programs whose transactional data lives in raw process
//! memory: per-thread stacks, and a heap managed by a McRT-Malloc-style
//! allocator. A safe-Rust reproduction cannot hand raw stack addresses to an
//! STM, so this crate provides the equivalent substrate as a *simulated* flat
//! address space:
//!
//! * [`SharedMem`] — a flat array of 64-bit words, byte-addressed through
//!   [`Addr`], shared by every thread.
//! * [`ThreadStack`] — a per-thread, downward-growing stack region inside the
//!   shared address space, with an explicit stack pointer exactly like the
//!   paper's Figure 3 (`start_sp` is recorded by the STM at transaction
//!   begin; `sp` is the live stack top).
//! * [`TxHeap`]/[`ThreadAlloc`] — a size-class allocator with per-thread free
//!   lists, a lock-free bump frontier, and thread-striped recycled-block
//!   shards, mirroring McRT-Malloc (paper ref \[11\]) without any global lock.
//!
//! All transactional workloads (the STAMP-like suite, the `txcc` VM) store
//! their data in this address space, which is what makes the paper's capture
//! checks — a stack range comparison and an allocation-log lookup —
//! implementable verbatim.

mod addr;
mod alloc;
mod mem;
mod pad;
mod stack;

pub use addr::{words_to_bytes, Addr, NULL, WORD_BYTES};
pub use alloc::{
    small_block_total, AllocError, ThreadAlloc, TxHeap, HEADER_BYTES, MAX_SMALL_BYTES, NSHARDS,
    NURSERY_MAX_BLOCK_BYTES, NURSERY_REGION_BYTES, SIZE_CLASSES,
};
pub use mem::{MemConfig, MemLayout, SharedMem};
pub use pad::CachePadded;
pub use stack::ThreadStack;
